//! Model-based property test for the software TLB in
//! [`tinyir::mem::PagedMemory`].
//!
//! The TLB is a pure cache: a TLB-enabled memory and a TLB-free reference
//! must behave identically over *arbitrary* interleavings of map / unmap /
//! load / store / bulk I/O / clone — including the dangerous cases the
//! direct-mapped entries must not survive: stores right after a `clone()`
//! (copy-on-write unsharing while a write entry is still armed), unmap +
//! remap of a cached page, and faults of both kinds. The reference model
//! here is the pre-TLB implementation in miniature: a plain
//! `HashMap<page, Box<[u8]>>` walked on every access.

use proptest::prelude::*;
use tinyir::mem::{MemFault, Memory, PagedMemory, PAGE_SIZE};

/// TLB-free reference memory: same fault rules, no caching, eager page
/// copies on `clone()` (no CoW — sharing must be unobservable).
#[derive(Clone, Default)]
struct RefMemory {
    pages: std::collections::HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl RefMemory {
    fn load(&self, addr: u64, size: u32) -> Result<u64, MemFault> {
        if !addr.is_multiple_of(size as u64) {
            return Err(MemFault::Misaligned(addr));
        }
        let page = self.pages.get(&(addr / PAGE_SIZE)).ok_or(MemFault::Unmapped(addr))?;
        let off = (addr % PAGE_SIZE) as usize;
        let mut bits = 0u64;
        for i in 0..size as usize {
            bits |= (page[off + i] as u64) << (8 * i);
        }
        Ok(bits)
    }

    fn store(&mut self, addr: u64, size: u32, bits: u64) -> Result<(), MemFault> {
        if !addr.is_multiple_of(size as u64) {
            return Err(MemFault::Misaligned(addr));
        }
        let page = self.pages.get_mut(&(addr / PAGE_SIZE)).ok_or(MemFault::Unmapped(addr))?;
        let off = (addr % PAGE_SIZE) as usize;
        for i in 0..size as usize {
            page[off + i] = (bits >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn map_region(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        for p in addr / PAGE_SIZE..=(addr + len - 1) / PAGE_SIZE {
            self.pages.entry(p).or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        }
    }

    fn unmap_region(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        for p in addr / PAGE_SIZE..=(addr + len - 1) / PAGE_SIZE {
            self.pages.remove(&p);
        }
    }

    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr + i as u64;
            let page = self.pages.get(&(a / PAGE_SIZE)).ok_or(MemFault::Unmapped(a))?;
            *b = page[(a % PAGE_SIZE) as usize];
        }
        Ok(())
    }

    fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemFault> {
        for (i, &b) in buf.iter().enumerate() {
            let a = addr + i as u64;
            let page = self.pages.get_mut(&(a / PAGE_SIZE)).ok_or(MemFault::Unmapped(a))?;
            page[(a % PAGE_SIZE) as usize] = b;
        }
        Ok(())
    }
}

/// The universe the ops draw addresses from: a handful of pages (so
/// map/unmap/collision cases actually hit) starting at a non-zero base.
/// Two of the pages are exactly `TLB_WAYS` apart, so direct-mapped slot
/// collisions occur too (64-entry TLB, 64 * 4 KiB span here).
const BASE: u64 = 0x4000_0000;
const PAGES: u64 = 66;
const SPAN: u64 = PAGES * PAGE_SIZE;

/// One operation of the interleaving. All addresses are offsets into the
/// universe; sizes/alignment are chosen by the generator so both aligned
/// and faulting accesses occur.
#[derive(Clone, Debug)]
enum Op {
    Map { off: u64, len: u64 },
    Unmap { off: u64, len: u64 },
    Load { off: u64, size: u32 },
    Store { off: u64, size: u32, bits: u64 },
    ReadBytes { off: u64, len: u64 },
    WriteBytes { off: u64, len: u64, seed: u8 },
    /// Snapshot the current memory; subsequent ops apply to the *snapshot*
    /// or keep going on the original, per `switch`.
    Clone { switch: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SPAN, 1u64..3 * PAGE_SIZE).prop_map(|(off, len)| Op::Map { off, len }),
        (0..SPAN, 1u64..3 * PAGE_SIZE).prop_map(|(off, len)| Op::Unmap { off, len }),
        (0..SPAN, 0u32..4).prop_map(|(off, s)| Op::Load { off, size: 1 << s }),
        (0..SPAN, 0u32..4, any::<u64>())
            .prop_map(|(off, s, bits)| Op::Store { off, size: 1 << s, bits }),
        (0..SPAN, 0u64..2 * PAGE_SIZE).prop_map(|(off, len)| Op::ReadBytes { off, len }),
        (0..SPAN, 0u64..2 * PAGE_SIZE, any::<u8>())
            .prop_map(|(off, len, seed)| Op::WriteBytes { off, len, seed }),
        any::<bool>().prop_map(|switch| Op::Clone { switch }),
    ]
}

/// Clamp a (offset, len) pair into the universe so the test exercises
/// in-range holes rather than wrapping arithmetic.
fn clamp(off: u64, len: u64) -> (u64, u64) {
    (BASE + off, len.min(SPAN - off))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(debug_assertions) { 64 } else { 256 },
        ..ProptestConfig::default()
    })]

    /// Every observable of the TLB'd memory — load results, fault
    /// addresses, bulk I/O, and the final byte-for-byte contents of both
    /// the working memory and every live snapshot — matches the TLB-free
    /// reference.
    #[test]
    fn tlb_memory_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let mut mem = PagedMemory::new();
        let mut refm = RefMemory::default();
        // Retired (memory, reference) pairs from Clone ops; checked at the
        // end to catch CoW corruption of a forked sibling.
        let mut retired: Vec<(PagedMemory, RefMemory)> = Vec::new();

        for op in &ops {
            match *op {
                Op::Map { off, len } => {
                    let (addr, len) = clamp(off, len);
                    mem.map_region(addr, len);
                    refm.map_region(addr, len);
                }
                Op::Unmap { off, len } => {
                    let (addr, len) = clamp(off, len);
                    mem.unmap_region(addr, len);
                    refm.unmap_region(addr, len);
                }
                Op::Load { off, size } => {
                    let addr = BASE + off;
                    prop_assert_eq!(mem.load(addr, size), refm.load(addr, size));
                }
                Op::Store { off, size, bits } => {
                    let addr = BASE + off;
                    prop_assert_eq!(
                        mem.store(addr, size, bits),
                        refm.store(addr, size, bits)
                    );
                }
                Op::ReadBytes { off, len } => {
                    let (addr, len) = clamp(off, len);
                    let mut a = vec![0u8; len as usize];
                    let mut b = vec![0u8; len as usize];
                    let ra = mem.read_bytes(addr, &mut a);
                    let rb = refm.read_bytes(addr, &mut b);
                    prop_assert_eq!(ra, rb);
                    if ra.is_ok() {
                        prop_assert_eq!(&a, &b);
                    }
                }
                Op::WriteBytes { off, len, seed } => {
                    let (addr, len) = clamp(off, len);
                    let data: Vec<u8> =
                        (0..len).map(|i| seed.wrapping_add(i as u8)).collect();
                    // Bulk-write partial effects differ only *within* the
                    // faulting page walk, and both sides fault at a page
                    // boundary — so results and subsequent state agree.
                    prop_assert_eq!(
                        mem.write_bytes(addr, &data),
                        refm.write_bytes(addr, &data)
                    );
                }
                Op::Clone { switch } => {
                    let msnap = mem.clone();
                    let rsnap = refm.clone();
                    if switch {
                        // Continue on the snapshot; retire the original.
                        retired.push((
                            std::mem::replace(&mut mem, msnap),
                            std::mem::replace(&mut refm, rsnap),
                        ));
                    } else {
                        retired.push((msnap, rsnap));
                    }
                }
            }
        }

        // Final state: the working pair and every retired snapshot pair
        // must agree byte-for-byte across the whole universe (per page, so
        // mapping status is compared too).
        retired.push((mem, refm));
        for (m, r) in &retired {
            for p in 0..PAGES {
                let addr = BASE + p * PAGE_SIZE;
                let mut got = vec![0u8; PAGE_SIZE as usize];
                let mut want = vec![0u8; PAGE_SIZE as usize];
                let ga = m.read_bytes(addr, &mut got);
                let wa = r.read_bytes(addr, &mut want);
                prop_assert_eq!(ga, wa);
                if ga.is_ok() {
                    prop_assert_eq!(&got, &want);
                }
            }
        }
    }
}
