//! Integration tests for the telemetry subsystem against a real campaign.
//!
//! The paper's §6 observation — that >98% of each recovery is *preparation*
//! (diagnosis, table decode, kernel load, parameter collection) rather than
//! kernel execution — is checked here as a **measured distribution** pulled
//! out of the telemetry stream of a live HPCCG coverage campaign, not just
//! as cost-model arithmetic (that part is pinned in `safeguard`'s unit
//! tests).

use faultsim::{Campaign, CampaignConfig, EngineKind, FaultModel};
use opt::OptLevel;
use telemetry::{Recorder, TelemetryReport};

fn traced_hpccg_campaign(injections: usize) -> TelemetryReport {
    traced_hpccg_campaign_engine(injections, EngineKind::Interp)
}

fn traced_hpccg_campaign_engine(injections: usize, engine: EngineKind) -> TelemetryReport {
    let w = workloads::hpccg::build(3, 2);
    let app = care::compile(&w.module, OptLevel::O1);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let rec = Recorder::new();
    campaign.run_with_hooks(
        &CampaignConfig {
            injections,
            model: FaultModel::SingleBit,
            seed: 0xCA2E,
            evaluate_care: true,
            app_only: true,
            engine,
            ..CampaignConfig::default()
        },
        &rec,
    );
    rec.drain()
}

#[test]
fn measured_preparation_fraction_exceeds_95_percent_on_hpccg() {
    let tel = traced_hpccg_campaign(100);
    let ctr = |n: &str| tel.counters.get(n).copied().unwrap_or(0);
    let activations = ctr("recovery.activations");
    let recovered = ctr("recovery.recovered");
    assert!(recovered > 0, "campaign produced no recoveries to measure");
    // Activations split exactly into recoveries and declines.
    assert_eq!(activations, recovered + ctr("recovery.declined"));
    let prep = tel
        .hists
        .get("recovery.prep_bp")
        .expect("per-recovery preparation-fraction histogram");
    assert_eq!(prep.count(), recovered, "one prep sample per successful recovery");
    // Mean and *minimum* of the measured distribution: every single
    // recovery spent >95% of its modelled time preparing (the paper's §6
    // claim is >98% on average; the floor leaves room for tiny kernels).
    assert!(
        prep.mean() / 10_000.0 > 0.95,
        "mean preparation fraction {:.4} <= 0.95",
        prep.mean() / 10_000.0
    );
    assert!(
        prep.min() as f64 / 10_000.0 > 0.90,
        "worst-case preparation fraction {:.4} <= 0.90",
        prep.min() as f64 / 10_000.0
    );
    // The modelled per-phase spans decompose consistently: kernel execution
    // is a sliver of the total.
    let sum = |n: &str| tel.hists.get(n).map_or(0, |h| h.sum());
    let total = sum("recovery.total_ns");
    let kernel = sum("recovery.kernel_ns");
    assert!(total > 0);
    assert!(
        (kernel as f64) < 0.05 * total as f64,
        "kernel execution {kernel}ns is not a sliver of {total}ns"
    );
}

#[test]
fn campaign_jsonl_roundtrips_and_validates() {
    let tel = traced_hpccg_campaign(60);
    let jsonl = tel.to_jsonl();
    let counts = telemetry::validate_jsonl(&jsonl).expect("valid versioned JSONL");
    assert!(counts.get("counter").copied().unwrap_or(0) > 0, "{counts:?}");
    assert!(counts.get("hist").copied().unwrap_or(0) > 0, "{counts:?}");
    // Events are counted under their kind name: one "job" line per
    // classified injection, one "recovery" line per successful recovery.
    assert_eq!(counts.get("job").copied().unwrap_or(0), 60, "{counts:?}");
    assert!(counts.get("recovery").copied().unwrap_or(0) > 0, "{counts:?}");
    // Every line individually parses as a JSON object.
    for line in jsonl.lines() {
        let v = telemetry::parse_json(line).expect("line parses");
        assert!(v.get("kind").is_some() || v.get("schema_version").is_some());
    }
}

#[test]
fn tlb_hit_rate_is_high_and_consistent() {
    let tel = traced_hpccg_campaign(60);
    let ctr = |n: &str| tel.counters.get(n).copied().unwrap_or(0);
    let accesses = ctr("tlb.loads") + ctr("tlb.stores");
    let misses = ctr("tlb.read_misses") + ctr("tlb.write_misses");
    assert!(accesses > 0, "campaign performed no instrumented accesses");
    assert!(misses <= accesses, "more misses than accesses");
    let hit_rate = (accesses - misses) as f64 / accesses as f64;
    // HPCCG streams rows with strong page locality; the 1-entry software
    // TLB should absorb the overwhelming majority of accesses.
    assert!(hit_rate > 0.90, "TLB hit rate {hit_rate:.4} suspiciously low");
}

/// A compiled-engine campaign surfaces the `engine.*` translation counters
/// (block/op/fusion statistics and translation-cache traffic) in its
/// telemetry stream; an interpreter campaign emits none of them. The
/// simulation-visible counters stay identical either way.
#[test]
fn compiled_campaign_reports_engine_counters() {
    let interp = traced_hpccg_campaign_engine(40, EngineKind::Interp);
    let compiled = traced_hpccg_campaign_engine(40, EngineKind::Compiled);
    let ctr = |t: &TelemetryReport, n: &str| t.counters.get(n).copied().unwrap_or(0);
    assert!(
        !interp.counters.keys().any(|k| k.starts_with("engine.")),
        "interpreter campaign emitted engine.* counters"
    );
    assert!(ctr(&compiled, "engine.ops") > 0, "no translated ops reported");
    assert!(ctr(&compiled, "engine.blocks") > 0, "no translated blocks reported");
    assert!(
        ctr(&compiled, "engine.fused_cmp_br") > 0,
        "HPCCG loops must fuse compare+branch pairs"
    );
    assert!(
        ctr(&compiled, "engine.cache_hits") + ctr(&compiled, "engine.cache_misses") > 0,
        "translation-cache traffic unreported"
    );
    // Telemetry is an observer on either backend: the campaign-level step
    // accounting must agree between the engines.
    for key in ["steps.prefix", "steps.suffix", "steps.care", "campaign.classified"] {
        assert_eq!(
            ctr(&interp, key),
            ctr(&compiled, key),
            "{key} diverged between engines"
        );
    }
}

/// At four threads the campaign actually spreads across the persistent
/// pool, and the sharded cursor pass reconciles with the step accounting:
///
/// * at least two telemetry shards (each shard is one thread) carry
///   nonzero `worker.busy_ns` — the suffix/CARE jobs did not all run on
///   the caller;
/// * the per-shard cursor spans (`cursor.replay_steps` +
///   `cursor.window_steps`, summed over shards) equal the campaign's
///   `steps_prefix` exactly — the K window walks plus their fast replays
///   account for every prefix step;
/// * the `trellis.shards` counter agrees with the report.
#[test]
fn four_thread_campaign_spreads_work_across_pool_shards() {
    let w = workloads::hpccg::build(3, 2);
    let app = care::compile(&w.module, OptLevel::O1);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let rec = Recorder::new();
    let report = rayon::with_threads(4, || {
        campaign.run_with_hooks(
            &CampaignConfig {
                injections: 80,
                model: FaultModel::SingleBit,
                seed: 0xCA2E,
                evaluate_care: true,
                app_only: true,
                ..CampaignConfig::default()
            },
            &rec,
        )
    });
    let tel = rec.drain();
    let ctr = |n: &str| tel.counters.get(n).copied().unwrap_or(0);
    assert!(report.cursor_shards > 1, "4-thread trellis did not shard the cursor");
    assert_eq!(ctr("trellis.shards"), report.cursor_shards as u64);
    assert_eq!(
        ctr("cursor.replay_steps") + ctr("cursor.window_steps"),
        report.steps_prefix,
        "sharded cursor spans do not reconcile with the prefix step count"
    );
    assert!(ctr("cursor.replay_steps") > 0, "no shard fast-replayed to its boundary");
    let busy_shards = tel
        .per_shard_counters
        .iter()
        .filter(|m| m.get("worker.busy_ns").copied().unwrap_or(0) > 0)
        .count();
    assert!(
        busy_shards >= 2,
        "suffix work stayed on {busy_shards} thread(s); pool never engaged"
    );
    assert!(ctr("pool.chunks") > 0, "no chunks went through the work-stealing pool");
}

#[test]
fn instruction_mix_and_step_split_cover_the_campaign() {
    let tel = traced_hpccg_campaign(60);
    let ctr = |n: &str| tel.counters.get(n).copied().unwrap_or(0);
    // The golden-run instruction mix is recorded post-hoc from the profile;
    // a load-heavy CG solve must show movs and memory traffic.
    assert!(ctr("mix.mov") > 0);
    assert!(ctr("mix.store") > 0);
    assert!(ctr("mix.jnz") > 0, "loops imply conditional jumps");
    // Step-split counters reconcile with the per-job histogram totals.
    let suffix_hist = tel.hists.get("job.suffix_steps").expect("per-job suffix steps");
    assert_eq!(
        ctr("steps.suffix"),
        suffix_hist.sum(),
        "aggregate suffix steps disagree with the per-job distribution"
    );
    assert_eq!(ctr("campaign.injections"), 60);
}
