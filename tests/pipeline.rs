//! Cross-crate integration tests: the full CARE pipeline over the real
//! workloads — compile, execute, inject, recover, verify outputs.

use care::prelude::*;
use faultsim::{Campaign, CampaignConfig, Outcome, Signal};
use tinyir::verify::verify_module;

/// Campaign size: debug builds run the simulator ~20x slower, so the suite
/// scales down there while release CI uses the full counts.
fn n_injections(release_n: usize) -> usize {
    if cfg!(debug_assertions) {
        (release_n / 4).max(30)
    } else {
        release_n
    }
}

/// Every workload verifies, compiles at both levels, and produces identical
/// results on the reference interpreter and the SimISA machine at O0/O1.
#[test]
fn workloads_agree_across_interpreter_and_machine() {
    for w in workloads::all() {
        verify_module(&w.module).expect(w.name);

        // Reference interpreter result.
        let mut mem = tinyir::mem::PagedMemory::new();
        let globals = tinyir::interp::layout_globals(&w.module, &mut mem, 0x1000_0000);
        let mut interp = tinyir::interp::Interp::new(
            &w.module,
            &mut mem,
            &globals,
            0x7f00_0000_0000,
            0x7f00_0100_0000,
            0x6000_0000_0000,
            2_000_000_000,
        );
        let fid = w.module.func_by_name(w.entry).unwrap();
        let golden = interp.call(fid, &w.args).expect(w.name);

        for level in [OptLevel::O0, OptLevel::O1] {
            let app = care::compile(&w.module, level);
            let (mut p, mut sg) = care::protected_process(&app, &[]);
            p.start(w.entry, &w.args);
            match run_protected(&mut p, &mut sg, 8) {
                ProtectedExit::Completed { result, recoveries, .. } => {
                    assert_eq!(recoveries, 0, "{} {level}: no faults injected", w.name);
                    // O1 transforms may legally reassociate nothing here (we
                    // only run scalar passes), so results are bit-exact.
                    assert_eq!(result, golden, "{} {level} result", w.name);
                }
                other => panic!("{} {level}: {other:?}", w.name),
            }
        }
    }
}

/// Armor emits a kernel for every non-direct memory access in every
/// workload, and the kernel module itself verifies.
#[test]
fn armor_artifacts_verify_for_all_workloads() {
    for w in workloads::all() {
        for level in [OptLevel::O0, OptLevel::O1] {
            let mut ir = w.module.clone();
            opt::optimize(&mut ir, level);
            let out = armor::run_armor(&ir);
            verify_module(&out.kernel_module)
                .unwrap_or_else(|e| panic!("{} {level}: {e}", w.name));
            assert_eq!(
                out.table.len(),
                out.stats.num_kernels,
                "{} {level}: one table entry per kernel",
                w.name
            );
            // The encoded table round-trips.
            let decoded = armor::RecoveryTable::decode(&out.table.encode()).unwrap();
            assert_eq!(decoded.len(), out.table.len());
            assert_eq!(out.stats.infeasible, 0, "{} {level} infeasible", w.name);
        }
    }
}

/// End-to-end recovery on every evaluated workload: at least one injected
/// SIGSEGV is repaired with bit-clean output at both opt levels.
#[test]
fn every_workload_recovers_some_fault_cleanly() {
    for w in workloads::evaluated() {
        for level in [OptLevel::O0, OptLevel::O1] {
            let app = care::compile(&w.module, level);
            let campaign = Campaign::prepare(&w, app, vec![]);
            let cfg = CampaignConfig {
                injections: n_injections(120),
                evaluate_care: true,
                app_only: true,
                seed: 0xE2E,
                ..CampaignConfig::default()
            };
            let report = campaign.run(&cfg);
            assert!(
                report.care_covered > 0,
                "{} {level}: no recovery among {} SIGSEGV faults ({:?})",
                w.name,
                report.care_evaluated,
                report.declines
            );
            assert!(
                report.coverage() > 0.4,
                "{} {level}: coverage {:.2} too low",
                w.name,
                report.coverage()
            );
        }
    }
}

/// CARE's repairs are exact (no heuristic address substitution): runs the
/// campaign counts as covered had bit-identical outputs. A small residue of
/// runs survives with corrupted output — those are faults that hit a value
/// used both as an address (repaired exactly) *and* as data (corrupted
/// before CARE was involved); they are conservatively counted as not
/// covered, never as successes (paper §5.2's exactness claim).
#[test]
fn recovery_never_introduces_sdc() {
    let w = workloads::hpccg::default();
    for level in [OptLevel::O0, OptLevel::O1] {
        let app = care::compile(&w.module, level);
        let campaign = Campaign::prepare(&w, app, vec![]);
        let report = campaign.run(&CampaignConfig {
            injections: n_injections(150),
            evaluate_care: true,
            app_only: true,
            seed: 0x5DC,
            ..CampaignConfig::default()
        });
        // Covered implies bit-clean by construction; the dual-use residue is
        // explicitly tracked and must stay a small minority of repairs.
        let repaired = report.care_covered + report.care_survived_with_sdc;
        assert!(report.care_covered > 0, "{level}: no covered runs");
        assert!(
            (report.care_survived_with_sdc as f64) <= 0.25 * repaired as f64,
            "{level}: dual-use SDC residue too large: {} of {repaired}",
            report.care_survived_with_sdc
        );
    }
}

/// The §2 campaign invariants hold on the real workloads: SIGSEGV is the
/// dominant soft-failure symptom and most failures manifest fast.
#[test]
fn manifestation_shape_matches_paper() {
    let w = workloads::minife::default();
    let app = care::compile(&w.module, OptLevel::O0);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let r = campaign.run(&CampaignConfig {
        injections: n_injections(200),
        seed: 2,
        ..Default::default()
    });
    assert!(r.soft_failure > 0);
    assert!(
        r.signals[0] as f64 >= 0.6 * r.soft_failure as f64,
        "SIGSEGV must dominate: {:?}",
        r.signals
    );
    assert!(
        r.latency_fraction_within(400) >= 0.8,
        "latencies: {:?}",
        r.latency_buckets
    );
}

/// Outcome classification is exhaustive and consistent.
#[test]
fn campaign_accounting_is_consistent() {
    let w = workloads::comd::default();
    let app = care::compile(&w.module, OptLevel::O0);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let r = campaign.run(&CampaignConfig {
        injections: n_injections(100),
        seed: 3,
        keep_records: true,
        ..Default::default()
    });
    assert_eq!(
        r.total(),
        r.records.len(),
        "every record lands in exactly one outcome bucket"
    );
    let segv_records = r
        .records
        .iter()
        .filter(|rec| rec.outcome == Outcome::SoftFailure(Signal::Segv))
        .count();
    assert_eq!(segv_records, r.signals[0]);
}
