//! Property-based tests over the core substrates: random programs are
//! generated with the builder, then checked against the invariants the
//! pipeline relies on — printer/parser round-trip, interpreter ⟷ machine
//! equivalence at both optimisation levels, and recovery-kernel semantic
//! correctness.

use opt::OptLevel;
use proptest::prelude::*;
use tinyir::builder::{FuncBuilder, ModuleBuilder};
use tinyir::{BinOp, CastOp, ICmp, Module, Ty, Value};

/// A recipe for one random straight-line/looped program.
#[derive(Clone, Debug)]
struct ProgramSpec {
    ops: Vec<OpSpec>,
    loop_trip: u8,
    array_len: u8,
}

#[derive(Clone, Debug)]
enum OpSpec {
    /// acc = acc <op> (iv + k)
    IntOp(BinOp, i8),
    /// facc = facc <op> const
    FloatOp(BinOp, i16),
    /// store/load round-trip at (iv*a + b) % len
    Mem(u8, u8),
    /// acc = select(acc < k, acc*3, acc-1)
    Select(i8),
    /// facc += sqrt(|facc|)
    Sqrt,
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::And),
                Just(BinOp::Or),
                Just(BinOp::Xor),
                Just(BinOp::Shl),
                Just(BinOp::LShr),
            ],
            any::<i8>()
        )
            .prop_map(|(op, k)| OpSpec::IntOp(op, k)),
        (
            prop_oneof![
                Just(BinOp::FAdd),
                Just(BinOp::FSub),
                Just(BinOp::FMul),
                Just(BinOp::FDiv)
            ],
            any::<i16>()
        )
            .prop_map(|(op, k)| OpSpec::FloatOp(op, k)),
        (1u8..8, any::<u8>()).prop_map(|(a, b)| OpSpec::Mem(a, b)),
        any::<i8>().prop_map(OpSpec::Select),
        Just(OpSpec::Sqrt),
    ]
}

fn spec_strategy() -> impl Strategy<Value = ProgramSpec> {
    (
        proptest::collection::vec(op_strategy(), 1..12),
        2u8..10,
        8u8..32,
    )
        .prop_map(|(ops, loop_trip, array_len)| ProgramSpec { ops, loop_trip, array_len })
}

/// Materialise the spec as a TinyIR module with one `main(i64) -> i64`.
fn build_program(spec: &ProgramSpec) -> Module {
    let mut mb = ModuleBuilder::new("prop", "prop.c");
    let arr = mb.global_zeroed("arr", Ty::I64, spec.array_len as u32);
    let len = spec.array_len as i64;
    let ops = spec.ops.clone();
    mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
        let acc = fb.alloca(Ty::I64, 1);
        let facc = fb.alloca(Ty::F64, 1);
        fb.store(fb.arg(0), acc);
        fb.store(Value::f64(1.5), facc);
        fb.for_loop(Value::i64(0), Value::i64(spec.loop_trip as i64), |fb, iv| {
            for op in &ops {
                apply_op(fb, op, acc, facc, iv, arr, len);
            }
        });
        // Fold the float accumulator into the integer result.
        let fv = fb.load(facc, Ty::F64);
        let guarded = guard_finite(fb, fv);
        let fi = fb.cast(CastOp::FpToSi, guarded, Ty::I64);
        let a = fb.load(acc, Ty::I64);
        let r = fb.add(a, fi, Ty::I64);
        fb.ret(Some(r));
    });
    mb.finish()
}

/// Clamp possibly-inf/nan floats so FpToSi stays well-defined across
/// backends.
fn guard_finite(fb: &mut FuncBuilder<'_>, v: Value) -> Value {
    let lo = fb.intrinsic(tinyir::Intrinsic::FMax, vec![v, Value::f64(-1e15)]);
    fb.intrinsic(tinyir::Intrinsic::FMin, vec![lo, Value::f64(1e15)])
}

fn apply_op(
    fb: &mut FuncBuilder<'_>,
    op: &OpSpec,
    acc: Value,
    facc: Value,
    iv: Value,
    arr: tinyir::GlobalId,
    len: i64,
) {
    match op {
        OpSpec::IntOp(bin, k) => {
            let a = fb.load(acc, Ty::I64);
            let operand = fb.add(iv, Value::i64(*k as i64), Ty::I64);
            let r = fb.bin(*bin, a, operand, Ty::I64);
            fb.store(r, acc);
        }
        OpSpec::FloatOp(bin, k) => {
            let a = fb.load(facc, Ty::F64);
            let c = Value::f64(*k as f64 / 16.0 + 0.5);
            let r = fb.bin(*bin, a, c, Ty::F64);
            fb.store(r, facc);
        }
        OpSpec::Mem(a, b) => {
            let scaled = fb.mul(iv, Value::i64(*a as i64), Ty::I64);
            let off = fb.add(scaled, Value::i64(*b as i64), Ty::I64);
            let idx = fb.srem(off, Value::i64(len), Ty::I64);
            let cur = fb.load_elem(fb.global(arr), idx, Ty::I64);
            let acc_v = fb.load(acc, Ty::I64);
            let nv = fb.add(cur, acc_v, Ty::I64);
            fb.store_elem(nv, fb.global(arr), idx, Ty::I64);
        }
        OpSpec::Select(k) => {
            let a = fb.load(acc, Ty::I64);
            let c = fb.icmp(ICmp::Slt, a, Value::i64(*k as i64));
            let t = fb.mul(a, Value::i64(3), Ty::I64);
            let f = fb.sub(a, Value::i64(1), Ty::I64);
            let r = fb.select(c, t, f, Ty::I64);
            fb.store(r, acc);
        }
        OpSpec::Sqrt => {
            let a = fb.load(facc, Ty::F64);
            let abs = fb.intrinsic(tinyir::Intrinsic::Fabs, vec![a]);
            let s = fb.sqrt(abs);
            let r = fb.fadd(a, s, Ty::F64);
            fb.store(r, facc);
        }
    }
}

fn run_interp(m: &Module, arg: u64) -> Result<Option<u64>, String> {
    let mut mem = tinyir::mem::PagedMemory::new();
    let globals = tinyir::interp::layout_globals(m, &mut mem, 0x1000_0000);
    let mut interp = tinyir::interp::Interp::new(
        m,
        &mut mem,
        &globals,
        0x7f00_0000_0000,
        0x7f00_0100_0000,
        0x6000_0000_0000,
        50_000_000,
    );
    interp
        .call(m.func_by_name("main").unwrap(), &[arg])
        .map_err(|e| format!("{e:?}"))
}

fn run_machine(m: &Module, arg: u64, regalloc: bool) -> Result<Option<u64>, String> {
    let mm = simx::compile_module(m, regalloc, &[]);
    let mut p = simx::Process::new(mm, vec![]);
    p.start("main", &[arg]);
    match p.run() {
        simx::RunExit::Done(v) => Ok(v),
        other => Err(format!("{other:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: if cfg!(debug_assertions) { 16 } else { 48 }, ..ProptestConfig::default() })]

    /// The printer and parser round-trip every generated module exactly.
    #[test]
    fn printer_parser_round_trip(spec in spec_strategy()) {
        let m = build_program(&spec);
        let t1 = tinyir::display::print_module(&m);
        let parsed = tinyir::parser::parse_module(&t1).expect("parse");
        let t2 = tinyir::display::print_module(&parsed);
        prop_assert_eq!(t1, t2);
    }

    /// Generated modules always verify, before and after O1.
    #[test]
    fn generated_modules_verify(spec in spec_strategy(), _arg in 0u64..64) {
        let mut m = build_program(&spec);
        tinyir::verify::verify_module(&m).expect("pre-opt");
        opt::optimize(&mut m, OptLevel::O1);
        tinyir::verify::verify_module(&m).expect("post-opt");
    }

    /// Interpreter and machine agree bit-for-bit at O0 and O1.
    #[test]
    fn machine_matches_interpreter(spec in spec_strategy(), arg in 0u64..64) {
        let m = build_program(&spec);
        let golden = run_interp(&m, arg);
        prop_assert_eq!(&run_machine(&m, arg, false), &golden, "O0 codegen");

        let mut o1 = m.clone();
        opt::optimize(&mut o1, OptLevel::O1);
        prop_assert_eq!(&run_interp(&o1, arg), &golden, "O1 IR passes");
        prop_assert_eq!(&run_machine(&o1, arg, true), &golden, "O1 codegen");
    }

    /// For every kernel Armor builds, executing it with the *uncorrupted*
    /// parameter values at the protected access recomputes exactly the
    /// address the access dereferences (the paper's §5.2 exactness claim).
    #[test]
    fn recovery_kernels_recompute_exact_addresses(spec in spec_strategy(), arg in 0u64..32) {
        let mut m = build_program(&spec);
        opt::optimize(&mut m, OptLevel::O1);
        let app = care::compile(&m, OptLevel::O1);
        if app.armor.stats.num_kernels == 0 {
            return Ok(());
        }
        // Run under protection with NO faults: zero activations, exact
        // result — Safeguard must be invisible.
        let (mut p, mut sg) = care::protected_process(&app, &[]);
        p.start("main", &[arg]);
        let golden = run_interp(&m, arg);
        match safeguard::run_protected(&mut p, &mut sg, 4) {
            safeguard::ProtectedExit::Completed { result, recoveries, .. } => {
                prop_assert_eq!(recoveries, 0);
                prop_assert_eq!(Ok(result), golden);
            }
            other => prop_assert!(false, "unexpected exit: {:?}", other),
        }
    }

    /// Armor's terminal-value invariant (paper §3.2): every extracted kernel
    /// parameter is live per `analysis::liveness` at the faulting
    /// instruction — or is materialised storage / folded into the access's
    /// own machine address operand. A parameter that fails this may sit in a
    /// reused register at recovery time and feed garbage into the kernel.
    /// Uses the carefuzz generator, whose programs are much gnarlier (real
    /// diamonds, nested loops, inlined helpers) than this file's.
    #[test]
    fn armor_kernel_params_are_live_at_the_access(seed in 0u64..2048) {
        let spec = carefuzz::spec::ProgramSpec::generate(seed);
        let mut oir = carefuzz::spec::build(&spec);
        opt::optimize(&mut oir, OptLevel::O1);
        let out = armor::run_armor(&oir);
        if let Some(d) = carefuzz::oracle::liveness_check(&oir, &out) {
            prop_assert!(false, "seed {}: {}", seed, d);
        }
    }
}
