//! Integration tests for the content-addressed record store: warm
//! re-runs, kill + resume and residual planning must all reproduce a
//! fresh full run bit for bit, across schedulers and engines.
//!
//! The determinism these tests pin rests on faultsim's per-index record
//! independence (record `i` depends only on `(seed, i)`), which makes
//! executing a residual subset produce exactly the records a full run
//! would have at those indexes.

use carestore::{campaign_key, CampaignKey, Store};
use faultsim::{Campaign, CampaignConfig, EngineKind, FaultModel, JobControl, Scheduler};
use opt::OptLevel;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use telemetry::NoTelemetry;

/// A unique scratch directory per call (tests in this binary run in
/// parallel; proptest cases reuse the counter for distinct dirs too).
fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "care-store-it-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Fixture {
    campaign: Campaign,
    key: CampaignKey,
}

/// One prepared campaign shared by every test and proptest case —
/// `Campaign::prepare` (compile + golden run + checkpoints) dominates the
/// cost of these tests, and the campaign itself is immutable.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let w = workloads::hpccg::build(2, 2);
        let app = care::compile(&w.module, OptLevel::O1);
        let key = campaign_key(&w.module, w.entry, &w.args, &w.outputs, "O1");
        let campaign = Campaign::prepare(&w, app, vec![]);
        Fixture { campaign, key }
    })
}

fn cfg(injections: usize, seed: u64, scheduler: Scheduler, engine: EngineKind) -> CampaignConfig {
    CampaignConfig {
        injections,
        model: FaultModel::SingleBit,
        seed,
        evaluate_care: true,
        app_only: true,
        scheduler,
        engine,
        ..CampaignConfig::default()
    }
}

/// Keep the log's leading run header plus its first `keep` record lines —
/// the on-disk image of a process killed at a record boundary (the
/// `complete` marker never made it out either).
fn truncated_log(text: &str, keep: usize) -> String {
    let mut out = String::new();
    let mut kept = 0;
    for line in text.lines() {
        if line.contains("\"kind\":\"record\"") {
            if kept == keep {
                break;
            }
            kept += 1;
        } else if line.contains("\"kind\":\"complete\"") {
            break;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn record_lines(text: &str) -> usize {
    text.lines().filter(|l| l.contains("\"kind\":\"record\"")).count()
}

#[test]
fn warm_store_rerun_is_byte_identical_and_executes_nothing() {
    let f = fixture();
    let dir = tmp_dir("warm");
    let store = Store::open(&dir).unwrap();
    let c = cfg(40, 0x57CE, Scheduler::Trellis, EngineKind::Interp);

    let cold = store
        .run_campaign(&f.key, &f.campaign, &c, &NoTelemetry, &JobControl::new())
        .expect("cold run");
    assert_eq!(cold.stats.hits, 0);
    assert_eq!(cold.stats.misses, 40);
    let log_after_cold = std::fs::read(store.log_path(&f.key)).expect("log written");

    let warm = store
        .run_campaign(&f.key, &f.campaign, &c, &NoTelemetry, &JobControl::new())
        .expect("warm run");
    assert_eq!(warm.stats.misses, 0, "warm run must execute no residual injections");
    assert_eq!(warm.stats.hits + warm.stats.known_skips, 40);
    assert_eq!(warm.report, cold.report, "warm report diverged from cold");
    assert_eq!(
        std::fs::read(store.log_path(&f.key)).expect("log still there"),
        log_after_cold,
        "a fully-warm run must not append to the log"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_mid_run_then_resume_reproduces_the_full_run() {
    let f = fixture();
    let c = cfg(40, 0x1337, Scheduler::Trellis, EngineKind::Interp);

    // The canonical answer: a cold run through its own store.
    let dir_full = tmp_dir("kill-full");
    let full = Store::open(&dir_full)
        .unwrap()
        .run_campaign(&f.key, &f.campaign, &c, &NoTelemetry, &JobControl::new())
        .expect("full run");

    // The killed run: cancel as soon as a few records have landed. The
    // exact kill point is scheduling-dependent; the resume contract must
    // hold wherever it lands.
    let dir = tmp_dir("kill");
    let store = Store::open(&dir).unwrap();
    let ctl = JobControl::new();
    let killed = std::thread::scope(|scope| {
        let watcher = scope.spawn(|| {
            while ctl.classified() < 5 && !ctl.is_cancelled() {
                std::thread::yield_now();
            }
            ctl.cancel();
        });
        let killed = store
            .run_campaign(&f.key, &f.campaign, &c, &NoTelemetry, &ctl)
            .expect("killed run");
        watcher.join().unwrap();
        killed
    });
    // The cancel races the (fast) campaign: it may land mid-run or only
    // after the last record. When it landed in time, the log must lack a
    // completion marker; either way the resume below must reconstruct the
    // uninterrupted run exactly. (Deterministic kills at every record
    // boundary are swept by the proptest in this file.)
    if killed.report.cancelled {
        let log = std::fs::read_to_string(store.log_path(&f.key)).unwrap();
        assert!(
            !log.contains("\"kind\":\"complete\""),
            "a cancelled run must not write a completion marker"
        );
    }

    let resumed = store
        .run_campaign(&f.key, &f.campaign, &c, &NoTelemetry, &JobControl::new())
        .expect("resumed run");
    assert!(!resumed.report.cancelled);
    assert_eq!(
        resumed.report, full.report,
        "resume after kill diverged from the uninterrupted run"
    );
    assert_eq!(resumed.stats.hits, record_lines(
        &std::fs::read_to_string(store.log_path(&f.key)).unwrap(),
    ) as u64 - resumed.stats.appended, "resume must reuse every record the killed run persisted");
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dir_full).unwrap();
}

/// Truncation-based resume: deterministic kill images at *every* record
/// boundary, swept across schedulers, engines and seeds by proptest below.
fn check_resume_at_boundary(
    scheduler: Scheduler,
    engine: EngineKind,
    seed: u64,
    keep_pct: usize,
) {
    let f = fixture();
    let injections = 24;
    let c = cfg(injections, seed, scheduler, engine);

    let dir_a = tmp_dir("bound-a");
    let store_a = Store::open(&dir_a).unwrap();
    let cold = store_a
        .run_campaign(&f.key, &f.campaign, &c, &NoTelemetry, &JobControl::new())
        .expect("cold run");
    let log = std::fs::read_to_string(store_a.log_path(&f.key)).expect("cold log");
    let total_records = record_lines(&log);
    let keep = total_records * keep_pct / 100;

    // Plant the kill image and resume from it.
    let dir_b = tmp_dir("bound-b");
    let store_b = Store::open(&dir_b).unwrap();
    std::fs::write(store_b.log_path(&f.key), truncated_log(&log, keep)).unwrap();
    let resumed = store_b
        .run_campaign(&f.key, &f.campaign, &c, &NoTelemetry, &JobControl::new())
        .expect("resumed run");
    assert_eq!(resumed.stats.hits, keep as u64, "every kept record must be reused");
    assert_eq!(
        resumed.stats.misses,
        (injections - keep) as u64,
        "without a complete marker, everything unrecorded is residual"
    );
    assert_eq!(
        resumed.report, cold.report,
        "resume from boundary {keep}/{total_records} diverged \
         ({scheduler:?}, {engine:?}, seed {seed:#x})"
    );

    // And the resumed store is now fully warm.
    let warm = store_b
        .run_campaign(&f.key, &f.campaign, &c, &NoTelemetry, &JobControl::new())
        .expect("warm run after resume");
    assert_eq!(warm.stats.misses, 0);
    assert_eq!(warm.report, cold.report);

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(debug_assertions) { 8 } else { 24 },
        ..ProptestConfig::default()
    })]

    #[test]
    fn resume_from_any_record_boundary_is_bit_identical(
        scheduler in prop_oneof![Just(Scheduler::Trellis), Just(Scheduler::PerInjection)],
        engine in prop_oneof![Just(EngineKind::Interp), Just(EngineKind::Compiled)],
        seed in 0u64..1u64 << 48,
        keep_pct in 0usize..=100,
    ) {
        check_resume_at_boundary(scheduler, engine, seed, keep_pct);
    }
}
