//! Replay the minimized-reproducer corpus.
//!
//! Every `.tir` under `tests/regressions/` is a program the fuzzer once
//! minimised from a real engine divergence (see the comment at the top of
//! `crates/carefuzz/examples/gen_regressions.rs` for what each one caught).
//! Each must now pass the *entire* differential oracle — if one diverges
//! again, a fixed bug has been reintroduced.
//!
//! Reproduce a failure by name:
//! `cargo run --release -p carefuzz -- --replay tests/regressions/<name>.tir`

use std::path::Path;

#[test]
fn regression_corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/regressions directory")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("tir") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let m = tinyir::parser::parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: parse error: {e}", path.display()));
        tinyir::verify::verify_module(&m)
            .unwrap_or_else(|e| panic!("{}: verify error: {e}", path.display()));
        if let Some(d) = carefuzz::oracle::check_module(&m, 0xC0FFEE) {
            panic!("{}: fixed divergence is back: {d}", path.display());
        }
        checked += 1;
    }
    assert!(checked >= 3, "expected at least 3 reproducers, found {checked}");
}
