//! Golden-equivalence regression for the campaign engine.
//!
//! The zero-copy snapshot-forking engine (Arc-shared images, paused-process
//! forking at the injection point, campaign-scoped recovery index) must be
//! an *observational no-op*: a fixed-seed campaign produces bit-identical
//! aggregates to the pre-fork engine that rebuilt and re-simulated every
//! protected run from scratch.
//!
//! The expected values below were captured from the old engine (process
//! rebuild + prefix re-simulation) with `cargo run --release --example
//! golden_capture` before the rework landed. If this test fails, the engine
//! changed observable campaign behaviour — that is a bug, not a baseline to
//! refresh. Refresh the constants only for an *intentional* semantic change
//! (new fault model, different sampling), and say so in the commit.

use faultsim::{Campaign, CampaignConfig, FaultModel, Scheduler};
use opt::OptLevel;
use proptest::prelude::*;
use safeguard::DeclineKind;
use std::sync::OnceLock;

#[test]
fn snapshot_fork_engine_matches_golden_aggregates() {
    let w = workloads::hpccg::build(3, 2);
    let app = care::compile(&w.module, OptLevel::O1);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let r = campaign.run(&CampaignConfig {
        injections: 100,
        model: FaultModel::SingleBit,
        seed: 0xCA2E,
        evaluate_care: true,
        app_only: true,
        ..CampaignConfig::default()
    });

    // Outcome classification (Table 2 aggregates).
    assert_eq!(r.total(), 100);
    assert_eq!(
        (r.benign, r.soft_failure, r.sdc, r.hang),
        (55, 10, 33, 2),
        "outcome buckets diverged from the golden engine"
    );
    // Symptom and latency breakdowns (Tables 3-4).
    assert_eq!(r.signals, [10, 0, 0, 0]);
    assert_eq!(r.latency_buckets, [8, 0, 0, 2]);
    // CARE evaluation (Figures 7 and 9): the forked protected runs must
    // see exactly the state the rebuilt-and-resimulated runs saw.
    assert_eq!(r.care_evaluated, 10);
    assert_eq!(r.care_covered, 6);
    assert_eq!(r.care_survived_with_sdc, 1);
    assert_eq!(r.total_recoveries, 7);
    assert!(
        (r.mean_recovery_ms() - 15.870184).abs() < 1e-6,
        "mean recovery time diverged: {}",
        r.mean_recovery_ms()
    );
    assert_eq!(r.declines.len(), 1);
    assert_eq!(r.declines.get(&DeclineKind::SameAddress), Some(&3));
}

/// Run one campaign with records kept, under the given scheduler.
fn run_records(
    campaign: &Campaign,
    injections: usize,
    seed: u64,
    scheduler: Scheduler,
) -> faultsim::CampaignReport {
    campaign.run(&CampaignConfig {
        injections,
        model: FaultModel::SingleBit,
        seed,
        evaluate_care: true,
        app_only: true,
        keep_records: true,
        scheduler,
        ..CampaignConfig::default()
    })
}

/// The snapshot-trellis scheduler must be an observational no-op: for every
/// workload, the per-injection records — injection point, landing site,
/// outcome, manifestation latency, per-stage step split and the full CARE
/// evaluation — are bit-identical to the per-injection engine's at the
/// benchmark seed. Only the *wall-clock shape* may differ (one shared
/// cursor pass instead of N prefix re-runs).
#[test]
fn trellis_records_match_legacy_on_all_workloads() {
    let small: Vec<(&str, workloads::Workload)> = vec![
        ("HPCCG", workloads::hpccg::build(3, 2)),
        ("CoMD", workloads::comd::build(16, 2, 1)),
        ("miniFE", workloads::minife::build(2, 2)),
        ("miniMD", workloads::minimd::build(16, 1)),
        ("GTC-P", workloads::gtcp::build(4, 2, 16, 1)),
    ];
    for (name, w) in small {
        let app = care::compile(&w.module, OptLevel::O1);
        let campaign = Campaign::prepare(&w, app, vec![]);
        let legacy = run_records(&campaign, 40, 0xCA2E, Scheduler::PerInjection);
        let trellis = run_records(&campaign, 40, 0xCA2E, Scheduler::Trellis);
        assert_eq!(
            legacy.records, trellis.records,
            "{name}: trellis records diverged from the per-injection engine"
        );
        assert_eq!(legacy.total(), 40, "{name}: injections went unclassified");
    }
}

fn tiny_campaign() -> &'static Campaign {
    static TINY: OnceLock<Campaign> = OnceLock::new();
    TINY.get_or_init(|| {
        let w = workloads::hpccg::build(2, 1);
        let app = care::compile(&w.module, OptLevel::O1);
        Campaign::prepare(&w, app, vec![])
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(debug_assertions) { 8 } else { 24 },
        ..ProptestConfig::default()
    })]

    /// Seed-independence of the trellis/legacy equivalence: any seed's
    /// record stream (sampling, outcomes, CARE results, step splits) is
    /// identical under both schedulers.
    #[test]
    fn trellis_matches_legacy_at_random_seeds(seed in any::<u64>()) {
        let campaign = tiny_campaign();
        let legacy = run_records(campaign, 20, seed, Scheduler::PerInjection);
        let trellis = run_records(campaign, 20, seed, Scheduler::Trellis);
        prop_assert_eq!(&legacy.records, &trellis.records);
    }
}
