//! Golden-equivalence regression for the campaign engine.
//!
//! The zero-copy snapshot-forking engine (Arc-shared images, paused-process
//! forking at the injection point, campaign-scoped recovery index) must be
//! an *observational no-op*: a fixed-seed campaign produces bit-identical
//! aggregates to the pre-fork engine that rebuilt and re-simulated every
//! protected run from scratch.
//!
//! The expected values below were captured from the old engine (process
//! rebuild + prefix re-simulation) with `cargo run --release --example
//! golden_capture` before the rework landed. If this test fails, the engine
//! changed observable campaign behaviour — that is a bug, not a baseline to
//! refresh. Refresh the constants only for an *intentional* semantic change
//! (new fault model, different sampling), and say so in the commit.

use faultsim::{Campaign, CampaignConfig, FaultModel};
use opt::OptLevel;
use safeguard::DeclineKind;

#[test]
fn snapshot_fork_engine_matches_golden_aggregates() {
    let w = workloads::hpccg::build(3, 2);
    let app = care::compile(&w.module, OptLevel::O1);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let r = campaign.run(&CampaignConfig {
        injections: 100,
        model: FaultModel::SingleBit,
        seed: 0xCA2E,
        evaluate_care: true,
        app_only: true,
        ..CampaignConfig::default()
    });

    // Outcome classification (Table 2 aggregates).
    assert_eq!(r.total(), 100);
    assert_eq!(
        (r.benign, r.soft_failure, r.sdc, r.hang),
        (55, 10, 33, 2),
        "outcome buckets diverged from the golden engine"
    );
    // Symptom and latency breakdowns (Tables 3-4).
    assert_eq!(r.signals, [10, 0, 0, 0]);
    assert_eq!(r.latency_buckets, [8, 0, 0, 2]);
    // CARE evaluation (Figures 7 and 9): the forked protected runs must
    // see exactly the state the rebuilt-and-resimulated runs saw.
    assert_eq!(r.care_evaluated, 10);
    assert_eq!(r.care_covered, 6);
    assert_eq!(r.care_survived_with_sdc, 1);
    assert_eq!(r.total_recoveries, 7);
    assert!(
        (r.mean_recovery_ms() - 15.870184).abs() < 1e-6,
        "mean recovery time diverged: {}",
        r.mean_recovery_ms()
    );
    assert_eq!(r.declines.len(), 1);
    assert_eq!(r.declines.get(&DeclineKind::SameAddress), Some(&3));
}
