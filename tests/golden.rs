//! Golden-equivalence regression for the campaign engine.
//!
//! The zero-copy snapshot-forking engine (Arc-shared images, paused-process
//! forking at the injection point, campaign-scoped recovery index) must be
//! an *observational no-op*: a fixed-seed campaign produces bit-identical
//! aggregates to the pre-fork engine that rebuilt and re-simulated every
//! protected run from scratch.
//!
//! The expected values below were captured from the old engine (process
//! rebuild + prefix re-simulation) with `cargo run --release --example
//! golden_capture` before the rework landed. If this test fails, the engine
//! changed observable campaign behaviour — that is a bug, not a baseline to
//! refresh. Refresh the constants only for an *intentional* semantic change
//! (new fault model, different sampling), and say so in the commit.

use faultsim::{Campaign, CampaignConfig, EngineKind, FaultModel, Scheduler};
use opt::OptLevel;
use proptest::prelude::*;
use safeguard::DeclineKind;
use std::sync::OnceLock;

#[test]
fn snapshot_fork_engine_matches_golden_aggregates() {
    let w = workloads::hpccg::build(3, 2);
    let app = care::compile(&w.module, OptLevel::O1);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let r = campaign.run(&CampaignConfig {
        injections: 100,
        model: FaultModel::SingleBit,
        seed: 0xCA2E,
        evaluate_care: true,
        app_only: true,
        ..CampaignConfig::default()
    });

    // Outcome classification (Table 2 aggregates).
    assert_eq!(r.total(), 100);
    assert_eq!(
        (r.benign, r.soft_failure, r.sdc, r.hang),
        (55, 10, 33, 2),
        "outcome buckets diverged from the golden engine"
    );
    // Symptom and latency breakdowns (Tables 3-4).
    assert_eq!(r.signals, [10, 0, 0, 0]);
    assert_eq!(r.latency_buckets, [8, 0, 0, 2]);
    // CARE evaluation (Figures 7 and 9): the forked protected runs must
    // see exactly the state the rebuilt-and-resimulated runs saw.
    assert_eq!(r.care_evaluated, 10);
    assert_eq!(r.care_covered, 6);
    assert_eq!(r.care_survived_with_sdc, 1);
    assert_eq!(r.total_recoveries, 7);
    assert!(
        (r.mean_recovery_ms() - 15.870184).abs() < 1e-6,
        "mean recovery time diverged: {}",
        r.mean_recovery_ms()
    );
    assert_eq!(r.declines.len(), 1);
    assert_eq!(r.declines.get(&DeclineKind::SameAddress), Some(&3));
}

/// Run one campaign with records kept, under the given scheduler.
fn run_records(
    campaign: &Campaign,
    injections: usize,
    seed: u64,
    scheduler: Scheduler,
) -> faultsim::CampaignReport {
    run_records_engine(campaign, injections, seed, scheduler, EngineKind::Interp)
}

/// [`run_records`] on an explicit execution backend.
fn run_records_engine(
    campaign: &Campaign,
    injections: usize,
    seed: u64,
    scheduler: Scheduler,
    engine: EngineKind,
) -> faultsim::CampaignReport {
    campaign.run(&CampaignConfig {
        injections,
        model: FaultModel::SingleBit,
        seed,
        evaluate_care: true,
        app_only: true,
        keep_records: true,
        scheduler,
        engine,
        ..CampaignConfig::default()
    })
}

/// The snapshot-trellis scheduler must be an observational no-op: for every
/// workload, the per-injection records — injection point, landing site,
/// outcome, manifestation latency, per-stage step split and the full CARE
/// evaluation — are bit-identical to the per-injection engine's at the
/// benchmark seed. Only the *wall-clock shape* may differ (one shared
/// cursor pass instead of N prefix re-runs).
#[test]
fn trellis_records_match_legacy_on_all_workloads() {
    let small: Vec<(&str, workloads::Workload)> = vec![
        ("HPCCG", workloads::hpccg::build(3, 2)),
        ("CoMD", workloads::comd::build(16, 2, 1)),
        ("miniFE", workloads::minife::build(2, 2)),
        ("miniMD", workloads::minimd::build(16, 1)),
        ("GTC-P", workloads::gtcp::build(4, 2, 16, 1)),
    ];
    for (name, w) in small {
        let app = care::compile(&w.module, OptLevel::O1);
        let campaign = Campaign::prepare(&w, app, vec![]);
        let legacy = run_records(&campaign, 40, 0xCA2E, Scheduler::PerInjection);
        let trellis = run_records(&campaign, 40, 0xCA2E, Scheduler::Trellis);
        assert_eq!(
            legacy.records, trellis.records,
            "{name}: trellis records diverged from the per-injection engine"
        );
        assert_eq!(legacy.total(), 40, "{name}: injections went unclassified");
    }
}

/// The sharded cursor pass must be an observational no-op at every pool
/// width: for every workload, a trellis campaign run at 2 and 8 threads
/// (which shards the instrumented cursor pass along the golden-run
/// checkpoint trail) produces records bit-identical to the 1-thread
/// single-cursor run. Only the wall-clock shape may differ (K concurrent
/// window walks plus fast replays instead of one long walk).
#[test]
fn sharded_trellis_matches_single_cursor_on_all_workloads() {
    let small: Vec<(&str, workloads::Workload)> = vec![
        ("HPCCG", workloads::hpccg::build(3, 2)),
        ("CoMD", workloads::comd::build(16, 2, 1)),
        ("miniFE", workloads::minife::build(2, 2)),
        ("miniMD", workloads::minimd::build(16, 1)),
        ("GTC-P", workloads::gtcp::build(4, 2, 16, 1)),
    ];
    for (name, w) in small {
        let app = care::compile(&w.module, OptLevel::O1);
        let campaign = Campaign::prepare(&w, app, vec![]);
        let single = rayon::with_threads(1, || {
            run_records(&campaign, 40, 0xCA2E, Scheduler::Trellis)
        });
        assert_eq!(single.cursor_shards, 1, "{name}: 1 thread must mean 1 shard");
        for threads in [2usize, 8] {
            let sharded = rayon::with_threads(threads, || {
                run_records(&campaign, 40, 0xCA2E, Scheduler::Trellis)
            });
            assert_eq!(
                single.records, sharded.records,
                "{name}: records diverged at {threads} threads"
            );
            assert_eq!(
                (single.steps_suffix, single.steps_care, single.trellis_snapshots),
                (sharded.steps_suffix, sharded.steps_care, sharded.trellis_snapshots),
                "{name}: step accounting diverged at {threads} threads"
            );
            assert!(
                sharded.cursor_shards <= threads,
                "{name}: more shards ({}) than threads ({threads})",
                sharded.cursor_shards
            );
        }
    }
}

/// The compiled direct-threaded engine must be an observational no-op on
/// full campaigns: for every workload, under *both* schedulers, the
/// per-injection records — injection point, landing site, outcome,
/// manifestation latency, step split and the full CARE evaluation — are
/// bit-identical to the interpreter's at the benchmark seed. This is the
/// campaign-level counterpart of the per-budget parity the simx unit tests
/// and the carefuzz `Compiled` pair check.
#[test]
fn compiled_engine_records_match_interpreter_on_all_workloads() {
    let small: Vec<(&str, workloads::Workload)> = vec![
        ("HPCCG", workloads::hpccg::build(3, 2)),
        ("CoMD", workloads::comd::build(16, 2, 1)),
        ("miniFE", workloads::minife::build(2, 2)),
        ("miniMD", workloads::minimd::build(16, 1)),
        ("GTC-P", workloads::gtcp::build(4, 2, 16, 1)),
    ];
    for (name, w) in small {
        let app = care::compile(&w.module, OptLevel::O1);
        let campaign = Campaign::prepare(&w, app, vec![]);
        for scheduler in [Scheduler::Trellis, Scheduler::PerInjection] {
            let interp =
                run_records_engine(&campaign, 40, 0xCA2E, scheduler, EngineKind::Interp);
            let compiled =
                run_records_engine(&campaign, 40, 0xCA2E, scheduler, EngineKind::Compiled);
            assert_eq!(
                interp.records, compiled.records,
                "{name} ({scheduler:?}): compiled-engine records diverged from the interpreter"
            );
            assert_eq!(
                (interp.steps_prefix, interp.steps_suffix, interp.steps_care),
                (compiled.steps_prefix, compiled.steps_suffix, compiled.steps_care),
                "{name} ({scheduler:?}): step accounting diverged"
            );
        }
    }
}

/// The committed `BENCH_campaign.json` must carry the current schema
/// version (bumped in `bench::BENCH_SCHEMA_VERSION` whenever the shape
/// changes), the telemetry sections the v2 schema introduced and the v4
/// thread sweep (per-row `threads`, pool counters and the `scaling`
/// section), plus the v5 `service` section and the v6 `store` section
/// (warm-vs-cold content-addressed store measurement). Regenerate with
/// `cargo run --release -p bench --bin repro -- bench-json --threads
/// 1,4,16` followed by `cargo run --release -p bench --bin repro -- submit
/// --bench` after an intentional schema change.
#[test]
fn committed_bench_json_matches_schema_version() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/BENCH_campaign.json"
    ))
    .expect("BENCH_campaign.json is committed at the repo root");
    let doc = telemetry::parse_json(&text).expect("BENCH_campaign.json parses");
    assert_eq!(
        doc.get("schema_version").and_then(|v| v.as_f64()),
        Some(bench::BENCH_SCHEMA_VERSION as f64),
        "BENCH_campaign.json schema_version is stale; regenerate with repro bench-json"
    );
    let tel = doc.get("telemetry").expect("v2 carries a telemetry section");
    assert_eq!(
        tel.get("schema_version").and_then(|v| v.as_f64()),
        Some(telemetry::SCHEMA_VERSION as f64),
    );
    // v4: the top-level `threads` field is the swept list, `host_cpus`
    // records the measurement host and a `scaling` section condenses the
    // sweep per (workload, engine).
    let swept: Vec<u64> = match doc.get("threads") {
        Some(telemetry::Json::Arr(ts)) => ts
            .iter()
            .map(|t| t.as_f64().expect("thread count is a number") as u64)
            .collect(),
        other => panic!("v4 threads should be an array, got {other:?}"),
    };
    assert!(!swept.is_empty(), "v4 artefact must sweep at least one thread count");
    assert!(
        doc.get("host_cpus").and_then(|v| v.as_f64()).expect("host_cpus") >= 1.0,
        "host_cpus out of range"
    );
    match doc.get("scaling") {
        Some(telemetry::Json::Arr(entries)) => {
            assert!(!entries.is_empty(), "scaling section is empty");
            for entry in entries {
                for key in ["workload", "engine"] {
                    assert!(entry.get(key).is_some(), "scaling entry missing {key:?}");
                }
                let points = match entry.get("points") {
                    Some(telemetry::Json::Arr(p)) => p,
                    other => panic!("scaling points should be an array, got {other:?}"),
                };
                assert_eq!(points.len(), swept.len(), "one scaling point per swept count");
                for p in points {
                    for key in ["threads", "injections_per_sec", "speedup", "efficiency"] {
                        let v = p.get(key).and_then(|v| v.as_f64());
                        assert!(v.is_some_and(|v| v > 0.0), "scaling point {key:?} invalid");
                    }
                }
            }
        }
        other => panic!("v4 scaling should be an array, got {other:?}"),
    }
    match doc.get("workloads") {
        Some(telemetry::Json::Arr(rows)) => {
            assert!(!rows.is_empty());
            let mut compiled_rows = 0usize;
            let mut row_threads = Vec::new();
            for row in rows {
                for key in [
                    "workload",
                    "engine",
                    "declines",
                    "tlb",
                    "recovery",
                    "workers_busy_ns",
                    "pool",
                    "cursor_shards",
                ] {
                    assert!(row.get(key).is_some(), "workload row missing {key:?}");
                }
                let t = row
                    .get("threads")
                    .and_then(|v| v.as_f64())
                    .expect("v4 row carries its thread count") as u64;
                if !row_threads.contains(&t) {
                    row_threads.push(t);
                }
                let hit = row
                    .get("tlb")
                    .and_then(|t| t.get("hit_rate"))
                    .and_then(|v| v.as_f64())
                    .expect("tlb.hit_rate");
                assert!((0.0..=1.0).contains(&hit), "hit rate {hit} out of range");
                // v3: compiled rows carry the measured speedup ratio.
                if row.get("engine").and_then(|v| v.as_str()) == Some("compiled") {
                    compiled_rows += 1;
                    let speedup = row
                        .get("speedup_vs_interp")
                        .and_then(|v| v.as_f64())
                        .expect("compiled row carries speedup_vs_interp");
                    assert!(speedup > 0.0, "speedup {speedup} out of range");
                }
            }
            assert!(
                compiled_rows > 0,
                "v3 artefact must carry compiled-engine rows"
            );
            assert_eq!(
                row_threads, swept,
                "row thread counts disagree with the top-level sweep"
            );
        }
        other => panic!("workloads should be an array, got {other:?}"),
    }
    // v5: a `service` section — jobs/s for a concurrent small-job batch
    // against the careserve campaign server, plus its queue-depth telemetry
    // and campaign-cache counters. Schema-optional, but the committed
    // artefact carries it; regenerate with `repro submit --bench` after
    // `repro bench-json`.
    let service = doc.get("service").expect("v5 committed artefact carries a service section");
    for key in ["clients", "jobs", "jobs_per_sec", "jobs_completed", "cache_hits", "cache_misses"] {
        let v = service.get(key).and_then(|v| v.as_f64());
        assert!(v.is_some_and(|v| v >= 0.0), "service {key:?} invalid: {v:?}");
    }
    assert!(
        service.get("jobs_per_sec").and_then(|v| v.as_f64()).expect("jobs_per_sec") > 0.0,
        "service batch measured no throughput"
    );
    for key in ["queue_depth", "job_ms"] {
        assert!(service.get(key).is_some(), "service section missing {key:?}");
    }
    // v6: a `store` section — one coverage campaign run cold through a
    // fresh content-addressed store and again warm. The cold run executes
    // every injection (residual fraction 1), the warm run executes none
    // (0 misses), and the two reports were asserted identical at
    // generation time.
    let st = doc.get("store").expect("v6 artefact carries a store section");
    assert!(st.get("workload").and_then(|v| v.as_str()).is_some(), "store.workload");
    let inj = st.get("injections").and_then(|v| v.as_f64()).expect("store.injections");
    assert!(inj > 0.0, "store section measured no injections");
    for (run, want_residual) in [("cold", 1.0), ("warm", 0.0)] {
        let r = st.get(run).unwrap_or_else(|| panic!("store section missing {run:?}"));
        for key in ["wall_s", "hits", "misses", "known_skips", "residual_fraction"] {
            let v = r.get(key).and_then(|v| v.as_f64());
            assert!(v.is_some_and(|v| v >= 0.0), "store.{run}.{key} invalid: {v:?}");
        }
        assert_eq!(
            r.get("residual_fraction").and_then(|v| v.as_f64()),
            Some(want_residual),
            "store.{run} residual fraction"
        );
    }
    assert_eq!(
        st.get("warm").and_then(|w| w.get("misses")).and_then(|v| v.as_f64()),
        Some(0.0),
        "warm store run must execute no residual injections"
    );
    assert!(
        st.get("warm_speedup").and_then(|v| v.as_f64()).expect("store.warm_speedup") > 0.0,
        "warm speedup out of range"
    );
    assert_eq!(
        st.get("reports_identical"),
        Some(&telemetry::Json::Bool(true)),
        "warm report diverged from cold at generation time"
    );
}

/// Telemetry must be a pure observer: running the same fixed-seed campaign
/// with a live [`telemetry::Recorder`] attached yields bit-identical
/// records to the hook-free run, and the recorder's JSONL self-validates.
#[test]
fn telemetry_recorder_does_not_perturb_campaign_records() {
    let w = workloads::hpccg::build(3, 2);
    let app = care::compile(&w.module, OptLevel::O1);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let cfg = CampaignConfig {
        injections: 40,
        model: FaultModel::SingleBit,
        seed: 0xCA2E,
        evaluate_care: true,
        app_only: true,
        keep_records: true,
        ..CampaignConfig::default()
    };
    let plain = campaign.run(&cfg);
    let rec = telemetry::Recorder::new();
    let traced = campaign.run_with_hooks(&cfg, &rec);
    assert_eq!(
        plain.records, traced.records,
        "a live recorder changed campaign behaviour"
    );
    let report = rec.drain();
    let counts = telemetry::validate_jsonl(&report.to_jsonl())
        .expect("recorder JSONL validates against its own schema");
    assert!(counts.get("counter").copied().unwrap_or(0) > 0);
    assert_eq!(
        report.counters.get("campaign.injections").copied(),
        Some(40),
        "campaign.injections counter disagrees with the config"
    );
}

fn tiny_campaign() -> &'static Campaign {
    static TINY: OnceLock<Campaign> = OnceLock::new();
    TINY.get_or_init(|| {
        let w = workloads::hpccg::build(2, 1);
        let app = care::compile(&w.module, OptLevel::O1);
        Campaign::prepare(&w, app, vec![])
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(debug_assertions) { 8 } else { 24 },
        ..ProptestConfig::default()
    })]

    /// Seed-independence of the trellis/legacy equivalence: any seed's
    /// record stream (sampling, outcomes, CARE results, step splits) is
    /// identical under both schedulers.
    #[test]
    fn trellis_matches_legacy_at_random_seeds(seed in any::<u64>()) {
        let campaign = tiny_campaign();
        let legacy = run_records(campaign, 20, seed, Scheduler::PerInjection);
        let trellis = run_records(campaign, 20, seed, Scheduler::Trellis);
        prop_assert_eq!(&legacy.records, &trellis.records);
    }

    /// Fuel/trap-state parity of the compiled engine at arbitrary seeds and
    /// hang budgets: every injection drives the engines through different
    /// trap, out-of-fuel and recovery paths, and the records — outcome,
    /// trap latencies and the CARE step split — must match the interpreter
    /// record for record. (Exhaustive per-budget parity is covered by the
    /// simx unit sweep and the carefuzz `Compiled` pair.)
    #[test]
    fn compiled_matches_interp_at_random_seeds_and_budgets(
        seed in any::<u64>(),
        hang_factor in 1u64..30,
    ) {
        let campaign = tiny_campaign();
        let cfg = CampaignConfig {
            injections: 20,
            model: FaultModel::SingleBit,
            seed,
            evaluate_care: true,
            app_only: true,
            keep_records: true,
            hang_factor,
            ..CampaignConfig::default()
        };
        let interp = campaign.run(&cfg);
        let compiled =
            campaign.run(&CampaignConfig { engine: EngineKind::Compiled, ..cfg });
        prop_assert_eq!(&interp.records, &compiled.records);
    }

    /// Shard-count independence of the sharded cursor pass: any explicit
    /// shard count (including degenerate K=1 and K far above the number of
    /// checkpoints), at any seed and hang budget, yields the exact record
    /// stream of the single-cursor walk. Exercises arbitrary window
    /// boundaries along the checkpoint trail and the dedup/home-shard
    /// assignment of repeated injection points.
    #[test]
    fn sharded_cursors_match_at_random_shard_counts(
        seed in any::<u64>(),
        shards in 2usize..9,
        hang_factor in 1u64..30,
    ) {
        let campaign = tiny_campaign();
        let cfg = CampaignConfig {
            injections: 20,
            model: FaultModel::SingleBit,
            seed,
            evaluate_care: true,
            app_only: true,
            keep_records: true,
            hang_factor,
            scheduler: Scheduler::Trellis,
            cursor_shards: Some(1),
            ..CampaignConfig::default()
        };
        let single = campaign.run(&cfg);
        let sharded =
            campaign.run(&CampaignConfig { cursor_shards: Some(shards), ..cfg });
        prop_assert_eq!(&single.records, &sharded.records);
        prop_assert_eq!(single.steps_suffix, sharded.steps_suffix);
        prop_assert_eq!(single.steps_care, sharded.steps_care);
    }
}
