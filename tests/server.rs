//! End-to-end tests of the `careserve` campaign server (ISSUE 9 golden
//! criteria): loopback jobs must be bit-identical to direct
//! [`Campaign::run`] for the five §2 workloads under concurrent clients,
//! and one server session must survive a malformed frame and a mid-job
//! client disconnect without leaking in-flight budget.

use careserve::{fetch_stats, submit, CampaignServer, JobSpec, ServerConfig, WorkloadSel};
use faultsim::{Campaign, CampaignConfig, CampaignReport, EngineKind, FaultModel, Scheduler};
use opt::OptLevel;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Run the spec locally, exactly as the server's worker does.
fn local_run(spec: &JobSpec) -> CampaignReport {
    let workload = careserve::proto::resolve_workload(&spec.workload).expect("spec resolves");
    let app = care::compile(&workload.module, spec.opt);
    let campaign = Campaign::prepare(&workload, app, vec![]);
    campaign.run(&CampaignConfig {
        injections: spec.injections,
        model: spec.model,
        seed: spec.seed,
        evaluate_care: spec.evaluate_care,
        app_only: spec.app_only,
        keep_records: spec.records,
        scheduler: spec.scheduler,
        engine: spec.engine,
        ..CampaignConfig::default()
    })
}

fn named(name: &str, params: &[i64], injections: usize) -> JobSpec {
    JobSpec {
        workload: WorkloadSel::Named { name: name.to_string(), params: params.to_vec() },
        injections,
        // Reserve one pool thread per job so several jobs are admitted at
        // once — the point of the concurrency test.
        threads: 1,
        ..JobSpec::default()
    }
}

/// An inline workload whose golden run spins long enough that a client can
/// reliably act (disconnect, send a second frame) while the job is live.
fn slow_inline_spec(iterations: i64, injections: usize) -> JobSpec {
    let mut mb = tinyir::builder::ModuleBuilder::new("slow", "slow.c");
    let out = mb.global_zeroed("out", tinyir::Ty::I64, 16);
    mb.define("main", vec![tinyir::Ty::I64], Some(tinyir::Ty::I64), |fb| {
        let acc = fb.alloca(tinyir::Ty::I64, 1);
        fb.store(tinyir::Value::i64(0), acc);
        let n = fb.arg(0);
        let outp = fb.global(out);
        fb.for_loop(tinyir::Value::i64(0), n, |fb, i| {
            let a = fb.load(acc, tinyir::Ty::I64);
            let s = fb.add(a, i, tinyir::Ty::I64);
            fb.store(s, acc);
            let slot = fb.srem(i, tinyir::Value::i64(16), tinyir::Ty::I64);
            fb.store_elem(s, outp, slot, tinyir::Ty::I64);
        });
        let r = fb.load(acc, tinyir::Ty::I64);
        fb.ret(Some(r));
    });
    JobSpec {
        workload: WorkloadSel::Inline {
            text: tinyir::display::print_module(&mb.finish()),
            args: vec![iterations as u64],
            outputs: vec![("out".to_string(), 128)],
        },
        injections,
        threads: 1,
        ..JobSpec::default()
    }
}

/// All five §2 workloads, submitted from five concurrent client threads to
/// one shared server, must return reports (records included) bit-identical
/// to a direct local `Campaign::run` of the same spec.
#[test]
fn five_workloads_over_loopback_match_local_runs_under_concurrent_clients() {
    let mut handle = CampaignServer::start(ServerConfig {
        budget_cap: 4,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = handle.addr();

    let specs = vec![
        named("hpccg", &[3, 2], 40),
        named("comd", &[], 40),
        named("minife", &[], 40),
        named("minimd", &[], 40),
        named("gtcp", &[], 40),
    ];
    let outcomes: Vec<(JobSpec, CampaignReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .into_iter()
            .map(|spec| {
                scope.spawn(move || {
                    let out = submit(addr, &spec).expect("submit");
                    (spec, out.report)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    for (spec, wire) in &outcomes {
        let local = local_run(spec);
        assert_eq!(
            wire, &local,
            "wire report for {:?} diverged from the local run",
            spec.workload
        );
        assert_eq!(wire.records.len(), local.records.len());
    }
    let stats = handle.stats();
    assert_eq!(stats.jobs_completed, 5);
    assert_eq!(stats.jobs_rejected, 0);
    assert_eq!(stats.inflight_budget, 0, "budget leaked");
    assert_eq!(stats.queue_depth, 0);
    handle.shutdown();
}

fn read_json_line(reader: &mut BufReader<TcpStream>) -> telemetry::Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read frame");
    telemetry::parse_json(line.trim()).expect("server frame parses")
}

fn frame_kind(v: &telemetry::Json) -> String {
    v.get("kind").and_then(telemetry::Json::as_str).unwrap_or("").to_string()
}

/// One server session takes a malformed frame, then a mid-job client
/// disconnect, and keeps serving: the poisoned connection still answers, the
/// abandoned job is cancelled, no budget leaks, and a fresh job afterwards
/// is still bit-identical to its local run.
#[test]
fn malformed_frame_and_mid_job_disconnect_leave_the_server_serving() {
    let mut handle = CampaignServer::start(ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    // 1. Malformed frame: typed reject, connection keeps serving.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream.write_all(b"this is not a frame\n").unwrap();
        let reject = read_json_line(&mut reader);
        assert_eq!(frame_kind(&reject), "reject");
        assert_eq!(
            reject.get("reason").and_then(telemetry::Json::as_str),
            Some("bad_json")
        );
        // Same connection, next frame: still answered.
        stream.write_all(careserve::proto::stats_request_frame().as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        assert_eq!(frame_kind(&read_json_line(&mut reader)), "stats");
    }

    // 2. Mid-job disconnect: accept the job, then vanish.
    {
        let spec = slow_inline_spec(300_000, 400);
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream.write_all(spec.to_frame().as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        assert_eq!(frame_kind(&read_json_line(&mut reader)), "accepted");
        // Drop both halves: the server sees EOF and cancels the job.
    }
    let t0 = Instant::now();
    loop {
        let stats = handle.stats();
        if stats.jobs_cancelled == 1 && stats.inflight_budget == 0 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "abandoned job never cancelled: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // 3. The same server still runs fresh jobs, still bit-identical.
    let spec = named("hpccg", &[3, 2], 30);
    let out = submit(addr, &spec).expect("post-failure submit");
    assert_eq!(out.report, local_run(&spec));
    let stats = handle.stats();
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.jobs_cancelled, 1);
    assert_eq!(stats.inflight_budget, 0, "budget leaked");
    assert_eq!(fetch_stats(addr).expect("stats").jobs_completed, 1);
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Property tests over job specs.

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    let engine = prop_oneof![Just(EngineKind::Interp), Just(EngineKind::Compiled)];
    let scheduler = prop_oneof![Just(Scheduler::Trellis), Just(Scheduler::PerInjection)];
    let model = prop_oneof![Just(FaultModel::SingleBit), Just(FaultModel::DoubleBit)];
    let opt = prop_oneof![Just(OptLevel::O0), Just(OptLevel::O1)];
    let workload = prop_oneof![
        Just(WorkloadSel::Named { name: "hpccg".to_string(), params: vec![2, 1] }),
        Just(WorkloadSel::Named { name: "hpccg".to_string(), params: vec![3, 2] }),
        Just(WorkloadSel::Named { name: "minife".to_string(), params: vec![2, 2] }),
    ];
    ((workload, any::<u64>(), 1usize..=8, engine), (scheduler, model, opt, any::<bool>())).prop_map(
        |((workload, seed, injections, engine), (scheduler, model, opt, records))| JobSpec {
            workload,
            seed,
            injections,
            engine,
            scheduler,
            model,
            opt,
            threads: 1,
            records,
            ..JobSpec::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Every spec survives the wire encoding exactly.
    #[test]
    fn job_spec_frame_round_trips(spec in arb_spec()) {
        let v = telemetry::parse_json(&spec.to_frame()).expect("frame parses");
        let back = JobSpec::from_json(&v).expect("frame decodes");
        prop_assert_eq!(back, spec);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// A served job is the local run, for arbitrary specs.
    #[test]
    fn served_jobs_match_local_runs(spec in arb_spec()) {
        // One shared server across all cases: jobs must not contaminate
        // each other through the shared caches.
        use std::sync::OnceLock;
        static SERVER: OnceLock<std::net::SocketAddr> = OnceLock::new();
        let addr = *SERVER.get_or_init(|| {
            let handle =
                CampaignServer::start(ServerConfig::default()).expect("bind loopback server");
            let addr = handle.addr();
            // Leak the handle: the server lives for the whole test binary.
            std::mem::forget(handle);
            addr
        });
        let out = submit(addr, &spec).expect("submit");
        prop_assert_eq!(out.report, local_run(&spec));
    }
}
