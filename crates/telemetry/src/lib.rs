//! # telemetry — zero-overhead observability for the CARE stack
//!
//! The paper's headline quantitative claims are *timing* claims: >98 % of a
//! recovery is preparation rather than kernel execution (§5.3), and a
//! dozens-of-milliseconds rank-0 recovery disappears into the next allreduce
//! barrier (Fig. 10). This crate turns those from single modelled numbers
//! into first-class measured artefacts — distributions, counters and a
//! machine-readable event stream — without costing the instrumented fast
//! paths anything when disabled.
//!
//! ## The hook-parameter design
//!
//! Instrumented code takes a generic `H: `[`Hooks`] parameter instead of a
//! concrete recorder. [`Hooks::ENABLED`] is an associated constant, so every
//! call site is written as
//!
//! ```ignore
//! if H::ENABLED {
//!     hooks.add("tlb.loads", stats.loads);
//! }
//! ```
//!
//! and monomorphization with [`NoTelemetry`] (`ENABLED = false`) deletes the
//! branch and its operands entirely — the disabled path compiles to exactly
//! the uninstrumented code, which is what lets `simx`'s `run_loop::<HOOKS>`
//! fast loop stay hook-free and the campaign engine claim a 0 % disabled-
//! mode regression. The enabled implementation is [`Recorder`]: per-thread
//! **shards** (uncontended mutexes reached through a thread-local cache)
//! accumulate counters, histograms and events, and [`Recorder::drain`]
//! merges them into a [`TelemetryReport`].
//!
//! ## Primitives
//!
//! * [`Histogram`] — log2-bucketed value distribution with *exact*
//!   count/sum/min/max (buckets only approximate quantiles, never moments).
//! * sharded counters — `add(name, delta)`; per-shard subtotals survive the
//!   drain, so per-worker utilization falls out of the counter design.
//! * span timers — [`timed`] measures wall-clock nanoseconds around a
//!   closure; simulated-step "time" is recorded by passing step deltas to
//!   [`Hooks::record`] (both land in histograms, distinguished by the
//!   `_ns` / `_steps` name suffix convention).
//! * two sinks — [`TelemetryReport::to_jsonl`], a versioned structured
//!   event stream (one JSON object per line, `schema_version` =
//!   [`SCHEMA_VERSION`]), and [`TelemetryReport::summary_table`], the
//!   human-readable phase-latency/counter rendering.
//!
//! The JSONL stream can be checked without serde via
//! [`schema::validate_jsonl`], which parses every line with a minimal
//! recursive-descent JSON reader and returns the per-kind line counts.

pub mod event;
pub mod hist;
pub mod recorder;
pub mod report;
pub mod schema;

pub use event::{push_json_f64, push_json_str, Event, Value};
pub use hist::Histogram;
pub use recorder::{timed, Hooks, NoTelemetry, Recorder};
pub use report::TelemetryReport;
pub use schema::{parse_json, validate_jsonl, Json};

/// Version of the JSONL event schema emitted by [`TelemetryReport::to_jsonl`].
/// Bump on any report-shape change; `tests/telemetry.rs` and the schema
/// validator pin it so changes are explicit instead of silent.
pub const SCHEMA_VERSION: u32 = 1;
