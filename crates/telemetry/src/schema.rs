//! A minimal recursive-descent JSON reader and the JSONL schema validator.
//!
//! The build container has no serde, so the schema checks (CI, tests,
//! `examples/telemetry_tour.rs`) parse with this ~150-line reader instead.
//! It accepts exactly the JSON this workspace emits — objects, arrays,
//! strings with the escapes [`Event::to_json`](crate::Event::to_json)
//! produces, numbers, booleans and null — and rejects trailing garbage.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as f64 (adequate for validation; the emitters
    /// never rely on >53-bit integer round-trips being checked here).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key-sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in our output; map them
                            // to the replacement char rather than erroring.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing at
                    // char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parse one complete JSON document, rejecting trailing non-whitespace.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after value"));
    }
    Ok(v)
}

/// Validate a telemetry JSONL stream:
///
/// * every non-empty line parses as a JSON object with a string `kind`;
/// * the first line is `kind == "meta"` and carries `schema_version` equal
///   to [`crate::SCHEMA_VERSION`];
/// * `counter` lines carry `name` + numeric `value`, `hist` lines carry
///   `name`/`count`/`sum`/`buckets`, `shard` lines carry a `counters`
///   object.
///
/// Returns the number of lines seen per `kind`.
pub fn validate_jsonl(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut first = true;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing string \"kind\"", lineno + 1))?
            .to_string();
        if first {
            if kind != "meta" {
                return Err(format!("line 1: expected kind \"meta\", got {kind:?}"));
            }
            let ver = v
                .get("schema_version")
                .and_then(Json::as_f64)
                .ok_or_else(|| "line 1: meta missing schema_version".to_string())?;
            if ver != f64::from(crate::SCHEMA_VERSION) {
                return Err(format!(
                    "line 1: schema_version {ver} != supported {}",
                    crate::SCHEMA_VERSION
                ));
            }
            first = false;
        }
        let require = |field: &str| -> Result<(), String> {
            if v.get(field).is_none() {
                Err(format!("line {}: {kind} line missing {field:?}", lineno + 1))
            } else {
                Ok(())
            }
        };
        match kind.as_str() {
            "counter" => {
                require("name")?;
                v.get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {}: counter missing numeric value", lineno + 1))?;
            }
            "hist" => {
                require("name")?;
                require("count")?;
                require("sum")?;
                require("buckets")?;
            }
            "shard" if !matches!(v.get("counters"), Some(Json::Obj(_))) => {
                return Err(format!("line {}: shard missing counters object", lineno + 1));
            }
            _ => {}
        }
        *counts.entry(kind).or_default() += 1;
    }
    if first {
        return Err("empty stream: no meta line".to_string());
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse_json(r#"{"a":[1,2.5,-3,1e3],"b":{"c":"x\n","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![
            Json::Num(1.0),
            Json::Num(2.5),
            Json::Num(-3.0),
            Json::Num(1000.0),
        ])));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} x").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse_json(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn validator_requires_meta_first() {
        let err = validate_jsonl("{\"kind\":\"counter\",\"name\":\"x\",\"value\":1}\n")
            .unwrap_err();
        assert!(err.contains("meta"), "{err}");
        assert!(validate_jsonl("").is_err());
    }

    #[test]
    fn validator_pins_schema_version() {
        let err =
            validate_jsonl("{\"kind\":\"meta\",\"schema_version\":999}\n").unwrap_err();
        assert!(err.contains("999"), "{err}");
    }

    #[test]
    fn validator_checks_per_kind_fields() {
        let meta = format!("{{\"kind\":\"meta\",\"schema_version\":{}}}\n", crate::SCHEMA_VERSION);
        let bad = format!("{meta}{{\"kind\":\"counter\",\"name\":\"x\"}}\n");
        assert!(validate_jsonl(&bad).is_err());
        let good = format!(
            "{meta}{{\"kind\":\"counter\",\"name\":\"x\",\"value\":3}}\n{{\"kind\":\"span\",\"foo\":1}}\n"
        );
        let counts = validate_jsonl(&good).unwrap();
        assert_eq!(counts["meta"], 1);
        assert_eq!(counts["counter"], 1);
        assert_eq!(counts["span"], 1);
    }
}
