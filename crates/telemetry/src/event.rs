//! Structured events for the JSONL sink.
//!
//! An [`Event`] is a flat `kind` + ordered field list, rendered as one JSON
//! object per line (hand-rolled — the build container has no serde). The
//! recorder stamps every emitted event with `t_ns`, nanoseconds since the
//! recorder was created, so event streams double as timelines (the trellis
//! queue-drain trace is exactly this).

/// A JSON-able field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with enough precision to round-trip).
    F64(f64),
    /// String (escaped on render).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One structured event: a kind plus ordered `(name, value)` fields.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Event kind (the JSONL line's `"kind"` field).
    pub kind: &'static str,
    /// Fields in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Start an event of the given kind.
    pub fn new(kind: &'static str) -> Event {
        Event { kind, fields: Vec::new() }
    }

    /// Append a field (builder style).
    pub fn field(mut self, name: &'static str, value: impl Into<Value>) -> Event {
        self.fields.push((name, value.into()));
        self
    }

    /// Render as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"kind\":");
        push_json_str(&mut s, self.kind);
        for (name, value) in &self.fields {
            s.push(',');
            push_json_str(&mut s, name);
            s.push(':');
            match value {
                Value::U64(v) => s.push_str(&v.to_string()),
                Value::I64(v) => s.push_str(&v.to_string()),
                Value::F64(v) => push_json_f64(&mut s, *v),
                Value::Str(v) => push_json_str(&mut s, v),
            }
        }
        s.push('}');
        s
    }
}

/// Escape and append a JSON string literal. Public so wire-protocol
/// builders (the campaign server's NDJSON frames) share one escaper with
/// the JSONL sink instead of growing a second, subtly different one.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite f64 as JSON (NaN/inf degrade to null, which JSON lacks
/// a number for). The `{v}` shortest-round-trip rendering parses back to
/// the identical bits, which the server's record framing relies on.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on an integral float prints no decimal point; keep it a
        // JSON number either way (both are valid), but round-trippable.
        out.push_str(&s);
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_json() {
        let e = Event::new("span")
            .field("name", "recovery.kernel")
            .field("value_ns", 1234u64)
            .field("frac", 0.5f64)
            .field("delta", -3i64);
        assert_eq!(
            e.to_json(),
            r#"{"kind":"span","name":"recovery.kernel","value_ns":1234,"frac":0.5,"delta":-3}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let e = Event::new("meta").field("note", "a\"b\\c\nd");
        assert_eq!(e.to_json(), "{\"kind\":\"meta\",\"note\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::new("x").field("v", f64::NAN);
        assert_eq!(e.to_json(), r#"{"kind":"x","v":null}"#);
    }
}
