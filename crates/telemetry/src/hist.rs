//! Log2-bucketed histograms with exact count/sum/min/max.
//!
//! A value `v` lands in bucket `bit_length(v)` (bucket 0 holds only zeros,
//! bucket `i` holds `2^(i-1) ..= 2^i - 1`), so 65 fixed buckets cover the
//! full `u64` range with ≤2x relative quantile error — the classic
//! HdrHistogram-lite trade: recording is two adds and a `leading_zeros`,
//! merging is elementwise addition, and the moments (count, sum, min, max,
//! mean) are kept exactly alongside the buckets.

/// Number of log2 buckets covering all of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// A log2-bucketed distribution of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` (used when draining per-thread shards).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Exact number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum (0 for an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (0.0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the geometric midpoint of the
    /// bucket containing the `⌈q·count⌉`-th sample, clamped to the exact
    /// min/max. ≤2x relative error by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // The exact extremes are tracked, so the endpoint quantiles can be
        // answered exactly instead of via a bucket midpoint.
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = if i == 0 {
                    0
                } else {
                    // Bucket i spans [2^(i-1), 2^i - 1]: take ~1.5 · 2^(i-1).
                    (1u64 << (i - 1)).saturating_add(1u64 << (i.saturating_sub(2)))
                };
                return mid.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(bit_length, count)` pairs — the compact form
    /// the JSONL sink serialises.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn moments_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 7, 1000, u64::MAX / 2] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 3 + 7 + 1000 + u64::MAX / 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX / 2);
    }

    #[test]
    fn bucket_boundaries() {
        let mut h = Histogram::new();
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4..8 → bucket 3.
        for v in [0u64, 1, 2, 3, 4, 7] {
            h.record(v);
        }
        let b = h.nonzero_buckets();
        assert_eq!(b, vec![(0, 1), (1, 1), (2, 2), (3, 2)]);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [5u64, 90, 1 << 40] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 17, 1 << 20] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!(p50 / 500.0 < 2.0 && 500.0 / p50 < 2.0, "p50={p50}");
        assert!(p99 / 990.0 < 2.0 && 990.0 / p99 < 2.0, "p99={p99}");
        // Extreme quantiles clamp to the exact bounds.
        assert!(h.quantile(0.0) >= 1);
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn saturating_sum_never_wraps() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
