//! The drained view of a [`Recorder`](crate::Recorder) and its two sinks:
//! a versioned JSONL event stream and a human-readable summary table.

use crate::event::{push_json_str, Event};
use crate::hist::Histogram;
use crate::SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Merged telemetry from every shard of a recorder.
///
/// `BTreeMap` keys keep both sinks deterministically ordered regardless of
/// the thread schedule that produced the shards.
#[derive(Default, Clone, Debug)]
pub struct TelemetryReport {
    /// Summed counters across all shards.
    pub counters: BTreeMap<String, u64>,
    /// Per-shard counter subtotals (one map per worker thread that recorded
    /// anything) — the per-worker utilization view.
    pub per_shard_counters: Vec<BTreeMap<String, u64>>,
    /// Merged histograms by name.
    pub hists: BTreeMap<String, Histogram>,
    /// All emitted events, sorted by their `t_ns` stamp.
    pub events: Vec<Event>,
    /// Wall-clock seconds from recorder creation to the drain.
    pub wall_s: f64,
}

impl TelemetryReport {
    /// Render the report as a JSONL string: one `meta` line, then one line
    /// per counter, shard, histogram and event. Every line carries `kind`;
    /// the `meta` line carries `schema_version` = [`SCHEMA_VERSION`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &Event::new("meta")
                .field("schema_version", u64::from(SCHEMA_VERSION))
                .field("wall_s", self.wall_s)
                .field("counters", self.counters.len())
                .field("hists", self.hists.len())
                .field("events", self.events.len())
                .field("shards", self.per_shard_counters.len())
                .to_json(),
        );
        out.push('\n');
        for (name, &value) in &self.counters {
            let mut line = String::from("{\"kind\":\"counter\",\"name\":");
            push_json_str(&mut line, name);
            let _ = write!(line, ",\"value\":{value}}}");
            out.push_str(&line);
            out.push('\n');
        }
        for (shard, counters) in self.per_shard_counters.iter().enumerate() {
            let mut line = format!("{{\"kind\":\"shard\",\"shard\":{shard},\"counters\":{{");
            for (i, (name, value)) in counters.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                push_json_str(&mut line, name);
                let _ = write!(line, ":{value}");
            }
            line.push_str("}}");
            out.push_str(&line);
            out.push('\n');
        }
        for (name, h) in &self.hists {
            let mut line = String::from("{\"kind\":\"hist\",\"name\":");
            push_json_str(&mut line, name);
            let _ = write!(
                line,
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.99),
            );
            for (i, (bit_len, n)) in h.nonzero_buckets().into_iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "[{bit_len},{n}]");
            }
            line.push_str("]}");
            out.push_str(&line);
            out.push('\n');
        }
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Render the human-readable summary: histograms first (the
    /// phase-latency table), then counters, then shard subtotals.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "telemetry summary (wall {:.3}s)", self.wall_s);
        if !self.hists.is_empty() {
            let name_w = self
                .hists
                .keys()
                .map(|k| k.len())
                .max()
                .unwrap_or(4)
                .max("span".len());
            let _ = writeln!(
                out,
                "  {:<name_w$} {:>10} {:>14} {:>12} {:>12} {:>12} {:>12}",
                "span", "count", "mean", "p50", "p99", "min", "max",
            );
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {:<name_w$} {:>10} {:>14.1} {:>12} {:>12} {:>12} {:>12}",
                    name,
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.min(),
                    h.max(),
                );
            }
        }
        if !self.counters.is_empty() {
            let name_w = self
                .counters
                .keys()
                .map(|k| k.len())
                .max()
                .unwrap_or(7)
                .max("counter".len());
            let _ = writeln!(out, "  {:<name_w$} {:>14}", "counter", "value");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<name_w$} {value:>14}");
            }
        }
        if self.per_shard_counters.len() > 1 {
            let _ = writeln!(out, "  per-worker shards:");
            for (i, counters) in self.per_shard_counters.iter().enumerate() {
                let mut parts: Vec<String> = Vec::new();
                for (name, value) in counters {
                    parts.push(format!("{name}={value}"));
                }
                let _ = writeln!(out, "    shard {i}: {}", parts.join(" "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Hooks, Recorder};
    use crate::schema::validate_jsonl;

    fn sample_report() -> TelemetryReport {
        let r = Recorder::new();
        r.add("tlb.loads", 100);
        r.add("tlb.read_misses", 3);
        r.record("recovery.kernel_ns", 12_000);
        r.record("recovery.kernel_ns", 15_000);
        r.emit(|| Event::new("job").field("workload", "HPCCG").field("step", 42u64));
        r.drain()
    }

    #[test]
    fn jsonl_has_meta_first_and_validates() {
        let rep = sample_report();
        let jsonl = rep.to_jsonl();
        let first = jsonl.lines().next().unwrap();
        assert!(first.contains("\"kind\":\"meta\""));
        assert!(first.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
        let counts = validate_jsonl(&jsonl).unwrap();
        assert_eq!(counts.get("meta"), Some(&1));
        assert_eq!(counts.get("counter"), Some(&2));
        assert_eq!(counts.get("hist"), Some(&1));
        assert_eq!(counts.get("job"), Some(&1));
    }

    #[test]
    fn summary_table_mentions_every_name() {
        let rep = sample_report();
        let table = rep.summary_table();
        assert!(table.contains("recovery.kernel_ns"));
        assert!(table.contains("tlb.loads"));
        assert!(table.contains("tlb.read_misses"));
    }

    #[test]
    fn empty_report_renders() {
        let rep = TelemetryReport::default();
        let jsonl = rep.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        validate_jsonl(&jsonl).unwrap();
        assert!(rep.summary_table().contains("telemetry summary"));
    }
}
