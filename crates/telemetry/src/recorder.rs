//! The hook trait and its two implementations: the compiled-away
//! [`NoTelemetry`] and the sharded [`Recorder`].
//!
//! # Why a generic parameter and not a field
//!
//! Instrumented functions take `hooks: &H` with `H: Hooks` and guard every
//! telemetry statement with `if H::ENABLED { ... }`. `ENABLED` is an
//! associated *constant*, so the `NoTelemetry` monomorphization folds the
//! guard to `if false` and dead-code-eliminates the whole block — operands,
//! `Instant::now()` calls, everything. The disabled path is not "cheap", it
//! is *absent*, which is the property the campaign-throughput acceptance
//! bar (0 % disabled-mode regression) rests on.
//!
//! # Sharding
//!
//! `Recorder` is `Clone + Sync` and is shared by reference across campaign
//! worker threads. Each thread lazily allocates a private **shard**
//! (counters + histograms + events behind a mutex only that thread ever
//! contends on) found through a thread-local cache keyed by recorder id;
//! [`Recorder::drain`](crate::Recorder::drain) merges every shard into one
//! [`TelemetryReport`](crate::TelemetryReport). Because shards are
//! per-thread, per-shard counter subtotals are per-*worker* measurements —
//! the trellis scheduler's `worker.busy_ns` utilization breakdown is just
//! the undrained view of an ordinary counter.

use crate::event::Event;
use crate::hist::Histogram;
use crate::report::TelemetryReport;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The telemetry hook surface instrumented code is generic over.
///
/// All methods have empty defaults; implementations override what they
/// support. Call sites must guard with `if H::ENABLED` so the disabled
/// monomorphization compiles away entirely (see module docs).
pub trait Hooks: Sync {
    /// Monomorphization switch: `false` deletes every guarded call site.
    const ENABLED: bool;

    /// Add `delta` to the named counter.
    #[inline(always)]
    fn add(&self, _name: &'static str, _delta: u64) {}

    /// Record one sample into the named histogram. By convention names end
    /// in `_ns` (wall-clock span), `_steps` (simulated-step span) or a unit
    /// suffix like `_bp` (basis points).
    #[inline(always)]
    fn record(&self, _name: &'static str, _value: u64) {}

    /// Emit a structured event. The closure is only invoked when enabled,
    /// so building the event costs nothing in the disabled build.
    #[inline(always)]
    fn emit(&self, _make: impl FnOnce() -> Event) {}
}

/// The disabled hooks: every call site guarded by `Self::ENABLED`
/// monomorphizes to nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoTelemetry;

impl Hooks for NoTelemetry {
    const ENABLED: bool = false;
}

/// Hooks pass through shared references, so `&H` is as good as `H`.
impl<H: Hooks> Hooks for &H {
    const ENABLED: bool = H::ENABLED;

    #[inline(always)]
    fn add(&self, name: &'static str, delta: u64) {
        (*self).add(name, delta);
    }

    #[inline(always)]
    fn record(&self, name: &'static str, value: u64) {
        (*self).record(name, value);
    }

    #[inline(always)]
    fn emit(&self, make: impl FnOnce() -> Event) {
        (*self).emit(make);
    }
}

/// Time `f` and record the elapsed wall-clock nanoseconds into `name`
/// (which should end in `_ns`). With `H::ENABLED == false` this inlines to
/// a plain call to `f` — no clock reads.
#[inline(always)]
pub fn timed<H: Hooks, R>(hooks: &H, name: &'static str, f: impl FnOnce() -> R) -> R {
    if H::ENABLED {
        let t0 = Instant::now();
        let r = f();
        hooks.record(name, t0.elapsed().as_nanos() as u64);
        r
    } else {
        f()
    }
}

/// One thread's private accumulation state. The mutexes exist only so the
/// draining thread can read concurrently with the owner; the owner never
/// contends with itself.
#[derive(Default)]
struct Shard {
    counters: Mutex<HashMap<&'static str, u64>>,
    hists: Mutex<HashMap<&'static str, Histogram>>,
    events: Mutex<Vec<Event>>,
}

struct RecorderInner {
    /// Distinguishes recorders in the thread-local shard cache (Arc
    /// addresses can be reused; this never is).
    id: u64,
    /// Creation instant — the zero of every stamped `t_ns`.
    start: Instant,
    /// Every shard ever handed to a thread (shards outlive their threads).
    shards: Mutex<Vec<Arc<Shard>>>,
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of (recorder id → this thread's shard). Linear
    /// scan: a process holds a handful of live recorders at most.
    static SHARD_CACHE: RefCell<Vec<(u64, Arc<Shard>)>> = const { RefCell::new(Vec::new()) };
}

/// The enabled [`Hooks`] implementation: sharded per-thread accumulation,
/// merged on [`Recorder::drain`].
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh recorder; `t_ns` stamps count from this moment.
    pub fn new() -> Recorder {
        Recorder {
            inner: Arc::new(RecorderInner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
                shards: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Nanoseconds since the recorder was created.
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.start.elapsed().as_nanos() as u64
    }

    /// The calling thread's shard, creating and registering it on first use.
    fn shard(&self) -> Arc<Shard> {
        SHARD_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, s)) = cache.iter().find(|(id, _)| *id == self.inner.id) {
                return Arc::clone(s);
            }
            let shard = Arc::new(Shard::default());
            self.inner.shards.lock().unwrap().push(Arc::clone(&shard));
            cache.push((self.inner.id, Arc::clone(&shard)));
            shard
        })
    }

    /// Merge every shard into a report. Non-destructive: the recorder keeps
    /// accumulating, and a later drain sees the union again.
    pub fn drain(&self) -> TelemetryReport {
        let shards = self.inner.shards.lock().unwrap();
        let mut report = TelemetryReport {
            wall_s: self.inner.start.elapsed().as_secs_f64(),
            ..TelemetryReport::default()
        };
        for shard in shards.iter() {
            let counters = shard.counters.lock().unwrap();
            if !counters.is_empty() {
                let mut per_shard: Vec<(String, u64)> = Vec::new();
                for (&name, &v) in counters.iter() {
                    *report.counters.entry(name.to_string()).or_default() += v;
                    per_shard.push((name.to_string(), v));
                }
                per_shard.sort();
                report.per_shard_counters.push(per_shard.into_iter().collect());
            }
            for (&name, h) in shard.hists.lock().unwrap().iter() {
                report
                    .hists
                    .entry(name.to_string())
                    .or_default()
                    .merge(h);
            }
            report.events.extend(shard.events.lock().unwrap().iter().cloned());
        }
        // Shard iteration order is registration order (thread-schedule
        // dependent); sort events by stamp so the stream reads as a
        // timeline regardless.
        report.events.sort_by_key(|e| {
            e.fields
                .iter()
                .find(|(n, _)| *n == "t_ns")
                .and_then(|(_, v)| match v {
                    crate::event::Value::U64(t) => Some(*t),
                    _ => None,
                })
                .unwrap_or(0)
        });
        report
    }
}

impl Hooks for Recorder {
    const ENABLED: bool = true;

    fn add(&self, name: &'static str, delta: u64) {
        let shard = self.shard();
        *shard.counters.lock().unwrap().entry(name).or_default() += delta;
    }

    fn record(&self, name: &'static str, value: u64) {
        let shard = self.shard();
        shard
            .hists
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .record(value);
    }

    fn emit(&self, make: impl FnOnce() -> Event) {
        let ev = make().field("t_ns", self.elapsed_ns());
        self.shard().events.lock().unwrap().push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hists_accumulate() {
        let r = Recorder::new();
        r.add("c", 2);
        r.add("c", 3);
        r.record("h_ns", 10);
        r.record("h_ns", 1000);
        let rep = r.drain();
        assert_eq!(rep.counters["c"], 5);
        assert_eq!(rep.hists["h_ns"].count(), 2);
        assert_eq!(rep.hists["h_ns"].sum(), 1010);
    }

    #[test]
    fn shards_merge_across_threads() {
        let r = Recorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        r.add("worker.busy_ns", 1);
                        r.record("job_ns", 7);
                    }
                });
            }
        });
        let rep = r.drain();
        assert_eq!(rep.counters["worker.busy_ns"], 400);
        assert_eq!(rep.hists["job_ns"].count(), 400);
        // Four worker threads → four shards, each with its own subtotal.
        assert_eq!(rep.per_shard_counters.len(), 4);
        let per: u64 = rep
            .per_shard_counters
            .iter()
            .map(|m| m["worker.busy_ns"])
            .sum();
        assert_eq!(per, 400);
    }

    #[test]
    fn events_are_stamped_and_time_ordered() {
        let r = Recorder::new();
        r.emit(|| Event::new("a"));
        r.emit(|| Event::new("b"));
        let rep = r.drain();
        assert_eq!(rep.events.len(), 2);
        let stamps: Vec<u64> = rep
            .events
            .iter()
            .map(|e| match e.fields.iter().find(|(n, _)| *n == "t_ns") {
                Some((_, crate::event::Value::U64(t))) => *t,
                other => panic!("missing t_ns: {other:?}"),
            })
            .collect();
        assert!(stamps[0] <= stamps[1]);
    }

    #[test]
    fn two_recorders_do_not_share_shards() {
        let a = Recorder::new();
        let b = Recorder::new();
        a.add("x", 1);
        b.add("x", 10);
        assert_eq!(a.drain().counters["x"], 1);
        assert_eq!(b.drain().counters["x"], 10);
    }

    #[test]
    fn disabled_hooks_do_nothing_and_timed_passes_through() {
        let h = NoTelemetry;
        h.add("x", 1);
        h.record("y", 2);
        h.emit(|| panic!("must not be built"));
        assert_eq!(timed(&h, "z_ns", || 42), 42);
        let r = Recorder::new();
        assert_eq!(timed(&r, "z_ns", || 42), 42);
        assert_eq!(r.drain().hists["z_ns"].count(), 1);
    }

    #[test]
    fn drain_is_non_destructive() {
        let r = Recorder::new();
        r.add("c", 1);
        assert_eq!(r.drain().counters["c"], 1);
        r.add("c", 1);
        assert_eq!(r.drain().counters["c"], 2);
    }
}
