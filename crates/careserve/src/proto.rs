//! The careserve wire protocol: versioned newline-delimited JSON.
//!
//! Every frame is one JSON object on one line, always carrying a string
//! `"kind"`. Client→server frames additionally carry `"proto"` (the
//! protocol version, [`PROTO_VERSION`]); server→client frames are implied
//! to match the version the request carried. Rendering reuses the
//! telemetry crate's hand-rolled JSON escaper ([`telemetry::push_json_str`]
//! / [`telemetry::push_json_f64`]) and parsing reuses its recursive-descent
//! reader ([`telemetry::parse_json`]) — one JSON dialect for the whole
//! workspace, no serde.
//!
//! ## Integer fidelity
//!
//! [`telemetry::Json`] holds every number as `f64`, so integers above
//! 2⁵³ would silently lose bits through a naive round-trip. The protocol
//! therefore encodes `u64` values via [`push_u64`]: plain JSON numbers
//! while exactly representable, decimal *strings* beyond that; the dual
//! decoder [`get_u64`] accepts both. `f64` payloads (modelled recovery
//! times) are safe as-is: the emitter's shortest-round-trip rendering
//! parses back to identical bits.
//!
//! The `u64` convention and the whole [`InjectionRecord`] field codec
//! live in [`carestore::record`] and are shared verbatim with the store's
//! on-disk record log — one encoding, so a streamed `record` frame and a
//! logged record line carry byte-identical fields and can never drift.
//!
//! ## Frame vocabulary
//!
//! Client→server: `job` (a [`JobSpec`]), `stats` (server counters).
//! Server→client, in stream order for one job: `accepted`, zero or more
//! `progress`, zero or more `record` (when the spec asks for records),
//! zero or more `telemetry` (JSONL passthrough when asked), then exactly
//! one of `report` + `done`, `failed` (worker panic), or `reject`
//! (admission/validation, with a typed [`RejectReason`]).

use carestore::record::{
    parse_decline, push_field_bool, push_field_str, push_field_u64, push_record_fields,
    record_from_json,
};
use faultsim::{CampaignReport, FaultModel, InjectionRecord, Scheduler};
use opt::OptLevel;
use safeguard::DeclineKind;
use simx::EngineKind;
use std::collections::HashMap;
use telemetry::{parse_json, push_json_f64, push_json_str, Json};
use workloads::Workload;

pub use carestore::record::{get_u64, push_u64};

/// Wire-protocol version. Mismatches are rejected with
/// [`RejectReason::UnsupportedProto`], never guessed at.
pub const PROTO_VERSION: u32 = 1;

/// Hard cap on one frame line (bytes, newline excluded). Longer lines are
/// rejected with [`RejectReason::Oversized`] and drained to the next
/// newline so the connection survives.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Cap on an inline TinyIR module's text within a job frame.
pub const MAX_MODULE_BYTES: usize = 256 << 10;

/// Cap on per-job injection count a server will accept.
pub const MAX_INJECTIONS: usize = 100_000;

/// Cap on a named workload's size parameters (keeps one job's golden run
/// bounded; the §2 defaults are far below it).
pub const MAX_WORKLOAD_PARAM: i64 = 4096;

fn get_usize(v: &Json, key: &str) -> Option<usize> {
    get_u64(v, key).map(|n| n as usize)
}

fn get_bool(v: &Json, key: &str) -> Option<bool> {
    match v.get(key)? {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn get_str<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Json::as_str)
}

fn frame_open(kind: &str) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"kind\":");
    push_json_str(&mut s, kind);
    s
}

/// Why the server refused a frame or a job. The reason travels as a stable
/// snake_case wire name; `detail` (free text) rides alongside it in the
/// `reject` frame but is never part of the contract.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// The line was not valid JSON.
    BadJson,
    /// Valid JSON, but not a recognisable frame (missing/unknown `kind`,
    /// or a field with the wrong shape).
    BadFrame,
    /// The frame's `proto` version is not [`PROTO_VERSION`].
    UnsupportedProto,
    /// The job spec doesn't resolve: unknown workload, bad params, an
    /// inline module that fails to parse, or out-of-range settings.
    BadSpec,
    /// Frame or inline module over the size cap.
    Oversized,
    /// Admission control: the bounded wait queue is full.
    QueueFull,
    /// A second job arrived on a connection whose job is still in flight.
    ClientBusy,
    /// The server is shutting down and takes no new work.
    ShuttingDown,
}

impl RejectReason {
    /// Every reason, for table-driven tests and decoding.
    pub const ALL: [RejectReason; 8] = [
        RejectReason::BadJson,
        RejectReason::BadFrame,
        RejectReason::UnsupportedProto,
        RejectReason::BadSpec,
        RejectReason::Oversized,
        RejectReason::QueueFull,
        RejectReason::ClientBusy,
        RejectReason::ShuttingDown,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::BadJson => "bad_json",
            RejectReason::BadFrame => "bad_frame",
            RejectReason::UnsupportedProto => "unsupported_proto",
            RejectReason::BadSpec => "bad_spec",
            RejectReason::Oversized => "oversized",
            RejectReason::QueueFull => "queue_full",
            RejectReason::ClientBusy => "client_busy",
            RejectReason::ShuttingDown => "shutting_down",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(s: &str) -> Option<RejectReason> {
        RejectReason::ALL.into_iter().find(|r| r.name() == s)
    }
}

/// Which program a job runs.
#[derive(Clone, PartialEq, Debug)]
pub enum WorkloadSel {
    /// One of the built-in §2 workloads by name, with optional size
    /// parameters (empty = that workload's paper-scale default).
    Named {
        /// `hpccg`, `comd`, `minife`, `minimd` or `gtcp`.
        name: String,
        /// Builder parameters, arity-checked against the workload.
        params: Vec<i64>,
    },
    /// An inline TinyIR module shipped in the job frame.
    Inline {
        /// Module text (parsed with `tinyir::parser::parse_module`).
        text: String,
        /// Raw-bit arguments for `main`.
        args: Vec<u64>,
        /// Output regions `(global, bytes)` for SDC classification.
        outputs: Vec<(String, u64)>,
    },
}

/// One campaign job as it travels over the wire.
#[derive(Clone, PartialEq, Debug)]
pub struct JobSpec {
    /// What to run.
    pub workload: WorkloadSel,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Number of injections.
    pub injections: usize,
    /// Bit-flip model.
    pub model: FaultModel,
    /// Execution backend.
    pub engine: EngineKind,
    /// Campaign scheduler.
    pub scheduler: Scheduler,
    /// Optimisation level for the compile.
    pub opt: OptLevel,
    /// Admission weight in pool threads (0 = whole pool). The job itself
    /// always runs on the shared process-wide pool; this is the slice of
    /// it the job *reserves* against the server's in-flight cap.
    pub threads: usize,
    /// Evaluate SIGSEGV injections under CARE.
    pub evaluate_care: bool,
    /// Restrict injections to the executable module.
    pub app_only: bool,
    /// Stream every `InjectionRecord` back (`record` frames).
    pub records: bool,
    /// Stream the job's telemetry JSONL back (`telemetry` frames).
    pub telemetry: bool,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            workload: WorkloadSel::Named { name: "hpccg".to_string(), params: vec![3, 2] },
            seed: 0xCA2E,
            injections: 40,
            model: FaultModel::SingleBit,
            engine: EngineKind::Interp,
            scheduler: Scheduler::Trellis,
            opt: OptLevel::O1,
            threads: 0,
            evaluate_care: true,
            app_only: true,
            records: true,
            telemetry: false,
        }
    }
}

fn opt_name(o: OptLevel) -> &'static str {
    match o {
        OptLevel::O0 => "O0",
        OptLevel::O1 => "O1",
    }
}

fn parse_opt(s: &str) -> Option<OptLevel> {
    match s {
        "O0" | "o0" => Some(OptLevel::O0),
        "O1" | "o1" => Some(OptLevel::O1),
        _ => None,
    }
}

impl JobSpec {
    /// Render the `job` frame (no trailing newline).
    pub fn to_frame(&self) -> String {
        let mut s = frame_open("job");
        push_field_u64(&mut s, "proto", PROTO_VERSION as u64);
        match &self.workload {
            WorkloadSel::Named { name, params } => {
                push_field_str(&mut s, "workload", name);
                s.push_str(",\"params\":[");
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&p.to_string());
                }
                s.push(']');
            }
            WorkloadSel::Inline { text, args, outputs } => {
                push_field_str(&mut s, "workload", "inline");
                push_field_str(&mut s, "module", text);
                s.push_str(",\"args\":[");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_u64(&mut s, *a);
                }
                s.push_str("],\"outputs\":[");
                for (i, (name, bytes)) in outputs.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('[');
                    push_json_str(&mut s, name);
                    s.push(',');
                    push_u64(&mut s, *bytes);
                    s.push(']');
                }
                s.push(']');
            }
        }
        push_field_u64(&mut s, "seed", self.seed);
        push_field_u64(&mut s, "injections", self.injections as u64);
        push_field_str(&mut s, "model", self.model.name());
        push_field_str(&mut s, "engine", self.engine.name());
        push_field_str(&mut s, "scheduler", self.scheduler.name());
        push_field_str(&mut s, "opt", opt_name(self.opt));
        push_field_u64(&mut s, "threads", self.threads as u64);
        push_field_bool(&mut s, "evaluate_care", self.evaluate_care);
        push_field_bool(&mut s, "app_only", self.app_only);
        push_field_bool(&mut s, "records", self.records);
        push_field_bool(&mut s, "telemetry", self.telemetry);
        s.push('}');
        s
    }

    /// Decode and validate a parsed `job` frame. The error pairs the
    /// typed reason with human-readable detail for the `reject` frame.
    pub fn from_json(v: &Json) -> Result<JobSpec, (RejectReason, String)> {
        let bad = |msg: &str| (RejectReason::BadFrame, msg.to_string());
        let spec = |msg: String| (RejectReason::BadSpec, msg);
        match get_u64(v, "proto") {
            Some(p) if p == PROTO_VERSION as u64 => {}
            Some(p) => {
                return Err((
                    RejectReason::UnsupportedProto,
                    format!("proto {p} (this server speaks {PROTO_VERSION})"),
                ))
            }
            None => return Err(bad("missing numeric \"proto\"")),
        }
        let name = get_str(v, "workload").ok_or_else(|| bad("missing string \"workload\""))?;
        let workload = if name == "inline" {
            let text = get_str(v, "module")
                .ok_or_else(|| bad("inline workload missing string \"module\""))?;
            if text.len() > MAX_MODULE_BYTES {
                return Err((
                    RejectReason::Oversized,
                    format!("inline module is {} bytes (cap {MAX_MODULE_BYTES})", text.len()),
                ));
            }
            let args = match v.get("args") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|a| match a {
                        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                        Json::Str(s) => s.parse().ok(),
                        _ => None,
                    })
                    .collect::<Option<Vec<u64>>>()
                    .ok_or_else(|| bad("non-integer entry in \"args\""))?,
                None => Vec::new(),
                _ => return Err(bad("\"args\" must be an array")),
            };
            let outputs = match v.get("outputs") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|o| match o {
                        Json::Arr(pair) if pair.len() == 2 => {
                            let name = pair[0].as_str()?;
                            let bytes = match &pair[1] {
                                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => *n as u64,
                                Json::Str(s) => s.parse().ok()?,
                                _ => return None,
                            };
                            Some((name.to_string(), bytes))
                        }
                        _ => None,
                    })
                    .collect::<Option<Vec<(String, u64)>>>()
                    .ok_or_else(|| bad("\"outputs\" entries must be [name, bytes] pairs"))?,
                None => Vec::new(),
                _ => return Err(bad("\"outputs\" must be an array")),
            };
            WorkloadSel::Inline { text: text.to_string(), args, outputs }
        } else {
            let params = match v.get("params") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|p| match p {
                        Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
                        _ => None,
                    })
                    .collect::<Option<Vec<i64>>>()
                    .ok_or_else(|| bad("non-integer entry in \"params\""))?,
                None => Vec::new(),
                _ => return Err(bad("\"params\" must be an array")),
            };
            WorkloadSel::Named { name: name.to_string(), params }
        };
        let injections = get_usize(v, "injections").ok_or_else(|| bad("missing \"injections\""))?;
        if injections == 0 || injections > MAX_INJECTIONS {
            return Err(spec(format!("injections {injections} outside 1..={MAX_INJECTIONS}")));
        }
        let parse_enum = |key: &str, dflt: &str| -> Result<String, (RejectReason, String)> {
            match v.get(key) {
                Some(Json::Str(s)) => Ok(s.clone()),
                None => Ok(dflt.to_string()),
                _ => Err((RejectReason::BadFrame, format!("\"{key}\" must be a string"))),
            }
        };
        let model = parse_enum("model", "single")?
            .parse::<FaultModel>()
            .map_err(spec)?;
        let engine = parse_enum("engine", "interp")?
            .parse::<EngineKind>()
            .map_err(spec)?;
        let scheduler = parse_enum("scheduler", "trellis")?
            .parse::<Scheduler>()
            .map_err(spec)?;
        let opt = parse_opt(&parse_enum("opt", "O1")?)
            .ok_or_else(|| spec("unknown opt level (O0|O1)".to_string()))?;
        Ok(JobSpec {
            workload,
            seed: get_u64(v, "seed").unwrap_or(0xCA2E),
            injections,
            model,
            engine,
            scheduler,
            opt,
            threads: get_usize(v, "threads").unwrap_or(0),
            evaluate_care: get_bool(v, "evaluate_care").unwrap_or(true),
            app_only: get_bool(v, "app_only").unwrap_or(true),
            records: get_bool(v, "records").unwrap_or(true),
            telemetry: get_bool(v, "telemetry").unwrap_or(false),
        })
    }

    /// A stable cache key for the campaign this spec needs: everything
    /// [`faultsim::Campaign::prepare`] depends on (program + opt level),
    /// nothing it doesn't (seed, injections, engine, scheduler).
    ///
    /// The key is the canonical content-addressed [`carestore::CampaignKey`]
    /// encoding, hashed over the **resolved module's canonical printing** —
    /// not over the spec text. The old key interpolated `{params:?}` /
    /// `{args:?}` `Debug` output and the raw inline text, so two
    /// formattings of the same program got distinct keys (cache misses,
    /// split store logs) while a `Debug`-format change could silently
    /// collide or rotate every key. Resolution can fail, so this returns
    /// the same error `resolve_workload` would.
    pub fn campaign_key(&self) -> Result<String, String> {
        let w = resolve_workload(&self.workload)?;
        Ok(campaign_key_for(&w, self.opt).encode())
    }
}

/// The canonical campaign key for an already-resolved workload:
/// [`carestore::campaign_key`] over the module's canonical printing plus
/// the golden-run invocation. `.encode()` gives the `care1:...` string.
pub fn campaign_key_for(w: &Workload, opt: OptLevel) -> carestore::CampaignKey {
    carestore::campaign_key(&w.module, w.entry, &w.args, &w.outputs, opt_name(opt))
}

/// Resolve the spec's workload selector to a runnable [`Workload`].
/// Pure validation + construction — no compilation, no golden run — so
/// rejects are cheap and happen before admission.
pub fn resolve_workload(sel: &WorkloadSel) -> Result<Workload, String> {
    match sel {
        WorkloadSel::Named { name, params } => {
            if params.iter().any(|&p| !(1..=MAX_WORKLOAD_PARAM).contains(&p)) {
                return Err(format!("params {params:?} outside 1..={MAX_WORKLOAD_PARAM}"));
            }
            let arity_err = |want: usize| {
                format!("workload {name:?} takes {want} params (or none), got {}", params.len())
            };
            let p = |i: usize| params[i];
            match (name.as_str(), params.len()) {
                ("hpccg", 0) => Ok(workloads::hpccg::default()),
                ("hpccg", 2) => Ok(workloads::hpccg::build(p(0), p(1))),
                ("hpccg", _) => Err(arity_err(2)),
                ("comd", 0) => Ok(workloads::comd::default()),
                ("comd", 3) => Ok(workloads::comd::build(p(0), p(1), p(2))),
                ("comd", _) => Err(arity_err(3)),
                ("minife", 0) => Ok(workloads::minife::default()),
                ("minife", 2) => Ok(workloads::minife::build(p(0), p(1))),
                ("minife", _) => Err(arity_err(2)),
                ("minimd", 0) => Ok(workloads::minimd::default()),
                ("minimd", 2) => Ok(workloads::minimd::build(p(0), p(1))),
                ("minimd", _) => Err(arity_err(2)),
                ("gtcp", 0) => Ok(workloads::gtcp::default()),
                ("gtcp", 4) => Ok(workloads::gtcp::build(p(0), p(1), p(2), p(3))),
                ("gtcp", _) => Err(arity_err(4)),
                (other, _) => {
                    Err(format!("unknown workload {other:?} (hpccg|comd|minife|minimd|gtcp|inline)"))
                }
            }
        }
        WorkloadSel::Inline { text, args, outputs } => {
            let module = tinyir::parser::parse_module(text)
                .map_err(|e| format!("inline module: {e}"))?;
            if !module.funcs.iter().any(|f| f.name == "main") {
                return Err("inline module has no \"main\"".to_string());
            }
            Ok(Workload {
                name: "inline",
                module,
                entry: "main",
                args: args.clone(),
                outputs: outputs.clone(),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Server→client frames.

/// `accepted` frame.
pub fn accepted_frame(job_id: u64) -> String {
    let mut s = frame_open("accepted");
    push_field_u64(&mut s, "job_id", job_id);
    s.push('}');
    s
}

/// `reject` frame.
pub fn reject_frame(reason: RejectReason, detail: &str) -> String {
    let mut s = frame_open("reject");
    push_field_str(&mut s, "reason", reason.name());
    push_field_str(&mut s, "detail", detail);
    s.push('}');
    s
}

/// `progress` frame: injections classified so far out of the requested
/// total (the classified count can end below the total — unfired points
/// yield no record, exactly as in local runs).
pub fn progress_frame(job_id: u64, classified: u64, total: u64) -> String {
    let mut s = frame_open("progress");
    push_field_u64(&mut s, "job_id", job_id);
    push_field_u64(&mut s, "classified", classified);
    push_field_u64(&mut s, "total", total);
    s.push('}');
    s
}

/// `telemetry` frame: one JSONL line of the job's telemetry stream,
/// shipped verbatim as a string payload.
pub fn telemetry_frame(job_id: u64, line: &str) -> String {
    let mut s = frame_open("telemetry");
    push_field_u64(&mut s, "job_id", job_id);
    push_field_str(&mut s, "line", line);
    s.push('}');
    s
}

/// `failed` frame (worker panic; the server keeps serving).
pub fn failed_frame(job_id: u64, detail: &str) -> String {
    let mut s = frame_open("failed");
    push_field_u64(&mut s, "job_id", job_id);
    push_field_str(&mut s, "detail", detail);
    s.push('}');
    s
}

/// `done` frame: end of one job's stream.
pub fn done_frame(job_id: u64) -> String {
    let mut s = frame_open("done");
    push_field_u64(&mut s, "job_id", job_id);
    s.push('}');
    s
}

// ---------------------------------------------------------------------------
// InjectionRecord round-trip.

/// Encode one record as a `record` frame. Exact: every integer goes
/// through [`push_u64`], every float through the shortest-round-trip
/// renderer, so [`decode_record`] reproduces the record bit for bit. The
/// field layout is [`carestore::record::push_record_fields`] — the same
/// bytes the store appends to its log.
pub fn encode_record(job_id: u64, r: &InjectionRecord) -> String {
    let mut s = frame_open("record");
    push_field_u64(&mut s, "job_id", job_id);
    push_record_fields(&mut s, r);
    s.push('}');
    s
}

/// Decode a `record` frame produced by [`encode_record`].
pub fn decode_record(v: &Json) -> Result<InjectionRecord, String> {
    record_from_json(v)
}

// ---------------------------------------------------------------------------
// CampaignReport round-trip (aggregates only; records travel as their own
// frames and are re-attached by the client).

/// Encode the aggregate report as a `report` frame.
pub fn encode_report(job_id: u64, r: &CampaignReport) -> String {
    let mut s = frame_open("report");
    push_field_u64(&mut s, "job_id", job_id);
    push_field_u64(&mut s, "benign", r.benign as u64);
    push_field_u64(&mut s, "soft_failure", r.soft_failure as u64);
    push_field_u64(&mut s, "sdc", r.sdc as u64);
    push_field_u64(&mut s, "hang", r.hang as u64);
    s.push_str(",\"signals\":[");
    for (i, n) in r.signals.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_u64(&mut s, *n as u64);
    }
    s.push_str("],\"latency_buckets\":[");
    for (i, n) in r.latency_buckets.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_u64(&mut s, *n as u64);
    }
    s.push(']');
    push_field_u64(&mut s, "care_evaluated", r.care_evaluated as u64);
    push_field_u64(&mut s, "care_covered", r.care_covered as u64);
    push_field_u64(&mut s, "care_survived_with_sdc", r.care_survived_with_sdc as u64);
    s.push_str(",\"recovery_times_ms\":[");
    for (i, t) in r.recovery_times_ms.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_json_f64(&mut s, *t);
    }
    s.push(']');
    push_field_u64(&mut s, "total_recoveries", r.total_recoveries);
    s.push_str(",\"declines\":{");
    // Deterministic frame bytes: emit in DeclineKind::ALL order.
    let mut first = true;
    for kind in DeclineKind::ALL {
        if let Some(&n) = r.declines.get(&kind) {
            if !first {
                s.push(',');
            }
            first = false;
            push_json_str(&mut s, kind.short_name());
            s.push(':');
            push_u64(&mut s, n as u64);
        }
    }
    s.push('}');
    push_field_u64(&mut s, "simulated_steps", r.simulated_steps);
    push_field_u64(&mut s, "steps_prefix", r.steps_prefix);
    push_field_u64(&mut s, "steps_suffix", r.steps_suffix);
    push_field_u64(&mut s, "steps_care", r.steps_care);
    push_field_u64(&mut s, "trellis_snapshots", r.trellis_snapshots as u64);
    push_field_u64(&mut s, "cursor_shards", r.cursor_shards as u64);
    push_field_bool(&mut s, "cancelled", r.cancelled);
    s.push('}');
    s
}

/// Decode a `report` frame into a [`CampaignReport`] with empty `records`
/// (the caller re-attaches the streamed record frames).
pub fn decode_report(v: &Json) -> Result<CampaignReport, String> {
    let want = |key: &str| format!("report frame missing {key:?}");
    let arr4 = |key: &str| -> Result<[usize; 4], String> {
        match v.get(key) {
            Some(Json::Arr(items)) if items.len() == 4 => {
                let mut out = [0usize; 4];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = match item {
                        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => *n as usize,
                        Json::Str(s) => s.parse().map_err(|_| want(key))?,
                        _ => return Err(want(key)),
                    };
                }
                Ok(out)
            }
            _ => Err(want(key)),
        }
    };
    let recovery_times_ms = match v.get("recovery_times_ms") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|t| t.as_f64())
            .collect::<Option<Vec<f64>>>()
            .ok_or_else(|| want("recovery_times_ms"))?,
        _ => return Err(want("recovery_times_ms")),
    };
    let mut declines = HashMap::new();
    match v.get("declines") {
        Some(Json::Obj(map)) => {
            for (name, count) in map {
                let kind = parse_decline(name)
                    .ok_or_else(|| format!("unknown decline kind {name:?}"))?;
                let n = match count {
                    Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => *x as usize,
                    Json::Str(s) => s.parse().map_err(|_| want("declines"))?,
                    _ => return Err(want("declines")),
                };
                declines.insert(kind, n);
            }
        }
        _ => return Err(want("declines")),
    }
    Ok(CampaignReport {
        benign: get_usize(v, "benign").ok_or_else(|| want("benign"))?,
        soft_failure: get_usize(v, "soft_failure").ok_or_else(|| want("soft_failure"))?,
        sdc: get_usize(v, "sdc").ok_or_else(|| want("sdc"))?,
        hang: get_usize(v, "hang").ok_or_else(|| want("hang"))?,
        signals: arr4("signals")?,
        latency_buckets: arr4("latency_buckets")?,
        care_evaluated: get_usize(v, "care_evaluated").ok_or_else(|| want("care_evaluated"))?,
        care_covered: get_usize(v, "care_covered").ok_or_else(|| want("care_covered"))?,
        care_survived_with_sdc: get_usize(v, "care_survived_with_sdc")
            .ok_or_else(|| want("care_survived_with_sdc"))?,
        recovery_times_ms,
        total_recoveries: get_u64(v, "total_recoveries").ok_or_else(|| want("total_recoveries"))?,
        declines,
        simulated_steps: get_u64(v, "simulated_steps").ok_or_else(|| want("simulated_steps"))?,
        steps_prefix: get_u64(v, "steps_prefix").ok_or_else(|| want("steps_prefix"))?,
        steps_suffix: get_u64(v, "steps_suffix").ok_or_else(|| want("steps_suffix"))?,
        steps_care: get_u64(v, "steps_care").ok_or_else(|| want("steps_care"))?,
        trellis_snapshots: get_usize(v, "trellis_snapshots")
            .ok_or_else(|| want("trellis_snapshots"))?,
        cursor_shards: get_usize(v, "cursor_shards").ok_or_else(|| want("cursor_shards"))?,
        cancelled: get_bool(v, "cancelled").unwrap_or(false),
        records: Vec::new(),
    })
}

// ---------------------------------------------------------------------------
// Server stats.

/// A snapshot of the server's counters, as served by the `stats` frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs admitted (sent `accepted`).
    pub jobs_accepted: u64,
    /// Frames/jobs refused with a `reject`.
    pub jobs_rejected: u64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// Jobs whose worker panicked (`failed` frame sent).
    pub jobs_failed: u64,
    /// Jobs cancelled by client disconnect or server shutdown.
    pub jobs_cancelled: u64,
    /// Jobs currently waiting for budget.
    pub queue_depth: u64,
    /// Thread budget currently reserved by running jobs.
    pub inflight_budget: u64,
    /// The server's global budget cap (pool width by default).
    pub budget_cap: u64,
    /// Prepared-campaign cache hits across all jobs.
    pub cache_hits: u64,
    /// Prepared-campaign cache misses (prepares actually run).
    pub cache_misses: u64,
    /// Prepared campaigns evicted from the bounded cache (LRU order).
    pub cache_evictions: u64,
    /// `record` frames streamed to clients.
    pub records_streamed: u64,
}

/// Field names of the `stats` frame, in emission order.
const STATS_FIELDS: [&str; 12] = [
    "jobs_accepted",
    "jobs_rejected",
    "jobs_completed",
    "jobs_failed",
    "jobs_cancelled",
    "queue_depth",
    "inflight_budget",
    "budget_cap",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "records_streamed",
];

impl StatsSnapshot {
    fn values(&self) -> [u64; 12] {
        [
            self.jobs_accepted,
            self.jobs_rejected,
            self.jobs_completed,
            self.jobs_failed,
            self.jobs_cancelled,
            self.queue_depth,
            self.inflight_budget,
            self.budget_cap,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.records_streamed,
        ]
    }

    /// Encode as a `stats` frame.
    pub fn to_frame(&self) -> String {
        let mut s = frame_open("stats");
        for (name, val) in STATS_FIELDS.iter().zip(self.values()) {
            push_field_u64(&mut s, name, val);
        }
        s.push('}');
        s
    }

    /// Decode a `stats` frame.
    pub fn from_json(v: &Json) -> Result<StatsSnapshot, String> {
        let mut vals = [0u64; 12];
        for (slot, name) in vals.iter_mut().zip(STATS_FIELDS) {
            *slot = get_u64(v, name).ok_or_else(|| format!("stats frame missing {name:?}"))?;
        }
        let [jobs_accepted, jobs_rejected, jobs_completed, jobs_failed, jobs_cancelled, queue_depth, inflight_budget, budget_cap, cache_hits, cache_misses, cache_evictions, records_streamed] =
            vals;
        Ok(StatsSnapshot {
            jobs_accepted,
            jobs_rejected,
            jobs_completed,
            jobs_failed,
            jobs_cancelled,
            queue_depth,
            inflight_budget,
            budget_cap,
            cache_hits,
            cache_misses,
            cache_evictions,
            records_streamed,
        })
    }
}

/// The `stats` request frame.
pub fn stats_request_frame() -> String {
    let mut s = frame_open("stats");
    push_field_u64(&mut s, "proto", PROTO_VERSION as u64);
    s.push('}');
    s
}

/// Parse one frame line into its JSON value, classifying parse failures.
pub fn parse_frame(line: &str) -> Result<Json, (RejectReason, String)> {
    let v = parse_json(line).map_err(|e| (RejectReason::BadJson, e))?;
    if v.get("kind").and_then(Json::as_str).is_none() {
        return Err((RejectReason::BadFrame, "frame missing string \"kind\"".to_string()));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::{CareResult, InjectedInto, InjectionPoint, Outcome, Signal, StepSplit};
    use simx::ModuleId;
    use tinyir::FuncId;

    #[test]
    fn u64_fields_round_trip_above_53_bits() {
        for v in [0u64, 1, (1 << 53) - 1, 1 << 53, (1 << 53) + 1, u64::MAX] {
            let mut s = String::from("{\"kind\":\"t\"");
            push_field_u64(&mut s, "x", v);
            s.push('}');
            let j = parse_json(&s).unwrap();
            assert_eq!(get_u64(&j, "x"), Some(v), "round-trip of {v}");
        }
    }

    #[test]
    fn job_spec_round_trips_named_and_inline() {
        let named = JobSpec {
            seed: u64::MAX - 7,
            injections: 123,
            model: FaultModel::DoubleBit,
            engine: EngineKind::Compiled,
            scheduler: Scheduler::PerInjection,
            opt: OptLevel::O0,
            threads: 3,
            evaluate_care: false,
            app_only: false,
            records: false,
            telemetry: true,
            ..JobSpec::default()
        };
        let v = parse_frame(&named.to_frame()).unwrap();
        assert_eq!(JobSpec::from_json(&v).unwrap(), named);

        let inline = JobSpec {
            workload: WorkloadSel::Inline {
                text: "module \"m\"\nweird text with \"quotes\"\n".to_string(),
                args: vec![7, u64::MAX],
                outputs: vec![("out".to_string(), 64)],
            },
            ..JobSpec::default()
        };
        let v = parse_frame(&inline.to_frame()).unwrap();
        assert_eq!(JobSpec::from_json(&v).unwrap(), inline);
    }

    #[test]
    fn job_spec_rejects_are_typed() {
        let cases: Vec<(String, RejectReason)> = vec![
            // Wrong protocol version.
            (
                JobSpec::default().to_frame().replace("\"proto\":1", "\"proto\":99"),
                RejectReason::UnsupportedProto,
            ),
            // Frame-shape violation: params not an array.
            (
                "{\"kind\":\"job\",\"proto\":1,\"workload\":\"hpccg\",\"params\":3,\"injections\":1}"
                    .to_string(),
                RejectReason::BadFrame,
            ),
            // Spec violations.
            (
                "{\"kind\":\"job\",\"proto\":1,\"workload\":\"hpccg\",\"injections\":0}".to_string(),
                RejectReason::BadSpec,
            ),
            (
                "{\"kind\":\"job\",\"proto\":1,\"workload\":\"hpccg\",\"injections\":5,\"model\":\"triple\"}"
                    .to_string(),
                RejectReason::BadSpec,
            ),
            // Oversized inline module.
            (
                format!(
                    "{{\"kind\":\"job\",\"proto\":1,\"workload\":\"inline\",\"module\":\"{}\",\"injections\":5}}",
                    "x".repeat(MAX_MODULE_BYTES + 1)
                ),
                RejectReason::Oversized,
            ),
        ];
        for (frame, want) in cases {
            let v = parse_frame(&frame).unwrap();
            let (got, detail) = JobSpec::from_json(&v).unwrap_err();
            assert_eq!(got, want, "frame {frame:.120}... → {detail}");
        }
    }

    #[test]
    fn workload_resolution_validates() {
        let named = |name: &str, params: &[i64]| WorkloadSel::Named {
            name: name.to_string(),
            params: params.to_vec(),
        };
        assert!(resolve_workload(&named("hpccg", &[3, 2])).is_ok());
        assert!(resolve_workload(&named("gtcp", &[4, 2, 16, 1])).is_ok());
        assert!(resolve_workload(&named("hpccg", &[])).is_ok());
        assert!(resolve_workload(&named("hpccg", &[3])).is_err());
        assert!(resolve_workload(&named("hpccg", &[0, 2])).is_err());
        assert!(resolve_workload(&named("hpccg", &[MAX_WORKLOAD_PARAM + 1, 2])).is_err());
        assert!(resolve_workload(&named("nope", &[])).is_err());
        let bad_inline = WorkloadSel::Inline {
            text: "not a module".to_string(),
            args: vec![],
            outputs: vec![],
        };
        assert!(resolve_workload(&bad_inline).is_err());
    }

    #[test]
    fn record_frames_round_trip_exactly() {
        let records = vec![
            InjectionRecord {
                point: InjectionPoint { module: ModuleId(1), func: FuncId(2), inst: 3, nth: 4 },
                target: InjectedInto::Mem(u64::MAX - 1),
                outcome: Outcome::SoftFailure(Signal::Segv),
                latency: Some(17),
                sim_steps: (1 << 53) + 99,
                split: StepSplit { prefix: 10, suffix: 20, care: 30 },
                care: Some(CareResult {
                    covered: false,
                    recoveries: 2,
                    recovery_ms: 0.1 + 0.2, // deliberately non-terminating in binary
                    decline: Some(DeclineKind::Hang),
                }),
            },
            InjectionRecord {
                point: InjectionPoint { module: ModuleId(0), func: FuncId(0), inst: 0, nth: 0 },
                target: InjectedInto::Skipped,
                outcome: Outcome::Benign,
                latency: None,
                sim_steps: 0,
                split: StepSplit::default(),
                care: None,
            },
        ];
        for r in &records {
            let v = parse_frame(&encode_record(9, r)).unwrap();
            assert_eq!(&decode_record(&v).unwrap(), r);
        }
    }

    #[test]
    fn report_frames_round_trip_exactly() {
        let mut r = CampaignReport {
            benign: 5,
            soft_failure: 3,
            sdc: 1,
            hang: 2,
            signals: [3, 0, 0, 0],
            latency_buckets: [1, 1, 1, 0],
            care_evaluated: 3,
            care_covered: 2,
            care_survived_with_sdc: 1,
            recovery_times_ms: vec![0.30000000000000004, 1.5, f64::MIN_POSITIVE],
            total_recoveries: 4,
            simulated_steps: (1 << 60) + 1,
            steps_prefix: 100,
            steps_suffix: 200,
            steps_care: 300,
            trellis_snapshots: 7,
            cursor_shards: 2,
            cancelled: true,
            ..CampaignReport::default()
        };
        r.declines.insert(DeclineKind::Hang, 1);
        r.declines.insert(DeclineKind::KernelFault, 2);
        let v = parse_frame(&encode_report(1, &r)).unwrap();
        assert_eq!(decode_report(&v).unwrap(), r);
    }

    #[test]
    fn stats_and_control_frames_round_trip() {
        let snap = StatsSnapshot {
            jobs_accepted: 10,
            jobs_rejected: 2,
            jobs_completed: 8,
            jobs_failed: 1,
            jobs_cancelled: 1,
            queue_depth: 3,
            inflight_budget: 4,
            budget_cap: 8,
            cache_hits: 6,
            cache_misses: 4,
            cache_evictions: 2,
            records_streamed: 1234,
        };
        let v = parse_frame(&snap.to_frame()).unwrap();
        assert_eq!(StatsSnapshot::from_json(&v).unwrap(), snap);

        for reason in RejectReason::ALL {
            let v = parse_frame(&reject_frame(reason, "why \"quoted\"")).unwrap();
            assert_eq!(v.get("kind").unwrap().as_str(), Some("reject"));
            let name = v.get("reason").unwrap().as_str().unwrap();
            assert_eq!(RejectReason::parse(name), Some(reason));
            assert_eq!(v.get("detail").unwrap().as_str(), Some("why \"quoted\""));
        }
        assert!(RejectReason::parse("nonsense").is_none());
    }

    #[test]
    fn campaign_key_separates_programs_not_seeds() {
        let key = |s: &JobSpec| s.campaign_key().expect("spec resolves");
        let a = JobSpec::default();
        let b = JobSpec { seed: 1, injections: 999, ..JobSpec::default() };
        assert_eq!(key(&a), key(&b));
        let c = JobSpec { opt: OptLevel::O0, ..JobSpec::default() };
        assert_ne!(key(&a), key(&c));
        let d = JobSpec {
            workload: WorkloadSel::Named { name: "hpccg".to_string(), params: vec![2, 1] },
            ..JobSpec::default()
        };
        assert_ne!(key(&a), key(&d));
        // An unresolvable spec surfaces the resolution error instead of a
        // nonsense key (the old Debug-format key happily keyed garbage).
        let bad = JobSpec {
            workload: WorkloadSel::Named { name: "nope".to_string(), params: vec![] },
            ..JobSpec::default()
        };
        assert!(bad.campaign_key().is_err());
    }

    /// The campaign key is a *persistence contract*: stored log file names
    /// are derived from it, so the exact string for a fixed program must
    /// never change. If this pin breaks, existing stores silently go cold.
    #[test]
    fn campaign_key_golden_pin() {
        let key = JobSpec::default().campaign_key().expect("hpccg resolves");
        assert_eq!(key, "care1:266103adb46030c19fda97de31a19029:O1:e1");
    }

    /// The key hashes the canonical module printing, not the inline text:
    /// reformatting (comments, indentation, blank lines) must not change
    /// the key, while a one-instruction program change must.
    #[test]
    fn campaign_key_is_formatting_invariant_for_inline_modules() {
        let base = JobSpec::default();
        let canonical = resolve_workload(&base.workload).unwrap();
        let text = tinyir::display::print_module(&canonical.module);
        let inline = |text: String| JobSpec {
            workload: WorkloadSel::Inline {
                text,
                args: canonical.args.clone(),
                outputs: canonical.outputs.clone(),
            },
            ..JobSpec::default()
        };
        let reformatted: String = text
            .lines()
            .map(|l| format!("  {l}   ; reformatted\n\n"))
            .collect();
        let k1 = inline(text.clone()).campaign_key().unwrap();
        let k2 = inline(reformatted).campaign_key().unwrap();
        assert_eq!(k1, k2, "formatting leaked into the campaign key");
        // Same program text under a different entry invocation is a
        // different campaign.
        let mut other_args = inline(text);
        if let WorkloadSel::Inline { args, .. } = &mut other_args.workload {
            args.push(7);
        }
        assert_ne!(k1, other_args.campaign_key().unwrap());
    }
}
