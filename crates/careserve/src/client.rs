//! Blocking client for the campaign server.
//!
//! [`submit`] drives one job end to end over one connection and
//! reassembles the server's frame stream into the same shapes a local run
//! produces: a [`CampaignReport`] with its records re-attached in stream
//! order (which is record order — the server streams them in report
//! order), plus the job's telemetry JSONL if requested. The result of a
//! loopback submit is bit-identical to `Campaign::run` of the same spec.

use crate::proto::{
    self, JobSpec, RejectReason, StatsSnapshot, MAX_FRAME_BYTES, PROTO_VERSION,
};
use faultsim::CampaignReport;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use telemetry::Json;

/// Everything one completed job sent back.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Server-assigned job id.
    pub job_id: u64,
    /// The campaign report, records re-attached (when the spec asked for
    /// records; empty otherwise).
    pub report: CampaignReport,
    /// The job's telemetry JSONL lines (when the spec asked for them).
    pub telemetry: Vec<String>,
    /// `progress` frames observed while the job ran.
    pub progress_frames: usize,
}

/// Why a submit did not produce a report.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/read/write failure.
    Io(std::io::Error),
    /// The server refused the frame or the job.
    Rejected {
        /// Typed reason from the `reject` frame.
        reason: RejectReason,
        /// Free-text detail from the `reject` frame.
        detail: String,
    },
    /// The job's worker panicked server-side.
    Failed(String),
    /// The server sent something this client cannot make sense of.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Rejected { reason, detail } => {
                write!(f, "rejected ({}): {detail}", reason.name())
            }
            ClientError::Failed(d) => write!(f, "job failed server-side: {d}"),
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Generous per-read timeout: a live server streams progress at least
/// every few poll intervals, so silence this long means it is gone.
const READ_TIMEOUT: Duration = Duration::from_secs(300);

fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

fn read_frame(reader: &mut BufReader<TcpStream>) -> Result<Json, ClientError> {
    let mut line = String::with_capacity(256);
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".to_string()));
        }
        if line.len() > MAX_FRAME_BYTES + 1 {
            return Err(ClientError::Protocol("oversized frame from server".to_string()));
        }
        if line.trim().is_empty() {
            continue;
        }
        return proto::parse_frame(line.trim_end_matches(['\r', '\n']))
            .map_err(|(_, detail)| ClientError::Protocol(detail));
    }
}

fn frame_kind(v: &Json) -> &str {
    v.get("kind").and_then(Json::as_str).unwrap_or("")
}

/// Submit one job and collect its full response stream.
pub fn submit(addr: impl ToSocketAddrs, spec: &JobSpec) -> Result<JobOutcome, ClientError> {
    let mut stream = connect(addr)?;
    stream.write_all(spec.to_frame().as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream.try_clone()?);

    let mut job_id = 0;
    let mut records = Vec::new();
    let mut telemetry = Vec::new();
    let mut progress_frames = 0;
    loop {
        let v = read_frame(&mut reader)?;
        match frame_kind(&v) {
            "accepted" => {
                job_id = proto::get_u64(&v, "job_id")
                    .ok_or_else(|| ClientError::Protocol("accepted without job_id".to_string()))?;
            }
            "progress" => progress_frames += 1,
            "record" => {
                records.push(proto::decode_record(&v).map_err(ClientError::Protocol)?);
            }
            "telemetry" => {
                if let Some(line) = v.get("line").and_then(Json::as_str) {
                    telemetry.push(line.to_string());
                }
            }
            "report" => {
                let mut report = proto::decode_report(&v).map_err(ClientError::Protocol)?;
                report.records = std::mem::take(&mut records);
                // The terminating `done` frame.
                let done = read_frame(&mut reader)?;
                if frame_kind(&done) != "done" {
                    return Err(ClientError::Protocol(format!(
                        "expected done after report, got {:?}",
                        frame_kind(&done)
                    )));
                }
                return Ok(JobOutcome { job_id, report, telemetry, progress_frames });
            }
            "reject" => {
                let reason = v
                    .get("reason")
                    .and_then(Json::as_str)
                    .and_then(RejectReason::parse)
                    .ok_or_else(|| {
                        ClientError::Protocol("reject without a known reason".to_string())
                    })?;
                let detail =
                    v.get("detail").and_then(Json::as_str).unwrap_or_default().to_string();
                return Err(ClientError::Rejected { reason, detail });
            }
            "failed" => {
                let detail =
                    v.get("detail").and_then(Json::as_str).unwrap_or_default().to_string();
                return Err(ClientError::Failed(detail));
            }
            other => {
                return Err(ClientError::Protocol(format!("unexpected frame kind {other:?}")))
            }
        }
    }
}

/// Fetch the server's counter snapshot.
pub fn fetch_stats(addr: impl ToSocketAddrs) -> Result<StatsSnapshot, ClientError> {
    let mut stream = connect(addr)?;
    stream.write_all(proto::stats_request_frame().as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let v = read_frame(&mut reader)?;
    match frame_kind(&v) {
        "stats" => StatsSnapshot::from_json(&v).map_err(ClientError::Protocol),
        "reject" => Err(ClientError::Protocol("stats request rejected".to_string())),
        other => Err(ClientError::Protocol(format!("expected stats frame, got {other:?}"))),
    }
}

/// Best-effort protocol sanity check: the constant the client speaks.
pub fn protocol_version() -> u32 {
    PROTO_VERSION
}
