//! The long-running campaign server.
//!
//! One blocking accept loop, one thread per connection, one worker thread
//! per running job — while every job's *simulation* fan-out runs on the
//! single process-wide work-stealing pool (`compat/rayon`), sharing its
//! workers, the global `simx::TranslationCache`, and this server's
//! prepared-campaign cache across every client.
//!
//! ## Admission control
//!
//! Each job declares a thread *budget* (its `threads` field; 0 = the whole
//! pool). The server admits jobs while the sum of running budgets stays
//! within `budget_cap` (the pool width by default); beyond that, jobs wait
//! in a bounded queue (`max_queue`), and past the queue they are rejected
//! with [`RejectReason::QueueFull`] — explicit backpressure, never
//! unbounded buffering. The budget is an admission weight, not a pool
//! resize: `compat/rayon`'s `with_threads` serialises callers globally, so
//! the honest way to share the pool between concurrent jobs is to cap how
//! many are in flight, and let the pool's work-stealing interleave them.
//!
//! ## Failure containment
//!
//! Malformed frames get typed `reject` responses and the connection keeps
//! serving. Oversized lines are drained to the next newline, rejected, and
//! the connection keeps serving. A client that disconnects mid-job cancels
//! the job cooperatively ([`faultsim::JobControl`]); the budget is
//! reclaimed as soon as the campaign observes the flag. A worker panic is
//! caught, reported as a `failed` frame, and the server keeps serving.

use crate::proto::{
    self, JobSpec, RejectReason, StatsSnapshot, MAX_FRAME_BYTES,
};
use carestore::{CampaignKey, LruCache, Store};
use faultsim::{Campaign, CampaignConfig, CampaignReport, JobControl};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use telemetry::{Hooks, NoTelemetry, Recorder, TelemetryReport};

/// How the server is sized and bound.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free loopback port).
    pub addr: String,
    /// Global in-flight budget cap in pool threads; 0 = the work-stealing
    /// pool's width ([`rayon::current_num_threads`]).
    pub budget_cap: usize,
    /// Bounded admission queue: jobs waiting for budget beyond this are
    /// rejected with [`RejectReason::QueueFull`].
    pub max_queue: usize,
    /// Per-line frame cap; longer lines are rejected as oversized.
    pub max_frame_bytes: usize,
    /// Prepared-campaign cache bound in entries (LRU eviction beyond it);
    /// 0 = [`DEFAULT_CACHE_CAP`]. Each entry is a compiled module plus its
    /// golden snapshot trellis, so the bound is what keeps a stream of
    /// distinct inline jobs from growing the server without limit.
    pub cache_cap: usize,
    /// Content-addressed result store directory. `Some` routes every job
    /// through [`carestore::Store::run_campaign`]: stored records are
    /// reused, only the residual executes, and fresh records are appended
    /// to the campaign's log. `None` (the default) runs jobs unbacked.
    pub store_dir: Option<PathBuf>,
}

/// Default prepared-campaign cache bound when the config leaves it 0.
pub const DEFAULT_CACHE_CAP: usize = 32;

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            budget_cap: 0,
            max_queue: 8,
            max_frame_bytes: MAX_FRAME_BYTES,
            cache_cap: 0,
            store_dir: None,
        }
    }
}

/// Socket poll interval: bounds shutdown/cancel/progress latency.
const POLL: Duration = Duration::from_millis(10);

#[derive(Default)]
struct Counters {
    jobs_accepted: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    queue_depth: AtomicU64,
    inflight_budget: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    records_streamed: AtomicU64,
}

/// Admission state guarded by one mutex (the condvar's).
#[derive(Default)]
struct Admission {
    /// Budget currently reserved by running jobs.
    used: usize,
    /// Jobs waiting for budget.
    queued: usize,
}

/// Shared server state.
pub(crate) struct Srv {
    budget_cap: usize,
    max_queue: usize,
    max_frame_bytes: usize,
    shutdown: AtomicBool,
    admission: Mutex<Admission>,
    cv: Condvar,
    cache: Mutex<LruCache<String, Arc<Campaign>>>,
    store: Option<Store>,
    stats: Counters,
    recorder: Recorder,
    next_job_id: AtomicU64,
    active_conns: AtomicUsize,
}

impl Srv {
    pub(crate) fn new(cfg: &ServerConfig) -> std::io::Result<Srv> {
        let budget_cap = if cfg.budget_cap == 0 {
            rayon::current_num_threads().max(1)
        } else {
            cfg.budget_cap
        };
        let cache_cap = if cfg.cache_cap == 0 { DEFAULT_CACHE_CAP } else { cfg.cache_cap };
        let store = match &cfg.store_dir {
            Some(dir) => Some(Store::open(dir)?),
            None => None,
        };
        Ok(Srv {
            budget_cap,
            max_queue: cfg.max_queue,
            max_frame_bytes: cfg.max_frame_bytes,
            shutdown: AtomicBool::new(false),
            admission: Mutex::new(Admission::default()),
            cv: Condvar::new(),
            cache: Mutex::new(LruCache::new(cache_cap)),
            store,
            stats: Counters::default(),
            recorder: Recorder::new(),
            next_job_id: AtomicU64::new(1),
            active_conns: AtomicUsize::new(0),
        })
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Reserve `want` threads of budget, waiting in the bounded queue if
    /// the cap is reached. `Err` is the typed admission reject.
    pub(crate) fn acquire_budget(&self, want: usize) -> Result<(), RejectReason> {
        let mut adm = self.admission.lock().expect("admission lock");
        if self.shutting_down() {
            return Err(RejectReason::ShuttingDown);
        }
        if adm.used + want <= self.budget_cap {
            adm.used += want;
            self.stats.inflight_budget.store(adm.used as u64, Ordering::Relaxed);
            return Ok(());
        }
        if adm.queued >= self.max_queue {
            return Err(RejectReason::QueueFull);
        }
        adm.queued += 1;
        self.stats.queue_depth.store(adm.queued as u64, Ordering::Relaxed);
        self.recorder.record("server.queue_depth", adm.queued as u64);
        loop {
            let (guard, _) = self
                .cv
                .wait_timeout(adm, Duration::from_millis(50))
                .expect("admission wait");
            adm = guard;
            let fits = adm.used + want <= self.budget_cap;
            if fits || self.shutting_down() {
                adm.queued -= 1;
                self.stats.queue_depth.store(adm.queued as u64, Ordering::Relaxed);
                if !fits {
                    return Err(RejectReason::ShuttingDown);
                }
                adm.used += want;
                self.stats.inflight_budget.store(adm.used as u64, Ordering::Relaxed);
                return Ok(());
            }
        }
    }

    pub(crate) fn release_budget(&self, want: usize) {
        let mut adm = self.admission.lock().expect("admission lock");
        adm.used -= want;
        self.stats.inflight_budget.store(adm.used as u64, Ordering::Relaxed);
        self.cv.notify_all();
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        let s = &self.stats;
        StatsSnapshot {
            jobs_accepted: s.jobs_accepted.load(Ordering::Relaxed),
            jobs_rejected: s.jobs_rejected.load(Ordering::Relaxed),
            jobs_completed: s.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: s.jobs_failed.load(Ordering::Relaxed),
            jobs_cancelled: s.jobs_cancelled.load(Ordering::Relaxed),
            queue_depth: s.queue_depth.load(Ordering::Relaxed),
            inflight_budget: s.inflight_budget.load(Ordering::Relaxed),
            budget_cap: self.budget_cap as u64,
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            cache_evictions: s.cache_evictions.load(Ordering::Relaxed),
            records_streamed: s.records_streamed.load(Ordering::Relaxed),
        }
    }

    fn reject(&self, out: &mut TcpStream, reason: RejectReason, detail: &str) {
        self.stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        self.recorder.add("server.jobs_rejected", 1);
        let _ = write_line(out, &proto::reject_frame(reason, detail));
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    srv: Arc<Srv>,
    accept: Option<std::thread::JoinHandle<()>>,
}

/// The campaign server. [`start`](CampaignServer::start) binds, spawns the
/// accept loop, and returns a handle; everything else happens on server
/// threads.
pub struct CampaignServer;

impl CampaignServer {
    /// Bind and serve. Returns once the listener is live; jobs are
    /// serviced until the handle is shut down or dropped.
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let srv = Arc::new(Srv::new(&cfg)?);
        let srv2 = srv.clone();
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if srv2.shutting_down() {
                    break;
                }
                let Ok(stream) = conn else { continue };
                srv2.active_conns.fetch_add(1, Ordering::SeqCst);
                let srv3 = srv2.clone();
                std::thread::spawn(move || {
                    handle_conn(srv3.clone(), stream);
                    srv3.active_conns.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        Ok(ServerHandle { addr, srv, accept: Some(accept) })
    }
}

impl ServerHandle {
    /// The bound address (resolved port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counter snapshot (same numbers the `stats` frame serves).
    pub fn stats(&self) -> StatsSnapshot {
        self.srv.snapshot()
    }

    /// Drain the server's `server.*` telemetry series (counters and the
    /// queue-depth/job-duration histograms). Non-destructive.
    pub fn telemetry(&self) -> TelemetryReport {
        self.srv.recorder.drain()
    }

    /// Stop accepting, cancel in-flight jobs, and wait for connection
    /// threads to drain.
    pub fn shutdown(&mut self) {
        let Some(accept) = self.accept.take() else { return };
        self.srv.shutdown.store(true, Ordering::SeqCst);
        self.srv.cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        // Connection threads observe the flag within one poll interval and
        // cancel their jobs; jobs observe the cancel at the next suffix.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while self.srv.active_conns.load(Ordering::SeqCst) > 0 {
            if std::time::Instant::now() > deadline {
                break;
            }
            std::thread::sleep(POLL);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    stream.write_all(&buf)
}

/// What one read attempt on the framed socket produced.
enum ReadOutcome {
    /// A complete frame line (newline stripped).
    Line(String),
    /// A line over the frame cap was drained and discarded.
    Oversized,
    /// Nothing available right now.
    Idle,
    /// Peer closed the connection (or a hard read error).
    Disconnected,
}

/// Newline-framed reader over a timeout-polled blocking socket.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max: usize,
    /// Discarding an over-cap line until its newline.
    draining: bool,
}

impl FrameReader {
    fn new(stream: TcpStream, max: usize) -> FrameReader {
        FrameReader { stream, buf: Vec::new(), max, draining: false }
    }

    /// One bounded poll: consume buffered bytes and at most one socket
    /// read (≤ [`POLL`] of blocking).
    fn poll_frame(&mut self) -> ReadOutcome {
        loop {
            if self.draining {
                match self.buf.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        self.buf.drain(..=pos);
                        self.draining = false;
                        return ReadOutcome::Oversized;
                    }
                    None => self.buf.clear(),
                }
            } else if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                return ReadOutcome::Line(text);
            } else if self.buf.len() > self.max {
                self.draining = true;
                continue;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Disconnected,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return ReadOutcome::Idle
                }
                Err(_) => return ReadOutcome::Disconnected,
            }
        }
    }

    /// Poll until a frame, disconnect, or server shutdown.
    fn read_frame(&mut self, srv: &Srv) -> ReadOutcome {
        loop {
            match self.poll_frame() {
                ReadOutcome::Idle => {
                    if srv.shutting_down() {
                        return ReadOutcome::Disconnected;
                    }
                }
                other => return other,
            }
        }
    }
}

fn handle_conn(srv: Arc<Srv>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = FrameReader::new(read_half, srv.max_frame_bytes);
    let mut out = stream;
    loop {
        match reader.read_frame(&srv) {
            ReadOutcome::Disconnected => return,
            ReadOutcome::Oversized => {
                srv.reject(&mut out, RejectReason::Oversized, "frame exceeds the line cap");
            }
            ReadOutcome::Idle => unreachable!("read_frame never yields Idle"),
            ReadOutcome::Line(line) => {
                if dispatch(&srv, &mut reader, &mut out, &line).is_err() {
                    return;
                }
            }
        }
    }
}

/// Handle one frame. `Err(())` means the connection is gone.
fn dispatch(
    srv: &Arc<Srv>,
    reader: &mut FrameReader,
    out: &mut TcpStream,
    line: &str,
) -> Result<(), ()> {
    let v = match proto::parse_frame(line) {
        Ok(v) => v,
        Err((reason, detail)) => {
            srv.reject(out, reason, &detail);
            return Ok(());
        }
    };
    match v.get("kind").and_then(telemetry::Json::as_str) {
        Some("stats") => write_line(out, &srv.snapshot().to_frame()).map_err(|_| ()),
        Some("job") => {
            let spec = match JobSpec::from_json(&v) {
                Ok(spec) => spec,
                Err((reason, detail)) => {
                    srv.reject(out, reason, &detail);
                    return Ok(());
                }
            };
            run_job(srv, reader, out, spec)
        }
        Some(other) => {
            srv.reject(out, RejectReason::BadFrame, &format!("unknown frame kind {other:?}"));
            Ok(())
        }
        None => unreachable!("parse_frame guarantees a kind"),
    }
}

/// What the worker thread hands back.
type JobResult = Result<(CampaignReport, Option<String>), String>;

fn run_job(
    srv: &Arc<Srv>,
    reader: &mut FrameReader,
    out: &mut TcpStream,
    spec: JobSpec,
) -> Result<(), ()> {
    // Validation and cache probe first: a reject must not burn budget.
    // The content-addressed key hashes the resolved module's canonical
    // printing, so resolution (cheap: construction + parse, no compile)
    // happens before the probe; two spellings of one program share a key.
    let workload = match proto::resolve_workload(&spec.workload) {
        Ok(w) => w,
        Err(detail) => {
            srv.reject(out, RejectReason::BadSpec, &detail);
            return Ok(());
        }
    };
    let ckey = proto::campaign_key_for(&workload, spec.opt);
    let key = ckey.encode();
    let cached = srv.cache.lock().expect("cache lock").get(&key).cloned();
    if cached.is_some() {
        srv.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        srv.recorder.add("server.cache_hits", 1);
    }
    let budget = if spec.threads == 0 { srv.budget_cap } else { spec.threads.min(srv.budget_cap) };
    if let Err(reason) = srv.acquire_budget(budget) {
        srv.reject(out, reason, "admission refused");
        return Ok(());
    }
    // Budget held from here: release on every path below.
    let job_id = srv.next_job_id.fetch_add(1, Ordering::Relaxed);
    srv.stats.jobs_accepted.fetch_add(1, Ordering::Relaxed);
    srv.recorder.add("server.jobs_accepted", 1);
    let t0 = std::time::Instant::now();
    let mut connected = write_line(out, &proto::accepted_frame(job_id)).is_ok();

    let ctl = Arc::new(JobControl::new());
    let (tx, rx) = mpsc::channel::<JobResult>();
    let worker = {
        let ctl = ctl.clone();
        let spec = spec.clone();
        let srv = srv.clone();
        std::thread::spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let campaign = match cached {
                    Some(c) => c,
                    None => srv.prepare_campaign(&key, &spec, workload),
                };
                let cfg = CampaignConfig {
                    injections: spec.injections,
                    model: spec.model,
                    seed: spec.seed,
                    evaluate_care: spec.evaluate_care,
                    app_only: spec.app_only,
                    keep_records: spec.records,
                    scheduler: spec.scheduler,
                    engine: spec.engine,
                    ..CampaignConfig::default()
                };
                if spec.telemetry {
                    let rec = Recorder::new();
                    let report = run_backed(&srv, &ckey, &campaign, &cfg, &rec, &ctl);
                    (report, Some(rec.drain().to_jsonl()))
                } else {
                    (run_backed(&srv, &ckey, &campaign, &cfg, &NoTelemetry, &ctl), None)
                }
            }));
            let _ = tx.send(result.map_err(panic_message));
        })
    };

    // Stream progress and watch the socket while the job runs.
    let total = spec.injections as u64;
    let mut last_progress = u64::MAX;
    let outcome: JobResult = loop {
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(result) => break result,
            Err(RecvTimeoutError::Disconnected) => {
                break Err("worker vanished without a result".to_string())
            }
            Err(RecvTimeoutError::Timeout) => {}
        }
        if srv.shutting_down() {
            ctl.cancel();
        }
        if connected {
            let classified = ctl.classified();
            if classified != last_progress {
                last_progress = classified;
                connected =
                    write_line(out, &proto::progress_frame(job_id, classified, total)).is_ok();
            }
        }
        match reader.poll_frame() {
            ReadOutcome::Idle => {}
            ReadOutcome::Disconnected => {
                if connected {
                    connected = false;
                    ctl.cancel();
                    srv.recorder.add("server.client_disconnects", 1);
                }
            }
            ReadOutcome::Oversized => {
                srv.reject(out, RejectReason::Oversized, "frame exceeds the line cap");
            }
            ReadOutcome::Line(extra) => {
                // One job per connection: any further job is refused, but
                // stats stay queryable mid-job.
                match proto::parse_frame(&extra) {
                    Ok(v) if v.get("kind").and_then(telemetry::Json::as_str) == Some("stats") => {
                        let _ = write_line(out, &srv.snapshot().to_frame());
                    }
                    Ok(_) => srv.reject(
                        out,
                        RejectReason::ClientBusy,
                        "a job is already in flight on this connection",
                    ),
                    Err((reason, detail)) => srv.reject(out, reason, &detail),
                }
            }
        }
        if !connected {
            ctl.cancel();
        }
    };
    let _ = worker.join();
    srv.release_budget(budget);
    srv.recorder.record("server.job_ns", t0.elapsed().as_nanos() as u64);

    match outcome {
        Ok((report, jsonl)) => {
            if report.cancelled {
                srv.stats.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                srv.recorder.add("server.jobs_cancelled", 1);
            } else {
                srv.stats.jobs_completed.fetch_add(1, Ordering::Relaxed);
                srv.recorder.add("server.jobs_completed", 1);
            }
            if connected && spec.records {
                for r in &report.records {
                    if write_line(out, &proto::encode_record(job_id, r)).is_err() {
                        connected = false;
                        break;
                    }
                    srv.stats.records_streamed.fetch_add(1, Ordering::Relaxed);
                }
            }
            if connected {
                if let Some(jsonl) = jsonl {
                    for tl in jsonl.lines().filter(|l| !l.trim().is_empty()) {
                        if write_line(out, &proto::telemetry_frame(job_id, tl)).is_err() {
                            connected = false;
                            break;
                        }
                    }
                }
            }
            if connected {
                connected = write_line(out, &proto::encode_report(job_id, &report)).is_ok();
            }
            if connected {
                connected = write_line(out, &proto::done_frame(job_id)).is_ok();
            }
        }
        Err(detail) => {
            srv.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
            srv.recorder.add("server.jobs_failed", 1);
            if connected {
                connected = write_line(out, &proto::failed_frame(job_id, &detail)).is_ok();
            }
        }
    }
    if connected {
        Ok(())
    } else {
        Err(())
    }
}

/// Run one job's campaign, through the content-addressed store when the
/// server has one (warm records reused, only the residual executed, fresh
/// records appended), directly otherwise. A store I/O failure degrades to
/// a direct run — the job still completes, this run just isn't persisted.
fn run_backed<H: Hooks>(
    srv: &Srv,
    key: &CampaignKey,
    campaign: &Campaign,
    cfg: &CampaignConfig,
    hooks: &H,
    ctl: &JobControl,
) -> CampaignReport {
    let Some(store) = &srv.store else {
        return campaign.run_job(cfg, hooks, ctl);
    };
    match store.run_campaign(key, campaign, cfg, hooks, ctl) {
        Ok(run) => {
            srv.recorder.add("server.store_hits", run.stats.hits);
            srv.recorder.add("server.store_misses", run.stats.misses);
            run.report
        }
        Err(_) => {
            srv.recorder.add("server.store_errors", 1);
            campaign.run_job(cfg, hooks, ctl)
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_string()
    }
}

impl Srv {
    /// Compile + prepare on a cache miss, then publish. Concurrent misses
    /// on the same key both prepare (identical, deterministic campaigns)
    /// and the first insert wins; the work the loser burned is bounded by
    /// one prepare. The prepare runs outside the cache lock so a slow
    /// golden run never blocks other clients' cache probes. Publishing may
    /// evict the least-recently-used campaign (the cache is bounded);
    /// evictions surface in the stats frame and `server.cache_evictions`.
    fn prepare_campaign(
        &self,
        key: &str,
        spec: &JobSpec,
        workload: workloads::Workload,
    ) -> Arc<Campaign> {
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.recorder.add("server.cache_misses", 1);
        let app = care::compile(&workload.module, spec.opt);
        let campaign = Arc::new(Campaign::prepare(&workload, app, vec![]));
        let mut map = self.cache.lock().expect("cache lock");
        let published = match map.get(key) {
            Some(winner) => winner.clone(),
            None => {
                let before = map.evictions();
                map.insert(key.to_string(), campaign.clone());
                let evicted = map.evictions() - before;
                if evicted > 0 {
                    self.recorder.add("server.cache_evictions", evicted);
                }
                self.stats.cache_evictions.store(map.evictions(), Ordering::Relaxed);
                campaign
            }
        };
        published
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::proto::WorkloadSel;
    use std::io::{BufRead, BufReader};

    fn test_server(budget_cap: usize, max_queue: usize, max_frame: usize) -> ServerHandle {
        CampaignServer::start(ServerConfig {
            budget_cap,
            max_queue,
            max_frame_bytes: max_frame,
            ..ServerConfig::default()
        })
        .expect("bind loopback")
    }

    /// Send raw lines on one connection, reading one response frame per
    /// line sent; returns the `(kind, reason)` of each response.
    fn raw_exchange(addr: std::net::SocketAddr, lines: &[&str]) -> Vec<(String, String)> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut out = Vec::new();
        for line in lines {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            let v = telemetry::parse_json(resp.trim()).expect("server speaks JSON");
            let kind = v.get("kind").and_then(telemetry::Json::as_str).unwrap_or("").to_string();
            let reason =
                v.get("reason").and_then(telemetry::Json::as_str).unwrap_or("").to_string();
            out.push((kind, reason));
        }
        out
    }

    #[test]
    fn admission_respects_cap_queue_and_shutdown() {
        let handle = test_server(2, 1, MAX_FRAME_BYTES);
        let srv = handle.srv.clone();
        // Fill the cap.
        assert!(srv.acquire_budget(2).is_ok());
        assert_eq!(srv.snapshot().inflight_budget, 2);
        // One waiter fits in the queue...
        let srv2 = srv.clone();
        let waiter = std::thread::spawn(move || srv2.acquire_budget(1));
        while srv.snapshot().queue_depth == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // ...and the queue is now full.
        assert_eq!(srv.acquire_budget(1), Err(RejectReason::QueueFull));
        // Releasing admits the waiter.
        srv.release_budget(2);
        assert_eq!(waiter.join().unwrap(), Ok(()));
        assert_eq!(srv.snapshot().inflight_budget, 1);
        assert_eq!(srv.snapshot().queue_depth, 0);
        srv.release_budget(1);
        // Shutdown unblocks queued waiters with a typed reject.
        assert!(srv.acquire_budget(2).is_ok());
        let srv3 = srv.clone();
        let waiter = std::thread::spawn(move || srv3.acquire_budget(2));
        while srv.snapshot().queue_depth == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        srv.shutdown.store(true, Ordering::SeqCst);
        srv.cv.notify_all();
        assert_eq!(waiter.join().unwrap(), Err(RejectReason::ShuttingDown));
        assert_eq!(srv.acquire_budget(1), Err(RejectReason::ShuttingDown));
    }

    #[test]
    fn every_malformed_frame_gets_a_typed_reject_and_the_connection_survives() {
        let mut handle = test_server(0, 4, 4096);
        let addr = handle.addr();
        let huge = format!("{{\"kind\":\"job\",\"pad\":\"{}\"}}", "x".repeat(8192));
        let exchanges = raw_exchange(
            addr,
            &[
                "this is not json",
                "{\"no\":\"kind\"}",
                "{\"kind\":\"mystery\"}",
                "{\"kind\":\"job\",\"proto\":99,\"workload\":\"hpccg\",\"injections\":5}",
                "{\"kind\":\"job\",\"proto\":1,\"workload\":\"hpccg\",\"injections\":5,\"params\":\"3\"}",
                "{\"kind\":\"job\",\"proto\":1,\"workload\":\"nope\",\"injections\":5}",
                "{\"kind\":\"job\",\"proto\":1,\"workload\":\"hpccg\",\"injections\":0}",
                &huge,
                // The connection still serves after all of the above.
                "{\"kind\":\"stats\",\"proto\":1}",
            ],
        );
        let want = [
            ("reject", "bad_json"),
            ("reject", "bad_frame"),
            ("reject", "bad_frame"),
            ("reject", "unsupported_proto"),
            ("reject", "bad_frame"),
            ("reject", "bad_spec"),
            ("reject", "bad_spec"),
            ("reject", "oversized"),
            ("stats", ""),
        ];
        for ((kind, reason), (wk, wr)) in exchanges.iter().zip(want) {
            assert_eq!((kind.as_str(), reason.as_str()), (wk, wr));
        }
        assert_eq!(handle.stats().jobs_rejected, 8);
        assert_eq!(handle.stats().jobs_accepted, 0);
        handle.shutdown();
    }

    /// A tiny inline workload keeps the happy-path unit test fast and
    /// exercises the inline-module spec end to end.
    fn tiny_inline_spec() -> JobSpec {
        let mut mb = tinyir::builder::ModuleBuilder::new("tiny", "tiny.c");
        let out = mb.global_zeroed("out", tinyir::Ty::I64, 8);
        mb.define("main", vec![tinyir::Ty::I64], Some(tinyir::Ty::I64), |fb| {
            let acc = fb.alloca(tinyir::Ty::I64, 1);
            fb.store(tinyir::Value::i64(1), acc);
            let n = fb.arg(0);
            let outp = fb.global(out);
            fb.for_loop(tinyir::Value::i64(0), n, |fb, i| {
                let a = fb.load(acc, tinyir::Ty::I64);
                let s = fb.add(a, i, tinyir::Ty::I64);
                fb.store(s, acc);
                let slot = fb.srem(i, tinyir::Value::i64(8), tinyir::Ty::I64);
                fb.store_elem(s, outp, slot, tinyir::Ty::I64);
            });
            let r = fb.load(acc, tinyir::Ty::I64);
            fb.ret(Some(r));
        });
        let module = mb.finish();
        JobSpec {
            workload: WorkloadSel::Inline {
                text: tinyir::display::print_module(&module),
                args: vec![6],
                outputs: vec![("out".to_string(), 64)],
            },
            injections: 30,
            telemetry: true,
            ..JobSpec::default()
        }
    }

    #[test]
    fn loopback_inline_job_matches_local_run_and_reuses_the_cache() {
        let mut handle = test_server(0, 4, MAX_FRAME_BYTES);
        let spec = tiny_inline_spec();

        // Local baseline from the same spec.
        let workload = proto::resolve_workload(&spec.workload).unwrap();
        let app = care::compile(&workload.module, spec.opt);
        let campaign = Campaign::prepare(&workload, app, vec![]);
        let local = campaign.run(&CampaignConfig {
            injections: spec.injections,
            seed: spec.seed,
            model: spec.model,
            evaluate_care: spec.evaluate_care,
            app_only: spec.app_only,
            keep_records: true,
            scheduler: spec.scheduler,
            engine: spec.engine,
            ..CampaignConfig::default()
        });

        let first = client::submit(handle.addr(), &spec).expect("first submit");
        assert_eq!(first.report, local, "wire report diverged from the local run");
        assert!(!first.telemetry.is_empty(), "telemetry frames were requested");

        let second = client::submit(handle.addr(), &spec).expect("second submit");
        assert_eq!(second.report, local);
        let stats = handle.stats();
        assert_eq!(stats.jobs_completed, 2);
        assert_eq!(stats.cache_misses, 1, "second job must hit the campaign cache");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.inflight_budget, 0, "budget leaked after completion");
        assert_eq!(stats.records_streamed, 2 * local.records.len() as u64);

        // The server.* series recorded the lifecycle.
        let report = handle.telemetry();
        assert_eq!(report.counters.get("server.jobs_accepted"), Some(&2));
        assert_eq!(report.counters.get("server.jobs_completed"), Some(&2));
        handle.shutdown();
    }

    /// The acceptance property for the bounded cache: a stream of 1000
    /// jobs with distinct campaign keys (as an adversarial client sending
    /// ever-new inline programs would produce) never grows the cache past
    /// its bound, and every eviction is counted in the stats frame.
    #[test]
    fn cache_stays_bounded_under_a_stream_of_distinct_jobs() {
        let srv =
            Srv::new(&ServerConfig { cache_cap: 16, ..ServerConfig::default() }).unwrap();
        let spec = tiny_inline_spec();
        let workload = proto::resolve_workload(&spec.workload).unwrap();
        for i in 0..1000u32 {
            // Distinct keys over one resolved workload: the cache keys on
            // the string alone, and reusing the program keeps 1000
            // prepares affordable.
            srv.prepare_campaign(&format!("care1:{i:032x}:O1:e1"), &spec, workload.clone());
            assert!(
                srv.cache.lock().unwrap().len() <= 16,
                "cache exceeded its bound at job {i}"
            );
        }
        assert_eq!(srv.cache.lock().unwrap().len(), 16);
        let snap = srv.snapshot();
        assert_eq!(snap.cache_misses, 1000);
        assert_eq!(snap.cache_evictions, 1000 - 16);
        let report = srv.recorder.drain();
        assert_eq!(report.counters.get("server.cache_evictions"), Some(&(1000 - 16)));
    }

    /// A store-backed server reuses stored records: the second identical
    /// job executes zero residual injections (nothing is appended to the
    /// log) and its report — records included — is byte-identical.
    #[test]
    fn store_backed_server_reuses_records_across_jobs() {
        let dir =
            std::env::temp_dir().join(format!("careserve-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut handle = CampaignServer::start(ServerConfig {
            store_dir: Some(dir.clone()),
            ..ServerConfig::default()
        })
        .expect("bind loopback");
        let spec = tiny_inline_spec();

        let first = client::submit(handle.addr(), &spec).expect("first submit");
        let logs: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(logs.len(), 1, "one campaign, one log");
        let after_first = std::fs::read(&logs[0]).unwrap();
        assert!(!after_first.is_empty());

        let second = client::submit(handle.addr(), &spec).expect("second submit");
        assert_eq!(
            second.report, first.report,
            "warm store re-run diverged from the cold run"
        );
        let after_second = std::fs::read(&logs[0]).unwrap();
        assert_eq!(
            after_second, after_first,
            "warm re-run appended to the log: residual was not zero"
        );
        handle.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
