//! # careserve — the campaign engine as a long-running service
//!
//! The paper's evaluation is a batch of one-shot injection campaigns; the
//! production shape this repo grows toward is a persistent process serving
//! campaign jobs from many clients. This crate is that shape: a TCP server
//! speaking a versioned newline-delimited JSON protocol ([`proto`]),
//! running jobs on the existing [`faultsim::Campaign`] machinery, and
//! streaming back progress, records, telemetry, and the final report —
//! bit-identical to a local run of the same spec.
//!
//! Three properties define the design:
//!
//! * **Shared hot state.** All jobs from all clients share one process:
//!   the work-stealing pool (`compat/rayon`), the global
//!   `simx::TranslationCache`, and this server's prepared-campaign cache
//!   (golden run + snapshot trellis keyed by program + opt level), so the
//!   Nth job for a workload costs only its suffixes.
//! * **Explicit backpressure.** Budget-weighted admission against the pool
//!   width, a bounded wait queue, and typed `reject` frames
//!   ([`proto::RejectReason`]) — the server never buffers unboundedly and
//!   never dies on bad input.
//! * **Cooperative cancellation.** A disconnected client's job stops at
//!   the next suffix boundary via [`faultsim::JobControl`]; worker panics
//!   are contained to a `failed` frame.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{fetch_stats, submit, ClientError, JobOutcome};
pub use proto::{JobSpec, RejectReason, StatsSnapshot, WorkloadSel, PROTO_VERSION};
pub use server::{CampaignServer, ServerConfig, ServerHandle};
