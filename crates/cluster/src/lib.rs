//! # cluster — BSP parallel-job simulation (paper §5.4, Figure 10)
//!
//! The paper runs 512 MPI ranks × 6 threads on 64 nodes (3072 cores),
//! injects a CARE-recoverable fault into rank 0, and shows the job finishes
//! with almost no delay because the dozens-of-milliseconds recovery is
//! absorbed by the next bulk-synchronous barrier. The checkpoint/restart
//! baseline instead pays tens of seconds (requeue + checkpoint load + lost
//! work), quantified for GTC-P at checkpoint intervals of 20/50/75 steps.
//!
//! Our simulator reproduces that timing argument: ranks advance in virtual
//! time through per-step compute samples and an allreduce barrier; rank 0's
//! recovery events come from a *real* SimISA run of the workload under
//! injection + Safeguard (see [`rank0::run_rank0_with_fault`]), and the
//! delay propagation through the barriers is exact.

pub mod rank0;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cluster/job geometry and timing model.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// MPI ranks (the paper: 512).
    pub ranks: usize,
    /// Threads per rank (the paper: 6; scales the compute-time mean).
    pub threads_per_rank: usize,
    /// Bulk-synchronous timesteps in the job.
    pub timesteps: u64,
    /// Mean per-step compute milliseconds per rank.
    pub step_mean_ms: f64,
    /// Relative compute-time jitter (uniform ±).
    pub step_jitter: f64,
    /// Per-step allreduce/barrier cost.
    pub allreduce_ms: f64,
    /// RNG seed for the per-rank time samples.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            ranks: 512,
            threads_per_rank: 6,
            timesteps: 100,
            step_mean_ms: 770.0,
            step_jitter: 0.05,
            allreduce_ms: 2.0,
            seed: 3072,
        }
    }
}

/// The resilience mechanism in effect for a faulty run.
#[derive(Clone, Debug)]
pub enum Resilience {
    /// No protection: the job dies at the fault and is rerun from scratch
    /// after a requeue (worst-case baseline).
    None {
        /// Batch-queue wait before the rerun starts.
        requeue_ms: f64,
    },
    /// CARE: recovery events `(step, recovery_ms)` delay rank 0 only.
    Care {
        /// Recovery events observed on rank 0.
        events: Vec<(u64, f64)>,
    },
    /// Checkpoint/restart with a fixed interval.
    CheckpointRestart {
        /// Steps between checkpoints.
        interval: u64,
        /// Time to write one checkpoint (paid every interval, all ranks).
        write_ms: f64,
        /// Time to load the checkpoint on restart.
        load_ms: f64,
        /// Batch-queue wait before the restart (0 with an immediate
        /// automatic restart, as the paper generously assumes).
        requeue_ms: f64,
    },
}

/// Outcome of a simulated job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobOutcome {
    /// Virtual wall-clock of the whole job, milliseconds.
    pub makespan_ms: f64,
    /// Virtual time attributable to resilience (recoveries, checkpoints,
    /// redone work).
    pub overhead_ms: f64,
    /// The failure-recovery component alone (checkpoint load + redone work,
    /// or CARE recoveries) — the quantity the paper reports as "time to
    /// recover from a failure" (14.4 / 25.9 / 37.6 s for C/R on GTC-P).
    pub restart_ms: f64,
}

/// Deterministic per-(rank, step) compute-time sample.
fn step_time_ms(cfg: &ClusterConfig, rank: usize, step: u64) -> f64 {
    let mut h = cfg
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(((rank as u64) << 32) | step);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    // Thread scaling: the mean is calibrated for 6 threads/rank.
    let scale = 6.0 / cfg.threads_per_rank as f64;
    cfg.step_mean_ms * scale * (1.0 + cfg.step_jitter * (2.0 * u - 1.0))
}

/// Simulate a fault-free job: Σ_t (max_r compute(r, t) + allreduce).
pub fn simulate_fault_free(cfg: &ClusterConfig) -> JobOutcome {
    let mut total = 0.0;
    for t in 0..cfg.timesteps {
        let mut maxr: f64 = 0.0;
        for r in 0..cfg.ranks {
            maxr = maxr.max(step_time_ms(cfg, r, t));
        }
        total += maxr + cfg.allreduce_ms;
    }
    JobOutcome { makespan_ms: total, overhead_ms: 0.0, restart_ms: 0.0 }
}

/// Simulate a job that experiences one fault on rank 0 at `fault_step`,
/// handled by `resilience`.
pub fn simulate_faulty(
    cfg: &ClusterConfig,
    fault_step: u64,
    resilience: &Resilience,
) -> JobOutcome {
    simulate_faulty_traced(cfg, fault_step, resilience, &telemetry::NoTelemetry)
}

/// [`simulate_faulty`] with telemetry hooks: under `Resilience::Care`, every
/// barrier that sees a rank-0 recovery event emits a `barrier` event with
/// the recovery delay, the slack (critical path minus rank 0's unfaulted
/// step time) and the exposed remainder, plus absorbed/exposed counters —
/// the Figure 10 absorption argument as a per-barrier trace. All quantities
/// are virtual-time (deterministic); the outcome is identical to the
/// hook-free run.
pub fn simulate_faulty_traced<H: telemetry::Hooks>(
    cfg: &ClusterConfig,
    fault_step: u64,
    resilience: &Resilience,
    hooks: &H,
) -> JobOutcome {
    let base = simulate_fault_free(cfg);
    match resilience {
        Resilience::Care { events } => {
            // Rank 0's recovery delay is absorbed unless it exceeds the
            // slack between rank 0's step time and the barrier's critical
            // path.
            let mut total = 0.0;
            let mut overhead = 0.0;
            for t in 0..cfg.timesteps {
                let mut maxr: f64 = 0.0;
                for r in 1..cfg.ranks {
                    maxr = maxr.max(step_time_ms(cfg, r, t));
                }
                let mut r0 = step_time_ms(cfg, 0, t);
                let mut delay = 0.0;
                for (es, ems) in events {
                    if *es == t {
                        r0 += ems;
                        delay += ems;
                    }
                }
                let step = r0.max(maxr) + cfg.allreduce_ms;
                let unfaulted = step_time_ms(cfg, 0, t).max(maxr) + cfg.allreduce_ms;
                total += step;
                overhead += step - unfaulted;
                if H::ENABLED && delay > 0.0 {
                    let exposed = step - unfaulted;
                    let slack = maxr - step_time_ms(cfg, 0, t);
                    hooks.add(
                        if exposed > 0.0 { "barrier.exposed" } else { "barrier.absorbed" },
                        1,
                    );
                    // Microseconds keep sub-ms slack visible in log2 buckets.
                    hooks.record("barrier.exposed_us", (exposed * 1e3) as u64);
                    hooks.emit(|| {
                        telemetry::Event::new("barrier")
                            .field("step", t)
                            .field("recovery_ms", delay)
                            .field("slack_ms", slack.max(0.0))
                            .field("exposed_ms", exposed)
                    });
                }
            }
            JobOutcome { makespan_ms: total, overhead_ms: overhead, restart_ms: overhead }
        }
        Resilience::CheckpointRestart { interval, write_ms, load_ms, requeue_ms } => {
            // Checkpoints every `interval` steps; on the fault, redo from
            // the last checkpoint after a load (+ optional requeue).
            let mut total = 0.0;
            let mut overhead = 0.0;
            let step_cost = |t: u64| -> f64 {
                let mut maxr: f64 = 0.0;
                for r in 0..cfg.ranks {
                    maxr = maxr.max(step_time_ms(cfg, r, t));
                }
                maxr + cfg.allreduce_ms
            };
            for t in 0..cfg.timesteps {
                total += step_cost(t);
                if t > 0 && t % interval == 0 {
                    total += write_ms;
                    overhead += write_ms;
                }
            }
            let last_ckpt = (fault_step / interval) * interval;
            let lost: f64 = (last_ckpt..=fault_step).map(step_cost).sum();
            let restart = requeue_ms + load_ms + lost;
            total += restart;
            overhead += restart;
            JobOutcome { makespan_ms: total, overhead_ms: overhead, restart_ms: restart }
        }
        Resilience::None { requeue_ms } => {
            // Everything up to the fault is lost; requeue and rerun.
            let lost: f64 = (0..=fault_step)
                .map(|t| {
                    let mut maxr: f64 = 0.0;
                    for r in 0..cfg.ranks {
                        maxr = maxr.max(step_time_ms(cfg, r, t));
                    }
                    maxr + cfg.allreduce_ms
                })
                .sum();
            JobOutcome {
                makespan_ms: base.makespan_ms + requeue_ms + lost,
                overhead_ms: requeue_ms + lost,
                restart_ms: requeue_ms + lost,
            }
        }
    }
}

/// The §5.4 experiment: `trials` faulty runs with CARE recovery events at
/// randomly shifted steps; returns the fault-free baseline and the per-trial
/// outcomes.
pub fn figure10_experiment(
    cfg: &ClusterConfig,
    trials: usize,
    recovery_events: &[(u64, f64)],
) -> (JobOutcome, Vec<JobOutcome>) {
    let base = simulate_fault_free(cfg);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xF16);
    let outcomes = (0..trials)
        .map(|_| {
            let shift = rng.gen_range(0..cfg.timesteps);
            let events: Vec<(u64, f64)> = recovery_events
                .iter()
                .map(|(s, ms)| ((s + shift) % cfg.timesteps, *ms))
                .collect();
            let fstep = events.first().map(|e| e.0).unwrap_or(0);
            simulate_faulty(cfg, fstep, &Resilience::Care { events })
        })
        .collect();
    (base, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ClusterConfig {
        ClusterConfig { ranks: 64, timesteps: 50, ..ClusterConfig::default() }
    }

    #[test]
    fn care_recovery_is_absorbed_by_barriers() {
        let cfg = small_cfg();
        let base = simulate_fault_free(&cfg);
        let care = simulate_faulty(
            &cfg,
            25,
            &Resilience::Care { events: vec![(25, 40.0)] }, // 40 ms recovery
        );
        let slowdown = (care.makespan_ms - base.makespan_ms) / base.makespan_ms;
        assert!(
            slowdown < 0.01,
            "CARE slowdown must be <1%: {slowdown:.4} ({} vs {})",
            care.makespan_ms,
            base.makespan_ms
        );
        assert!(care.overhead_ms <= 40.0 + 1e-9);
    }

    #[test]
    fn checkpoint_restart_costs_grow_with_interval() {
        // Paper §5.4: 14.4 s / 25.9 s / 37.6 s average recovery for
        // checkpoints every 20 / 50 / 75 steps — monotone in the interval.
        let cfg = ClusterConfig { ranks: 64, timesteps: 150, ..ClusterConfig::default() };
        let mk = |interval| {
            // Average the *restart* cost over fault positions, as the paper
            // does ("time to recover from a failure").
            let mut acc = 0.0;
            let mut n = 0;
            for fs in (0..150).step_by(7) {
                let o = simulate_faulty(
                    &cfg,
                    fs,
                    &Resilience::CheckpointRestart {
                        interval,
                        write_ms: 800.0,
                        load_ms: 6600.0,
                        requeue_ms: 0.0,
                    },
                );
                acc += o.restart_ms;
                n += 1;
            }
            acc / n as f64
        };
        let (c20, c50, c75) = (mk(20), mk(50), mk(75));
        assert!(c20 < c50 && c50 < c75, "{c20} {c50} {c75}");
        // The paper band: 14.4 s / 25.9 s / 37.6 s — tens of seconds,
        // orders beyond CARE's tens of ms.
        assert!(c20 > 8_000.0 && c20 < 25_000.0, "{c20}");
        assert!(c75 > 25_000.0 && c75 < 60_000.0, "{c75}");
    }

    #[test]
    fn unprotected_job_pays_full_rerun() {
        let cfg = small_cfg();
        let base = simulate_fault_free(&cfg);
        let none = simulate_faulty(&cfg, 40, &Resilience::None { requeue_ms: 60_000.0 });
        assert!(none.makespan_ms > base.makespan_ms + 60_000.0);
    }

    #[test]
    fn more_threads_speed_up_steps() {
        let c6 = ClusterConfig { threads_per_rank: 6, ..small_cfg() };
        let c3 = ClusterConfig { threads_per_rank: 3, ..small_cfg() };
        assert!(simulate_fault_free(&c6).makespan_ms < simulate_fault_free(&c3).makespan_ms);
    }

    #[test]
    fn figure10_trials_match_fault_free_closely() {
        let cfg = small_cfg();
        let (base, runs) = figure10_experiment(&cfg, 20, &[(10, 35.0)]);
        for r in &runs {
            let rel = (r.makespan_ms - base.makespan_ms).abs() / base.makespan_ms;
            assert!(rel < 0.02, "trial deviates {rel:.4}");
        }
    }

    #[test]
    fn virtual_time_is_deterministic() {
        let cfg = small_cfg();
        assert_eq!(simulate_fault_free(&cfg), simulate_fault_free(&cfg));
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_barrier_events() {
        let cfg = small_cfg();
        let resilience = Resilience::Care { events: vec![(10, 40.0), (25, 35.0)] };
        let plain = simulate_faulty(&cfg, 10, &resilience);
        let rec = telemetry::Recorder::new();
        let traced = simulate_faulty_traced(&cfg, 10, &resilience, &rec);
        assert_eq!(plain, traced, "hooks must not change the outcome");
        let report = rec.drain();
        let barriers: Vec<_> =
            report.events.iter().filter(|e| e.kind == "barrier").collect();
        assert_eq!(barriers.len(), 2, "one event per recovery-bearing barrier");
        let absorbed = report.counters.get("barrier.absorbed").copied().unwrap_or(0);
        let exposed = report.counters.get("barrier.exposed").copied().unwrap_or(0);
        assert_eq!(absorbed + exposed, 2);
        // Figure 10 premise: with jitter slack on a 770 ms step, at least
        // one 35–40 ms recovery disappears entirely into its barrier (with
        // only 64 ranks the other may land on a low-slack step and leak a
        // few ms — which is exactly what the trace exists to show).
        assert!(absorbed >= 1, "no recovery was absorbed: {:?}", report.counters);
        // The exposed remainder is bounded by the recovery delay itself.
        assert!(traced.overhead_ms <= 40.0 + 35.0 + 1e-9);
    }
}
