//! Rank 0 runs for real: a SimISA execution of the actual workload under
//! fault injection + Safeguard, supplying the recovery events that drive
//! the BSP timeline.
//!
//! The paper's §5.4 methodology injects *CARE-recoverable* faults into
//! rank 0 (via a PMPI_Init wrapper + ptrace); we reproduce that by sampling
//! injections until one produces a SIGSEGV that Safeguard repairs.

use faultsim::{Campaign, CampaignConfig, Outcome, Signal};
use opt::OptLevel;
use workloads::Workload;

/// What rank 0 experienced.
#[derive(Clone, Debug)]
pub struct Rank0Result {
    /// Successful Safeguard activations.
    pub recoveries: u64,
    /// Total modelled recovery time.
    pub recovery_ms: f64,
    /// Injection index that produced the recoverable fault (for
    /// reproducibility records).
    pub injection_index: usize,
}

/// Run the workload with injections until a CARE-recovered SIGSEGV is
/// observed (trying up to `max_attempts` injection indices). Returns `None`
/// if no recoverable fault was found within the budget.
pub fn run_rank0_with_fault(
    workload: &Workload,
    level: OptLevel,
    seed: u64,
    max_attempts: usize,
) -> Option<Rank0Result> {
    let app = care::compile(&workload.module, level);
    let campaign = Campaign::prepare(workload, app, vec![]);
    let cfg = CampaignConfig {
        injections: max_attempts,
        seed,
        evaluate_care: true,
        app_only: true,
        ..CampaignConfig::default()
    };
    for i in 0..max_attempts {
        let Some(rec) = campaign.run_one(&cfg, i) else { continue };
        if rec.outcome != Outcome::SoftFailure(Signal::Segv) {
            continue;
        }
        if let Some(care_res) = rec.care {
            if care_res.covered {
                return Some(Rank0Result {
                    recoveries: care_res.recoveries,
                    recovery_ms: care_res.recovery_ms,
                    injection_index: i,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{figure10_experiment, ClusterConfig};

    #[test]
    fn rank0_recovery_feeds_cluster_timeline() {
        let w = workloads::hpccg::build(3, 2);
        let r = run_rank0_with_fault(&w, OptLevel::O0, 99, 60)
            .expect("a recoverable fault within 60 attempts");
        assert!(r.recoveries >= 1);
        assert!(r.recovery_ms > 1.0);

        // Feed the real recovery time into the 512-rank virtual job.
        let cfg = ClusterConfig { ranks: 128, timesteps: 40, ..ClusterConfig::default() };
        let (base, runs) = figure10_experiment(&cfg, 10, &[(5, r.recovery_ms)]);
        for run in &runs {
            let rel = (run.makespan_ms - base.makespan_ms).abs() / base.makespan_ms;
            assert!(rel < 0.02, "CARE-protected job must finish on time: {rel}");
        }
    }
}
