//! Armor — the compiler pass that builds recovery kernels.
//!
//! For every memory-access instruction, Armor walks backward from the
//! address operand, cloning the address computation into a standalone
//! *recovery kernel* function. Extraction stops at the paper's terminal
//! cases (§3.2): `AllocaInst`, `GlobalVariable`, `Argument`, `PHINode`,
//! complex calls, and *Terminal Values* — instructions with a dead,
//! non-recomputable operand. A value qualifies as a kernel **parameter**
//! only when it is live at the protected instruction *and* has a non-local
//! use, which is what guarantees the backend keeps it addressable (in a
//! register or stack slot) at recovery time.
//!
//! This module is a faithful implementation of the paper's Figure 5
//! pseudo-code over TinyIR.

use crate::table::{ParamSpec, RecoveryKey, RecoveryTable, TableEntry};
use analysis::{address_computation_ops, Cfg, Liveness};
use simx::DieRequest;
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use tinyir::{
    Callee, Function, FuncId, Global, GlobalId, GlobalInit, Instr, InstrId, InstrKind, Module,
    Ty, Value,
};

/// Aggregate statistics (feeds Tables 5 and 8).
#[derive(Clone, Debug, Default)]
pub struct ArmorStats {
    /// Recovery kernels built.
    pub num_kernels: usize,
    /// Total IR instructions across all kernels (excluding the final `ret`).
    pub total_kernel_instrs: usize,
    /// Memory accesses for which no kernel was built because a required
    /// parameter was unavailable (dead and not recomputable).
    pub infeasible: usize,
    /// Memory accesses skipped because they dereference an alloca or global
    /// directly (no address computation to protect).
    pub direct_accesses: usize,
    /// Total memory-access instructions inspected.
    pub mem_accesses: usize,
    /// Accesses whose address computation involves ≥ 2 operations (Table 5).
    pub multi_op_accesses: usize,
    /// Total address-computation operations (Table 5 average numerator).
    pub total_addr_ops: usize,
    /// Wall-clock seconds spent in the pass (Table 8 "Armor overhead").
    pub pass_seconds: f64,
    /// Seconds of the pass spent in liveness analysis (the paper reports
    /// > 90 % of the overhead there).
    pub liveness_seconds: f64,
}

impl ArmorStats {
    /// Average kernel size in IR instructions.
    pub fn avg_kernel_instrs(&self) -> f64 {
        if self.num_kernels == 0 {
            0.0
        } else {
            self.total_kernel_instrs as f64 / self.num_kernels as f64
        }
    }

    /// Table 5 row: fraction of accesses with multi-op address computations.
    pub fn multi_op_fraction(&self) -> f64 {
        if self.mem_accesses == 0 {
            0.0
        } else {
            self.multi_op_accesses as f64 / self.mem_accesses as f64
        }
    }

    /// Table 5 row: average operations per memory access.
    pub fn avg_addr_ops(&self) -> f64 {
        if self.mem_accesses == 0 {
            0.0
        } else {
            self.total_addr_ops as f64 / self.mem_accesses as f64
        }
    }
}

/// Everything Armor produces for one application module.
#[derive(Clone, Debug)]
pub struct ArmorOutput {
    /// The recovery-kernel library source (compiled separately, loaded
    /// lazily by Safeguard — the paper's standalone `.so`).
    pub kernel_module: Module,
    /// The recovery table.
    pub table: RecoveryTable,
    /// Variable-description requests for the backend's DIE emission.
    pub die_requests: Vec<DieRequest>,
    /// Pass statistics.
    pub stats: ArmorStats,
}

/// Tunable Armor behaviour (the defaults reproduce the paper; the
/// alternatives exist for the ablation studies in `bench`).
#[derive(Clone, Copy, Debug)]
pub struct ArmorConfig {
    /// Enforce the terminal-value rule: ordinary-instruction parameters
    /// must be live at the access and have a non-local use (paper §3.2).
    /// Disabling it emits kernels whose parameters may be unavailable at
    /// runtime — the ablation shows coverage *drops* without the rule.
    pub strict_liveness: bool,
}

impl Default for ArmorConfig {
    fn default() -> ArmorConfig {
        ArmorConfig { strict_liveness: true }
    }
}

/// Run Armor over `app` with the paper's default configuration.
pub fn run_armor(app: &Module) -> ArmorOutput {
    run_armor_with(app, ArmorConfig::default())
}

/// Run Armor with explicit configuration.
pub fn run_armor_with(app: &Module, config: ArmorConfig) -> ArmorOutput {
    let t0 = Instant::now();
    let mut kernel_module = Module::new(format!("librecovery_{}", app.name));
    for file in &app.files {
        kernel_module.intern_file(file);
    }
    // Mirror the application's globals (same ids/names) so cloned
    // `Value::Global` references resolve; the kernels execute against the
    // *application's* global addresses, so initialisers are not duplicated.
    for g in &app.globals {
        kernel_module.add_global(Global {
            name: g.name.clone(),
            elem_ty: g.elem_ty,
            count: 0,
            init: GlobalInit::Zero,
        });
    }

    let mut table = RecoveryTable::new();
    let mut die_requests = Vec::new();
    let mut stats = ArmorStats::default();
    let mut liveness_time = 0.0f64;

    for (fi, f) in app.funcs.iter().enumerate() {
        if f.is_decl {
            continue;
        }
        let fid = FuncId(fi as u32);
        let cfg = Cfg::new(f);
        let lt = Instant::now();
        let lv = Liveness::compute(f, &cfg);
        liveness_time += lt.elapsed().as_secs_f64();
        let ms = MemScan::new(f, &cfg);

        for access in f.mem_access_instrs() {
            stats.mem_accesses += 1;
            let ops = address_computation_ops(f, access);
            stats.total_addr_ops += ops;
            if ops >= 2 {
                stats.multi_op_accesses += 1;
            }
            // `mem_access_instrs` only yields loads/stores, which always
            // carry an address operand — but a malformed module reaching the
            // pass must degrade to "no kernel", not a compiler panic.
            let Some(addr) = f.instr(access).addr_operand() else {
                stats.infeasible += 1;
                continue;
            };
            // Direct alloca/global dereferences carry no computation.
            if matches!(addr, Value::Global(_))
                || addr
                    .as_instr()
                    .map(|id| matches!(f.instr(id).kind, InstrKind::Alloca { .. }))
                    .unwrap_or(false)
                || addr.is_const()
            {
                stats.direct_accesses += 1;
                continue;
            }
            let Some(loc) = f.instr(access).loc else {
                stats.infeasible += 1;
                continue;
            };
            let key = RecoveryKey::for_loc(app, loc);
            if table.lookup(&key).is_some() {
                // Debug-tuple collision: first kernel wins (the paper
                // resolves collisions at generation time; our builder makes
                // them impossible, so this is defensive).
                continue;
            }

            match extract_kernel(app, f, &lv, &ms, access, addr, config) {
                Some(ext) => {
                    let kidx = kernel_module.funcs.len();
                    let symbol = format!("care_recovery_k{}_{}", kidx, key.hex());
                    let Some((kernel_fn, param_specs, reqs)) =
                        build_kernel(app, f, fid, &symbol, kidx, &ext)
                    else {
                        stats.infeasible += 1;
                        continue;
                    };
                    stats.total_kernel_instrs += ext.stmts.len();
                    stats.num_kernels += 1;
                    let kfid = kernel_module.add_func(kernel_fn);
                    table.insert(
                        key,
                        TableEntry { symbol, kernel: kfid, params: param_specs },
                    );
                    die_requests.extend(reqs);
                }
                None => stats.infeasible += 1,
            }
        }
    }

    stats.pass_seconds = t0.elapsed().as_secs_f64();
    stats.liveness_seconds = liveness_time;
    ArmorOutput { kernel_module, table, die_requests, stats }
}

/// The memory region an address is statically known to point into.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MemRoot {
    /// A specific stack slot.
    Alloca(InstrId),
    /// A specific global.
    Global(GlobalId),
    /// Could be anything (loaded/argument/phi pointers).
    Unknown,
}

fn mem_root(f: &Function, addr: Value) -> MemRoot {
    match addr {
        Value::Global(g) => MemRoot::Global(g),
        Value::Instr(id) => match &f.instr(id).kind {
            InstrKind::Alloca { .. } => MemRoot::Alloca(id),
            InstrKind::Gep { base, .. } => mem_root(f, *base),
            InstrKind::Cast { val, .. } => mem_root(f, *val),
            _ => MemRoot::Unknown,
        },
        _ => MemRoot::Unknown,
    }
}

fn roots_may_alias(a: MemRoot, b: MemRoot) -> bool {
    matches!(a, MemRoot::Unknown) || matches!(b, MemRoot::Unknown) || a == b
}

/// Store-interference scan for one function.
///
/// A kernel *re-executes* every load cloned into it, so a cloned load is
/// only sound when the memory it reads cannot have changed between the
/// load execution that produced the access's address and the access itself.
/// This scan answers, conservatively, "may any store (or opaque call) that
/// aliases the load's region execute after the load and before the access,
/// on a path that does not re-execute the load?" — paths that pass through
/// the load again are harmless (the re-execution refreshes the value), which
/// is what keeps loop-resident loads clonable when the aliasing store sits
/// later in the same iteration.
struct MemScan {
    /// `(block index, intra-block position)` of every block-resident instr.
    pos: HashMap<InstrId, (usize, usize)>,
    /// `reach[a][b]`: can control leave block `a` and later enter block `b`
    /// (paths of ≥ 1 CFG edge, so `reach[a][a]` means `a` sits on a cycle)?
    reach: Vec<Vec<bool>>,
    /// Block successors, for the load-avoiding path search.
    succs: Vec<Vec<usize>>,
    /// Stores and opaque calls, with the region each may write.
    clobbers: Vec<(InstrId, MemRoot)>,
}

impl MemScan {
    fn new(f: &Function, cfg: &Cfg) -> MemScan {
        let n = cfg.len();
        let mut pos = HashMap::new();
        let mut clobbers = Vec::new();
        for (bid, b) in f.block_iter() {
            for (i, &iid) in b.instrs.iter().enumerate() {
                pos.insert(iid, (bid.0 as usize, i));
                match &f.instr(iid).kind {
                    InstrKind::Store { ptr, .. } => clobbers.push((iid, mem_root(f, *ptr))),
                    InstrKind::Call { callee, .. } => match callee {
                        Callee::Intrinsic(intr) if intr.is_simple_math() => {}
                        _ => clobbers.push((iid, MemRoot::Unknown)),
                    },
                    _ => {}
                }
            }
        }
        let mut reach = vec![vec![false; n]; n];
        for (b, row) in reach.iter_mut().enumerate() {
            let mut stack: Vec<usize> = cfg.succs[b].iter().map(|s| s.0 as usize).collect();
            while let Some(x) = stack.pop() {
                if !row[x] {
                    row[x] = true;
                    stack.extend(cfg.succs[x].iter().map(|s| s.0 as usize));
                }
            }
        }
        let succs = (0..n)
            .map(|b| cfg.succs[b].iter().map(|s| s.0 as usize).collect())
            .collect();
        MemScan { pos, reach, succs, clobbers }
    }

    /// Is there an execution path on which `x` runs strictly before `y`?
    /// Unplaced instructions answer `true` (conservative).
    fn may_precede(&self, x: InstrId, y: InstrId) -> bool {
        let (Some(&(bx, px)), Some(&(by, py))) = (self.pos.get(&x), self.pos.get(&y)) else {
            return true;
        };
        (bx == by && px < py) || self.reach[bx][by]
    }

    /// May re-executing `load` at `access` observe different memory?
    ///
    /// A store matters only when some path runs it after the *last*
    /// execution of the load and before the access — that is, when a path
    /// `store → access` exists that does not pass through the load again
    /// (re-executing the load refreshes the value the kernel observes, so
    /// earlier stores are harmless).
    fn load_clobbered(&self, f: &Function, load: InstrId, access: InstrId) -> bool {
        let InstrKind::Load { ptr, .. } = f.instr(load).kind else {
            return true;
        };
        let root = mem_root(f, ptr);
        self.clobbers.iter().any(|&(s, sroot)| {
            roots_may_alias(root, sroot)
                && self.may_precede(load, s)
                && self.reaches_avoiding(s, access, load)
        })
    }

    /// Is there a path on which `s` runs strictly before `a` with `l` never
    /// executing in between? Unplaced instructions answer `true`.
    fn reaches_avoiding(&self, s: InstrId, a: InstrId, l: InstrId) -> bool {
        let (Some(&(bs, ps)), Some(&(ba, pa)), Some(&(bl, pl))) =
            (self.pos.get(&s), self.pos.get(&a), self.pos.get(&l))
        else {
            return true;
        };
        // Straight-line within one block: the segment executes exactly the
        // instructions between `s` and `a`.
        if bs == ba && ps < pa && !(bl == bs && ps < pl && pl < pa) {
            return true;
        }
        // Otherwise control leaves `bs`, executing its tail after `s`.
        if bl == bs && pl > ps {
            return false;
        }
        // Block-level search. Intermediate blocks are traversed in full, so
        // `l`'s block is off-limits; arriving at the target block executes
        // its prefix up to `a`, which re-runs `l` when `l` sits above `a`.
        let enter_ok = !(bl == ba && pl < pa);
        let mut seen = vec![false; self.succs.len()];
        let mut stack: Vec<usize> = self.succs[bs].clone();
        while let Some(x) = stack.pop() {
            if seen[x] {
                continue;
            }
            seen[x] = true;
            if x == ba && enter_ok {
                return true;
            }
            if x == bl {
                continue;
            }
            stack.extend(self.succs[x].iter().copied());
        }
        false
    }
}

/// The backward slice of one address computation.
struct Extraction {
    /// Cloned statements, in original program order.
    stmts: Vec<InstrId>,
    /// Kernel parameters, in discovery order.
    params: Vec<Value>,
    /// The address operand (to be returned by the kernel).
    addr: Value,
}

/// Is `v` a value Safeguard can *fetch* at recovery time?
///
/// Extraction stop cases (paper §3.2): allocas are stack slots addressable
/// by frame offset, globals are constant pointers, and the ABI parks
/// arguments in well-known locations — all presumed addressable. Everything
/// register-allocated — phis, call results and ordinary instructions — must
/// be live at the protected instruction `I`, or a register-reuse would feed
/// a stale value into the kernel; ordinary instructions additionally need a
/// non-local use, which is what guarantees machine-dependent lowering keeps
/// them in a register or spill slot rather than folding them away.
/// Values folded into the access's machine address mode: the `gep` feeding
/// the access plus its operands. x86 lowering folds the address computation
/// into the access itself (`disp(base,index,scale)`), so these values are
/// register operands *of the faulting instruction* and thus live at the
/// fault — even when IR-level liveness says they die at the `gep` (the
/// paper's Figure 4 store pattern).
fn folded_address_values(f: &Function, access: InstrId) -> HashSet<Value> {
    let mut set = HashSet::new();
    if let Some(addr) = f.instr(access).addr_operand() {
        set.insert(addr);
        if let Value::Instr(g) = addr {
            if let InstrKind::Gep { base, index, .. } = f.instr(g).kind {
                set.insert(base);
                set.insert(index);
            }
        }
    }
    set
}

/// Everything the Figure-5 recursion consults about one protected access:
/// the function and its analyses, the access, and the pass configuration.
struct SliceCtx<'a> {
    f: &'a Function,
    lv: &'a Liveness,
    ms: &'a MemScan,
    folded: HashSet<Value>,
    at: InstrId,
    config: ArmorConfig,
}

fn fetchable(cx: &SliceCtx<'_>, v: Value) -> bool {
    if cx.folded.contains(&v) {
        return true;
    }
    if !cx.config.strict_liveness {
        // Ablation: trust every value to still be around. The backend's DIE
        // ranges then decide at runtime — usually unfavourably.
        return true;
    }
    match v {
        Value::ConstInt(..) | Value::ConstFloat(..) | Value::ConstNull => true,
        Value::Global(_) => true, // constant pointer via symbol table
        Value::Arg(_) => true,    // incoming-argument slot/register
        Value::Instr(id) => match &cx.f.instr(id).kind {
            // Allocas are stack storage: always addressable by frame offset.
            InstrKind::Alloca { .. } => true,
            // Phis are ordinary register-allocated temporaries once lowered;
            // a phi that is dead at the access may have had its register
            // reused, and fetching it would feed garbage into the kernel.
            InstrKind::Phi { .. } | InstrKind::Call { .. } => cx.lv.value_live_at(v, cx.at),
            _ => cx.lv.value_live_at(v, cx.at) && cx.lv.value_has_nonlocal_use(v),
        },
    }
}

/// The paper's `isExpandable(V, MemAccInst)` (Figure 5), memoised.
fn is_expandable(cx: &SliceCtx<'_>, memo: &mut HashMap<Value, bool>, v: Value) -> bool {
    if let Some(&r) = memo.get(&v) {
        return r;
    }
    let result = expandable_uncached(cx, memo, v);
    memo.insert(v, result);
    result
}

fn expandable_uncached(cx: &SliceCtx<'_>, memo: &mut HashMap<Value, bool>, v: Value) -> bool {
    let id = match v {
        // Constants are trivially recomputable; globals/arguments are
        // start-points (parameters), never expanded.
        Value::ConstInt(..) | Value::ConstFloat(..) | Value::ConstNull => return true,
        Value::Global(_) | Value::Arg(_) => return false,
        Value::Instr(id) => id,
    };
    match &cx.f.instr(id).kind {
        InstrKind::Alloca { .. } | InstrKind::Phi { .. } => false,
        InstrKind::Call { callee, .. } => match callee {
            // Simple math intrinsics behave like ordinary binary operators;
            // anything else is a complex call that terminates extraction.
            Callee::Intrinsic(i) if i.is_simple_math() => operands_available(cx, memo, id),
            _ => false,
        },
        InstrKind::Store { .. }
        | InstrKind::Br { .. }
        | InstrKind::CondBr { .. }
        | InstrKind::Ret { .. } => false,
        // Loads are re-executed against (ECC-protected) memory, so cloning
        // one is only sound when no store can have changed what it reads
        // between the original load and the access.
        InstrKind::Load { .. } => {
            !cx.ms.load_clobbered(cx.f, id, cx.at) && operands_available(cx, memo, id)
        }
        InstrKind::Gep { .. }
        | InstrKind::Bin { .. }
        | InstrKind::Icmp { .. }
        | InstrKind::Fcmp { .. }
        | InstrKind::Cast { .. }
        | InstrKind::Select { .. } => operands_available(cx, memo, id),
    }
}

/// Figure 5's per-operand test: each operand must be live at the protected
/// instruction, or itself recomputable.
fn operands_available(cx: &SliceCtx<'_>, memo: &mut HashMap<Value, bool>, id: InstrId) -> bool {
    cx.f.instr(id)
        .operands()
        .into_iter()
        .all(|op| fetchable(cx, op) || is_expandable(cx, memo, op))
}

/// The paper's `getParamsAndStmts`: partition the backward slice into cloned
/// statements and kernel parameters. Returns `None` when some parameter is
/// not fetchable (the fault would be unrecoverable; no kernel is emitted).
fn extract_kernel(
    _app: &Module,
    f: &Function,
    lv: &Liveness,
    ms: &MemScan,
    access: InstrId,
    addr: Value,
    config: ArmorConfig,
) -> Option<Extraction> {
    let cx = SliceCtx {
        f,
        lv,
        ms,
        folded: folded_address_values(f, access),
        at: access,
        config,
    };
    let mut memo = HashMap::new();
    let mut stmts: HashSet<InstrId> = HashSet::new();
    let mut params: Vec<Value> = Vec::new();
    let mut seen_params: HashSet<Value> = HashSet::new();
    let mut work: Vec<Value> = vec![addr];
    let mut visited: HashSet<Value> = HashSet::new();

    while let Some(v) = work.pop() {
        if v.is_const() || !visited.insert(v) {
            continue;
        }
        if is_expandable(&cx, &mut memo, v) {
            // Expandable non-constants are instructions by construction; if
            // that invariant ever breaks, refuse the kernel instead of
            // panicking mid-pass.
            let id = v.as_instr()?;
            stmts.insert(id);
            for op in f.instr(id).operands() {
                if !op.is_const() {
                    work.push(op);
                }
            }
        } else {
            if !fetchable(&cx, v) {
                return None; // dead, non-recomputable input: no kernel
            }
            if seen_params.insert(v) {
                params.push(v);
            }
        }
    }

    // Emit statements in dependency order (defs before uses). Block order
    // cannot be used: transformations like inlining append blocks out of
    // execution order. The slice is acyclic (phis are never statements), so
    // a simple ready-list schedule terminates.
    let param_set: HashSet<Value> = params.iter().copied().collect();
    let mut remaining: Vec<InstrId> = stmts.iter().copied().collect();
    remaining.sort(); // deterministic
    let stmt_set = stmts;
    let mut emitted: HashSet<InstrId> = HashSet::new();
    let mut ordered: Vec<InstrId> = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let before = ordered.len();
        remaining.retain(|&id| {
            let ready = f.instr(id).operands().into_iter().all(|op| {
                op.is_const()
                    || matches!(op, Value::Global(_))
                    || param_set.contains(&op)
                    || match op {
                        Value::Instr(d) => !stmt_set.contains(&d) || emitted.contains(&d),
                        _ => true,
                    }
            });
            if ready {
                ordered.push(id);
                emitted.insert(id);
                false
            } else {
                true
            }
        });
        if ordered.len() == before {
            // Operand outside both params and the slice (should be
            // impossible); refuse to build a bad kernel.
            return None;
        }
    }

    Some(Extraction { stmts: ordered, params, addr })
}

/// Clone the extraction into a standalone kernel function and produce the
/// table parameter specs plus DIE requests. Returns `None` if a statement
/// operand resolves to neither a parameter nor an earlier-cloned statement
/// (a broken slice — the access is then counted infeasible, not panicked).
fn build_kernel(
    app: &Module,
    f: &Function,
    fid: FuncId,
    symbol: &str,
    kernel_index: usize,
    ext: &Extraction,
) -> Option<(Function, Vec<ParamSpec>, Vec<DieRequest>)> {
    let param_tys: Vec<Ty> = ext
        .params
        .iter()
        .map(|&p| tinyir::module::value_ty(f, p).unwrap_or(Ty::I64))
        .collect();
    let mut kf = Function::new(symbol, param_tys, Some(Ty::Ptr));
    let entry = kf.entry();

    let param_index: HashMap<Value, u32> = ext
        .params
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();
    let mut cloned: HashMap<InstrId, InstrId> = HashMap::new();
    let map_value = |v: Value, cloned: &HashMap<InstrId, InstrId>| -> Option<Value> {
        if let Some(&pi) = param_index.get(&v) {
            return Some(Value::Arg(pi));
        }
        match v {
            Value::Instr(id) => cloned.get(&id).map(|&c| Value::Instr(c)),
            other => Some(other),
        }
    };

    for &sid in &ext.stmts {
        let mut instr = f.instr(sid).clone();
        let mut unresolved = false;
        instr.map_operands(|v| match map_value(v, &cloned) {
            Some(mapped) => mapped,
            None => {
                unresolved = true;
                v
            }
        });
        if unresolved {
            return None;
        }
        let new_id = kf.push_instr(entry, instr);
        cloned.insert(sid, new_id);
    }
    let ret_val = map_value(ext.addr, &cloned)?;
    kf.push_instr(entry, Instr::new(InstrKind::Ret { val: Some(ret_val) }));

    let mut specs = Vec::with_capacity(ext.params.len());
    let mut reqs = Vec::new();
    for (i, &p) in ext.params.iter().enumerate() {
        match p {
            Value::Global(g) => specs.push(ParamSpec::GlobalAddr {
                name: app.global(g).name.clone(),
            }),
            Value::ConstInt(..) | Value::ConstFloat(..) | Value::ConstNull => {
                specs.push(ParamSpec::Const(
                    tinyir::interp::const_bits(p).unwrap_or(0),
                ));
            }
            Value::Instr(_) | Value::Arg(_) => {
                let name = format!("care_p_{kernel_index}_{i}");
                specs.push(ParamSpec::Die { name: name.clone() });
                reqs.push(DieRequest { func: fid, value: p, name });
            }
        }
    }
    Some((kf, specs, reqs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::builder::ModuleBuilder;
    use tinyir::verify::verify_module;

    /// The paper's Figure 2 stencil: phitmp[(mzeta+1)*(igrid[i]-igrid_in)+k].
    fn stencil_module() -> Module {
        let mut mb = ModuleBuilder::new("gtcp", "gtcp.c");
        let phitmp = mb.global_zeroed("phitmp", Ty::F64, 4096);
        let igrid = mb.global_zeroed("igrid", Ty::I64, 128);
        mb.define(
            "chargei",
            vec![Ty::I64, Ty::I64, Ty::I64, Ty::I64],
            Some(Ty::F64),
            |fb| {
                let (mzeta, igrid_in, n, kmax) = (fb.arg(0), fb.arg(1), fb.arg(2), fb.arg(3));
                let acc = fb.alloca(Ty::F64, 1);
                fb.store(Value::f64(0.0), acc);
                fb.for_loop(Value::i64(0), n, |fb, i| {
                    fb.for_loop(Value::i64(0), kmax, |fb, k| {
                        let gi = fb.load_elem(fb.global(igrid), i, Ty::I64);
                        let m1 = fb.add(mzeta, Value::i64(1), Ty::I64);
                        let d = fb.sub(gi, igrid_in, Ty::I64);
                        let p = fb.mul(m1, d, Ty::I64);
                        let idx = fb.add(p, k, Ty::I64);
                        let v = fb.load_elem(fb.global(phitmp), idx, Ty::F64);
                        let a = fb.load(acc, Ty::F64);
                        let s = fb.fadd(a, v, Ty::F64);
                        fb.store(s, acc);
                    });
                });
                let r = fb.load(acc, Ty::F64);
                fb.ret(Some(r));
            },
        );
        mb.finish()
    }

    #[test]
    fn builds_kernels_for_stencil_accesses() {
        let m = stencil_module();
        let out = run_armor(&m);
        // Kernels exist for the igrid load and the phitmp load; direct
        // alloca accesses are skipped.
        assert!(out.stats.num_kernels >= 2, "{:?}", out.stats);
        assert!(out.stats.direct_accesses >= 3, "acc loads/stores are direct");
        verify_module(&out.kernel_module).unwrap();
        assert_eq!(out.table.len(), out.stats.num_kernels);
    }

    #[test]
    fn kernel_recomputes_the_address() {
        // Execute the phitmp kernel via the interpreter with the app's
        // global layout and check it reproduces base + idx*8.
        let m = stencil_module();
        let out = run_armor(&m);
        // Find the kernel whose parameter list mentions phitmp... the
        // phitmp kernel takes (mzeta, igrid_in, i-phi, k-phi) style params
        // plus the global. Identify it as the kernel with the most params.
        let (key, entry) = out
            .table
            .iter()
            .max_by_key(|(_, e)| e.params.len())
            .unwrap();
        let _ = key;
        // Lay out the APP globals; run the kernel module against them.
        use tinyir::mem::Memory;
        let mut mem = tinyir::mem::PagedMemory::new();
        let gaddrs = tinyir::interp::layout_globals(&m, &mut mem, 0x1000_0000);
        // Fill igrid[3] = 17.
        let igrid_gid = m.global_by_name("igrid").unwrap();
        mem.store(gaddrs[igrid_gid.0 as usize] + 3 * 8, 8, 17).unwrap();

        let mut interp = tinyir::interp::Interp::new(
            &out.kernel_module,
            &mut mem,
            &gaddrs,
            0x7f00_0000_0000,
            0x7f00_0100_0000,
            0x6000_0000_0000,
            1_000_000,
        );
        // Kernel params in discovery order; build the argument values:
        // mzeta=2, igrid_in=5, i=3, k=4 — whichever order, supply via spec
        // inspection.
        let kf = &out.kernel_module.func(entry.kernel);
        assert_eq!(kf.params.len(), entry.params.len());
        // The kernel of interest must reference the phitmp global
        // internally (cloned gep) or via param.
        let phitmp_gid = m.global_by_name("phitmp").unwrap();
        let phitmp_addr = gaddrs[phitmp_gid.0 as usize];
        // Synthesise argument bits: for this structured test we map DIE
        // params positionally to the known loop values.
        // Resolve each DIE param back to its IR value via the requests:
        // mzeta = Arg(0) -> 2, igrid_in = Arg(1) -> 5, loop phis (i, k) -> 3.
        let mut args = Vec::new();
        for spec in &entry.params {
            match spec {
                ParamSpec::GlobalAddr { name } => {
                    let gid = m.global_by_name(name).unwrap();
                    args.push(gaddrs[gid.0 as usize]);
                }
                ParamSpec::Const(v) => args.push(*v),
                ParamSpec::Die { name } => {
                    let req = out
                        .die_requests
                        .iter()
                        .find(|r| &r.name == name)
                        .expect("request for die param");
                    args.push(match req.value {
                        Value::Arg(0) => 2, // mzeta
                        Value::Arg(1) => 5, // igrid_in
                        _ => 3,             // induction variables i and k
                    });
                }
            }
        }
        let got = interp.call(entry.kernel, &args).unwrap().unwrap();
        // idx = (mzeta+1)*(igrid[3]-igrid_in)+k = 3*(17-5)+3 = 39.
        let expect = phitmp_addr + 39 * 8;
        assert_eq!(got, expect, "kernel must recompute the stencil address");
    }

    #[test]
    fn induction_variable_becomes_parameter_not_statement() {
        let m = stencil_module();
        let out = run_armor(&m);
        // No kernel may clone a phi: phis are extraction stop points.
        for f in &out.kernel_module.funcs {
            assert!(
                !f.instrs
                    .iter()
                    .any(|i| matches!(i.kind, InstrKind::Phi { .. })),
                "kernels must not contain phis"
            );
        }
    }

    #[test]
    fn complex_calls_terminate_extraction() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_zeroed("arr", Ty::F64, 64);
        let helper = mb.declare("opaque_index", vec![Ty::I64], Some(Ty::I64));
        mb.define("user", vec![Ty::I64], Some(Ty::F64), |fb| {
            let idx = fb.call(helper, vec![fb.arg(0)]);
            let i2 = fb.add(idx, Value::i64(1), Ty::I64);
            let v = fb.load_elem(fb.global(g), i2, Ty::F64);
            fb.ret(Some(v));
        });
        mb.define("opaque_index", vec![Ty::I64], Some(Ty::I64), |fb| {
            let r = fb.mul(fb.arg(0), Value::i64(3), Ty::I64);
            fb.ret(Some(r));
        });
        let m = mb.finish();
        let out = run_armor(&m);
        // The kernel for arr[f(x)+1] must take the call result as a
        // parameter, not clone the call.
        let entry = out.table.iter().next().map(|(_, e)| e.clone());
        if let Some(e) = entry {
            let kf = out.kernel_module.func(e.kernel);
            assert!(
                !kf.instrs
                    .iter()
                    .any(|i| matches!(i.kind, InstrKind::Call { callee: Callee::Func(_), .. })),
                "complex calls must not be cloned"
            );
        }
    }

    #[test]
    fn simple_math_calls_are_cloned() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_zeroed("arr", Ty::F64, 4096);
        mb.define("user", vec![Ty::F64, Ty::I64], Some(Ty::F64), |fb| {
            // idx = (i64)sqrt(x) + n*2 — sqrt is extraction-transparent.
            let r = fb.sqrt(fb.arg(0));
            let ri = fb.cast(tinyir::CastOp::FpToSi, r, Ty::I64);
            let n2 = fb.mul(fb.arg(1), Value::i64(2), Ty::I64);
            let idx = fb.add(ri, n2, Ty::I64);
            let v = fb.load_elem(fb.global(g), idx, Ty::F64);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        let out = run_armor(&m);
        assert_eq!(out.stats.num_kernels, 1);
        let (_, e) = out.table.iter().next().unwrap();
        let kf = out.kernel_module.func(e.kernel);
        assert!(
            kf.instrs
                .iter()
                .any(|i| matches!(i.kind, InstrKind::Call { callee: Callee::Intrinsic(_), .. })),
            "sqrt should be cloned into the kernel"
        );
        // Its params are the global base plus x and n (the app arguments).
        assert_eq!(e.params.len(), 3);
        let dies = e
            .params
            .iter()
            .filter(|p| matches!(p, ParamSpec::Die { .. }))
            .count();
        assert_eq!(dies, 2);
    }

    #[test]
    fn stats_cover_table5_shape() {
        let m = stencil_module();
        let out = run_armor(&m);
        assert!(out.stats.avg_addr_ops() > 0.5);
        assert!(out.stats.multi_op_fraction() > 0.0);
        assert!(out.stats.pass_seconds >= out.stats.liveness_seconds);
    }

    #[test]
    fn die_requests_reference_live_values() {
        let m = stencil_module();
        let out = run_armor(&m);
        assert!(!out.die_requests.is_empty());
        for r in &out.die_requests {
            assert!(r.name.starts_with("care_p_"));
            // Each request targets an arg or instruction value.
            assert!(matches!(r.value, Value::Arg(_) | Value::Instr(_)));
        }
        // Names are unique.
        let mut names: Vec<&String> = out.die_requests.iter().map(|r| &r.name).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn dead_phi_is_not_a_kernel_parameter() {
        // A diamond-join phi whose only use is the address slice is dead at
        // the access; its register may be reused, so no kernel may take it.
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_zeroed("arr", Ty::I64, 64);
        mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
            let cond = fb.icmp(tinyir::ICmp::Slt, fb.arg(0), Value::i64(1));
            let t = fb.new_block("t");
            let e = fb.new_block("e");
            let j = fb.new_block("j");
            fb.cond_br(cond, t, e);
            fb.switch_to(t);
            fb.br(j);
            fb.switch_to(e);
            fb.br(j);
            fb.switch_to(j);
            let p = fb.phi(vec![(t, Value::i64(3)), (e, fb.arg(0))], Ty::I64);
            let scaled = fb.mul(p, Value::i64(5), Ty::I64);
            let idx = fb.bin(tinyir::BinOp::And, scaled, Value::i64(63), Ty::I64);
            let v = fb.load_elem(fb.global(g), idx, Ty::I64);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        let out = run_armor(&m);
        // The slice must stop at the folded gep index (a live register
        // operand of the faulting access) instead of reaching through the
        // dead phi and taking it as a parameter.
        let main = m.func_by_name("main").unwrap();
        let f = m.func(main);
        for r in &out.die_requests {
            if let Value::Instr(id) = r.value {
                assert!(
                    !matches!(f.instr(id).kind, InstrKind::Phi { .. }),
                    "dead phi {id:?} leaked into kernel parameters"
                );
            }
        }
        assert_eq!(out.stats.num_kernels, 1, "{:?}", out.stats);
    }

    #[test]
    fn clobbered_load_is_not_cloned() {
        // arr[1] feeds the address of an access inside a loop that also
        // stores to arr[1]: re-executing the load in the kernel would read
        // the clobbered value and recompute a different address.
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_zeroed("arr", Ty::I64, 128);
        mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
            let acc = fb.alloca(Ty::I64, 1);
            fb.store(fb.arg(0), acc);
            let seed = fb.load_elem(fb.global(g), Value::i64(1), Ty::I64);
            fb.for_loop(Value::i64(0), Value::i64(2), |fb, _iv| {
                let cur = fb.load(acc, Ty::I64);
                let mixed = fb.add(cur, seed, Ty::I64);
                let idx = fb.bin(tinyir::BinOp::And, mixed, Value::i64(127), Ty::I64);
                let v = fb.load_elem(fb.global(g), idx, Ty::I64);
                fb.store_elem(v, fb.global(g), Value::i64(1), Ty::I64);
                let upd = fb.add(cur, v, Ty::I64);
                fb.store(upd, acc);
            });
            let r = fb.load(acc, Ty::I64);
            fb.ret(Some(r));
        });
        let out = run_armor(&mb.finish());
        // No kernel may re-execute a load from `arr` (the clobbered region):
        // the `seed` load must instead come in as a live DIE parameter. The
        // `acc` stack slot is fair game — its only store runs after the
        // access, and the loop path back re-executes the load first.
        for kf in &out.kernel_module.funcs {
            for (i, instr) in kf.instrs.iter().enumerate() {
                if let InstrKind::Load { ptr, .. } = instr.kind {
                    assert!(
                        !matches!(mem_root(kf, ptr), MemRoot::Global(_)),
                        "kernel {} instr {i} re-executes a clobberable load from a global",
                        kf.name
                    );
                }
            }
        }
    }

    #[test]
    fn stores_to_disjoint_regions_do_not_block_cloning() {
        // The stencil's acc-alloca stores must not stop loads from the
        // disjoint `igrid` global being cloned (root-based alias check).
        let m = stencil_module();
        let out = run_armor(&m);
        let any_cloned_load = out
            .kernel_module
            .funcs
            .iter()
            .any(|kf| kf.instrs.iter().any(|i| matches!(i.kind, InstrKind::Load { .. })));
        assert!(any_cloned_load, "igrid load should still be cloned into the phitmp kernel");
    }
}
