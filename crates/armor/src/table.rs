//! The Recovery Table: key → (kernel symbol, parameter descriptors).
//!
//! The paper (§3.3, Table 6) stores three pieces of information per memory
//! access instruction: a **key** (MD5 of the `(file, line, col)` debug
//! tuple), a **symbol** naming the recovery kernel in the recovery library,
//! and **parameters** describing how to fetch the kernel's inputs from the
//! stopped process. The prototype serialises the table with protobuf; we
//! hand-roll an equivalent length-prefixed binary codec so that table
//! encode/decode cost and size are modelled, not waved away.

use crate::md5::{hex, md5};
use std::collections::HashMap;
use tinyir::{DebugLoc, FuncId, Module};

/// A recovery-table key: MD5 digest of `"<file>:<line>:<col>"`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RecoveryKey(pub [u8; 16]);

impl RecoveryKey {
    /// Compute the key for a debug location, rendering the interned file id
    /// through the module's file table (the paper hashes the file *name*).
    pub fn for_loc(module: &Module, loc: DebugLoc) -> RecoveryKey {
        let text = format!("{}:{}:{}", module.file_name(loc.file), loc.line, loc.col);
        RecoveryKey(md5(text.as_bytes()))
    }

    /// Hex form (used in kernel symbol names).
    pub fn hex(&self) -> String {
        hex(&self.0)
    }
}

/// How Safeguard obtains one kernel argument from the stopped process.
#[derive(Clone, PartialEq, Debug)]
pub enum ParamSpec {
    /// Look up the named variable DIE, resolve its location list at the
    /// faulting PC, and read the register or frame slot.
    Die { name: String },
    /// The address of a global variable — a "constant pointer" resolvable
    /// through the symbol table, no DIE needed.
    GlobalAddr { name: String },
    /// An inline constant (always uncontaminated).
    Const(u64),
}

/// One recovery-table entry.
#[derive(Clone, PartialEq, Debug)]
pub struct TableEntry {
    /// Kernel symbol in the recovery library.
    pub symbol: String,
    /// Function index within the recovery-kernel module.
    pub kernel: FuncId,
    /// Argument descriptors, in kernel-parameter order.
    pub params: Vec<ParamSpec>,
}

/// The recovery table.
#[derive(Clone, Default, Debug)]
pub struct RecoveryTable {
    entries: HashMap<RecoveryKey, TableEntry>,
}

impl RecoveryTable {
    /// Empty table.
    pub fn new() -> RecoveryTable {
        RecoveryTable::default()
    }

    /// Register a kernel under `key`.
    pub fn insert(&mut self, key: RecoveryKey, entry: TableEntry) {
        self.entries.insert(key, entry);
    }

    /// Look up the kernel for a key (Safeguard's first step after mapping
    /// the faulting PC through the line table).
    pub fn lookup(&self, key: &RecoveryKey) -> Option<&TableEntry> {
        self.entries.get(key)
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no kernels are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&RecoveryKey, &TableEntry)> {
        self.entries.iter()
    }

    /// Serialise to the length-prefixed binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * 64);
        out.extend_from_slice(b"CARE");
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        // Deterministic order for reproducible artefacts.
        let mut keys: Vec<&RecoveryKey> = self.entries.keys().collect();
        keys.sort();
        for k in keys {
            let e = &self.entries[k];
            out.extend_from_slice(&k.0);
            put_str(&mut out, &e.symbol);
            out.extend_from_slice(&e.kernel.0.to_le_bytes());
            out.extend_from_slice(&(e.params.len() as u32).to_le_bytes());
            for p in &e.params {
                match p {
                    ParamSpec::Die { name } => {
                        out.push(0);
                        put_str(&mut out, name);
                    }
                    ParamSpec::GlobalAddr { name } => {
                        out.push(1);
                        put_str(&mut out, name);
                    }
                    ParamSpec::Const(v) => {
                        out.push(2);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Deserialise from [`RecoveryTable::encode`]'s format.
    pub fn decode(data: &[u8]) -> Result<RecoveryTable, String> {
        let mut cur = Cursor { data, pos: 0 };
        if cur.take(4)? != b"CARE" {
            return Err("bad magic".into());
        }
        let n = cur.u32()? as usize;
        // Each entry occupies at least key(16) + symbol-len(4) + kernel(4)
        // + param-count(4) bytes; a count beyond that bound means the
        // artefact is damaged — reject it rather than over-allocating.
        if n > data.len() / 28 {
            return Err(format!("implausible entry count {n}"));
        }
        let mut entries = HashMap::with_capacity(n);
        for _ in 0..n {
            let mut key = [0u8; 16];
            key.copy_from_slice(cur.take(16)?);
            let symbol = cur.string()?;
            let kernel = FuncId(cur.u32()?);
            let np = cur.u32()? as usize;
            let mut params = Vec::with_capacity(np);
            for _ in 0..np {
                let tag = cur.take(1)?[0];
                params.push(match tag {
                    0 => ParamSpec::Die { name: cur.string()? },
                    1 => ParamSpec::GlobalAddr { name: cur.string()? },
                    2 => {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(cur.take(8)?);
                        ParamSpec::Const(u64::from_le_bytes(b))
                    }
                    t => return Err(format!("bad param tag {t}")),
                });
            }
            entries.insert(RecoveryKey(key), TableEntry { symbol, kernel, params });
        }
        Ok(RecoveryTable { entries })
    }

    /// Encoded size in bytes (memory-overhead accounting).
    pub fn encoded_size(&self) -> u64 {
        self.encode().len() as u64
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err("truncated table".into());
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, String> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }
    fn string(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        if n > 1 << 20 {
            return Err("implausible string length".into());
        }
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::{FileId, Module};

    fn sample_table() -> (RecoveryTable, RecoveryKey) {
        let mut m = Module::new("m");
        let f = m.intern_file("gtcp.c");
        let key = RecoveryKey::for_loc(&m, DebugLoc::new(f, 156, 9));
        let mut t = RecoveryTable::new();
        t.insert(
            key,
            TableEntry {
                symbol: "care_recovery_k1".into(),
                kernel: FuncId(0),
                params: vec![
                    ParamSpec::Die { name: "care_p_0".into() },
                    ParamSpec::GlobalAddr { name: "phitmp".into() },
                    ParamSpec::Const(42),
                ],
            },
        );
        (t, key)
    }

    #[test]
    fn keys_depend_on_all_tuple_parts() {
        let mut m = Module::new("m");
        let f1 = m.intern_file("a.c");
        let f2 = m.intern_file("b.c");
        let base = RecoveryKey::for_loc(&m, DebugLoc::new(f1, 10, 2));
        assert_ne!(base, RecoveryKey::for_loc(&m, DebugLoc::new(f2, 10, 2)));
        assert_ne!(base, RecoveryKey::for_loc(&m, DebugLoc::new(f1, 11, 2)));
        assert_ne!(base, RecoveryKey::for_loc(&m, DebugLoc::new(f1, 10, 3)));
        assert_eq!(base, RecoveryKey::for_loc(&m, DebugLoc::new(f1, 10, 2)));
        let _ = FileId(0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let (t, key) = sample_table();
        let bytes = t.encode();
        let t2 = RecoveryTable::decode(&bytes).unwrap();
        assert_eq!(t2.len(), 1);
        assert_eq!(t2.lookup(&key), t.lookup(&key));
    }

    #[test]
    fn decode_rejects_corruption() {
        let (t, _) = sample_table();
        let mut bytes = t.encode();
        bytes[0] = b'X'; // magic
        assert!(RecoveryTable::decode(&bytes).is_err());
        let bytes = t.encode();
        assert!(RecoveryTable::decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn lookup_miss_returns_none() {
        let (t, _) = sample_table();
        let other = RecoveryKey(md5(b"nope"));
        assert!(t.lookup(&other).is_none());
    }
}
