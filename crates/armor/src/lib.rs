//! # armor — CARE's compiler half
//!
//! Armor is the LLVM-pass analogue of the paper (§3.2–§3.3): for every
//! memory-access instruction it extracts the backward slice of the address
//! computation ([`extract`]), clones it into a recovery-kernel function in a
//! standalone library module, and registers the kernel in the
//! [`table::RecoveryTable`] keyed by the MD5 ([`md5`]) of the instruction's
//! `(file, line, col)` debug tuple.

pub mod extract;
pub mod md5;
pub mod table;

pub use extract::{run_armor, run_armor_with, ArmorConfig, ArmorOutput, ArmorStats};
pub use table::{ParamSpec, RecoveryKey, RecoveryTable, TableEntry};
