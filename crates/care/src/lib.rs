//! # care — the public face of the CARE reproduction
//!
//! CARE (SC '19) lets scientific applications survive crash-causing
//! transient faults: a compiler pass (**Armor**, crate `armor`) clones every
//! memory access's address computation into a *recovery kernel*, and a
//! runtime (**Safeguard**, crate `safeguard`) catches `SIGSEGV`, recomputes
//! the corrupted address with the matching kernel and patches the faulting
//! instruction's index register.
//!
//! This crate wires the whole pipeline together:
//!
//! ```
//! use care::prelude::*;
//! use tinyir::builder::ModuleBuilder;
//! use tinyir::{Ty, Value};
//!
//! // A tiny app with a real address computation.
//! let mut mb = ModuleBuilder::new("demo", "demo.c");
//! let g = mb.global_init("t", Ty::I64, 32, tinyir::GlobalInit::I64s((0..32).collect()));
//! mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
//!     let idx = fb.mul(fb.arg(0), Value::i64(3), Ty::I64);
//!     let v = fb.load_elem(fb.global(g), idx, Ty::I64);
//!     fb.ret(Some(v));
//! });
//! let module = mb.finish();
//!
//! // Compile with CARE at -O1, build a protected process, run it.
//! let app = care::compile(&module, OptLevel::O1);
//! let (mut process, mut sg) = care::protected_process(&app, &[]);
//! process.start("main", &[5]);
//! match run_protected(&mut process, &mut sg, 8) {
//!     ProtectedExit::Completed { result, .. } => assert_eq!(result, Some(15)),
//!     other => panic!("{other:?}"),
//! }
//! ```

pub mod pipeline;

pub use pipeline::{
    build_process, compile, compile_baseline, compile_with, memory_overhead, protected_process,
    BuildStats, CompiledApp, MemoryOverhead,
};

// The observability layer rides along with the facade so downstream users
// can attach a recorder to the `*_with_hooks` entry points without naming
// the crate themselves.
pub use telemetry;

/// Convenient re-exports for downstream users.
pub mod prelude {
    pub use crate::pipeline::{compile, compile_baseline, protected_process, CompiledApp};
    pub use armor::{ArmorOutput, ArmorStats, RecoveryTable};
    pub use opt::OptLevel;
    pub use safeguard::{
        run_protected, run_protected_with_hooks, DeclineReason, ProtectedExit, RecoveryOutcome,
        Safeguard,
    };
    pub use simx::{ModuleId, Process, RunExit, Trap, TrapKind};
    pub use telemetry::{Hooks, NoTelemetry, Recorder};
}
