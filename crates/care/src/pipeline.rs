//! The CARE build pipeline: TinyIR → optimisation → Armor → SimISA.
//!
//! [`compile`] is the analogue of `clang -fplugin=armor.so`: it runs the
//! optimisation level under evaluation, the Armor pass (recovery-kernel
//! extraction + recovery table + DIE requests) and the SimISA backend, and
//! returns everything a protected process needs. [`compile_baseline`] is the
//! plain compiler, used to measure the "normal compilation" column of
//! Table 8.

use armor::{run_armor_with, ArmorConfig, ArmorOutput};
use opt::{optimize, OptLevel, OptStats};
use simx::{compile_module, MachineModule, ModuleId, Process};
use safeguard::Safeguard;
use std::sync::Arc;
use std::time::Instant;
use tinyir::Module;

/// Build-time measurements (Table 8 columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Seconds for the plain compile (opt + codegen, no Armor).
    pub normal_compile_s: f64,
    /// Additional seconds spent in the Armor pass.
    pub armor_s: f64,
    /// Seconds of Armor spent in liveness analysis.
    pub armor_liveness_s: f64,
    /// Optimisation statistics.
    pub opt: OptStats,
}

/// A CARE-compiled application or library module.
///
/// The machine module sits behind an `Arc` so that every process built from
/// this app shares the one compiled copy — cloning a `CompiledApp` and
/// building processes from it never duplicates code, debug data or IR.
#[derive(Clone, Debug)]
pub struct CompiledApp {
    /// The machine code + debug data (shared, immutable).
    pub machine: Arc<MachineModule>,
    /// Armor's artefacts (kernel library, recovery table, stats).
    pub armor: ArmorOutput,
    /// The optimisation level used.
    pub opt_level: OptLevel,
    /// Build-time measurements.
    pub build: BuildStats,
}

impl CompiledApp {
    /// Total encoded size of the protection artefacts for this module.
    pub fn artefact_bytes(&self) -> u64 {
        self.armor.table.encoded_size()
            + self
                .armor
                .kernel_module
                .funcs
                .iter()
                .map(|f| f.instrs.len() as u64 * 16)
                .sum::<u64>()
    }
}

/// Compile `module` at `level` with CARE protection (paper defaults).
pub fn compile(module: &Module, level: OptLevel) -> CompiledApp {
    compile_with(module, level, ArmorConfig::default())
}

/// Compile with an explicit Armor configuration (ablation studies).
pub fn compile_with(module: &Module, level: OptLevel, config: ArmorConfig) -> CompiledApp {
    let mut ir = module.clone();
    let t0 = Instant::now();
    let opt_stats = optimize(&mut ir, level);
    let armor_t = Instant::now();
    let armor_out = run_armor_with(&ir, config);
    let armor_s = armor_t.elapsed().as_secs_f64();
    let cg_t = Instant::now();
    let machine = compile_module(&ir, level == OptLevel::O1, &armor_out.die_requests);
    let cg_s = cg_t.elapsed().as_secs_f64();
    let normal_compile_s = (armor_t - t0).as_secs_f64() + cg_s;
    CompiledApp {
        machine: Arc::new(machine),
        armor: armor_out,
        opt_level: level,
        build: BuildStats {
            normal_compile_s,
            armor_s,
            armor_liveness_s: 0.0,
            opt: opt_stats,
        },
    }
    .with_liveness_stat()
}

impl CompiledApp {
    fn with_liveness_stat(mut self) -> CompiledApp {
        self.build.armor_liveness_s = self.armor.stats.liveness_seconds;
        self
    }
}

/// Compile `module` at `level` without CARE (no Armor, no DIEs): the
/// baseline whose compile time Table 8 compares against.
pub fn compile_baseline(module: &Module, level: OptLevel) -> (MachineModule, f64) {
    let mut ir = module.clone();
    let t0 = Instant::now();
    optimize(&mut ir, level);
    let machine = compile_module(&ir, level == OptLevel::O1, &[]);
    (machine, t0.elapsed().as_secs_f64())
}

/// Build a (started-but-not-running) process from a compiled executable and
/// shared libraries. The single constructor every campaign, benchmark and
/// test goes through: it only bumps `Arc` refcounts on the compiled modules,
/// so per-injection process construction is O(globals + stack mapping).
pub fn build_process<'a>(
    exe: &CompiledApp,
    libs: impl IntoIterator<Item = &'a CompiledApp>,
) -> Process {
    Process::new(
        Arc::clone(&exe.machine),
        libs.into_iter().map(|l| Arc::clone(&l.machine)).collect(),
    )
}

/// Assemble a protected process from a compiled executable plus shared
/// libraries, registering every module's recovery artefacts with a fresh
/// Safeguard (the `LD_PRELOAD` moment).
pub fn protected_process(exe: &CompiledApp, libs: &[&CompiledApp]) -> (Process, Safeguard) {
    let process = build_process(exe, libs.iter().copied());
    let mut sg = Safeguard::new();
    sg.protect(ModuleId(0), &exe.armor);
    for (i, lib) in libs.iter().enumerate() {
        sg.protect(ModuleId(i as u32 + 1), &lib.armor);
    }
    (process, sg)
}

/// Memory-overhead accounting, reproducing the paper's "fixed 27 MB"
/// claim: Safeguard's resident footprint is constant (runtime libraries),
/// while kernels stay on disk until a fault and tables are compact.
#[derive(Clone, Copy, Debug)]
pub struct MemoryOverhead {
    /// Fixed resident bytes (27 MB in the paper; constant across apps).
    pub fixed_resident: u64,
    /// Encoded recovery-table bytes held in memory.
    pub tables: u64,
    /// Recovery-library bytes — loaded only during a recovery, then
    /// released (zero during normal execution).
    pub lazy_kernel_bytes: u64,
}

impl MemoryOverhead {
    /// Overhead during fault-free execution.
    pub fn steady_state_bytes(&self) -> u64 {
        self.fixed_resident + self.tables
    }
}

/// Compute the memory overhead of protecting the given modules.
pub fn memory_overhead(apps: &[&CompiledApp]) -> MemoryOverhead {
    MemoryOverhead {
        fixed_resident: safeguard::SAFEGUARD_RESIDENT_BYTES,
        tables: apps.iter().map(|a| a.armor.table.encoded_size()).sum(),
        lazy_kernel_bytes: apps
            .iter()
            .map(|a| {
                a.armor
                    .kernel_module
                    .funcs
                    .iter()
                    .map(|f| f.instrs.len() as u64 * 16)
                    .sum::<u64>()
            })
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeguard::{run_protected, ProtectedExit};
    use tinyir::builder::ModuleBuilder;
    use tinyir::{Ty, Value};

    fn saxpy_like() -> Module {
        let mut mb = ModuleBuilder::new("app", "app.c");
        let x = mb.global_init(
            "x",
            Ty::F64,
            128,
            tinyir::GlobalInit::F64s((0..128).map(|i| i as f64).collect()),
        );
        let y = mb.global_zeroed("y", Ty::F64, 128);
        mb.define("main", vec![Ty::I64], Some(Ty::F64), |fb| {
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
                let xv = fb.load_elem(fb.global(x), iv, Ty::F64);
                let ax = fb.fmul(Value::f64(2.0), xv, Ty::F64);
                fb.store_elem(ax, fb.global(y), iv, Ty::F64);
            });
            let acc = fb.alloca(Ty::F64, 1);
            fb.store(Value::f64(0.0), acc);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
                let yv = fb.load_elem(fb.global(y), iv, Ty::F64);
                let a = fb.load(acc, Ty::F64);
                let s = fb.fadd(a, yv, Ty::F64);
                fb.store(s, acc);
            });
            let r = fb.load(acc, Ty::F64);
            fb.ret(Some(r));
        });
        mb.finish()
    }

    #[test]
    fn o0_and_o1_produce_identical_results() {
        let m = saxpy_like();
        let expected: f64 = (0..100).map(|i| 2.0 * i as f64).sum();
        for level in [OptLevel::O0, OptLevel::O1] {
            let app = compile(&m, level);
            let (mut p, mut sg) = protected_process(&app, &[]);
            p.start("main", &[100]);
            match run_protected(&mut p, &mut sg, 8) {
                ProtectedExit::Completed { result, recoveries, .. } => {
                    assert_eq!(f64::from_bits(result.unwrap()), expected, "{level}");
                    assert_eq!(recoveries, 0);
                }
                other => panic!("{level}: {other:?}"),
            }
        }
    }

    #[test]
    fn care_artifacts_are_produced() {
        let m = saxpy_like();
        let app = compile(&m, OptLevel::O1);
        assert!(app.armor.stats.num_kernels >= 2);
        assert!(!app.armor.die_requests.is_empty());
        assert!(!app.machine.debug.line_table.is_empty());
        assert!(app.build.normal_compile_s >= 0.0);
        assert!(app.build.armor_s > 0.0);
    }

    #[test]
    fn steady_state_memory_overhead_is_fixed_plus_tables() {
        let m = saxpy_like();
        let app0 = compile(&m, OptLevel::O0);
        let app1 = compile(&m, OptLevel::O1);
        let o = memory_overhead(&[&app0, &app1]);
        assert_eq!(o.fixed_resident, 27 * 1024 * 1024);
        assert!(o.tables > 0);
        assert!(o.steady_state_bytes() >= o.fixed_resident);
        // Kernels are lazy: they do not count toward steady state.
        assert!(o.steady_state_bytes() < o.fixed_resident + o.tables + 1 + o.lazy_kernel_bytes);
    }

    #[test]
    fn baseline_compile_is_faster_than_care_compile() {
        let m = saxpy_like();
        let (machine, secs) = compile_baseline(&m, OptLevel::O1);
        assert!(machine.code_size > 0);
        assert!(secs >= 0.0);
        let app = compile(&m, OptLevel::O1);
        // Armor overhead is real extra work on top of the normal compile.
        assert!(app.build.armor_s > 0.0);
    }
}
