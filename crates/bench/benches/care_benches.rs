//! Criterion benches for the CARE pipeline, one group per paper artefact:
//!
//! * `armor_pass`        — Table 8's "Armor overhead" column: recovery-kernel
//!   extraction time per workload.
//! * `normal_compile`    — Table 8's "normal compilation" column.
//! * `recovery_path`     — Figure 9: one Safeguard activation end-to-end
//!   (diagnose → table → kernel → patch) on a real trapped process.
//! * `campaign`          — Tables 2–4: injection-classification throughput.
//! * `campaign_throughput` — end-to-end CARE coverage-campaign throughput
//!   (snapshot-forking engine): full `Campaign::run` with `evaluate_care`.
//! * `cluster_step`      — Figure 10: BSP virtual-time simulation of a
//!   512-rank job.
//! * `table_codec`       — recovery-table encode/decode (the protobuf
//!   analogue Safeguard pays on every fault).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use faultsim::{Campaign, CampaignConfig};
use opt::OptLevel;
use safeguard::Safeguard;
use simx::{ModuleId, RunExit};

fn bench_armor_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("armor_pass");
    for w in workloads::all() {
        let mut ir = w.module.clone();
        opt::optimize(&mut ir, OptLevel::O1);
        g.bench_function(w.name, |b| {
            b.iter(|| armor::run_armor(std::hint::black_box(&ir)))
        });
    }
    g.finish();
}

fn bench_normal_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("normal_compile");
    for w in workloads::all() {
        g.bench_function(w.name, |b| {
            b.iter(|| care::compile_baseline(std::hint::black_box(&w.module), OptLevel::O1))
        });
    }
    g.finish();
}

/// Build a process frozen at a recoverable SIGSEGV, plus its Safeguard —
/// the same deterministic victim the safeguard hardening tests use: a loop
/// whose array index register is corrupted in the window between its
/// definition and its use.
fn trapped_process() -> (simx::Process, Safeguard, simx::Trap) {
    use tinyir::builder::ModuleBuilder;
    use tinyir::{Ty, Value};
    let mut mb = ModuleBuilder::new("victim", "victim.c");
    let t = mb.global_init(
        "t",
        Ty::I64,
        64,
        tinyir::GlobalInit::I64s((0..64).collect()),
    );
    mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
        let acc = fb.alloca(Ty::I64, 1);
        fb.store(Value::i64(0), acc);
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
            let i2 = fb.mul(iv, Value::i64(2), Ty::I64);
            let v = fb.load_elem(fb.global(t), i2, Ty::I64);
            let a = fb.load(acc, Ty::I64);
            let s = fb.add(a, v, Ty::I64);
            fb.store(s, acc);
        });
        let r = fb.load(acc, Ty::I64);
        fb.ret(Some(r));
    });
    let m = mb.finish();
    let app = care::compile(&m, OptLevel::O1);
    let fid = app.machine.func_by_name("main").unwrap();
    let mf = &app.machine.funcs[fid.0 as usize];
    let (mem_idx, mem_op) = mf
        .instrs
        .iter()
        .enumerate()
        .find_map(|(i, inst)| {
            inst.mem_operand()
                .filter(|mo| mo.index.is_some() && mo.base != Some(simx::FP))
                .map(|mo| (i, *mo))
        })
        .expect("indexed memory operand");
    let idx_reg = mem_op.index.unwrap();
    let def_idx = mf.instrs[..mem_idx]
        .iter()
        .rposition(|inst| inst.dest_reg() == Some(idx_reg))
        .expect("index definition");
    let mut p = simx::Process::new(app.machine.clone(), vec![]);
    p.start("main", &[20]);
    p.break_at = Some((ModuleId(0), fid, def_idx, 5));
    assert_eq!(p.run(), RunExit::BreakHit);
    let v = p.read_reg(idx_reg);
    p.write_reg(idx_reg, v ^ (1 << 44));
    match p.run() {
        RunExit::Trapped(t) if matches!(t.kind, simx::TrapKind::Segv(_)) => {
            let mut sg = Safeguard::new();
            sg.protect(ModuleId(0), &app.armor);
            (p, sg, t)
        }
        other => panic!("expected a SIGSEGV trap, got {other:?}"),
    }
}

static VICTIM_ARMOR: std::sync::OnceLock<armor::ArmorOutput> = std::sync::OnceLock::new();

fn bench_recovery_path(c: &mut Criterion) {
    let (proto, sg0, trap) = trapped_process();
    drop(sg0);
    // Re-derive the protecting artefacts once for the per-iteration setup.
    let armor_out = VICTIM_ARMOR.get_or_init(|| {
        // The process's ir module is embedded in its image; re-run Armor.
        armor::run_armor(&proto.image.modules[0].module.ir)
    });
    c.bench_function("recovery_path/handle_trap", |b| {
        b.iter_batched(
            || {
                let mut sg = Safeguard::new();
                sg.protect(ModuleId(0), armor_out);
                (proto.clone(), sg)
            },
            |(mut p, mut sg)| sg.handle_trap(&mut p, trap),
            BatchSize::SmallInput,
        )
    });
}

fn bench_campaign(c: &mut Criterion) {
    let w = workloads::hpccg::build(3, 2);
    let app = care::compile(&w.module, OptLevel::O0);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let cfg = CampaignConfig { injections: 1, seed: 1, ..CampaignConfig::default() };
    c.bench_function("campaign/one_injection", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            campaign.run_one(&cfg, i)
        })
    });
}

fn bench_campaign_throughput(c: &mut Criterion) {
    use faultsim::Scheduler;
    let mut g = c.benchmark_group("campaign_throughput");
    for w in [workloads::hpccg::default(), workloads::gtcp::default()] {
        let app = care::compile(&w.module, OptLevel::O1);
        let campaign = Campaign::prepare(&w, app, vec![]);
        // Same seed and injection set under both schedulers: the delta is
        // pure scheduling (shared cursor pass vs per-injection prefixes).
        for (label, scheduler) in [
            ("trellis", Scheduler::Trellis),
            ("per_injection", Scheduler::PerInjection),
        ] {
            let cfg = CampaignConfig {
                injections: 50,
                evaluate_care: true,
                app_only: true,
                seed: 7,
                scheduler,
                ..CampaignConfig::default()
            };
            g.bench_function(format!("{label}/{}", w.name), |b| {
                b.iter(|| campaign.run(&cfg))
            });
        }
        // The compiled direct-threaded backend on the same injection set:
        // the delta vs `trellis/*` above is pure execution-engine speedup
        // (records are bit-identical; see tests/golden.rs).
        let cfg = CampaignConfig {
            injections: 50,
            evaluate_care: true,
            app_only: true,
            seed: 7,
            scheduler: Scheduler::Trellis,
            engine: faultsim::EngineKind::Compiled,
            ..CampaignConfig::default()
        };
        g.bench_function(format!("compiled/{}", w.name), |b| {
            b.iter(|| campaign.run(&cfg))
        });
        // The observability claim: a live telemetry recorder must cost ≤2%
        // on end-to-end campaign throughput (compare against trellis above;
        // the NoTelemetry path above is the 0%-regression baseline).
        let cfg = CampaignConfig {
            injections: 50,
            evaluate_care: true,
            app_only: true,
            seed: 7,
            scheduler: Scheduler::Trellis,
            ..CampaignConfig::default()
        };
        let rec = telemetry::Recorder::new();
        g.bench_function(format!("trellis_telemetry/{}", w.name), |b| {
            b.iter(|| campaign.run_with_hooks(&cfg, &rec))
        });
    }
    // Raw interpreter throughput: one full hook-free (fast-loop) run from a
    // snapshot-forked started process — the per-injection inner cost every
    // campaign number above decomposes into. Cloning the template is the
    // same CoW fork the engine does, so setup per iteration is O(pages).
    for w in [workloads::hpccg::default(), workloads::gtcp::default()] {
        let app = care::compile(&w.module, OptLevel::O1);
        let mut template = simx::Process::new(app.machine.clone(), vec![]);
        template.start(w.entry, &w.args);
        g.bench_function(format!("raw_interp/{}", w.name), |b| {
            b.iter_batched(
                || template.clone(),
                |mut p| match p.run() {
                    RunExit::Done(_) => p.steps,
                    other => panic!("fault-free run failed: {other:?}"),
                },
                BatchSize::SmallInput,
            )
        });
        // Same run on the compiled engine — the microbenchmark behind the
        // compiled/raw_interp campaign-level ratio.
        let engine = simx::CompiledEngine::for_image(&template.image);
        g.bench_function(format!("raw_compiled/{}", w.name), |b| {
            b.iter_batched(
                || template.clone(),
                |mut p| match simx::ExecutionEngine::run(&engine, &mut p) {
                    RunExit::Done(_) => p.steps,
                    other => panic!("fault-free run failed: {other:?}"),
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_cluster(c: &mut Criterion) {
    let cfg = cluster::ClusterConfig::default();
    c.bench_function("cluster/512rank_100step_job", |b| {
        b.iter(|| cluster::simulate_fault_free(std::hint::black_box(&cfg)))
    });
}

fn bench_table_codec(c: &mut Criterion) {
    let w = workloads::gtcp::default();
    let app = care::compile(&w.module, OptLevel::O1);
    let encoded = app.armor.table.encode();
    c.bench_function("table/encode", |b| b.iter(|| app.armor.table.encode()));
    c.bench_function("table/decode", |b| {
        b.iter(|| armor::RecoveryTable::decode(std::hint::black_box(&encoded)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_armor_pass, bench_normal_compile, bench_recovery_path,
              bench_campaign, bench_campaign_throughput, bench_cluster,
              bench_table_codec
}
criterion_main!(benches);
