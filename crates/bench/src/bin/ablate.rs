//! `ablate` — ablation studies for the design choices DESIGN.md §5 calls
//! out. Each ablation flips one mechanism and reruns the §5 coverage
//! campaign, quantifying why the paper's design is the way it is.
//!
//! ```text
//! ablate [--injections N] [liveness|patch|guard|lazy|all]
//! ```

use bench::{prepare, pct, Table};
use faultsim::{Campaign, CampaignConfig, FaultModel};
use opt::OptLevel;

fn main() {
    let mut injections = 200usize;
    let mut which = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--injections" => {
                injections = it.next().and_then(|v| v.parse().ok()).expect("N")
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }
    let want = |n: &str| which.iter().any(|w| w == n || w == "all");
    let seed = 0xAB1A7E;

    if want("liveness") {
        // Ablation 1: drop the terminal-value liveness rule. Armor then
        // emits kernels whose parameters may be gone at runtime; coverage
        // falls because Safeguard must decline (or the kernel reads junk and
        // the equality guard kills the repair).
        let mut t = Table::new(
            "Ablation: terminal-value liveness rule (O1 coverage)",
            &["Workload", "strict (paper)", "relaxed"],
        );
        for w in bench::section5_workloads() {
            let strict = {
                let p = prepare(&w, OptLevel::O1);
                p.campaign
                    .run(&cfg(injections, seed))
                    .coverage()
            };
            let relaxed = {
                let app = care::compile_with(
                    &w.module,
                    OptLevel::O1,
                    armor::ArmorConfig { strict_liveness: false },
                );
                let c = Campaign::prepare(&w, app, vec![]);
                c.run(&cfg(injections, seed)).coverage()
            };
            t.row(vec![w.name.into(), pct(strict), pct(relaxed)]);
        }
        println!("{}", t.render());
    }

    if want("patch") {
        // Ablation 2: base-first instead of index-first patching.
        let mut t = Table::new(
            "Ablation: operand patching strategy (O1 coverage)",
            &["Workload", "index-first (paper)", "base-first"],
        );
        for w in bench::section5_workloads() {
            let p = prepare(&w, OptLevel::O1);
            let idx_first = p.campaign.run(&cfg(injections, seed)).coverage();
            let base_first = p
                .campaign
                .run(&CampaignConfig { patch_base_first: true, ..cfg(injections, seed) })
                .coverage();
            t.row(vec![w.name.into(), pct(idx_first), pct(base_first)]);
        }
        println!("{}", t.render());
    }

    if want("guard") {
        // Ablation 3: remove the §5.2 address-equality guard. Repairs of
        // contaminated-input kernels then "succeed" — and silently corrupt
        // the output, exactly the SDC substitution the paper criticises in
        // RCV/LetGo.
        let mut t = Table::new(
            "Ablation: address-equality guard (O0)",
            &["Workload", "guarded: covered", "unguarded: covered", "unguarded: survived w/ SDC"],
        );
        for w in bench::section5_workloads() {
            let p = prepare(&w, OptLevel::O0);
            let guarded = p.campaign.run(&cfg(injections, seed));
            let unguarded = p.campaign.run(&CampaignConfig {
                skip_equality_guard: true,
                ..cfg(injections, seed)
            });
            t.row(vec![
                w.name.into(),
                format!("{}/{}", guarded.care_covered, guarded.care_evaluated),
                format!("{}/{}", unguarded.care_covered, unguarded.care_evaluated),
                unguarded.care_survived_with_sdc.to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    if want("lazy") {
        // Ablation 4: eager vs lazy kernel-library loading — the paper's
        // lazy design trades recovery latency for a zero steady-state
        // kernel footprint.
        let mut t = Table::new(
            "Ablation: lazy vs eager recovery-library loading",
            &[
                "Workload",
                "steady-state bytes (lazy)",
                "steady-state bytes (eager)",
                "recovery ms (lazy)",
                "recovery ms (eager)",
            ],
        );
        for w in bench::section5_workloads() {
            let p = prepare(&w, OptLevel::O0);
            let r = p.campaign.run(&CampaignConfig {
                evaluate_care: true,
                app_only: true,
                injections,
                seed,
                ..CampaignConfig::default()
            });
            let o = care::memory_overhead(&[&p.app]);
            // Eager loading pre-pays dlopen: subtract it from the recovery
            // path, add the kernels to the resident set.
            let cost = safeguard::CostModel::default();
            let dlopen = cost.dlopen_base_ms
                + p.app.armor.stats.num_kernels as f64 * cost.dlopen_per_kernel_ms;
            t.row(vec![
                w.name.into(),
                o.steady_state_bytes().to_string(),
                (o.steady_state_bytes() + o.lazy_kernel_bytes).to_string(),
                format!("{:.1}", r.mean_recovery_ms()),
                format!("{:.1}", (r.mean_recovery_ms() - dlopen).max(0.0)),
            ]);
        }
        println!("{}", t.render());
    }
}

fn cfg(injections: usize, seed: u64) -> CampaignConfig {
    CampaignConfig {
        injections,
        model: FaultModel::SingleBit,
        seed,
        evaluate_care: true,
        app_only: true,
        ..CampaignConfig::default()
    }
}
