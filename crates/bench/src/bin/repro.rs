//! `repro` — regenerate every table and figure of the CARE paper.
//!
//! ```text
//! repro [--injections N] [--seed S] [--threads N] [experiments...]
//!
//! experiments: table2 table3 table4 table5 table8 table9 table10 table11
//!              fig7 fig9 fig10 fig12 all            (default: all)
//!              bench-json   (explicit only: writes BENCH_campaign.json
//!                            with campaign-throughput measurements)
//! ```
//!
//! The default injection count (300 per workload) keeps a full regeneration
//! to minutes on a laptop; pass `--injections 10000` for paper-scale
//! campaigns. All campaigns are deterministic in the seed.

use bench::{
    coverage_campaign, manifestation_campaign, pct, prepare, section2_workloads,
    section5_workloads, PreparedWorkload, Table,
};
use cluster::{simulate_fault_free, simulate_faulty, ClusterConfig, Resilience};
use faultsim::{CampaignConfig, CampaignReport, FaultModel};
use opt::OptLevel;
use std::collections::HashMap;

struct Args {
    injections: usize,
    seed: u64,
    threads: Option<usize>,
    experiments: Vec<String>,
}

fn parse_args() -> Args {
    let mut injections = 300;
    let mut seed = 0xCA2E;
    let mut threads = None;
    let mut experiments = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--injections" => {
                injections = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--injections N");
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&t: &usize| t >= 1)
                        .expect("--threads N (N >= 1)"),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--injections N] [--seed S] [--threads N] [table2|table3|table4|table5|table8|table9|table10|table11|fig7|fig9|fig10|fig12|bench-json|all]..."
                );
                std::process::exit(0);
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".into());
    }
    const KNOWN: &[&str] = &[
        "table2", "table3", "table4", "table5", "table8", "table9", "table10", "table11",
        "fig7", "fig9", "fig10", "fig12", "bench-json", "all",
    ];
    for e in &experiments {
        if !KNOWN.contains(&e.as_str()) {
            eprintln!("error: unknown experiment '{e}' (see repro --help)");
            std::process::exit(2);
        }
    }
    Args { injections, seed, threads, experiments }
}

/// `repro bench-json`: time end-to-end CARE coverage campaigns on the full
/// five-workload app suite (HPCCG, CoMD, miniFE, miniMD, GTC-P) and write
/// the measurements to `BENCH_campaign.json` in the current directory
/// (hand-rolled JSON; the container has no serde).
fn bench_json(injections: usize, seed: u64) {
    use std::fmt::Write as _;
    use std::time::Instant;
    eprintln!(
        "[repro] timing CARE coverage campaigns ({injections} injections/workload)..."
    );
    let mut entries = Vec::new();
    for w in section2_workloads() {
        let p = prepare(&w, OptLevel::O1);
        let t0 = Instant::now();
        let r = coverage_campaign(&p, injections, FaultModel::SingleBit, seed);
        let wall_s = t0.elapsed().as_secs_f64();
        let mut e = String::new();
        write!(
            e,
            "    {{\n      \"workload\": \"{}\",\n      \"opt_level\": \"O1\",\n      \
             \"injections\": {},\n      \"classified\": {},\n      \
             \"care_evaluated\": {},\n      \"care_covered\": {},\n      \
             \"wall_s\": {:.6},\n      \"injections_per_sec\": {:.2},\n      \
             \"simulated_instructions\": {},\n      \
             \"simulated_instructions_per_sec\": {:.0},\n      \
             \"sim_steps_prefix\": {},\n      \"sim_steps_suffix\": {},\n      \
             \"sim_steps_care\": {},\n      \"trellis_snapshots\": {}\n    }}",
            p.name,
            injections,
            r.total(),
            r.care_evaluated,
            r.care_covered,
            wall_s,
            injections as f64 / wall_s,
            r.simulated_steps,
            r.simulated_steps as f64 / wall_s,
            r.steps_prefix,
            r.steps_suffix,
            r.steps_care,
            r.trellis_snapshots,
        )
        .unwrap();
        eprintln!(
            "[repro]   {}: {:.2} injections/sec, {:.2e} simulated instrs/sec",
            p.name,
            injections as f64 / wall_s,
            r.simulated_steps as f64 / wall_s,
        );
        entries.push(e);
    }
    let json = format!(
        "{{\n  \"campaign\": \"coverage (evaluate_care, app_only)\",\n  \
         \"scheduler\": \"trellis\",\n  \"seed\": {seed},\n  \
         \"threads\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rayon::current_num_threads(),
        entries.join(",\n")
    );
    std::fs::write("BENCH_campaign.json", json).expect("write BENCH_campaign.json");
    eprintln!("[repro] wrote BENCH_campaign.json");
}

fn main() {
    let args = parse_args();
    if let Some(t) = args.threads {
        // The rayon shim reads CARE_THREADS when sizing its worker pool;
        // set it before any campaign fans out.
        std::env::set_var("CARE_THREADS", t.to_string());
    }
    let want = |name: &str| {
        args.experiments.iter().any(|e| e == name || e == "all")
    };

    // Explicit-only (not part of `all`): perf measurement artefact.
    if args.experiments.iter().any(|e| e == "bench-json") {
        bench_json(args.injections, args.seed);
        if args.experiments.iter().all(|e| e == "bench-json") {
            return;
        }
    }

    // §2 campaigns (single-bit, whole program) are shared by Tables 2-4.
    let mut s2: Option<Vec<(PreparedWorkload, CampaignReport)>> = None;
    let mut s2_reports = |inj: usize, seed: u64| -> Vec<(String, CampaignReport)> {
        if s2.is_none() {
            eprintln!("[repro] running §2 single-bit campaigns ({inj} injections/workload)...");
            s2 = Some(
                section2_workloads()
                    .iter()
                    .map(|w| {
                        let p = prepare(w, OptLevel::O0);
                        let r = manifestation_campaign(&p, inj, FaultModel::SingleBit, seed);
                        (p, r)
                    })
                    .collect(),
            );
        }
        s2.as_ref()
            .unwrap()
            .iter()
            .map(|(p, r)| (p.name.to_string(), r.clone()))
            .collect()
    };

    if want("table2") {
        let mut t = Table::new(
            "Table 2: overall outcomes of fault injections (single-bit)",
            &["Workload", "Benign", "SoftFailure", "SDC", "Hang"],
        );
        for (name, r) in s2_reports(args.injections, args.seed) {
            t.row(vec![
                name,
                r.benign.to_string(),
                r.soft_failure.to_string(),
                r.sdc.to_string(),
                r.hang.to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    if want("table3") {
        let mut t = Table::new(
            "Table 3: breakdown of soft failures by symptom",
            &["Workload", "SIGSEGV", "SIGBUS", "SIGABRT", "Other"],
        );
        for (name, r) in s2_reports(args.injections, args.seed) {
            t.row(vec![
                name,
                r.signals[0].to_string(),
                r.signals[1].to_string(),
                r.signals[2].to_string(),
                r.signals[3].to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    if want("table4") {
        let mut t = Table::new(
            "Table 4: manifestation-latency distribution of soft failures",
            &["Workload", "<=10", "11~50", "51~400", ">400"],
        );
        for (name, r) in s2_reports(args.injections, args.seed) {
            let total: usize = r.latency_buckets.iter().sum::<usize>().max(1);
            t.row(vec![
                name,
                pct(r.latency_buckets[0] as f64 / total as f64),
                pct(r.latency_buckets[1] as f64 / total as f64),
                pct(r.latency_buckets[2] as f64 / total as f64),
                pct(r.latency_buckets[3] as f64 / total as f64),
            ]);
        }
        println!("{}", t.render());
    }

    if want("table5") {
        let mut t = Table::new(
            "Table 5: memory accesses with multi-op address computations",
            &["", "HPCCG", "CoMD", "miniFE", "miniMD", "GTC-P"],
        );
        let mut frac = vec!["No. Insts".to_string()];
        let mut avg = vec!["Avg. No. ops".to_string()];
        let order = ["HPCCG", "CoMD", "miniFE", "miniMD", "GTC-P"];
        let mut by_name = HashMap::new();
        for w in section2_workloads() {
            // The paper's Table 5 counts address computations of the *real*
            // data accesses; measure on the optimised IR, where scalar
            // stack-slot traffic (an -O0 artefact) has been promoted away.
            let app = care::compile(&w.module, OptLevel::O1);
            by_name.insert(w.name, app.armor.stats.clone());
        }
        for name in order {
            let s = &by_name[name];
            frac.push(pct(s.multi_op_fraction()));
            avg.push(format!("{:.2}", s.avg_addr_ops()));
        }
        t.row(frac);
        t.row(avg);
        println!("{}", t.render());
    }

    if want("table8") {
        let mut t = Table::new(
            "Table 8: statistics of recovery kernels",
            &[
                "",
                "Num. kernels",
                "Avg IR instrs",
                "Normal compile (s)",
                "Armor overhead (s)",
                "Liveness share",
            ],
        );
        for w in section5_workloads() {
            let app = care::compile(&w.module, OptLevel::O0);
            let s = &app.armor.stats;
            t.row(vec![
                w.name.to_string(),
                s.num_kernels.to_string(),
                format!("{:.2}", s.avg_kernel_instrs()),
                format!("{:.4}", app.build.normal_compile_s),
                format!("{:.4}", s.pass_seconds),
                pct(s.liveness_seconds / s.pass_seconds.max(1e-12)),
            ]);
        }
        println!("{}", t.render());
    }

    // Figure 7 + 9 share the §5 coverage campaigns.
    let mut cov: Option<Vec<(String, String, CampaignReport)>> = None;
    let mut cov_reports = |inj: usize, seed: u64| -> Vec<(String, String, CampaignReport)> {
        if cov.is_none() {
            eprintln!("[repro] running §5 coverage campaigns (O0+O1, {inj} injections/workload)...");
            let mut all = Vec::new();
            for w in section5_workloads() {
                for level in [OptLevel::O0, OptLevel::O1] {
                    let p = prepare(&w, level);
                    let r = coverage_campaign(&p, inj, FaultModel::SingleBit, seed);
                    all.push((w.name.to_string(), level.to_string(), r));
                }
            }
            cov = Some(all);
        }
        cov.as_ref().unwrap().clone()
    };

    if want("fig7") {
        let mut t = Table::new(
            "Figure 7: fault coverage of CARE (single-bit)",
            &["Workload", "Opt", "SIGSEGV evald", "Recovered", "Coverage"],
        );
        let mut sum = 0.0;
        let mut n = 0;
        for (name, level, r) in cov_reports(args.injections, args.seed) {
            t.row(vec![
                name.clone(),
                level.clone(),
                r.care_evaluated.to_string(),
                r.care_covered.to_string(),
                pct(r.coverage()),
            ]);
            sum += r.coverage();
            n += 1;
        }
        t.row(vec![
            "average".into(),
            "".into(),
            "".into(),
            "".into(),
            pct(sum / n.max(1) as f64),
        ]);
        println!("{}", t.render());
    }

    if want("fig9") {
        let mut t = Table::new(
            "Figure 9: recovery time (modelled ms per recovered run)",
            &["Workload", "Opt", "Mean (ms)", "Activations/run"],
        );
        for (name, level, r) in cov_reports(args.injections, args.seed) {
            let runs = r.recovery_times_ms.len().max(1);
            t.row(vec![
                name.clone(),
                level.clone(),
                format!("{:.1}", r.mean_recovery_ms()),
                format!("{:.2}", r.total_recoveries as f64 / runs as f64),
            ]);
        }
        println!("{}", t.render());
    }

    if want("fig10") {
        eprintln!("[repro] running rank-0 recovery + 512-rank BSP simulation...");
        let w = workloads::gtcp::default();
        let r0 = cluster::rank0::run_rank0_with_fault(&w, OptLevel::O0, args.seed, 200)
            .expect("a CARE-recoverable fault on rank 0");
        let cfg = ClusterConfig::default();
        let base = simulate_fault_free(&cfg);
        let care_run = simulate_faulty(
            &cfg,
            cfg.timesteps / 2,
            &Resilience::Care { events: vec![(cfg.timesteps / 2, r0.recovery_ms)] },
        );
        let mut t = Table::new(
            "Figure 10: 512-rank x 6-thread GTC-P job, fault on rank 0",
            &["Scenario", "Makespan (s)", "Overhead (s)", "Restart (s)"],
        );
        let sec = |ms: f64| format!("{:.2}", ms / 1000.0);
        t.row(vec!["fault-free".into(), sec(base.makespan_ms), "0.00".into(), "0.00".into()]);
        t.row(vec![
            format!("CARE ({} recoveries, {:.1} ms)", r0.recoveries, r0.recovery_ms),
            sec(care_run.makespan_ms),
            sec(care_run.overhead_ms),
            sec(care_run.restart_ms),
        ]);
        for interval in [20u64, 50, 75] {
            // Average over fault positions, as the paper's per-interval
            // recovery times are averages (14.4 / 25.9 / 37.6 s).
            let mut mk = 0.0;
            let mut ov = 0.0;
            let mut rs = 0.0;
            let mut n = 0.0;
            for fs in (0..cfg.timesteps).step_by(7) {
                let cr = simulate_faulty(
                    &cfg,
                    fs,
                    &Resilience::CheckpointRestart {
                        interval,
                        write_ms: 800.0,
                        load_ms: 6600.0,
                        requeue_ms: 0.0,
                    },
                );
                mk += cr.makespan_ms;
                ov += cr.overhead_ms;
                rs += cr.restart_ms;
                n += 1.0;
            }
            t.row(vec![
                format!("C/R every {interval} steps (avg)"),
                sec(mk / n),
                sec(ov / n),
                sec(rs / n),
            ]);
        }
        println!("{}", t.render());
    }

    if want("table9") {
        eprintln!("[repro] running BLAS/sblat1 shared-library campaign...");
        let setup = workloads::blas::setup();
        let lib_app = care::compile(&setup.lib, OptLevel::O0);
        let drv_app = care::compile(&setup.driver.module, OptLevel::O0);
        let campaign = faultsim::Campaign::prepare(
            &setup.driver,
            drv_app.clone(),
            vec![lib_app.clone()],
        );
        let r = campaign.run(&CampaignConfig {
            injections: args.injections,
            evaluate_care: true,
            app_only: false, // faults may land in the library too
            seed: args.seed,
            ..CampaignConfig::default()
        });
        let mut t = Table::new(
            "Table 9: statistics and performance for sblat1/BLAS",
            &["", "# Kernels", "Normal compile (s)", "Armor overhead (s)", "Coverage", "Recovery (ms)"],
        );
        t.row(vec![
            "BLAS".into(),
            lib_app.armor.stats.num_kernels.to_string(),
            format!("{:.4}", lib_app.build.normal_compile_s),
            format!("{:.4}", lib_app.armor.stats.pass_seconds),
            pct(r.coverage()),
            format!("{:.1}", r.mean_recovery_ms()),
        ]);
        t.row(vec![
            "sblat1".into(),
            drv_app.armor.stats.num_kernels.to_string(),
            format!("{:.4}", drv_app.build.normal_compile_s),
            format!("{:.4}", drv_app.armor.stats.pass_seconds),
            "".into(),
            "".into(),
        ]);
        println!("{}", t.render());
    }

    // Appendix: double-bit-flip model.
    let mut s2d: Option<Vec<(String, CampaignReport)>> = None;
    let mut s2d_reports = |inj: usize, seed: u64| -> Vec<(String, CampaignReport)> {
        if s2d.is_none() {
            eprintln!("[repro] running appendix double-bit campaigns...");
            s2d = Some(
                section2_workloads()
                    .iter()
                    .map(|w| {
                        let p = prepare(w, OptLevel::O0);
                        let r = manifestation_campaign(&p, inj, FaultModel::DoubleBit, seed);
                        (p.name.to_string(), r)
                    })
                    .collect(),
            );
        }
        s2d.as_ref().unwrap().clone()
    };

    if want("table10") {
        let mut t = Table::new(
            "Table 10: overall outcomes (double-bit-flip model)",
            &["Workload", "Benign", "SoftFailure", "SDC", "Hang"],
        );
        for (name, r) in s2d_reports(args.injections, args.seed) {
            t.row(vec![
                name.clone(),
                r.benign.to_string(),
                r.soft_failure.to_string(),
                r.sdc.to_string(),
                r.hang.to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    if want("table11") {
        let mut t = Table::new(
            "Table 11: breakdown of soft failures (double-bit-flip model)",
            &["Workload", "SIGSEGV", "SIGBUS", "SIGABRT", "Other"],
        );
        for (name, r) in s2d_reports(args.injections, args.seed) {
            t.row(vec![
                name.clone(),
                r.signals[0].to_string(),
                r.signals[1].to_string(),
                r.signals[2].to_string(),
                r.signals[3].to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    if want("fig12") {
        eprintln!("[repro] running double-bit coverage campaigns...");
        let mut t = Table::new(
            "Figure 12: fault coverage (double-bit-flip model)",
            &["Workload", "Opt", "SIGSEGV evald", "Recovered", "Coverage"],
        );
        let mut sum = 0.0;
        let mut n = 0;
        for w in section5_workloads() {
            for level in [OptLevel::O0, OptLevel::O1] {
                let p = prepare(&w, level);
                let r = coverage_campaign(&p, args.injections, FaultModel::DoubleBit, args.seed);
                t.row(vec![
                    w.name.to_string(),
                    level.to_string(),
                    r.care_evaluated.to_string(),
                    r.care_covered.to_string(),
                    pct(r.coverage()),
                ]);
                sum += r.coverage();
                n += 1;
            }
        }
        t.row(vec![
            "average".into(),
            "".into(),
            "".into(),
            "".into(),
            pct(sum / n.max(1) as f64),
        ]);
        println!("{}", t.render());
    }
}
