//! `repro` — regenerate every table and figure of the CARE paper.
//!
//! ```text
//! repro [--injections N] [--seed S] [--threads N[,N,...]]
//!       [--telemetry OUT.jsonl] [--store DIR | --resume] [experiments...]
//!
//! experiments: table2 table3 table4 table5 table8 table9 table10 table11
//!              fig7 fig9 fig10 fig12 declines all   (default: all)
//!              bench-json   (explicit only: writes BENCH_campaign.json
//!                            with campaign-throughput measurements)
//!
//! repro serve  [--addr HOST:PORT] [--budget-cap N] [--max-queue N]
//!              [--store DIR]
//! repro submit [--addr HOST:PORT] [--workload NAME] [--params A,B,..]
//!              [--injections N] [--seed S] [--engine E] [--scheduler S]
//!              [--opt O0|O1] [--job-threads N] [--stats]
//!              [--bench [--clients C] [--jobs J]]
//! repro triage [--store DIR]
//! ```
//!
//! `serve` runs the `careserve` campaign server until killed. `submit`
//! sends one job to a running server and prints its report; `--stats`
//! fetches the server's counter snapshot instead. `submit --bench` times a
//! concurrent small-job batch (spawning a loopback server when `--addr` is
//! not given) and merges a `service` section into `BENCH_campaign.json`
//! (schema v5).
//!
//! `--store DIR` routes every §2/§5 campaign through a content-addressed
//! `carestore` store at DIR: records from earlier runs are reused and only
//! the residual injections execute, with reports bit-identical to a fresh
//! run. `--resume` is shorthand for `--store ./care_store` — rerunning a
//! killed invocation picks up each campaign where its log left off.
//! `serve --store DIR` gives the campaign server the same warm-store path.
//! `triage` scans a store and clusters every recorded outcome by
//! `(kind, decline, fault site)` without re-running anything.
//!
//! `--threads` takes a comma list: `bench-json` emits one BENCH row set per
//! listed thread count in a single invocation (default sweep `1,4,16`);
//! the table/figure experiments run at the first listed count.
//!
//! The default injection count (300 per workload) keeps a full regeneration
//! to minutes on a laptop; pass `--injections 10000` for paper-scale
//! campaigns. All campaigns are deterministic in the seed.
//!
//! `--telemetry OUT.jsonl` (or the `CARE_TELEMETRY` env var) attaches a
//! telemetry [`Recorder`] to every campaign and cluster simulation, prints
//! a summary table to stderr and writes the full event stream as versioned
//! JSONL. Telemetry never changes campaign results — only observes them.

use bench::{
    coverage_campaign_stored, coverage_campaign_traced, decline_rows,
    manifestation_campaign_stored, manifestation_campaign_traced, pct, prepare,
    section2_workloads, section5_workloads, PreparedWorkload, Table, BENCH_SCHEMA_VERSION,
};
use carestore::Store;
use cluster::{simulate_fault_free, simulate_faulty, simulate_faulty_traced, ClusterConfig,
    Resilience};
use faultsim::{CampaignConfig, CampaignReport, EngineKind, FaultModel};
use opt::OptLevel;
use std::collections::HashMap;
use telemetry::{Hooks, NoTelemetry, Recorder};

struct Args {
    injections: usize,
    seed: u64,
    /// `--threads` comma list; empty means "not given".
    threads: Vec<usize>,
    telemetry: Option<std::path::PathBuf>,
    engine: EngineKind,
    /// `--store DIR` / `--resume`: content-addressed record store.
    store: Option<std::path::PathBuf>,
    experiments: Vec<String>,
}

fn parse_args() -> Args {
    let mut injections = 300;
    let mut seed = 0xCA2E;
    let mut threads = Vec::new();
    let mut telemetry = None;
    let mut engine = None;
    let mut store: Option<std::path::PathBuf> = None;
    let mut experiments = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--injections" => {
                injections = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--injections N");
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--threads" => {
                let list = it.next().expect("--threads N[,N,...]");
                threads = list
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&t| t >= 1)
                            .expect("--threads N[,N,...] (N >= 1)")
                    })
                    .collect();
            }
            "--telemetry" => {
                telemetry = Some(it.next().expect("--telemetry OUT.jsonl").into());
            }
            "--store" => {
                store = Some(it.next().expect("--store DIR").into());
            }
            "--resume" => {
                store.get_or_insert_with(|| "care_store".into());
            }
            "--engine" => {
                engine = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--engine interp|compiled"),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--injections N] [--seed S] [--threads N[,N,...]] [--engine interp|compiled] [--telemetry OUT.jsonl] [--store DIR | --resume] [table2|table3|table4|table5|table8|table9|table10|table11|fig7|fig9|fig10|fig12|declines|bench-json|all]...\n       \
                     repro serve  [--addr HOST:PORT] [--budget-cap N] [--max-queue N] [--store DIR]\n       \
                     repro submit [--addr HOST:PORT] [--workload NAME] [--params A,B,..] [--injections N] [--seed S] [--engine E] [--scheduler S] [--opt O0|O1] [--job-threads N] [--stats] [--bench [--clients C] [--jobs J]]\n       \
                     repro triage [--store DIR]"
                );
                std::process::exit(0);
            }
            other => experiments.push(other.to_string()),
        }
    }
    if telemetry.is_none() {
        telemetry = std::env::var_os("CARE_TELEMETRY").map(Into::into);
    }
    // CLI wins; then the CARE_ENGINE env var; then the interpreter.
    let engine = engine
        .or_else(|| {
            std::env::var("CARE_ENGINE")
                .ok()
                .map(|v| v.parse().expect("CARE_ENGINE=interp|compiled"))
        })
        .unwrap_or_default();
    if experiments.is_empty() {
        experiments.push("all".into());
    }
    const KNOWN: &[&str] = &[
        "table2", "table3", "table4", "table5", "table8", "table9", "table10", "table11",
        "fig7", "fig9", "fig10", "fig12", "declines", "bench-json", "all",
    ];
    for e in &experiments {
        if !KNOWN.contains(&e.as_str()) {
            eprintln!("error: unknown experiment '{e}' (see repro --help)");
            std::process::exit(2);
        }
    }
    Args { injections, seed, threads, telemetry, engine, store, experiments }
}

/// §2-style campaign, routed through the global recorder when telemetry is
/// on and through the content-addressed store when `--store` is given. The
/// `(None, None)` arm monomorphizes with [`NoTelemetry`] — the same code the
/// untraced binary always ran. A store I/O failure falls back to the
/// unbacked run: persistence degrades, results do not.
fn run_manifest(
    p: &PreparedWorkload,
    inj: usize,
    model: FaultModel,
    seed: u64,
    engine: EngineKind,
    rec: Option<&Recorder>,
    store: Option<&Store>,
) -> CampaignReport {
    fn go<H: Hooks>(
        p: &PreparedWorkload,
        inj: usize,
        model: FaultModel,
        seed: u64,
        engine: EngineKind,
        hooks: &H,
        store: Option<&Store>,
    ) -> CampaignReport {
        if let Some(s) = store {
            match manifestation_campaign_stored(s, p, inj, model, seed, engine, hooks) {
                Ok(run) => {
                    report_store_run(p.name, inj, &run.stats);
                    return run.report;
                }
                Err(e) => eprintln!("[repro] store error for {} ({e}); running unbacked", p.name),
            }
        }
        manifestation_campaign_traced(p, inj, model, seed, engine, hooks)
    }
    match rec {
        Some(r) => go(p, inj, model, seed, engine, r, store),
        None => go(p, inj, model, seed, engine, &NoTelemetry, store),
    }
}

/// §5-style campaign, routed like [`run_manifest`].
fn run_coverage(
    p: &PreparedWorkload,
    inj: usize,
    model: FaultModel,
    seed: u64,
    engine: EngineKind,
    rec: Option<&Recorder>,
    store: Option<&Store>,
) -> CampaignReport {
    fn go<H: Hooks>(
        p: &PreparedWorkload,
        inj: usize,
        model: FaultModel,
        seed: u64,
        engine: EngineKind,
        hooks: &H,
        store: Option<&Store>,
    ) -> CampaignReport {
        if let Some(s) = store {
            match coverage_campaign_stored(s, p, inj, model, seed, engine, hooks) {
                Ok(run) => {
                    report_store_run(p.name, inj, &run.stats);
                    return run.report;
                }
                Err(e) => eprintln!("[repro] store error for {} ({e}); running unbacked", p.name),
            }
        }
        coverage_campaign_traced(p, inj, model, seed, engine, hooks)
    }
    match rec {
        Some(r) => go(p, inj, model, seed, engine, r, store),
        None => go(p, inj, model, seed, engine, &NoTelemetry, store),
    }
}

/// One stderr line per store-backed campaign: how much of it was warm.
fn report_store_run(name: &str, requested: usize, stats: &carestore::StoreStats) {
    eprintln!(
        "[repro]   {name}: store reused {} records, skipped {} known-benign, \
         executed {} residual ({:.0}% of {requested})",
        stats.hits,
        stats.known_skips,
        stats.misses,
        100.0 * stats.residual_fraction(requested),
    );
}

/// `repro bench-json`: time end-to-end CARE coverage campaigns on the full
/// five-workload app suite (HPCCG, CoMD, miniFE, miniMD, GTC-P) and write
/// the measurements to `BENCH_campaign.json` in the current directory
/// (hand-rolled JSON; the container has no serde).
///
/// Schema v4 ([`BENCH_SCHEMA_VERSION`]): each campaign runs under its own
/// telemetry [`Recorder`]; every workload is measured once per execution
/// backend (interpreter, then the compiled direct-threaded translator at
/// the same seed) and once per swept thread count (`--threads 1,4,16`
/// style; records are bit-identical across the sweep, only wall clock
/// moves). Rows carry the drained measurements — decline histograms,
/// software-TLB hit rates, the measured recovery-preparation fraction, the
/// compiled-vs-interp speedup, per-worker busy nanoseconds and the
/// work-stealing pool's batch/steal counters — next to the throughput
/// numbers, and a top-level `scaling` section condenses the sweep into
/// injections/s, speedup and parallel efficiency per (workload, engine).
///
/// Schema v6 adds a top-level `store` section: one workload's coverage
/// campaign timed cold through a fresh content-addressed store and again
/// warm, recording hit/miss/residual accounting and the warm speedup.
fn bench_json(injections: usize, seed: u64, cli_threads: &[usize]) {
    use std::fmt::Write as _;
    use std::time::Instant;
    let sweep: Vec<usize> =
        if cli_threads.is_empty() { vec![1, 4, 16] } else { cli_threads.to_vec() };
    let host_cpus = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    eprintln!(
        "[repro] timing CARE coverage campaigns ({injections} injections/workload, \
         both engines, threads {sweep:?}, host cpus {host_cpus})..."
    );
    // Prepare once: the sweep re-times the same campaigns, it does not
    // re-profile the workloads.
    let prepared: Vec<PreparedWorkload> =
        section2_workloads().iter().map(|w| prepare(w, OptLevel::O1)).collect();
    let mut entries = Vec::new();
    // Throughput per (workload, engine) across the sweep, for "scaling".
    type ScaleSeries = (&'static str, &'static str, Vec<(usize, f64)>);
    let mut scale: Vec<ScaleSeries> = Vec::new();
    // Suite-wide accumulators for the top-level "telemetry" section.
    // Recovery/TLB work is engine- and thread-independent (records are
    // bit-identical), so accumulate from the first sweep's interpreter
    // rows only.
    let (mut all_act, mut all_over98) = (0u64, 0u64);
    let (mut all_prep_sum, mut all_prep_count) = (0u64, 0u64);
    let (mut all_acc, mut all_miss) = (0u64, 0u64);
    for (ti, &threads) in sweep.iter().enumerate() {
        rayon::set_threads_override(Some(threads));
        for p in &prepared {
            let mut interp_ips = 0.0f64;
            for engine in [EngineKind::Interp, EngineKind::Compiled] {
                let rec = Recorder::new();
                let t0 = Instant::now();
                let r = coverage_campaign_traced(
                    p,
                    injections,
                    FaultModel::SingleBit,
                    seed,
                    engine,
                    &rec,
                );
                let wall_s = t0.elapsed().as_secs_f64();
                let tel = rec.drain();
                let ctr = |n: &str| tel.counters.get(n).copied().unwrap_or(0);
                let (loads, stores) = (ctr("tlb.loads"), ctr("tlb.stores"));
                let misses = ctr("tlb.read_misses") + ctr("tlb.write_misses");
                let accesses = loads + stores;
                let hit_rate = if accesses == 0 {
                    1.0
                } else {
                    (accesses - misses) as f64 / accesses as f64
                };
                let prep = tel.hists.get("recovery.prep_bp");
                let prep_mean = prep.map_or(0.0, |h| h.mean() / 10_000.0);
                let prep_min = prep.map_or(0.0, |h| h.min() as f64 / 10_000.0);
                let instr_per_sec = r.simulated_steps as f64 / wall_s;
                let inj_per_sec = injections as f64 / wall_s;
                let speedup = match engine {
                    EngineKind::Interp => {
                        interp_ips = instr_per_sec;
                        String::new()
                    }
                    EngineKind::Compiled => {
                        format!(
                            "      \"speedup_vs_interp\": {:.2},\n",
                            instr_per_sec / interp_ips.max(1e-9)
                        )
                    }
                };
                if ti == 0 && engine == EngineKind::Interp {
                    all_act += ctr("recovery.activations");
                    all_over98 += ctr("recovery.prep_over_98pct");
                    all_prep_sum += prep.map_or(0, |h| h.sum());
                    all_prep_count += prep.map_or(0, |h| h.count());
                    all_acc += accesses;
                    all_miss += misses;
                }
                // Per-worker utilization: each telemetry shard is one
                // thread; its `worker.busy_ns` subtotal is the time that
                // thread spent inside suffix/CARE jobs.
                let mut busy: Vec<u64> = tel
                    .per_shard_counters
                    .iter()
                    .filter_map(|m| m.get("worker.busy_ns").copied())
                    .filter(|&v| v > 0)
                    .collect();
                busy.sort_unstable_by(|a, b| b.cmp(a));
                let busy_json =
                    busy.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
                let declines = decline_rows(&r)
                    .iter()
                    .map(|(k, n)| format!("\"{k}\": {n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let mut e = String::new();
                write!(
                    e,
                    "    {{\n      \"workload\": \"{}\",\n      \"opt_level\": \"O1\",\n      \
                     \"engine\": \"{}\",\n      \"threads\": {},\n      \
                     \"injections\": {},\n      \"classified\": {},\n      \
                     \"care_evaluated\": {},\n      \"care_covered\": {},\n      \
                     \"wall_s\": {:.6},\n      \"injections_per_sec\": {:.2},\n      \
                     \"simulated_instructions\": {},\n      \
                     \"simulated_instructions_per_sec\": {:.0},\n{}      \
                     \"sim_steps_prefix\": {},\n      \"sim_steps_suffix\": {},\n      \
                     \"sim_steps_care\": {},\n      \"trellis_snapshots\": {},\n      \
                     \"cursor_shards\": {},\n      \
                     \"workers_busy_ns\": [{}],\n      \
                     \"pool\": {{\"chunks\": {}, \"steals\": {}}},\n      \
                     \"declines\": {{{}}},\n      \
                     \"tlb\": {{\"loads\": {}, \"stores\": {}, \"read_misses\": {}, \
                     \"write_misses\": {}, \"hit_rate\": {:.6}}},\n      \
                     \"recovery\": {{\"activations\": {}, \"recovered\": {}, \
                     \"prep_fraction_mean\": {:.4}, \
                     \"prep_fraction_min\": {:.4}, \"prep_over_98pct\": {}}}\n    }}",
                    p.name,
                    engine.name(),
                    threads,
                    injections,
                    r.total(),
                    r.care_evaluated,
                    r.care_covered,
                    wall_s,
                    inj_per_sec,
                    r.simulated_steps,
                    instr_per_sec,
                    speedup,
                    r.steps_prefix,
                    r.steps_suffix,
                    r.steps_care,
                    r.trellis_snapshots,
                    r.cursor_shards,
                    busy_json,
                    ctr("pool.chunks"),
                    ctr("pool.steals"),
                    declines,
                    loads,
                    stores,
                    ctr("tlb.read_misses"),
                    ctr("tlb.write_misses"),
                    hit_rate,
                    ctr("recovery.activations"),
                    ctr("recovery.recovered"),
                    prep_mean,
                    prep_min,
                    ctr("recovery.prep_over_98pct"),
                )
                .unwrap();
                eprintln!(
                    "[repro]   {} [{} x{}]: {:.2} injections/sec, {:.2e} simulated instrs/sec, \
                     {} busy workers, TLB hit rate {:.4}",
                    p.name,
                    engine.name(),
                    threads,
                    inj_per_sec,
                    instr_per_sec,
                    busy.len(),
                    hit_rate,
                );
                entries.push(e);
                match scale.iter_mut().find(|(w, en, _)| *w == p.name && *en == engine.name()) {
                    Some((_, _, points)) => points.push((threads, inj_per_sec)),
                    None => scale.push((p.name, engine.name(), vec![(threads, inj_per_sec)])),
                }
            }
        }
    }
    // Restore the CLI-level override (bench-json may not be the only
    // experiment in the invocation).
    rayon::set_threads_override(cli_threads.first().copied());
    let suite_prep = if all_prep_count == 0 {
        0.0
    } else {
        all_prep_sum as f64 / all_prep_count as f64 / 10_000.0
    };
    let suite_hit = if all_acc == 0 {
        1.0
    } else {
        (all_acc - all_miss) as f64 / all_acc as f64
    };
    // The scaling section: per (workload, engine), throughput across the
    // sweep normalised to the first swept thread count.
    let scaling = scale
        .iter()
        .map(|(w, en, points)| {
            let (t0, ips0) = points[0];
            let pts = points
                .iter()
                .map(|&(t, ips)| {
                    let speedup = ips / ips0.max(1e-9);
                    format!(
                        "        {{\"threads\": {t}, \"injections_per_sec\": {ips:.2}, \
                         \"speedup\": {speedup:.3}, \"efficiency\": {:.3}}}",
                        speedup * t0 as f64 / t as f64
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                "    {{\n      \"workload\": \"{w}\",\n      \"engine\": \"{en}\",\n      \
                 \"points\": [\n{pts}\n      ]\n    }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // v6 `store` section: the first prepared workload run cold through a
    // fresh content-addressed store, then immediately warm. The warm run
    // reuses every record (0 residual) and must reproduce the cold report
    // bit-identically — the section records both wall times and the
    // measured speedup of skipping execution entirely.
    let store_section = {
        let p = &prepared[0];
        let dir = std::env::temp_dir().join(format!("care-bench-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("open bench store");
        eprintln!("[repro] timing warm-vs-cold store runs on {}...", p.name);
        let t0 = Instant::now();
        let cold = coverage_campaign_stored(
            &store, p, injections, FaultModel::SingleBit, seed, EngineKind::Interp, &NoTelemetry,
        )
        .expect("cold store run");
        let cold_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let warm = coverage_campaign_stored(
            &store, p, injections, FaultModel::SingleBit, seed, EngineKind::Interp, &NoTelemetry,
        )
        .expect("warm store run");
        let warm_s = t1.elapsed().as_secs_f64();
        let identical = warm.report == cold.report;
        assert!(identical, "warm store run must reproduce the cold report bit-identically");
        eprintln!(
            "[repro]   cold {cold_s:.3}s ({} residual), warm {warm_s:.3}s ({} residual, \
             {} hits) = {:.1}x",
            cold.stats.misses,
            warm.stats.misses,
            warm.stats.hits,
            cold_s / warm_s.max(1e-9),
        );
        let run_obj = |stats: &carestore::StoreStats, wall: f64| {
            format!(
                "{{\"wall_s\": {wall:.6}, \"hits\": {}, \"misses\": {}, \
                 \"known_skips\": {}, \"residual_fraction\": {:.6}}}",
                stats.hits,
                stats.misses,
                stats.known_skips,
                stats.residual_fraction(injections),
            )
        };
        let section = format!(
            "{{\n    \"workload\": \"{}\",\n    \"injections\": {injections},\n    \
             \"cold\": {},\n    \"warm\": {},\n    \
             \"warm_speedup\": {:.2},\n    \"reports_identical\": {identical}\n  }}",
            p.name,
            run_obj(&cold.stats, cold_s),
            run_obj(&warm.stats, warm_s),
            cold_s / warm_s.max(1e-9),
        );
        let _ = std::fs::remove_dir_all(&dir);
        section
    };
    let threads_json = sweep.iter().map(usize::to_string).collect::<Vec<_>>().join(", ");
    let json = format!(
        "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \
         \"campaign\": \"coverage (evaluate_care, app_only)\",\n  \
         \"scheduler\": \"trellis\",\n  \"seed\": {seed},\n  \
         \"threads\": [{threads_json}],\n  \"host_cpus\": {host_cpus},\n  \
         \"telemetry\": {{\n    \
         \"schema_version\": {},\n    \"recovery_activations\": {all_act},\n    \
         \"recoveries\": {all_prep_count},\n    \
         \"prep_fraction_mean\": {suite_prep:.4},\n    \
         \"prep_over_98pct\": {all_over98},\n    \
         \"tlb_hit_rate\": {suite_hit:.6}\n  }},\n  \
         \"store\": {store_section},\n  \
         \"scaling\": [\n{scaling}\n  ],\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        telemetry::SCHEMA_VERSION,
        entries.join(",\n")
    );
    std::fs::write("BENCH_campaign.json", json).expect("write BENCH_campaign.json");
    eprintln!("[repro] wrote BENCH_campaign.json");
}

/// Shared option surface of `repro serve` and `repro submit`.
struct ServeArgs {
    addr: String,
    /// Whether `--addr` was given explicitly (submit --bench spawns a
    /// loopback server only when it was not).
    addr_given: bool,
    budget_cap: usize,
    max_queue: usize,
    /// `serve --store DIR`: back the server's jobs with a record store.
    store_dir: Option<std::path::PathBuf>,
    spec: careserve::JobSpec,
    stats_only: bool,
    bench: bool,
    clients: usize,
    jobs: usize,
}

fn parse_serve_args(args: &[String]) -> ServeArgs {
    let mut out = ServeArgs {
        addr: "127.0.0.1:4150".to_string(),
        addr_given: false,
        budget_cap: 0,
        max_queue: 8,
        store_dir: None,
        spec: careserve::JobSpec::default(),
        stats_only: false,
        bench: false,
        clients: 4,
        jobs: 6,
    };
    let mut workload: Option<String> = None;
    let mut params: Option<Vec<i64>> = None;
    let mut it = args.iter();
    let usage = "see repro --help";
    fn num(it: &mut std::slice::Iter<'_, String>, what: &str) -> usize {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{what} N"))
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                out.addr = it.next().unwrap_or_else(|| panic!("--addr HOST:PORT")).clone();
                out.addr_given = true;
            }
            "--budget-cap" => out.budget_cap = num(&mut it, "--budget-cap"),
            "--max-queue" => out.max_queue = num(&mut it, "--max-queue"),
            "--store" => {
                out.store_dir =
                    Some(it.next().unwrap_or_else(|| panic!("--store DIR")).into());
            }
            "--injections" => out.spec.injections = num(&mut it, "--injections"),
            "--job-threads" => out.spec.threads = num(&mut it, "--job-threads"),
            "--clients" => out.clients = num(&mut it, "--clients").max(1),
            "--jobs" => out.jobs = num(&mut it, "--jobs").max(1),
            "--seed" => {
                out.spec.seed =
                    it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--workload" => workload = Some(it.next().expect("--workload NAME").clone()),
            "--params" => {
                params = Some(
                    it.next()
                        .expect("--params A,B,..")
                        .split(',')
                        .map(|v| v.trim().parse().expect("--params takes integers"))
                        .collect(),
                );
            }
            "--engine" => {
                out.spec.engine =
                    it.next().and_then(|v| v.parse().ok()).expect("--engine interp|compiled");
            }
            "--scheduler" => {
                out.spec.scheduler = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scheduler trellis|per-injection");
            }
            "--opt" => match it.next().map(String::as_str) {
                Some("O0") | Some("o0") => out.spec.opt = OptLevel::O0,
                Some("O1") | Some("o1") => out.spec.opt = OptLevel::O1,
                _ => panic!("--opt O0|O1"),
            },
            "--stats" => out.stats_only = true,
            "--bench" => out.bench = true,
            other => panic!("unknown option '{other}' ({usage})"),
        }
    }
    if workload.is_some() || params.is_some() {
        let careserve::WorkloadSel::Named { name, params: default_params } = out.spec.workload
        else {
            unreachable!("JobSpec::default is a named workload");
        };
        // `--workload X` without `--params` means X's builder defaults
        // (empty params), not the default spec's hpccg sizing.
        let params = params.unwrap_or(if workload.is_some() { vec![] } else { default_params });
        out.spec.workload =
            careserve::WorkloadSel::Named { name: workload.unwrap_or(name), params };
    }
    out
}

/// `repro serve`: run the campaign server until the process is killed.
fn cmd_serve(args: &[String]) {
    let a = parse_serve_args(args);
    let store_note = a
        .store_dir
        .as_ref()
        .map_or(String::new(), |d| format!(", store {}", d.display()));
    let handle = careserve::CampaignServer::start(careserve::ServerConfig {
        addr: a.addr,
        budget_cap: a.budget_cap,
        max_queue: a.max_queue,
        store_dir: a.store_dir,
        ..careserve::ServerConfig::default()
    })
    .expect("bind campaign server");
    println!(
        "[repro] careserve v{} listening on {} (budget cap {}, queue {}{store_note})",
        careserve::PROTO_VERSION,
        handle.addr(),
        if a.budget_cap == 0 { "pool width".to_string() } else { a.budget_cap.to_string() },
        a.max_queue,
    );
    // Serve until killed; the accept loop owns all the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn print_stats(s: &careserve::StatsSnapshot) {
    let mut t = Table::new("careserve stats", &["Counter", "Value"]);
    for (name, v) in [
        ("jobs accepted", s.jobs_accepted),
        ("jobs rejected", s.jobs_rejected),
        ("jobs completed", s.jobs_completed),
        ("jobs failed", s.jobs_failed),
        ("jobs cancelled", s.jobs_cancelled),
        ("queue depth", s.queue_depth),
        ("in-flight budget", s.inflight_budget),
        ("budget cap", s.budget_cap),
        ("campaign cache hits", s.cache_hits),
        ("campaign cache misses", s.cache_misses),
        ("campaign cache evictions", s.cache_evictions),
        ("records streamed", s.records_streamed),
    ] {
        t.row(vec![name.to_string(), v.to_string()]);
    }
    println!("{}", t.render());
}

/// `repro triage [--store DIR]`: cluster every recorded outcome in a store
/// by `(kind, decline, fault site)` — cross-run triage without re-running
/// a single injection.
fn cmd_triage(args: &[String]) {
    let mut dir = std::path::PathBuf::from("care_store");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => dir = it.next().unwrap_or_else(|| panic!("--store DIR")).into(),
            other => panic!("unknown option '{other}' (see repro --help)"),
        }
    }
    let store = Store::open(&dir)
        .unwrap_or_else(|e| panic!("open store {}: {e}", dir.display()));
    let clusters = carestore::triage(&store)
        .unwrap_or_else(|e| panic!("triage {}: {e}", dir.display()));
    let mut t = Table::new(
        &format!("store triage: {} ({} clusters)", dir.display(), clusters.len()),
        &["Outcome", "Decline", "Site (mod,func,inst)", "Records", "Campaigns"],
    );
    let total: u64 = clusters.iter().map(|c| c.count).sum();
    for c in &clusters {
        t.row(vec![
            c.outcome.clone(),
            c.decline.clone(),
            format!("{},{},{}", c.site.0, c.site.1, c.site.2),
            c.count.to_string(),
            c.campaigns.to_string(),
        ]);
    }
    t.row(vec!["total".into(), "".into(), "".into(), total.to_string(), "".into()]);
    println!("{}", t.render());
}

/// `repro submit`: one job (or `--stats`, or the `--bench` batch) against a
/// campaign server.
fn cmd_submit(args: &[String]) {
    let a = parse_serve_args(args);
    if a.bench {
        return submit_bench(a);
    }
    if a.stats_only {
        let s = careserve::fetch_stats(&a.addr)
            .unwrap_or_else(|e| panic!("stats from {}: {e}", a.addr));
        print_stats(&s);
        return;
    }
    let t0 = std::time::Instant::now();
    let out = careserve::submit(&a.addr, &a.spec)
        .unwrap_or_else(|e| panic!("submit to {}: {e}", a.addr));
    let wall = t0.elapsed().as_secs_f64();
    let r = &out.report;
    let workload = match &a.spec.workload {
        careserve::WorkloadSel::Named { name, params } => format!("{name} {params:?}"),
        careserve::WorkloadSel::Inline { .. } => "inline".to_string(),
    };
    let mut t = Table::new(
        &format!("job {} on {} ({workload})", out.job_id, a.addr),
        &["Metric", "Value"],
    );
    t.row(vec!["classified".into(), r.total().to_string()]);
    t.row(vec!["benign".into(), r.benign.to_string()]);
    t.row(vec!["soft failures".into(), r.soft_failure.to_string()]);
    t.row(vec!["sdc".into(), r.sdc.to_string()]);
    t.row(vec!["hang".into(), r.hang.to_string()]);
    t.row(vec!["CARE evaluated".into(), r.care_evaluated.to_string()]);
    t.row(vec!["CARE covered".into(), r.care_covered.to_string()]);
    t.row(vec!["coverage".into(), pct(r.coverage())]);
    t.row(vec!["records streamed".into(), r.records.len().to_string()]);
    t.row(vec!["telemetry lines".into(), out.telemetry.len().to_string()]);
    t.row(vec!["progress frames".into(), out.progress_frames.to_string()]);
    t.row(vec!["wall (s)".into(), format!("{wall:.3}")]);
    println!("{}", t.render());
}

/// `repro submit --bench`: time a concurrent small-job batch and merge a
/// `service` section into `BENCH_campaign.json` (schema v5).
fn submit_bench(a: ServeArgs) {
    // A loopback server unless the caller pointed at a live one; owning the
    // handle also gives us its queue-depth/job-duration histograms.
    let handle = if a.addr_given {
        None
    } else {
        Some(
            careserve::CampaignServer::start(careserve::ServerConfig {
                budget_cap: a.budget_cap,
                max_queue: a.max_queue.max(a.clients),
                ..careserve::ServerConfig::default()
            })
            .expect("bind loopback campaign server"),
        )
    };
    let addr = handle.as_ref().map_or(a.addr.clone(), |h| h.addr().to_string());
    let before = careserve::fetch_stats(&addr)
        .unwrap_or_else(|e| panic!("stats from {addr}: {e}"));
    let workload_name = match &a.spec.workload {
        careserve::WorkloadSel::Named { name, .. } => name.clone(),
        careserve::WorkloadSel::Inline { .. } => "inline".to_string(),
    };
    eprintln!(
        "[repro] service bench: {} clients x {} jobs of {workload_name} \
         ({} injections/job) against {addr}...",
        a.clients, a.jobs, a.spec.injections,
    );
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..a.clients {
            let (addr, spec, jobs) = (&addr, &a.spec, a.jobs);
            scope.spawn(move || {
                for _ in 0..jobs {
                    careserve::submit(addr, spec).expect("bench job");
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let after = careserve::fetch_stats(&addr)
        .unwrap_or_else(|e| panic!("stats from {addr}: {e}"));
    let total_jobs = a.clients * a.jobs;
    let jobs_per_sec = total_jobs as f64 / wall_s;
    // Queue-depth and job-duration histograms come from the loopback
    // handle's telemetry; against a remote server only the stats counters
    // are visible, so those fields report zero samples.
    let (qd, job_ms) = handle.as_ref().map_or(((0, 0.0, 0), (0.0, 0.0)), |h| {
        let tel = h.telemetry();
        let qd = tel
            .hists
            .get("server.queue_depth")
            .map_or((0, 0.0, 0), |h| (h.count(), h.mean(), h.max()));
        let jm = tel
            .hists
            .get("server.job_ns")
            .map_or((0.0, 0.0), |h| (h.mean() / 1e6, h.max() as f64 / 1e6));
        (qd, jm)
    });
    let service = format!(
        "{{\n    \"workload\": \"{workload_name}\",\n    \
         \"clients\": {},\n    \"jobs_per_client\": {},\n    \"jobs\": {total_jobs},\n    \
         \"injections_per_job\": {},\n    \"wall_s\": {wall_s:.6},\n    \
         \"jobs_per_sec\": {jobs_per_sec:.2},\n    \
         \"jobs_completed\": {},\n    \"jobs_rejected\": {},\n    \
         \"records_streamed\": {},\n    \
         \"cache_hits\": {},\n    \"cache_misses\": {},\n    \
         \"queue_depth\": {{\"samples\": {}, \"mean\": {:.3}, \"max\": {}}},\n    \
         \"job_ms\": {{\"mean\": {:.3}, \"max\": {:.3}}}\n  }}",
        a.clients,
        a.jobs,
        a.spec.injections,
        after.jobs_completed - before.jobs_completed,
        after.jobs_rejected - before.jobs_rejected,
        after.records_streamed - before.records_streamed,
        after.cache_hits - before.cache_hits,
        after.cache_misses - before.cache_misses,
        qd.0,
        qd.1,
        qd.2,
        job_ms.0,
        job_ms.1,
    );
    eprintln!(
        "[repro]   {total_jobs} jobs in {wall_s:.2}s = {jobs_per_sec:.2} jobs/s \
         (queue depth mean {:.2} max {}, cache {} hits / {} misses)",
        qd.1,
        qd.2,
        after.cache_hits - before.cache_hits,
        after.cache_misses - before.cache_misses,
    );
    merge_service_section("BENCH_campaign.json", &service);
    eprintln!("[repro] merged service section into BENCH_campaign.json");
}

/// Splice `"service": <obj>` into the BENCH document as a top-level key,
/// replacing any existing one and stamping the current schema version.
/// Text-level because the hand-rolled JSON layer has no serializer; the
/// result is re-parsed before it is written, so a bad splice can never
/// produce a corrupt artefact.
fn merge_service_section(path: &str, service: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|_| format!("{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION}\n}}\n"));
    let text = strip_top_level_key(&text, "service");
    // Stamp the (first, top-level) schema_version: merging into an artefact
    // written by an older bench-json must not leave a stale version pinned.
    let text = match text.find("\"schema_version\":") {
        Some(at) => {
            let val_start = at + "\"schema_version\":".len();
            let val_len = text[val_start..]
                .find([',', '\n', '}'])
                .expect("schema_version value is terminated");
            format!(
                "{}\"schema_version\": {BENCH_SCHEMA_VERSION}{}",
                &text[..at],
                &text[val_start + val_len..]
            )
        }
        None => text,
    };
    let brace = text.find('{').expect("BENCH document opens an object");
    let merged = format!(
        "{}{{\n  \"service\": {service},{}",
        &text[..brace],
        &text[brace + 1..]
    );
    telemetry::parse_json(&merged).expect("merged BENCH document parses");
    std::fs::write(path, merged).expect("write BENCH_campaign.json");
}

/// Remove a top-level `"key": <value>,?` entry from a JSON object document,
/// tracking string/escape state so braces inside strings cannot derail the
/// match. Returns the document unchanged when the key is absent.
fn strip_top_level_key(text: &str, key: &str) -> String {
    let bytes = text.as_bytes();
    let needle = format!("\"{key}\"");
    let (mut depth, mut in_str, mut escaped) = (0i32, false, false);
    let mut key_start = None;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            match c {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_str = false,
                _ => {}
            }
            i += 1;
            continue;
        }
        match c {
            b'"' => {
                if depth == 1 && text[i..].starts_with(&needle) {
                    key_start = Some(i);
                    // Skip past the key string; the value scan below finds
                    // its extent.
                    i += needle.len();
                    break;
                }
                in_str = true;
            }
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    let Some(mut start) = key_start else { return text.to_string() };
    // Take the key's leading indent with it, so the splice leaves the next
    // line's own indentation intact.
    while start > 0 && bytes[start - 1] == b' ' {
        start -= 1;
    }
    // Scan the value: everything until depth returns to 1 and we pass the
    // value's trailing comma (or its closing position when it is last).
    let (mut depth, mut in_str, mut escaped) = (0i32, false, false);
    let mut end = None;
    let mut j = i;
    while j < bytes.len() {
        let c = bytes[j];
        if in_str {
            match c {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_str = false,
                _ => {}
            }
            j += 1;
            continue;
        }
        match c {
            b'"' => in_str = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' if depth > 0 => depth -= 1,
            b',' if depth == 0 => {
                end = Some(j + 1);
                break;
            }
            b'}' | b']' => {
                // End of the enclosing object: the key was last; drop the
                // comma that preceded it too.
                let before = text[..start].trim_end().trim_end_matches(',');
                return format!("{}{}", before, &text[j..]);
            }
            _ => {}
        }
        j += 1;
    }
    let end = end.expect("value extent found");
    // Swallow one following newline so the splice leaves no blank line.
    let end = end + text[end..].starts_with('\n') as usize;
    format!("{}{}", &text[..start], &text[end..])
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return cmd_serve(&argv[1..]),
        Some("submit") => return cmd_submit(&argv[1..]),
        Some("triage") => return cmd_triage(&argv[1..]),
        _ => {}
    }
    let args = parse_args();
    if let Some(&t) = args.threads.first() {
        // Pin the pool width through the race-free programmatic override
        // (the CARE_THREADS env var is parsed once at startup, so mutating
        // it here would be ignored). Table/figure experiments run at the
        // first listed count; `bench-json` sweeps the whole list itself.
        rayon::set_threads_override(Some(t));
    }
    let want = |name: &str| {
        args.experiments.iter().any(|e| e == name || e == "all")
    };

    // One recorder spans every experiment of the invocation; campaigns and
    // cluster simulations stream into it and `main` drains it at the end.
    let recorder = args.telemetry.as_ref().map(|_| Recorder::new());
    let rec = recorder.as_ref();

    // One store spans the invocation too (`--store DIR` / `--resume`);
    // every §2/§5 campaign consults it and appends its fresh records.
    let store = args.store.as_ref().map(|dir| {
        let s = Store::open(dir).unwrap_or_else(|e| panic!("open store {}: {e}", dir.display()));
        eprintln!("[repro] campaigns backed by record store at {}", dir.display());
        s
    });
    let store = store.as_ref();

    // Explicit-only (not part of `all`): perf measurement artefact.
    if args.experiments.iter().any(|e| e == "bench-json") {
        bench_json(args.injections, args.seed, &args.threads);
        if args.experiments.iter().all(|e| e == "bench-json") {
            return;
        }
    }

    // §2 campaigns (single-bit, whole program) are shared by Tables 2-4.
    let mut s2: Option<Vec<(PreparedWorkload, CampaignReport)>> = None;
    let mut s2_reports = |inj: usize, seed: u64| -> Vec<(String, CampaignReport)> {
        if s2.is_none() {
            eprintln!("[repro] running §2 single-bit campaigns ({inj} injections/workload)...");
            s2 = Some(
                section2_workloads()
                    .iter()
                    .map(|w| {
                        let p = prepare(w, OptLevel::O0);
                        let r = run_manifest(
                            &p, inj, FaultModel::SingleBit, seed, args.engine, rec, store,
                        );
                        (p, r)
                    })
                    .collect(),
            );
        }
        s2.as_ref()
            .unwrap()
            .iter()
            .map(|(p, r)| (p.name.to_string(), r.clone()))
            .collect()
    };

    if want("table2") {
        let mut t = Table::new(
            "Table 2: overall outcomes of fault injections (single-bit)",
            &["Workload", "Benign", "SoftFailure", "SDC", "Hang"],
        );
        for (name, r) in s2_reports(args.injections, args.seed) {
            t.row(vec![
                name,
                r.benign.to_string(),
                r.soft_failure.to_string(),
                r.sdc.to_string(),
                r.hang.to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    if want("table3") {
        let mut t = Table::new(
            "Table 3: breakdown of soft failures by symptom",
            &["Workload", "SIGSEGV", "SIGBUS", "SIGABRT", "Other"],
        );
        for (name, r) in s2_reports(args.injections, args.seed) {
            t.row(vec![
                name,
                r.signals[0].to_string(),
                r.signals[1].to_string(),
                r.signals[2].to_string(),
                r.signals[3].to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    if want("table4") {
        let mut t = Table::new(
            "Table 4: manifestation-latency distribution of soft failures",
            &["Workload", "<=10", "11~50", "51~400", ">400"],
        );
        for (name, r) in s2_reports(args.injections, args.seed) {
            let total: usize = r.latency_buckets.iter().sum::<usize>().max(1);
            t.row(vec![
                name,
                pct(r.latency_buckets[0] as f64 / total as f64),
                pct(r.latency_buckets[1] as f64 / total as f64),
                pct(r.latency_buckets[2] as f64 / total as f64),
                pct(r.latency_buckets[3] as f64 / total as f64),
            ]);
        }
        println!("{}", t.render());
    }

    if want("table5") {
        let mut t = Table::new(
            "Table 5: memory accesses with multi-op address computations",
            &["", "HPCCG", "CoMD", "miniFE", "miniMD", "GTC-P"],
        );
        let mut frac = vec!["No. Insts".to_string()];
        let mut avg = vec!["Avg. No. ops".to_string()];
        let order = ["HPCCG", "CoMD", "miniFE", "miniMD", "GTC-P"];
        let mut by_name = HashMap::new();
        for w in section2_workloads() {
            // The paper's Table 5 counts address computations of the *real*
            // data accesses; measure on the optimised IR, where scalar
            // stack-slot traffic (an -O0 artefact) has been promoted away.
            let app = care::compile(&w.module, OptLevel::O1);
            by_name.insert(w.name, app.armor.stats.clone());
        }
        for name in order {
            let s = &by_name[name];
            frac.push(pct(s.multi_op_fraction()));
            avg.push(format!("{:.2}", s.avg_addr_ops()));
        }
        t.row(frac);
        t.row(avg);
        println!("{}", t.render());
    }

    if want("table8") {
        let mut t = Table::new(
            "Table 8: statistics of recovery kernels",
            &[
                "",
                "Num. kernels",
                "Avg IR instrs",
                "Normal compile (s)",
                "Armor overhead (s)",
                "Liveness share",
            ],
        );
        for w in section5_workloads() {
            let app = care::compile(&w.module, OptLevel::O0);
            let s = &app.armor.stats;
            t.row(vec![
                w.name.to_string(),
                s.num_kernels.to_string(),
                format!("{:.2}", s.avg_kernel_instrs()),
                format!("{:.4}", app.build.normal_compile_s),
                format!("{:.4}", s.pass_seconds),
                pct(s.liveness_seconds / s.pass_seconds.max(1e-12)),
            ]);
        }
        println!("{}", t.render());
    }

    // Figure 7 + 9 share the §5 coverage campaigns.
    let mut cov: Option<Vec<(String, String, CampaignReport)>> = None;
    let mut cov_reports = |inj: usize, seed: u64| -> Vec<(String, String, CampaignReport)> {
        if cov.is_none() {
            eprintln!("[repro] running §5 coverage campaigns (O0+O1, {inj} injections/workload)...");
            let mut all = Vec::new();
            for w in section5_workloads() {
                for level in [OptLevel::O0, OptLevel::O1] {
                    let p = prepare(&w, level);
                    let r = run_coverage(
                        &p, inj, FaultModel::SingleBit, seed, args.engine, rec, store,
                    );
                    all.push((w.name.to_string(), level.to_string(), r));
                }
            }
            cov = Some(all);
        }
        cov.as_ref().unwrap().clone()
    };

    if want("fig7") {
        let mut t = Table::new(
            "Figure 7: fault coverage of CARE (single-bit)",
            &["Workload", "Opt", "SIGSEGV evald", "Recovered", "Coverage"],
        );
        let mut sum = 0.0;
        let mut n = 0;
        for (name, level, r) in cov_reports(args.injections, args.seed) {
            t.row(vec![
                name.clone(),
                level.clone(),
                r.care_evaluated.to_string(),
                r.care_covered.to_string(),
                pct(r.coverage()),
            ]);
            sum += r.coverage();
            n += 1;
        }
        t.row(vec![
            "average".into(),
            "".into(),
            "".into(),
            "".into(),
            pct(sum / n.max(1) as f64),
        ]);
        println!("{}", t.render());
    }

    if want("fig9") {
        let mut t = Table::new(
            "Figure 9: recovery time (modelled ms per recovered run)",
            &["Workload", "Opt", "Mean (ms)", "Activations/run"],
        );
        for (name, level, r) in cov_reports(args.injections, args.seed) {
            let runs = r.recovery_times_ms.len().max(1);
            t.row(vec![
                name.clone(),
                level.clone(),
                format!("{:.1}", r.mean_recovery_ms()),
                format!("{:.2}", r.total_recoveries as f64 / runs as f64),
            ]);
        }
        println!("{}", t.render());
    }

    if want("declines") {
        let mut t = Table::new(
            "Decline reasons: why uncovered SIGSEGV faults were not recovered",
            &["Workload", "Opt", "Decline kind", "Count"],
        );
        let mut total = 0usize;
        for (name, level, r) in cov_reports(args.injections, args.seed) {
            for (kind, n) in decline_rows(&r) {
                t.row(vec![name.clone(), level.clone(), kind.to_string(), n.to_string()]);
                total += n;
            }
        }
        t.row(vec!["total".into(), "".into(), "".into(), total.to_string()]);
        println!("{}", t.render());
    }

    if want("fig10") {
        eprintln!("[repro] running rank-0 recovery + 512-rank BSP simulation...");
        let w = workloads::gtcp::default();
        let r0 = cluster::rank0::run_rank0_with_fault(&w, OptLevel::O0, args.seed, 200)
            .expect("a CARE-recoverable fault on rank 0");
        let cfg = ClusterConfig::default();
        let base = simulate_fault_free(&cfg);
        let care_res = Resilience::Care { events: vec![(cfg.timesteps / 2, r0.recovery_ms)] };
        let care_run = match rec {
            Some(h) => simulate_faulty_traced(&cfg, cfg.timesteps / 2, &care_res, h),
            None => simulate_faulty(&cfg, cfg.timesteps / 2, &care_res),
        };
        let mut t = Table::new(
            "Figure 10: 512-rank x 6-thread GTC-P job, fault on rank 0",
            &["Scenario", "Makespan (s)", "Overhead (s)", "Restart (s)"],
        );
        let sec = |ms: f64| format!("{:.2}", ms / 1000.0);
        t.row(vec!["fault-free".into(), sec(base.makespan_ms), "0.00".into(), "0.00".into()]);
        t.row(vec![
            format!("CARE ({} recoveries, {:.1} ms)", r0.recoveries, r0.recovery_ms),
            sec(care_run.makespan_ms),
            sec(care_run.overhead_ms),
            sec(care_run.restart_ms),
        ]);
        for interval in [20u64, 50, 75] {
            // Average over fault positions, as the paper's per-interval
            // recovery times are averages (14.4 / 25.9 / 37.6 s).
            let mut mk = 0.0;
            let mut ov = 0.0;
            let mut rs = 0.0;
            let mut n = 0.0;
            for fs in (0..cfg.timesteps).step_by(7) {
                let cr = simulate_faulty(
                    &cfg,
                    fs,
                    &Resilience::CheckpointRestart {
                        interval,
                        write_ms: 800.0,
                        load_ms: 6600.0,
                        requeue_ms: 0.0,
                    },
                );
                mk += cr.makespan_ms;
                ov += cr.overhead_ms;
                rs += cr.restart_ms;
                n += 1.0;
            }
            t.row(vec![
                format!("C/R every {interval} steps (avg)"),
                sec(mk / n),
                sec(ov / n),
                sec(rs / n),
            ]);
        }
        println!("{}", t.render());
    }

    if want("table9") {
        eprintln!("[repro] running BLAS/sblat1 shared-library campaign...");
        let setup = workloads::blas::setup();
        let lib_app = care::compile(&setup.lib, OptLevel::O0);
        let drv_app = care::compile(&setup.driver.module, OptLevel::O0);
        let campaign = faultsim::Campaign::prepare(
            &setup.driver,
            drv_app.clone(),
            vec![lib_app.clone()],
        );
        let blas_cfg = CampaignConfig {
            injections: args.injections,
            evaluate_care: true,
            app_only: false, // faults may land in the library too
            seed: args.seed,
            engine: args.engine,
            ..CampaignConfig::default()
        };
        let r = match rec {
            Some(h) => campaign.run_with_hooks(&blas_cfg, h),
            None => campaign.run(&blas_cfg),
        };
        let mut t = Table::new(
            "Table 9: statistics and performance for sblat1/BLAS",
            &["", "# Kernels", "Normal compile (s)", "Armor overhead (s)", "Coverage", "Recovery (ms)"],
        );
        t.row(vec![
            "BLAS".into(),
            lib_app.armor.stats.num_kernels.to_string(),
            format!("{:.4}", lib_app.build.normal_compile_s),
            format!("{:.4}", lib_app.armor.stats.pass_seconds),
            pct(r.coverage()),
            format!("{:.1}", r.mean_recovery_ms()),
        ]);
        t.row(vec![
            "sblat1".into(),
            drv_app.armor.stats.num_kernels.to_string(),
            format!("{:.4}", drv_app.build.normal_compile_s),
            format!("{:.4}", drv_app.armor.stats.pass_seconds),
            "".into(),
            "".into(),
        ]);
        println!("{}", t.render());
    }

    // Appendix: double-bit-flip model.
    let mut s2d: Option<Vec<(String, CampaignReport)>> = None;
    let mut s2d_reports = |inj: usize, seed: u64| -> Vec<(String, CampaignReport)> {
        if s2d.is_none() {
            eprintln!("[repro] running appendix double-bit campaigns...");
            s2d = Some(
                section2_workloads()
                    .iter()
                    .map(|w| {
                        let p = prepare(w, OptLevel::O0);
                        let r = run_manifest(
                            &p, inj, FaultModel::DoubleBit, seed, args.engine, rec, store,
                        );
                        (p.name.to_string(), r)
                    })
                    .collect(),
            );
        }
        s2d.as_ref().unwrap().clone()
    };

    if want("table10") {
        let mut t = Table::new(
            "Table 10: overall outcomes (double-bit-flip model)",
            &["Workload", "Benign", "SoftFailure", "SDC", "Hang"],
        );
        for (name, r) in s2d_reports(args.injections, args.seed) {
            t.row(vec![
                name.clone(),
                r.benign.to_string(),
                r.soft_failure.to_string(),
                r.sdc.to_string(),
                r.hang.to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    if want("table11") {
        let mut t = Table::new(
            "Table 11: breakdown of soft failures (double-bit-flip model)",
            &["Workload", "SIGSEGV", "SIGBUS", "SIGABRT", "Other"],
        );
        for (name, r) in s2d_reports(args.injections, args.seed) {
            t.row(vec![
                name.clone(),
                r.signals[0].to_string(),
                r.signals[1].to_string(),
                r.signals[2].to_string(),
                r.signals[3].to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    if want("fig12") {
        eprintln!("[repro] running double-bit coverage campaigns...");
        let mut t = Table::new(
            "Figure 12: fault coverage (double-bit-flip model)",
            &["Workload", "Opt", "SIGSEGV evald", "Recovered", "Coverage"],
        );
        let mut sum = 0.0;
        let mut n = 0;
        for w in section5_workloads() {
            for level in [OptLevel::O0, OptLevel::O1] {
                let p = prepare(&w, level);
                let r = run_coverage(
                    &p, args.injections, FaultModel::DoubleBit, args.seed, args.engine, rec,
                    store,
                );
                t.row(vec![
                    w.name.to_string(),
                    level.to_string(),
                    r.care_evaluated.to_string(),
                    r.care_covered.to_string(),
                    pct(r.coverage()),
                ]);
                sum += r.coverage();
                n += 1;
            }
        }
        t.row(vec![
            "average".into(),
            "".into(),
            "".into(),
            "".into(),
            pct(sum / n.max(1) as f64),
        ]);
        println!("{}", t.render());
    }

    if let (Some(path), Some(r)) = (&args.telemetry, recorder.as_ref()) {
        let report = r.drain();
        let jsonl = report.to_jsonl();
        // The writer and validator ship together; a failure here is a bug.
        telemetry::validate_jsonl(&jsonl).expect("telemetry JSONL failed self-validation");
        std::fs::write(path, &jsonl).expect("write telemetry JSONL");
        eprintln!("{}", report.summary_table());
        eprintln!(
            "[repro] wrote {} telemetry lines to {}",
            jsonl.lines().count(),
            path.display()
        );
    }
}
