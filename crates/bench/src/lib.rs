//! # bench — experiment harness shared by the `repro` binary and the
//! Criterion benches.
//!
//! Each function here regenerates the data behind one table or figure of
//! the paper (see DESIGN.md §4 for the full index). The `repro` binary
//! formats them as the paper's rows; the Criterion benches time the
//! underlying operations (Armor pass, recovery path, campaign throughput).

use care::CompiledApp;
use faultsim::{Campaign, CampaignConfig, CampaignReport, EngineKind, FaultModel};
use opt::OptLevel;
use telemetry::{Hooks, NoTelemetry};
use workloads::Workload;

/// Schema version of `BENCH_campaign.json` (bumped whenever its shape
/// changes; `tests/golden.rs` pins the committed artefact to this value).
///
/// * v1 — original throughput-only rows.
/// * v2 — adds `schema_version`, per-workload decline histograms, TLB hit
///   rates and the measured recovery-preparation fraction (all sourced from
///   the telemetry subsystem).
/// * v3 — each row carries an `engine` field (`interp` | `compiled`); every
///   workload is emitted once per execution backend, and compiled rows add
///   `speedup_vs_interp` (simulated-instructions/s ratio at identical seed,
///   thread count and step counts).
/// * v4 — one row set per swept thread count (each row carries `threads`,
///   per-worker `workers_busy_ns` and work-stealing pool counters), the
///   top-level `threads` field becomes the swept list, `host_cpus` records
///   the measurement host's core count, and a `scaling` section reports
///   injections/s, speedup and parallel efficiency per (workload, engine)
///   against the first swept thread count.
/// * v5 — optional top-level `service` section (`repro submit --bench`):
///   jobs/s for a concurrent small-job batch against a `careserve` campaign
///   server, plus the server's queue-depth telemetry and cache hit/miss
///   counters. Readers must tolerate its absence (`repro bench-json` alone
///   does not emit it).
pub const BENCH_SCHEMA_VERSION: u32 = 5;

/// Rows of a formatted text table.
pub struct Table {
    /// Table title (paper reference).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                } else {
                    widths.push(c.len());
                }
            }
        }
        let mut out = format!("\n== {} ==\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A prepared (workload, campaign) pair, cached per opt level.
pub struct PreparedWorkload {
    /// Workload name.
    pub name: &'static str,
    /// The compiled application.
    pub app: CompiledApp,
    /// The ready-to-run campaign.
    pub campaign: Campaign,
}

/// Compile a workload and prepare its campaign.
pub fn prepare(workload: &Workload, level: OptLevel) -> PreparedWorkload {
    let app = care::compile(&workload.module, level);
    let campaign = Campaign::prepare(workload, app.clone(), vec![]);
    PreparedWorkload { name: workload.name, app, campaign }
}

/// The §2-style campaign (whole program, no CARE evaluation).
pub fn manifestation_campaign(
    prepared: &PreparedWorkload,
    injections: usize,
    model: FaultModel,
    seed: u64,
) -> CampaignReport {
    manifestation_campaign_traced(prepared, injections, model, seed, EngineKind::Interp, &NoTelemetry)
}

/// [`manifestation_campaign`] with an execution backend and a telemetry hook
/// sink. With [`NoTelemetry`] this monomorphizes to exactly the plain campaign.
pub fn manifestation_campaign_traced<H: Hooks>(
    prepared: &PreparedWorkload,
    injections: usize,
    model: FaultModel,
    seed: u64,
    engine: EngineKind,
    hooks: &H,
) -> CampaignReport {
    prepared.campaign.run_with_hooks(
        &CampaignConfig {
            injections,
            model,
            seed,
            evaluate_care: false,
            app_only: false,
            engine,
            ..CampaignConfig::default()
        },
        hooks,
    )
}

/// The §5-style campaign (application code only, CARE evaluated on every
/// SIGSEGV injection).
pub fn coverage_campaign(
    prepared: &PreparedWorkload,
    injections: usize,
    model: FaultModel,
    seed: u64,
) -> CampaignReport {
    coverage_campaign_traced(prepared, injections, model, seed, EngineKind::Interp, &NoTelemetry)
}

/// [`coverage_campaign`] with an execution backend and a telemetry hook sink.
pub fn coverage_campaign_traced<H: Hooks>(
    prepared: &PreparedWorkload,
    injections: usize,
    model: FaultModel,
    seed: u64,
    engine: EngineKind,
    hooks: &H,
) -> CampaignReport {
    prepared.campaign.run_with_hooks(
        &CampaignConfig {
            injections,
            model,
            seed,
            evaluate_care: true,
            app_only: true,
            engine,
            ..CampaignConfig::default()
        },
        hooks,
    )
}

/// Decline-reason histogram of a campaign as deterministically-ordered
/// `(kind, count)` rows (declaration order of [`safeguard::DeclineKind`]),
/// skipping zero-count kinds. Shared by the repro declines table and the
/// `BENCH_campaign.json` v2 emitter.
pub fn decline_rows(report: &CampaignReport) -> Vec<(&'static str, usize)> {
    safeguard::DeclineKind::ALL
        .iter()
        .filter_map(|k| {
            report
                .declines
                .get(k)
                .filter(|&&n| n > 0)
                .map(|&n| (k.short_name(), n))
        })
        .collect()
}

/// Percentage formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// The workload set used by the §2 tables (paper order).
pub fn section2_workloads() -> Vec<Workload> {
    workloads::all()
}

/// The workload set used by the §5 evaluation (paper skips miniFE there).
pub fn section5_workloads() -> Vec<Workload> {
    workloads::evaluated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.row(vec!["1".into(), "22".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn prepare_yields_runnable_campaign() {
        let w = workloads::hpccg::build(3, 2);
        let p = prepare(&w, OptLevel::O0);
        let r = manifestation_campaign(&p, 10, FaultModel::SingleBit, 1);
        assert!(r.total() >= 8);
    }
}
