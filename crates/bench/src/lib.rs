//! # bench — experiment harness shared by the `repro` binary and the
//! Criterion benches.
//!
//! Each function here regenerates the data behind one table or figure of
//! the paper (see DESIGN.md §4 for the full index). The `repro` binary
//! formats them as the paper's rows; the Criterion benches time the
//! underlying operations (Armor pass, recovery path, campaign throughput).

use care::CompiledApp;
use faultsim::{Campaign, CampaignConfig, CampaignReport, EngineKind, FaultModel};
use opt::OptLevel;
use telemetry::{Hooks, NoTelemetry};
use workloads::Workload;

/// Schema version of `BENCH_campaign.json` (bumped whenever its shape
/// changes; `tests/golden.rs` pins the committed artefact to this value).
///
/// * v1 — original throughput-only rows.
/// * v2 — adds `schema_version`, per-workload decline histograms, TLB hit
///   rates and the measured recovery-preparation fraction (all sourced from
///   the telemetry subsystem).
/// * v3 — each row carries an `engine` field (`interp` | `compiled`); every
///   workload is emitted once per execution backend, and compiled rows add
///   `speedup_vs_interp` (simulated-instructions/s ratio at identical seed,
///   thread count and step counts).
/// * v4 — one row set per swept thread count (each row carries `threads`,
///   per-worker `workers_busy_ns` and work-stealing pool counters), the
///   top-level `threads` field becomes the swept list, `host_cpus` records
///   the measurement host's core count, and a `scaling` section reports
///   injections/s, speedup and parallel efficiency per (workload, engine)
///   against the first swept thread count.
/// * v5 — optional top-level `service` section (`repro submit --bench`):
///   jobs/s for a concurrent small-job batch against a `careserve` campaign
///   server, plus the server's queue-depth telemetry and cache hit/miss
///   counters. Readers must tolerate its absence (`repro bench-json` alone
///   does not emit it).
/// * v6 — top-level `store` section: one coverage campaign run cold through
///   a fresh content-addressed `carestore` store and immediately re-run
///   warm. Reports record hits, misses (the residual actually executed),
///   known skips, the residual fraction of each run, both wall times and
///   the measured warm-vs-cold speedup.
pub const BENCH_SCHEMA_VERSION: u32 = 6;

/// Rows of a formatted text table.
pub struct Table {
    /// Table title (paper reference).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                } else {
                    widths.push(c.len());
                }
            }
        }
        let mut out = format!("\n== {} ==\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A prepared (workload, campaign) pair, cached per opt level.
pub struct PreparedWorkload {
    /// Workload name.
    pub name: &'static str,
    /// The compiled application.
    pub app: CompiledApp,
    /// The ready-to-run campaign.
    pub campaign: Campaign,
    /// Content-addressed campaign key (canonical module hash + opt level).
    pub key: carestore::CampaignKey,
}

/// Compile a workload and prepare its campaign.
pub fn prepare(workload: &Workload, level: OptLevel) -> PreparedWorkload {
    let app = care::compile(&workload.module, level);
    let campaign = Campaign::prepare(workload, app.clone(), vec![]);
    let key = carestore::campaign_key(
        &workload.module,
        workload.entry,
        &workload.args,
        &workload.outputs,
        &format!("{:?}", level),
    );
    PreparedWorkload { name: workload.name, app, campaign, key }
}

/// The §2-style campaign (whole program, no CARE evaluation).
pub fn manifestation_campaign(
    prepared: &PreparedWorkload,
    injections: usize,
    model: FaultModel,
    seed: u64,
) -> CampaignReport {
    manifestation_campaign_traced(prepared, injections, model, seed, EngineKind::Interp, &NoTelemetry)
}

/// [`manifestation_campaign`] with an execution backend and a telemetry hook
/// sink. With [`NoTelemetry`] this monomorphizes to exactly the plain campaign.
pub fn manifestation_campaign_traced<H: Hooks>(
    prepared: &PreparedWorkload,
    injections: usize,
    model: FaultModel,
    seed: u64,
    engine: EngineKind,
    hooks: &H,
) -> CampaignReport {
    prepared.campaign.run_with_hooks(
        &CampaignConfig {
            injections,
            model,
            seed,
            evaluate_care: false,
            app_only: false,
            engine,
            ..CampaignConfig::default()
        },
        hooks,
    )
}

/// The §5-style campaign (application code only, CARE evaluated on every
/// SIGSEGV injection).
pub fn coverage_campaign(
    prepared: &PreparedWorkload,
    injections: usize,
    model: FaultModel,
    seed: u64,
) -> CampaignReport {
    coverage_campaign_traced(prepared, injections, model, seed, EngineKind::Interp, &NoTelemetry)
}

/// [`coverage_campaign`] with an execution backend and a telemetry hook sink.
pub fn coverage_campaign_traced<H: Hooks>(
    prepared: &PreparedWorkload,
    injections: usize,
    model: FaultModel,
    seed: u64,
    engine: EngineKind,
    hooks: &H,
) -> CampaignReport {
    prepared.campaign.run_with_hooks(
        &CampaignConfig {
            injections,
            model,
            seed,
            evaluate_care: true,
            app_only: true,
            engine,
            ..CampaignConfig::default()
        },
        hooks,
    )
}

/// [`manifestation_campaign_traced`] routed through a content-addressed
/// store: records already present in the store's log are reused and only
/// the residual injections execute. The returned report is bit-identical
/// to a fresh full run at the same configuration.
pub fn manifestation_campaign_stored<H: Hooks>(
    store: &carestore::Store,
    prepared: &PreparedWorkload,
    injections: usize,
    model: FaultModel,
    seed: u64,
    engine: EngineKind,
    hooks: &H,
) -> std::io::Result<carestore::StoreRun> {
    store.run_campaign(
        &prepared.key,
        &prepared.campaign,
        &CampaignConfig {
            injections,
            model,
            seed,
            evaluate_care: false,
            app_only: false,
            engine,
            ..CampaignConfig::default()
        },
        hooks,
        &faultsim::JobControl::new(),
    )
}

/// [`coverage_campaign_traced`] routed through a content-addressed store
/// (see [`manifestation_campaign_stored`]).
pub fn coverage_campaign_stored<H: Hooks>(
    store: &carestore::Store,
    prepared: &PreparedWorkload,
    injections: usize,
    model: FaultModel,
    seed: u64,
    engine: EngineKind,
    hooks: &H,
) -> std::io::Result<carestore::StoreRun> {
    store.run_campaign(
        &prepared.key,
        &prepared.campaign,
        &CampaignConfig {
            injections,
            model,
            seed,
            evaluate_care: true,
            app_only: true,
            engine,
            ..CampaignConfig::default()
        },
        hooks,
        &faultsim::JobControl::new(),
    )
}

/// Decline-reason histogram of a campaign as deterministically-ordered
/// `(kind, count)` rows (declaration order of [`safeguard::DeclineKind`]),
/// skipping zero-count kinds. Shared by the repro declines table and the
/// `BENCH_campaign.json` v2 emitter.
pub fn decline_rows(report: &CampaignReport) -> Vec<(&'static str, usize)> {
    safeguard::DeclineKind::ALL
        .iter()
        .filter_map(|k| {
            report
                .declines
                .get(k)
                .filter(|&&n| n > 0)
                .map(|&n| (k.short_name(), n))
        })
        .collect()
}

/// Percentage formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// The workload set used by the §2 tables (paper order).
pub fn section2_workloads() -> Vec<Workload> {
    workloads::all()
}

/// The workload set used by the §5 evaluation (paper skips miniFE there).
pub fn section5_workloads() -> Vec<Workload> {
    workloads::evaluated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.row(vec!["1".into(), "22".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn prepare_yields_runnable_campaign() {
        let w = workloads::hpccg::build(3, 2);
        let p = prepare(&w, OptLevel::O0);
        let r = manifestation_campaign(&p, 10, FaultModel::SingleBit, 1);
        assert!(r.total() >= 8);
    }

    #[test]
    fn stored_campaign_warm_run_executes_no_residual() {
        let dir = std::env::temp_dir().join(format!(
            "care-bench-lib-store-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = carestore::Store::open(&dir).expect("open store");
        let w = workloads::hpccg::build(3, 2);
        let p = prepare(&w, OptLevel::O0);
        let cold = coverage_campaign_stored(
            &store, &p, 12, FaultModel::SingleBit, 7, EngineKind::Interp, &NoTelemetry,
        )
        .expect("cold run");
        let warm = coverage_campaign_stored(
            &store, &p, 12, FaultModel::SingleBit, 7, EngineKind::Interp, &NoTelemetry,
        )
        .expect("warm run");
        assert_eq!(cold.stats.misses, 12);
        assert_eq!(cold.stats.hits, 0);
        assert_eq!(warm.stats.misses, 0);
        assert_eq!(warm.stats.hits, 12);
        assert_eq!(warm.report, cold.report);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
