//! Delta-debugging shrinker.
//!
//! Works on the [`ProgramSpec`] grammar, not the IR: every candidate is a
//! strictly smaller spec, rebuilt and re-run through the oracle, and accepted
//! only if it still reproduces a divergence of the *same pair*. Greedy
//! first-improvement to a fixpoint — the strict size decrease guarantees
//! termination.

use crate::oracle::{check_spec, Pair};
use crate::spec::{FloatExpr, IntExpr, ProgramSpec, Stmt};

/// Minimise `spec` while it keeps diverging on `want`.
pub fn shrink(spec: &ProgramSpec, want: Pair) -> ProgramSpec {
    let mut cur = spec.clone();
    loop {
        let cur_size = size(&cur);
        let step = candidates(&cur)
            .into_iter()
            .filter(|c| size(c) < cur_size)
            .find(|c| check_spec(c).map(|d| d.pair) == Some(want));
        match step {
            Some(c) => cur = c,
            None => return cur,
        }
    }
}

/// Spec weight: grammar nodes dominate, loop trip counts and structural
/// extras break ties so trip reduction and trap/helper removal count as
/// progress.
fn size(s: &ProgramSpec) -> usize {
    fn stmt_w(s: &Stmt) -> usize {
        match s {
            Stmt::IntAcc { e, .. } => 10 + int_w(e),
            Stmt::FloatAcc { e, .. } => 10 + float_w(e),
            Stmt::Store { idx, val, .. } => 10 + int_w(idx) + int_w(val),
            Stmt::If { l, r, then_v, else_v, .. } => {
                10 + int_w(l) + int_w(r) + int_w(then_v) + int_w(else_v)
            }
            Stmt::Loop { trips, body } => {
                10 + *trips as usize + body.iter().map(stmt_w).sum::<usize>()
            }
            Stmt::Call { arg, .. } => 10 + int_w(arg),
        }
    }
    fn int_w(e: &IntExpr) -> usize {
        10 + match e {
            IntExpr::Load { idx, .. } => int_w(idx),
            IntExpr::Indirect { idx, .. } => 5 + int_w(idx),
            IntExpr::Bin { l, r, .. } => int_w(l) + int_w(r),
            IntExpr::FromFloat(f) => float_w(f),
            IntExpr::Select { cl, cr, t, f, .. } => int_w(cl) + int_w(cr) + int_w(t) + int_w(f),
            _ => 0,
        }
    }
    fn float_w(e: &FloatExpr) -> usize {
        10 + match e {
            FloatExpr::Load { idx, .. } => int_w(idx),
            FloatExpr::Bin { l, r, .. } => float_w(l) + float_w(r),
            FloatExpr::FromInt(i) => int_w(i),
            FloatExpr::Sqrt(f) => float_w(f),
            _ => 0,
        }
    }
    s.stmts.iter().map(stmt_w).sum::<usize>()
        + s.arrays.len()
        + s.helpers as usize
        + if s.trap.is_some() { 2 } else { 0 }
}

/// All one-step reductions of a spec.
fn candidates(s: &ProgramSpec) -> Vec<ProgramSpec> {
    let mut out = Vec::new();
    for stmts in stmt_list_variants(&s.stmts) {
        out.push(ProgramSpec { stmts, ..s.clone() });
    }
    if s.trap.is_some() {
        out.push(ProgramSpec { trap: None, ..s.clone() });
    }
    if s.helpers > 0 {
        out.push(ProgramSpec { helpers: 0, ..s.clone() });
    }
    // Array indices are reduced modulo the array count at build time, so
    // truncating the array list is always well-formed. Keep the int + float
    // pair the expression grammar assumes.
    if s.arrays.len() > 2 {
        out.push(ProgramSpec { arrays: s.arrays[..2].to_vec(), ..s.clone() });
    }
    out
}

/// Reductions of a statement list: drop any one statement, or reduce any one
/// statement in place (possibly splicing a loop body inline).
fn stmt_list_variants(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        let mut v = stmts.to_vec();
        v.remove(i);
        out.push(v);
        for r in stmt_variants(&stmts[i]) {
            let mut v = stmts.to_vec();
            match r {
                Reduced::One(s) => v[i] = s,
                Reduced::Many(ss) => {
                    v.splice(i..=i, ss);
                }
            }
            out.push(v);
        }
    }
    out
}

enum Reduced {
    One(Stmt),
    Many(Vec<Stmt>),
}

fn stmt_variants(s: &Stmt) -> Vec<Reduced> {
    let mut out = Vec::new();
    match s {
        Stmt::IntAcc { op, e } => {
            for e2 in int_variants(e) {
                out.push(Reduced::One(Stmt::IntAcc { op: *op, e: e2 }));
            }
        }
        Stmt::FloatAcc { op, e } => {
            for e2 in float_variants(e) {
                out.push(Reduced::One(Stmt::FloatAcc { op: *op, e: e2 }));
            }
        }
        Stmt::Store { arr, idx, val } => {
            for i2 in int_variants(idx) {
                out.push(Reduced::One(Stmt::Store { arr: *arr, idx: i2, val: val.clone() }));
            }
            for v2 in int_variants(val) {
                out.push(Reduced::One(Stmt::Store { arr: *arr, idx: idx.clone(), val: v2 }));
            }
        }
        Stmt::If { pred, l, r, then_v, else_v } => {
            out.push(Reduced::One(Stmt::IntAcc { op: tinyir::BinOp::Xor, e: then_v.clone() }));
            out.push(Reduced::One(Stmt::IntAcc { op: tinyir::BinOp::Xor, e: else_v.clone() }));
            let mk = |l: IntExpr, r: IntExpr, t: IntExpr, f: IntExpr| {
                Reduced::One(Stmt::If { pred: *pred, l, r, then_v: t, else_v: f })
            };
            for e2 in int_variants(l) {
                out.push(mk(e2, r.clone(), then_v.clone(), else_v.clone()));
            }
            for e2 in int_variants(r) {
                out.push(mk(l.clone(), e2, then_v.clone(), else_v.clone()));
            }
            for e2 in int_variants(then_v) {
                out.push(mk(l.clone(), r.clone(), e2, else_v.clone()));
            }
            for e2 in int_variants(else_v) {
                out.push(mk(l.clone(), r.clone(), then_v.clone(), e2));
            }
        }
        Stmt::Loop { trips, body } => {
            out.push(Reduced::Many(body.clone()));
            if *trips > 1 {
                out.push(Reduced::One(Stmt::Loop { trips: 1, body: body.clone() }));
            }
            for b2 in stmt_list_variants(body) {
                out.push(Reduced::One(Stmt::Loop { trips: *trips, body: b2 }));
            }
        }
        Stmt::Call { which, arg } => {
            out.push(Reduced::One(Stmt::IntAcc { op: tinyir::BinOp::Add, e: arg.clone() }));
            for e2 in int_variants(arg) {
                out.push(Reduced::One(Stmt::Call { which: *which, arg: e2 }));
            }
        }
    }
    out
}

/// One-step reductions of an integer expression: collapse to a literal, hoist
/// a subexpression, or reduce a subexpression in place.
fn int_variants(e: &IntExpr) -> Vec<IntExpr> {
    let mut out = Vec::new();
    if !matches!(e, IntExpr::Const(_)) {
        out.push(IntExpr::Const(1));
    }
    match e {
        IntExpr::Load { arr, idx } => {
            out.push((**idx).clone());
            for i2 in int_variants(idx) {
                out.push(IntExpr::Load { arr: *arr, idx: Box::new(i2) });
            }
        }
        IntExpr::Indirect { a, b, idx } => {
            out.push(IntExpr::Load { arr: *b, idx: idx.clone() });
            out.push(IntExpr::Load { arr: *a, idx: idx.clone() });
            for i2 in int_variants(idx) {
                out.push(IntExpr::Indirect { a: *a, b: *b, idx: Box::new(i2) });
            }
        }
        IntExpr::Bin { op, l, r } => {
            out.push((**l).clone());
            out.push((**r).clone());
            for l2 in int_variants(l) {
                out.push(IntExpr::Bin { op: *op, l: Box::new(l2), r: r.clone() });
            }
            for r2 in int_variants(r) {
                out.push(IntExpr::Bin { op: *op, l: l.clone(), r: Box::new(r2) });
            }
        }
        IntExpr::FromFloat(f) => {
            for f2 in float_variants(f) {
                out.push(IntExpr::FromFloat(Box::new(f2)));
            }
        }
        IntExpr::Select { pred, cl, cr, t, f } => {
            out.push((**t).clone());
            out.push((**f).clone());
            for t2 in int_variants(t) {
                out.push(IntExpr::Select {
                    pred: *pred,
                    cl: cl.clone(),
                    cr: cr.clone(),
                    t: Box::new(t2),
                    f: f.clone(),
                });
            }
            for c2 in int_variants(cl) {
                out.push(IntExpr::Select {
                    pred: *pred,
                    cl: Box::new(c2),
                    cr: cr.clone(),
                    t: t.clone(),
                    f: f.clone(),
                });
            }
        }
        _ => {}
    }
    out
}

fn float_variants(e: &FloatExpr) -> Vec<FloatExpr> {
    let mut out = Vec::new();
    if !matches!(e, FloatExpr::Const(_)) {
        out.push(FloatExpr::Const(1.0));
    }
    match e {
        FloatExpr::Load { arr, idx } => {
            for i2 in int_variants(idx) {
                out.push(FloatExpr::Load { arr: *arr, idx: Box::new(i2) });
            }
        }
        FloatExpr::Bin { op, l, r } => {
            out.push((**l).clone());
            out.push((**r).clone());
            for l2 in float_variants(l) {
                out.push(FloatExpr::Bin { op: *op, l: Box::new(l2), r: r.clone() });
            }
            for r2 in float_variants(r) {
                out.push(FloatExpr::Bin { op: *op, l: l.clone(), r: Box::new(r2) });
            }
        }
        FloatExpr::FromInt(i) => {
            for i2 in int_variants(i) {
                out.push(FloatExpr::FromInt(Box::new(i2)));
            }
        }
        FloatExpr::Sqrt(f) => {
            out.push((**f).clone());
            for f2 in float_variants(f) {
                out.push(FloatExpr::Sqrt(Box::new(f2)));
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ArraySpec;
    use tinyir::Ty;

    #[test]
    fn shrink_terminates_on_clean_specs() {
        // A spec with no divergence shrinks to itself (no candidate passes
        // the predicate).
        let spec = ProgramSpec::generate(7);
        let out = shrink(&spec, Pair::OptLevels);
        assert_eq!(size(&out), size(&spec));
    }

    #[test]
    fn candidates_strictly_shrink() {
        for seed in 0..30 {
            let spec = ProgramSpec::generate(seed);
            let s0 = size(&spec);
            for c in candidates(&spec).into_iter().filter(|c| size(c) < s0) {
                // Every accepted candidate must still build + verify.
                let m = crate::spec::build(&c);
                assert!(m.func_by_name("main").is_some());
            }
        }
    }

    #[test]
    fn loop_body_splice_is_a_candidate() {
        let spec = ProgramSpec {
            seed: 0,
            arrays: vec![
                ArraySpec { ty: Ty::I64, log2_len: 3 },
                ArraySpec { ty: Ty::F64, log2_len: 3 },
            ],
            helpers: 0,
            stmts: vec![Stmt::Loop {
                trips: 4,
                body: vec![Stmt::IntAcc { op: tinyir::BinOp::Add, e: IntExpr::N }],
            }],
            trap: None,
        };
        let has_splice = candidates(&spec)
            .iter()
            .any(|c| matches!(c.stmts.first(), Some(Stmt::IntAcc { .. })));
        assert!(has_splice);
    }
}
