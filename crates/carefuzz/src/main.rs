//! CLI: `carefuzz --seeds N [--start S]` to fuzz, `carefuzz --replay FILE`
//! to re-run one `.tir` reproducer through the full oracle.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seeds = 1000u64;
    let mut start = 0u64;
    let mut replay: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => seeds = parse_num(args.next(), "--seeds"),
            "--start" => start = parse_num(args.next(), "--start"),
            "--replay" => replay = Some(args.next().unwrap_or_else(|| usage("--replay FILE"))),
            "--help" | "-h" => {
                println!(
                    "carefuzz: differential-oracle fuzzing for the CARE stack\n\n\
                     USAGE:\n  carefuzz [--seeds N] [--start S]   fuzz N seeded programs\n  \
                     carefuzz --replay FILE.tir         re-check one reproducer"
                );
                return ExitCode::SUCCESS;
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }

    if let Some(path) = replay {
        return replay_file(&path);
    }

    println!("fuzzing {seeds} seeds starting at {start} ...");
    let failures = carefuzz::run_seeds(start, seeds, |line| println!("{line}"));
    if failures.is_empty() {
        println!("ok: {seeds} seeds, no divergence");
        return ExitCode::SUCCESS;
    }
    for f in &failures {
        println!("\n=== seed {} ===", f.seed);
        println!("divergence: {}", f.divergence);
        println!("minimized reproducer (save under tests/regressions/):");
        println!("{}", f.reproducer);
    }
    eprintln!("{} divergence(s) in {seeds} seeds", failures.len());
    ExitCode::FAILURE
}

fn replay_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let m = match tinyir::parser::parse_module(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match carefuzz::oracle::check_module(&m, 0xF1E1D) {
        Some(d) => {
            eprintln!("{path}: still diverges: {d}");
            ExitCode::FAILURE
        }
        None => {
            println!("{path}: all engine pairs agree");
            ExitCode::SUCCESS
        }
    }
}

fn parse_num(v: Option<String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

fn usage(msg: &str) -> ! {
    eprintln!("carefuzz: {msg} (try --help)");
    std::process::exit(2)
}
