//! carefuzz — differential-oracle fuzzing for the whole CARE stack.
//!
//! The harness generates seeded random TinyIR programs ([`spec`]), runs each
//! one through every pair of engines that must agree ([`oracle`]) and, when a
//! pair disagrees, minimises the program with a spec-level delta debugger
//! ([`shrink`]). Minimised reproducers are checked into `tests/regressions/`
//! and replayed by `tests/regressions.rs` so a fixed divergence stays fixed.
//!
//! Run it: `cargo run --release -p carefuzz -- --seeds 10000`.
//! Reproduce a divergence by name: `cargo run --release -p carefuzz -- --replay
//! tests/regressions/<name>.tir`.

pub mod oracle;
pub mod shrink;
pub mod spec;

use oracle::Divergence;
use spec::ProgramSpec;

/// One divergent seed, minimised.
pub struct Failure {
    /// The seed that produced the divergence.
    pub seed: u64,
    /// The original divergence.
    pub divergence: Divergence,
    /// The minimised spec still reproducing it.
    pub minimized: ProgramSpec,
    /// Printed TinyIR of the minimised program, ready to be checked into
    /// `tests/regressions/`.
    pub reproducer: String,
}

/// Fuzz seeds `start..start + count`. Returns every divergence found, each
/// already minimised. `progress` gets a line every 500 seeds.
pub fn run_seeds(start: u64, count: u64, mut progress: impl FnMut(String)) -> Vec<Failure> {
    let mut failures = Vec::new();
    for seed in start..start + count {
        if seed != start && (seed - start).is_multiple_of(500) {
            progress(format!(
                "  ... {} / {count} seeds, {} divergence(s)",
                seed - start,
                failures.len()
            ));
        }
        let spec = ProgramSpec::generate(seed);
        let Some(d) = oracle::check_spec(&spec) else { continue };
        progress(format!("seed {seed}: {d}"));
        let minimized = shrink::shrink(&spec, d.pair);
        let reproducer = tinyir::display::print_module(&spec::build(&minimized));
        failures.push(Failure { seed, divergence: d, minimized, reproducer });
    }
    failures
}
