//! The differential oracle: run one program through every engine pair that
//! must agree, and report the first disagreement.
//!
//! Pairs (ISSUE 5 tentpole):
//! 1. **RoundTrip** — `display` → `parser` → `display` is a fixpoint and the
//!    reparse verifies.
//! 2. **FastSlow** — the interpreter's monomorphized hook-free fast loop vs
//!    the hooked slow loop (an inert empty `BreakSet` forces it), compared at
//!    *every* fuel budget on short programs and a dense sample on long ones:
//!    exit state, step/trap accounting and all output globals must match.
//! 3. **OptLevels** — the `opt` pipeline must preserve semantics: IR interp
//!    and SimISA machine at O0 and O1 all agree on result + output globals.
//! 4. **Trellis** — the snapshot-trellis campaign scheduler is record-level
//!    identical to the per-injection engine on the same seed.
//! 5. **Kernel** — the paper §4 claim: every Armor recovery kernel, executed
//!    inline at its protected access during a fault-free run, recomputes
//!    exactly the address the access is about to use.
//! 6. **Liveness** — the §3.2 terminal-value rule: every `Die` kernel
//!    parameter is live (per `analysis::liveness`) at the faulting
//!    instruction or folded into its machine address operand.
//! 7. **Compiled** — the direct-threaded compiled engine vs the
//!    interpreter's fast loop, at every fuel budget on short programs and a
//!    dense sample on long ones: exit state, step/fuel/trap accounting and
//!    all output globals must match bit for bit.

use crate::spec::{build, ProgramSpec};
use analysis::{Cfg, Liveness};
use armor::{run_armor, ArmorOutput, ParamSpec, RecoveryKey};
use care::{BuildStats, CompiledApp};
use faultsim::{Campaign, CampaignConfig, Scheduler};
use opt::OptLevel;
use simx::{compile_module, BreakSet, MachineModule, Process, RunExit};
use std::collections::HashMap;
use std::sync::Arc;
use tinyir::interp::{layout_globals, Interp};
use tinyir::mem::{Memory, PagedMemory};
use tinyir::{
    display::print_module, parser::parse_module, verify::verify_module, Callee, CastOp, FuncId,
    Global, GlobalInit, ICmp, Instr, InstrId, InstrKind, Module, Ty, Value,
};
use workloads::Workload;

/// Which engine pair disagreed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pair {
    /// print → parse → print fixpoint.
    RoundTrip,
    /// Fast interpreter loop vs hooked slow loop.
    FastSlow,
    /// Unoptimized vs `opt`-pipeline execution (interp + machine, O0 + O1).
    OptLevels,
    /// Trellis vs per-injection campaign records.
    Trellis,
    /// Armor kernel address vs fault-free ground truth.
    Kernel,
    /// Armor terminal-value liveness invariant.
    Liveness,
    /// Compiled direct-threaded engine vs interpreter fast loop.
    Compiled,
}

impl std::fmt::Display for Pair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One oracle disagreement.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Which pair disagreed.
    pub pair: Pair,
    /// The `main` argument under which it manifested.
    pub arg: u64,
    /// Human-readable discrepancy.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:?} @ arg={}] {}", self.pair, self.arg, self.detail)
    }
}

/// Interp memory layout (matches `tests/properties.rs`).
const GLOBAL_BASE: u64 = 0x1000_0000;
const STACK_BASE: u64 = 0x7f00_0000_0000;
const STACK_LIMIT: u64 = STACK_BASE + 0x0100_0000;
const HEAP_BASE: u64 = 0x6000_0000_0000;
const INTERP_FUEL: u64 = 50_000_000;
/// Machine full-run fuel cap (generated programs are counted-loop bounded;
/// this is a safety net, not a hang oracle).
const MACHINE_FUEL: u64 = 10_000_000;

/// `main` arguments each program is exercised under.
pub const ORACLE_ARGS: [u64; 3] = [0, 3, 11];

/// Check a spec across all pairs and arguments. Returns the first
/// divergence.
pub fn check_spec(spec: &ProgramSpec) -> Option<Divergence> {
    let m = build(spec);
    check_module(&m, spec.seed)
}

/// Check an already-built module (also the `tests/regressions/` replay entry
/// point — reproducers are stored as `.tir` text and come back through the
/// parser). `salt` diversifies campaign seeds between programs.
pub fn check_module(m: &Module, salt: u64) -> Option<Divergence> {
    if let Some(d) = roundtrip_check(m) {
        return Some(d);
    }
    // Compile both levels once; armor once.
    let mm0 = Arc::new(compile_module(m, false, &[]));
    let mut oir = m.clone();
    opt::optimize(&mut oir, OptLevel::O1);
    let armor_out = run_armor(&oir);
    let mm1 = Arc::new(compile_module(&oir, true, &armor_out.die_requests));
    let outputs = output_globals(m);

    if let Some(d) = liveness_check(&oir, &armor_out) {
        return Some(d);
    }

    for &arg in &ORACLE_ARGS {
        // Pairs 2 and 7 first: they tolerate (and must agree on) trapping
        // programs.
        for mm in [&mm0, &mm1] {
            if let Some(d) = fast_slow_check(mm, arg, &outputs, salt) {
                return Some(d);
            }
            if let Some(d) = compiled_check(mm, arg, &outputs, salt) {
                return Some(d);
            }
        }
        // The remaining pairs need a fault-free golden run.
        let golden = run_machine(&mm0, arg, MACHINE_FUEL, false, &outputs);
        if !matches!(golden.exit, RunExit::Done(_)) {
            continue;
        }
        if let Some(d) = opt_levels_check(m, &oir, &mm0, &mm1, arg, &outputs) {
            return Some(d);
        }
        if let Some(d) = kernel_probe_check(&oir, &armor_out, arg) {
            return Some(d);
        }
    }

    // Pair 4 once per program (campaigns pick their own injection points).
    let arg = ORACLE_ARGS[1];
    let golden = run_machine(&mm0, arg, MACHINE_FUEL, false, &outputs);
    if matches!(golden.exit, RunExit::Done(_)) {
        if let Some(d) = trellis_check(m, &oir, &armor_out, &mm1, arg, &outputs, salt) {
            return Some(d);
        }
    }
    None
}

/// Output regions: every generated global array.
fn output_globals(m: &Module) -> Vec<(String, u64)> {
    m.globals
        .iter()
        .map(|g| (g.name.clone(), g.count as u64 * g.elem_ty.size() as u64))
        .collect()
}

// ---------------------------------------------------------------- pair 1 --

fn roundtrip_check(m: &Module) -> Option<Divergence> {
    let t1 = print_module(m);
    let reparsed = match parse_module(&t1) {
        Ok(p) => p,
        Err(e) => {
            return Some(Divergence {
                pair: Pair::RoundTrip,
                arg: 0,
                detail: format!("printed module does not parse: {e}"),
            })
        }
    };
    if let Err(e) = verify_module(&reparsed) {
        return Some(Divergence {
            pair: Pair::RoundTrip,
            arg: 0,
            detail: format!("reparsed module does not verify: {e}"),
        });
    }
    let t2 = print_module(&reparsed);
    if t1 != t2 {
        let at = t1
            .lines()
            .zip(t2.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: {a:?} vs {b:?}", i + 1))
            .unwrap_or_else(|| "length mismatch".into());
        return Some(Divergence {
            pair: Pair::RoundTrip,
            arg: 0,
            detail: format!("print→parse→print not a fixpoint at {at}"),
        });
    }
    None
}

// ---------------------------------------------------------------- pair 2 --

/// Everything observable about one machine run.
#[derive(Clone, PartialEq, Debug)]
struct RunState {
    exit: RunExit,
    steps: u64,
    fuel_left: u64,
    trap_count: u64,
    globals: Vec<Vec<u8>>,
}

fn run_machine(
    mm: &Arc<MachineModule>,
    arg: u64,
    fuel: u64,
    slow: bool,
    outputs: &[(String, u64)],
) -> RunState {
    let mut p = Process::new(Arc::clone(mm), vec![]);
    p.start("main", &[arg]);
    p.fuel = fuel;
    if slow {
        // An empty breakpoint set never fires but forces the hooked loop.
        p.multi_break = Some(BreakSet::new());
    }
    let exit = p.run();
    let globals = outputs
        .iter()
        .map(|(name, bytes)| p.snapshot_global(name, *bytes).unwrap_or_default())
        .collect();
    RunState { exit, steps: p.steps, fuel_left: p.fuel, trap_count: p.trap_count, globals }
}

fn fast_slow_check(
    mm: &Arc<MachineModule>,
    arg: u64,
    outputs: &[(String, u64)],
    salt: u64,
) -> Option<Divergence> {
    let full = run_machine(mm, arg, MACHINE_FUEL, false, outputs);
    let total = full.steps;
    let budgets: Vec<u64> = if total <= 256 {
        (0..=total + 1).collect()
    } else {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(salt ^ total ^ arg);
        let mut v: Vec<u64> = vec![0, 1, 2, total - 2, total - 1, total, total + 1];
        v.extend((0..24).map(|_| rng.gen_range(3..total.saturating_sub(2))));
        v
    };
    for b in budgets {
        let fast = run_machine(mm, arg, b, false, outputs);
        let slow = run_machine(mm, arg, b, true, outputs);
        if fast != slow {
            return Some(Divergence {
                pair: Pair::FastSlow,
                arg,
                detail: format!(
                    "fuel budget {b}: fast {:?} (steps {}, traps {}) vs slow {:?} (steps {}, traps {})",
                    fast.exit, fast.steps, fast.trap_count, slow.exit, slow.steps, slow.trap_count
                ),
            });
        }
    }
    None
}

// ---------------------------------------------------------------- pair 7 --

/// Run `main(arg)` on the compiled direct-threaded engine and capture the
/// same observable state as [`run_machine`].
fn run_compiled(
    engine: &simx::CompiledEngine,
    mm: &Arc<MachineModule>,
    arg: u64,
    fuel: u64,
    outputs: &[(String, u64)],
) -> RunState {
    use simx::ExecutionEngine;
    let mut p = Process::new(Arc::clone(mm), vec![]);
    p.start("main", &[arg]);
    p.fuel = fuel;
    let exit = engine.run(&mut p);
    let globals = outputs
        .iter()
        .map(|(name, bytes)| p.snapshot_global(name, *bytes).unwrap_or_default())
        .collect();
    RunState { exit, steps: p.steps, fuel_left: p.fuel, trap_count: p.trap_count, globals }
}

/// Pair 7: the compiled engine must be indistinguishable from the
/// interpreter fast loop at *every* fuel budget — same exhaustive/sampled
/// budget scheme as [`fast_slow_check`], so partial segments, mid-fusion
/// out-of-fuel exits and trap freezes are all exercised.
fn compiled_check(
    mm: &Arc<MachineModule>,
    arg: u64,
    outputs: &[(String, u64)],
    salt: u64,
) -> Option<Divergence> {
    let engine = {
        let p = Process::new(Arc::clone(mm), vec![]);
        simx::CompiledEngine::for_image(&p.image)
    };
    let full = run_machine(mm, arg, MACHINE_FUEL, false, outputs);
    let total = full.steps;
    let budgets: Vec<u64> = if total <= 256 {
        (0..=total + 1).collect()
    } else {
        use rand::{Rng, SeedableRng};
        let mut rng =
            rand::rngs::SmallRng::seed_from_u64(salt ^ total.rotate_left(17) ^ arg);
        let mut v: Vec<u64> = vec![0, 1, 2, total - 2, total - 1, total, total + 1];
        v.extend((0..24).map(|_| rng.gen_range(3..total.saturating_sub(2))));
        v
    };
    for b in budgets {
        let interp = run_machine(mm, arg, b, false, outputs);
        let compiled = run_compiled(&engine, mm, arg, b, outputs);
        if interp != compiled {
            return Some(Divergence {
                pair: Pair::Compiled,
                arg,
                detail: format!(
                    "fuel budget {b}: interp {:?} (steps {}, fuel {}, traps {}) vs \
                     compiled {:?} (steps {}, fuel {}, traps {})",
                    interp.exit,
                    interp.steps,
                    interp.fuel_left,
                    interp.trap_count,
                    compiled.exit,
                    compiled.steps,
                    compiled.fuel_left,
                    compiled.trap_count
                ),
            });
        }
    }
    None
}

// ---------------------------------------------------------------- pair 3 --

fn run_interp(m: &Module, arg: u64, outputs: &[(String, u64)]) -> Result<RunState, String> {
    let mut mem = PagedMemory::new();
    let gaddrs = layout_globals(m, &mut mem, GLOBAL_BASE);
    let main = m.func_by_name("main").ok_or("no main")?;
    let (ret, steps) = {
        let mut it = Interp::new(m, &mut mem, &gaddrs, STACK_BASE, STACK_LIMIT, HEAP_BASE, INTERP_FUEL);
        let ret = it.call(main, &[arg]).map_err(|e| format!("interp fault: {e:?}"))?;
        (ret, it.steps)
    };
    let mut globals = Vec::with_capacity(outputs.len());
    for (name, bytes) in outputs {
        let gid = m.global_by_name(name).ok_or("missing global")?;
        let base = gaddrs[gid.0 as usize];
        let mut buf = Vec::with_capacity(*bytes as usize);
        let mut off = 0u64;
        while off < *bytes {
            let w = mem.load(base + off, 1).map_err(|e| format!("{e:?}"))?;
            buf.push(w as u8);
            off += 1;
        }
        globals.push(buf);
    }
    Ok(RunState {
        exit: RunExit::Done(ret),
        steps,
        fuel_left: 0,
        trap_count: 0,
        globals,
    })
}

fn opt_levels_check(
    m: &Module,
    oir: &Module,
    mm0: &Arc<MachineModule>,
    mm1: &Arc<MachineModule>,
    arg: u64,
    outputs: &[(String, u64)],
) -> Option<Divergence> {
    let diverge = |engine: &str, detail: String| {
        Some(Divergence { pair: Pair::OptLevels, arg, detail: format!("{engine}: {detail}") })
    };
    let i0 = match run_interp(m, arg, outputs) {
        Ok(r) => r,
        Err(e) => return diverge("interp O0", e),
    };
    let i1 = match run_interp(oir, arg, outputs) {
        Ok(r) => r,
        Err(e) => return diverge("interp O1", e),
    };
    let m0 = run_machine(mm0, arg, MACHINE_FUEL, false, outputs);
    let m1 = run_machine(mm1, arg, MACHINE_FUEL, false, outputs);
    let engines = [("interp O0", &i0), ("interp O1", &i1), ("machine O0", &m0), ("machine O1", &m1)];
    for (name, r) in &engines[1..] {
        if r.exit != i0.exit {
            return diverge(name, format!("result {:?}, expected {:?}", r.exit, i0.exit));
        }
        if r.globals != i0.globals {
            let which = outputs
                .iter()
                .zip(i0.globals.iter().zip(r.globals.iter()))
                .find(|(_, (a, b))| a != b)
                .map(|((n, _), _)| n.clone())
                .unwrap_or_default();
            return diverge(name, format!("output global {which} differs from interp O0"));
        }
    }
    None
}

// ---------------------------------------------------------------- pair 4 --

fn trellis_check(
    m: &Module,
    oir: &Module,
    armor_out: &ArmorOutput,
    mm1: &Arc<MachineModule>,
    arg: u64,
    outputs: &[(String, u64)],
    salt: u64,
) -> Option<Divergence> {
    let _ = oir;
    let out_refs: Vec<(&str, u64)> = outputs.iter().map(|(n, b)| (n.as_str(), *b)).collect();
    let w = Workload::new("fuzz", m.clone(), vec![arg], out_refs);
    let app = CompiledApp {
        machine: Arc::clone(mm1),
        armor: armor_out.clone(),
        opt_level: OptLevel::O1,
        build: BuildStats::default(),
    };
    let campaign = Campaign::prepare(&w, app, vec![]);
    let cfg = CampaignConfig {
        injections: 6,
        evaluate_care: true,
        app_only: true,
        keep_records: true,
        seed: salt.wrapping_mul(0x9E37_79B9).wrapping_add(arg),
        ..CampaignConfig::default()
    };
    let trellis = campaign.run(&CampaignConfig { scheduler: Scheduler::Trellis, ..cfg });
    let legacy = campaign.run(&CampaignConfig { scheduler: Scheduler::PerInjection, ..cfg });
    if trellis.records != legacy.records {
        let detail = trellis
            .records
            .iter()
            .zip(legacy.records.iter())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("injection {i}: trellis {a:?} vs per-injection {b:?}"))
            .unwrap_or_else(|| {
                format!("{} vs {} records", trellis.records.len(), legacy.records.len())
            });
        return Some(Divergence { pair: Pair::Trellis, arg, detail });
    }
    None
}

// ------------------------------------------------------------- pairs 5+6 --

/// One instrumentable protected access: the first access (in Armor's own
/// iteration order) carrying each recovery key, in the function whose values
/// the kernel's DIE parameters refer to.
struct ProbeSite {
    fid: usize,
    access: InstrId,
    /// Index of this site's counter slot in the probe global.
    slot: usize,
    /// Kernel function id *within the kernel module*.
    kernel: FuncId,
    /// Call arguments resolved to app-function values.
    args: Vec<Value>,
}

/// Locate every probe site. Mirrors `run_armor`'s iteration exactly so each
/// table entry is matched to the access its kernel was extracted from.
fn probe_sites(oir: &Module, out: &ArmorOutput) -> Vec<ProbeSite> {
    let by_name: HashMap<&str, &simx::DieRequest> =
        out.die_requests.iter().map(|r| (r.name.as_str(), r)).collect();
    let mut seen = std::collections::HashSet::new();
    let mut sites = Vec::new();
    for (fi, f) in oir.funcs.iter().enumerate() {
        if f.is_decl {
            continue;
        }
        for access in f.mem_access_instrs() {
            let Some(loc) = f.instr(access).loc else { continue };
            let key = RecoveryKey::for_loc(oir, loc);
            if !seen.insert(key) {
                continue; // only the first access per key owns the kernel
            }
            let Some(entry) = out.table.lookup(&key) else { continue };
            let mut args = Vec::with_capacity(entry.params.len());
            let mut ok = true;
            for spec in &entry.params {
                match spec {
                    ParamSpec::GlobalAddr { name } => match oir.global_by_name(name) {
                        Some(g) => args.push(Value::Global(g)),
                        None => ok = false,
                    },
                    ParamSpec::Die { name } => match by_name.get(name.as_str()) {
                        Some(r) if r.func.0 as usize == fi => args.push(r.value),
                        _ => ok = false, // kernel belongs to another function
                    },
                    // Constants never become parameters (extraction folds
                    // them); skip defensively if one ever appears.
                    ParamSpec::Const(_) => ok = false,
                }
            }
            if ok {
                sites.push(ProbeSite {
                    fid: fi,
                    access,
                    slot: sites.len(),
                    kernel: entry.kernel,
                    args,
                });
            }
        }
    }
    sites
}

/// Pair 5: clone the optimized module, append the kernel library, and insert
/// before every protected access: `probe[slot] += (kernel(args) != addr)`.
/// A fault-free run must leave every probe slot at zero — the kernel
/// recomputes exactly the address the access uses (paper §4).
fn kernel_probe_check(oir: &Module, out: &ArmorOutput, arg: u64) -> Option<Divergence> {
    let sites = probe_sites(oir, out);
    if sites.is_empty() {
        return None;
    }
    let mut pm = oir.clone();
    let kernel_base = pm.funcs.len();
    for kf in &out.kernel_module.funcs {
        pm.add_func(kf.clone());
    }
    let probe_gid = pm.add_global(Global {
        name: "care_probe".into(),
        elem_ty: Ty::I64,
        count: sites.len() as u32,
        init: GlobalInit::Zero,
    });

    for site in &sites {
        let f = &mut pm.funcs[site.fid];
        let Some(addr) = f.instr(site.access).addr_operand() else { continue };
        let kfid = FuncId((kernel_base + site.kernel.0 as usize) as u32);
        // Append the probe instructions to the arena, then splice their ids
        // into the block right before the access.
        let base_id = f.instrs.len() as u32;
        let id = |k: u32| Value::Instr(InstrId(base_id + k));
        let new_instrs = [
            InstrKind::Call {
                callee: Callee::Func(kfid),
                args: site.args.clone(),
                ret_ty: Some(Ty::Ptr),
            },
            InstrKind::Icmp { pred: ICmp::Ne, lhs: id(0), rhs: addr },
            InstrKind::Cast { op: CastOp::Zext, val: id(1), to: Ty::I64 },
            InstrKind::Gep {
                base: Value::Global(probe_gid),
                index: Value::i64(site.slot as i64),
                elem_size: 8,
            },
            InstrKind::Load { ptr: id(3), ty: Ty::I64 },
            InstrKind::Bin { op: tinyir::BinOp::Add, lhs: id(4), rhs: id(2), ty: Ty::I64 },
            InstrKind::Store { val: id(5), ptr: id(3) },
        ];
        for kind in new_instrs {
            f.instrs.push(Instr::new(kind));
        }
        let (bidx, pos) = f
            .blocks
            .iter()
            .enumerate()
            .find_map(|(bi, b)| {
                b.instrs.iter().position(|&i| i == site.access).map(|p| (bi, p))
            })
            .expect("access is in some block");
        let ids: Vec<InstrId> = (0..7).map(|k| InstrId(base_id + k)).collect();
        f.blocks[bidx].instrs.splice(pos..pos, ids);
    }
    pm.rebuild_indexes();
    if let Err(e) = verify_module(&pm) {
        return Some(Divergence {
            pair: Pair::Kernel,
            arg,
            detail: format!("probe instrumentation does not verify: {e}"),
        });
    }

    let outputs = vec![("care_probe".to_string(), sites.len() as u64 * 8)];
    match run_interp(&pm, arg, &outputs) {
        Ok(state) => {
            let probe = &state.globals[0];
            for site in &sites {
                let off = site.slot * 8;
                let count = u64::from_le_bytes(probe[off..off + 8].try_into().unwrap());
                if count != 0 {
                    let f = &oir.funcs[site.fid];
                    return Some(Divergence {
                        pair: Pair::Kernel,
                        arg,
                        detail: format!(
                            "kernel for {} access {:?} in @{} recomputed a wrong address {count} time(s)",
                            site.slot, site.access, f.name
                        ),
                    });
                }
            }
            None
        }
        Err(e) => Some(Divergence {
            pair: Pair::Kernel,
            arg,
            detail: format!("instrumented run faulted (kernels must be transparent): {e}"),
        }),
    }
}

/// Pair 6 (satellite): the terminal-value invariant. Every `Die` parameter's
/// IR value is live at the protected access per `analysis::liveness`, or is
/// folded into the access's own machine address operand (gep + operands),
/// or is materialised storage (alloca).
pub fn liveness_check(oir: &Module, out: &ArmorOutput) -> Option<Divergence> {
    let sites = probe_sites(oir, out);
    let mut lv_cache: HashMap<usize, Liveness> = HashMap::new();
    for site in &sites {
        let f = &oir.funcs[site.fid];
        let lv = lv_cache
            .entry(site.fid)
            .or_insert_with(|| Liveness::compute(f, &Cfg::new(f)));
        // Values folded into the access's address mode are operands of the
        // faulting instruction itself, live by construction.
        let mut folded = std::collections::HashSet::new();
        if let Some(addr) = f.instr(site.access).addr_operand() {
            folded.insert(addr);
            if let Value::Instr(g) = addr {
                if let InstrKind::Gep { base, index, .. } = f.instr(g).kind {
                    folded.insert(base);
                    folded.insert(index);
                }
            }
        }
        for v in &site.args {
            let live = match v {
                Value::Instr(id) => {
                    folded.contains(v)
                        || matches!(f.instr(*id).kind, InstrKind::Alloca { .. })
                        || lv.value_live_at(*v, site.access)
                }
                Value::Arg(_) => true,
                _ => true,
            };
            if !live {
                return Some(Divergence {
                    pair: Pair::Liveness,
                    arg: 0,
                    detail: format!(
                        "kernel param {v:?} for access {:?} in @{} is not live at the access",
                        site.access, oir.funcs[site.fid].name
                    ),
                });
            }
        }
    }
    None
}
