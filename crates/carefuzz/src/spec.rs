//! Seeded random program generation.
//!
//! Generation is two-phase so divergent programs can be *shrunk*: a seed
//! deterministically expands into a [`ProgramSpec`] (a small statement
//! tree), and [`build`] materialises any spec — original or shrunk — into a
//! verified TinyIR module. The spec grammar deliberately exercises the
//! shapes the engine pairs disagree on when they are wrong: nested counted
//! loops (phis + induction arithmetic), explicit if/else diamonds joined by
//! phis, GEP address arithmetic with one- and two-level indirection over
//! global arrays, f32/f64 float chains, helper calls (inlining fodder for
//! the `opt` pair) and optional guard-region loads that fault on purpose.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tinyir::builder::{FuncBuilder, ModuleBuilder};
use tinyir::verify::verify_module;
use tinyir::{BinOp, CastOp, GlobalId, ICmp, Module, Ty, Value};

/// One global array. Lengths are powers of two so every generated index can
/// be made in-bounds with a single `and` mask (totality by construction).
#[derive(Clone, Debug)]
pub struct ArraySpec {
    /// Element type (I32/I64/F32/F64).
    pub ty: Ty,
    /// log2 of the element count (3..=8).
    pub log2_len: u8,
}

impl ArraySpec {
    /// Element count (always ≥ 8, hence no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> i64 {
        1i64 << self.log2_len
    }

    /// In-bounds index mask.
    pub fn mask(&self) -> i64 {
        self.len() - 1
    }

    /// Byte size of the whole array.
    pub fn bytes(&self) -> u64 {
        self.len() as u64 * self.ty.size() as u64
    }
}

/// An integer-valued expression (always built as `i64`).
#[derive(Clone, Debug)]
pub enum IntExpr {
    /// A literal.
    Const(i64),
    /// `main`'s argument.
    N,
    /// The current integer accumulator value.
    Acc,
    /// The loop induction variable `depth` levels out (0 = innermost);
    /// falls back to [`IntExpr::N`] outside any loop.
    Iv(u8),
    /// A masked load from an integer array.
    Load { arr: usize, idx: Box<IntExpr> },
    /// Two-level indirection: `b[a[idx & ma] & mb]` (both masked).
    Indirect { a: usize, b: usize, idx: Box<IntExpr> },
    /// A binary operation (shift amounts are masked to 0..63 at build).
    Bin { op: BinOp, l: Box<IntExpr>, r: Box<IntExpr> },
    /// A float expression clamped to a finite range and truncated.
    FromFloat(Box<FloatExpr>),
    /// `cl <pred> cr ? t : f`.
    Select {
        pred: ICmp,
        cl: Box<IntExpr>,
        cr: Box<IntExpr>,
        t: Box<IntExpr>,
        f: Box<IntExpr>,
    },
}

/// A float-valued expression (computed in `f64`; f32 arrays round-trip
/// through `fptrunc`/`fpext` at their loads and stores).
#[derive(Clone, Debug)]
pub enum FloatExpr {
    /// A literal (f64 bit pattern; the pool includes values that are not
    /// exactly representable in f32).
    Const(f64),
    /// The current float accumulator value.
    Facc,
    /// A masked load from a float array (F32 loads are `fpext`ed).
    Load { arr: usize, idx: Box<IntExpr> },
    /// A float binary operation.
    Bin { op: BinOp, l: Box<FloatExpr>, r: Box<FloatExpr> },
    /// `sitofp` of an integer expression.
    FromInt(Box<IntExpr>),
    /// `sqrt(|e|)`.
    Sqrt(Box<FloatExpr>),
}

/// One statement of the generated program body.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `acc = acc <op> e`.
    IntAcc { op: BinOp, e: IntExpr },
    /// `facc = facc <op> e`.
    FloatAcc { op: BinOp, e: FloatExpr },
    /// Masked store into an array (value coerced to the element type).
    Store { arr: usize, idx: IntExpr, val: IntExpr },
    /// An explicit diamond: `acc ^= phi(then_v, else_v)` — the two arms are
    /// evaluated in separate blocks and joined by a real phi node.
    If {
        pred: ICmp,
        l: IntExpr,
        r: IntExpr,
        then_v: IntExpr,
        else_v: IntExpr,
    },
    /// A counted loop around a nested body.
    Loop { trips: u8, body: Vec<Stmt> },
    /// `acc = acc + h<which>(arg)` — helper functions are inlining fodder.
    Call { which: u8, arg: IntExpr },
}

/// A deliberately-faulting load appended after the main body: the index
/// lands megabytes past every mapped global, in the guard region.
#[derive(Clone, Debug)]
pub struct TrapSpec {
    /// Which array's base address the wild load starts from.
    pub arr: usize,
}

/// A complete generated program.
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    /// The seed this spec was expanded from (0 for hand-built specs).
    pub seed: u64,
    /// Global arrays `g0..gN`.
    pub arrays: Vec<ArraySpec>,
    /// Number of helper functions `h0..hK` (each takes and returns `i64`).
    pub helpers: u8,
    /// The body of `main`.
    pub stmts: Vec<Stmt>,
    /// When set, the program ends with a guard-region load and is only
    /// eligible for the trap-tolerant oracle pairs.
    pub trap: Option<TrapSpec>,
}

const INT_OPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::LShr,
];
const FLOAT_OPS: [BinOp; 4] = [BinOp::FAdd, BinOp::FSub, BinOp::FMul, BinOp::FDiv];
const PREDS: [ICmp; 6] = [ICmp::Eq, ICmp::Ne, ICmp::Slt, ICmp::Sle, ICmp::Sgt, ICmp::Uge];
/// Literal pool: includes values inexact in f32 (0.1), values that overflow
/// f32's exponent range (1e300) and negatives for the sqrt/fabs path.
const FCONSTS: [f64; 8] = [0.0, 1.0, -1.0, 0.5, 0.1, 3.25, 1e300, -2.75];

impl ProgramSpec {
    /// Expand `seed` into a program.
    pub fn generate(seed: u64) -> ProgramSpec {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let n_arrays = rng.gen_range(2usize..=4);
        let mut arrays: Vec<ArraySpec> = Vec::with_capacity(n_arrays);
        // Always at least one integer and one float array so every expression
        // kind has a target.
        arrays.push(ArraySpec { ty: Ty::I64, log2_len: rng.gen_range(3u32..=8) as u8 });
        arrays.push(ArraySpec {
            ty: if rng.gen_range(0u32..2) == 0 { Ty::F64 } else { Ty::F32 },
            log2_len: rng.gen_range(3u32..=8) as u8,
        });
        for _ in 2..n_arrays {
            let ty = match rng.gen_range(0u32..4) {
                0 => Ty::I32,
                1 => Ty::I64,
                2 => Ty::F32,
                _ => Ty::F64,
            };
            arrays.push(ArraySpec { ty, log2_len: rng.gen_range(3u32..=8) as u8 });
        }
        let helpers = rng.gen_range(0u32..=2) as u8;
        let n_stmts = rng.gen_range(3usize..=9);
        let mut stmts = Vec::with_capacity(n_stmts);
        for _ in 0..n_stmts {
            stmts.push(gen_stmt(&mut rng, &arrays, helpers, 0));
        }
        // ~15% of programs fault on purpose; they exercise the trap paths of
        // the fast/slow interpreter pair only.
        let trap = if rng.gen_range(0u32..100) < 15 {
            Some(TrapSpec { arr: rng.gen_range(0usize..arrays.len()) })
        } else {
            None
        };
        ProgramSpec { seed, arrays, helpers, stmts, trap }
    }
}

fn gen_stmt(rng: &mut SmallRng, arrays: &[ArraySpec], helpers: u8, depth: u8) -> Stmt {
    // Loops only at shallow depth; everything else anywhere.
    let top = if depth < 2 { 6 } else { 5 };
    match rng.gen_range(0u32..top) {
        0 => Stmt::IntAcc {
            op: INT_OPS[rng.gen_range(0usize..INT_OPS.len())],
            e: gen_int(rng, arrays, 0),
        },
        1 => Stmt::FloatAcc {
            op: FLOAT_OPS[rng.gen_range(0usize..FLOAT_OPS.len())],
            e: gen_float(rng, arrays, 0),
        },
        2 => Stmt::Store {
            arr: rng.gen_range(0usize..arrays.len()),
            idx: gen_int(rng, arrays, 1),
            val: gen_int(rng, arrays, 1),
        },
        3 => Stmt::If {
            pred: PREDS[rng.gen_range(0usize..PREDS.len())],
            l: gen_int(rng, arrays, 1),
            r: gen_int(rng, arrays, 1),
            then_v: gen_int(rng, arrays, 1),
            else_v: gen_int(rng, arrays, 1),
        },
        4 if helpers > 0 => Stmt::Call {
            which: rng.gen_range(0u32..helpers as u32) as u8,
            arg: gen_int(rng, arrays, 1),
        },
        4 => Stmt::IntAcc { op: BinOp::Xor, e: gen_int(rng, arrays, 0) },
        _ => {
            let n = rng.gen_range(1usize..=3);
            let body = (0..n)
                .map(|_| gen_stmt(rng, arrays, helpers, depth + 1))
                .collect();
            Stmt::Loop { trips: rng.gen_range(2u32..=6) as u8, body }
        }
    }
}

fn gen_int(rng: &mut SmallRng, arrays: &[ArraySpec], depth: u8) -> IntExpr {
    let leaf = depth >= 3 || rng.gen_range(0u32..4) == 0;
    if leaf {
        return match rng.gen_range(0u32..4) {
            0 => IntExpr::Const(rng.gen_range(0u32..=128) as i64 - 64),
            1 => IntExpr::N,
            2 => IntExpr::Acc,
            _ => IntExpr::Iv(rng.gen_range(0u32..2) as u8),
        };
    }
    let int_arrays: Vec<usize> = arrays
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a.ty, Ty::I32 | Ty::I64))
        .map(|(i, _)| i)
        .collect();
    match rng.gen_range(0u32..5) {
        0 if !int_arrays.is_empty() => IntExpr::Load {
            arr: int_arrays[rng.gen_range(0usize..int_arrays.len())],
            idx: Box::new(gen_int(rng, arrays, depth + 1)),
        },
        1 if int_arrays.len() >= 2 || (int_arrays.len() == 1) => {
            let a = int_arrays[rng.gen_range(0usize..int_arrays.len())];
            let b = int_arrays[rng.gen_range(0usize..int_arrays.len())];
            IntExpr::Indirect { a, b, idx: Box::new(gen_int(rng, arrays, depth + 1)) }
        }
        2 => IntExpr::FromFloat(Box::new(gen_float(rng, arrays, depth + 1))),
        3 => IntExpr::Select {
            pred: PREDS[rng.gen_range(0usize..PREDS.len())],
            cl: Box::new(gen_int(rng, arrays, depth + 1)),
            cr: Box::new(gen_int(rng, arrays, depth + 1)),
            t: Box::new(gen_int(rng, arrays, depth + 1)),
            f: Box::new(gen_int(rng, arrays, depth + 1)),
        },
        _ => IntExpr::Bin {
            op: INT_OPS[rng.gen_range(0usize..INT_OPS.len())],
            l: Box::new(gen_int(rng, arrays, depth + 1)),
            r: Box::new(gen_int(rng, arrays, depth + 1)),
        },
    }
}

fn gen_float(rng: &mut SmallRng, arrays: &[ArraySpec], depth: u8) -> FloatExpr {
    let leaf = depth >= 3 || rng.gen_range(0u32..3) == 0;
    if leaf {
        return match rng.gen_range(0u32..2) {
            0 => FloatExpr::Const(FCONSTS[rng.gen_range(0usize..FCONSTS.len())]),
            _ => FloatExpr::Facc,
        };
    }
    let f_arrays: Vec<usize> = arrays
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a.ty, Ty::F32 | Ty::F64))
        .map(|(i, _)| i)
        .collect();
    match rng.gen_range(0u32..4) {
        0 if !f_arrays.is_empty() => FloatExpr::Load {
            arr: f_arrays[rng.gen_range(0usize..f_arrays.len())],
            idx: Box::new(gen_int(rng, arrays, depth + 1)),
        },
        1 => FloatExpr::FromInt(Box::new(gen_int(rng, arrays, depth + 1))),
        2 => FloatExpr::Sqrt(Box::new(gen_float(rng, arrays, depth + 1))),
        _ => FloatExpr::Bin {
            op: FLOAT_OPS[rng.gen_range(0usize..FLOAT_OPS.len())],
            l: Box::new(gen_float(rng, arrays, depth + 1)),
            r: Box::new(gen_float(rng, arrays, depth + 1)),
        },
    }
}

/// Build context while lowering a spec into IR.
struct Ctx {
    arrays: Vec<(GlobalId, ArraySpec)>,
    acc: Value,
    facc: Value,
    ivs: Vec<Value>,
    helper_ids: Vec<tinyir::FuncId>,
}

/// Materialise a spec into a verified TinyIR module with one
/// `main(i64) -> i64` plus its helper functions.
pub fn build(spec: &ProgramSpec) -> Module {
    let mut mb = ModuleBuilder::new("fuzz", "fuzz.c");
    let arrays: Vec<(GlobalId, ArraySpec)> = spec
        .arrays
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let init = nonzero_init(a, spec.seed, i as u64);
            (mb.global_init(&format!("g{i}"), a.ty, a.len() as u32, init), a.clone())
        })
        .collect();

    // Helpers: h<k>(x) = (x * (2k+3)) + g0[x & mask]  — a real address
    // computation behind a call boundary, inlined at O1.
    let mut helper_ids = Vec::new();
    for k in 0..spec.helpers {
        helper_ids.push(mb.declare(&format!("h{k}"), vec![Ty::I64], Some(Ty::I64)));
    }
    for k in 0..spec.helpers as usize {
        let (g0, a0) = (arrays[0].0, arrays[0].1.clone());
        mb.define(&format!("h{k}"), vec![Ty::I64], Some(Ty::I64), |fb| {
            let scaled = fb.mul(fb.arg(0), Value::i64(2 * k as i64 + 3), Ty::I64);
            let idx = fb.bin(BinOp::And, fb.arg(0), Value::i64(a0.mask()), Ty::I64);
            let elem = load_elem_as_i64(fb, fb.global(g0), idx, a0.ty);
            let r = fb.add(scaled, elem, Ty::I64);
            fb.ret(Some(r));
        });
    }

    let stmts = spec.stmts.clone();
    let trap = spec.trap.clone();
    mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
        let acc = fb.alloca(Ty::I64, 1);
        let facc = fb.alloca(Ty::F64, 1);
        fb.store(fb.arg(0), acc);
        fb.store(Value::f64(1.5), facc);
        let mut cx = Ctx { arrays: arrays.clone(), acc, facc, ivs: Vec::new(), helper_ids };
        for s in &stmts {
            build_stmt(fb, &mut cx, s);
        }
        if let Some(t) = &trap {
            // A wild load far past every mapped global (they are at most
            // 2^8 elements): index 1<<21 is ≥ 16 MiB off the base.
            let (g, a) = &cx.arrays[t.arr % cx.arrays.len()];
            let wild = load_elem_as_i64(fb, fb.global(*g), Value::i64(1 << 21), a.ty);
            let cur = fb.load(cx.acc, Ty::I64);
            let upd = fb.add(cur, wild, Ty::I64);
            fb.store(upd, cx.acc);
        }
        let fv = fb.load(facc, Ty::F64);
        let fi = guarded_to_int(fb, fv);
        let a = fb.load(acc, Ty::I64);
        let r = fb.add(a, fi, Ty::I64);
        fb.ret(Some(r));
    });
    let m = mb.finish();
    if let Err(e) = verify_module(&m) {
        panic!("generator produced an invalid module (seed {}): {e}", spec.seed);
    }
    m
}

/// Deterministic non-zero initial data so loads see interesting values.
fn nonzero_init(a: &ArraySpec, seed: u64, gi: u64) -> tinyir::GlobalInit {
    let n = a.len() as u64;
    let s = seed ^ (gi << 32) ^ 0xD1F7;
    match a.ty {
        Ty::I32 => tinyir::GlobalInit::I32s(
            (0..n).map(|i| (workloads::spec::init_f64(s, i) * 100.0) as i32).collect(),
        ),
        Ty::I64 => tinyir::GlobalInit::I64s(
            (0..n).map(|i| (workloads::spec::init_f64(s, i) * 1000.0) as i64).collect(),
        ),
        Ty::F32 => tinyir::GlobalInit::F32s(
            (0..n).map(|i| workloads::spec::init_f32(s, i)).collect(),
        ),
        Ty::F64 => tinyir::GlobalInit::F64s(
            (0..n).map(|i| workloads::spec::init_f64(s, i)).collect(),
        ),
        _ => tinyir::GlobalInit::Zero,
    }
}

/// Load `base[idx]` of any element type widened to an `i64` value.
fn load_elem_as_i64(fb: &mut FuncBuilder<'_>, base: Value, idx: Value, ty: Ty) -> Value {
    match ty {
        Ty::I64 => fb.load_elem(base, idx, Ty::I64),
        Ty::I32 => {
            let v = fb.load_elem(base, idx, Ty::I32);
            fb.sext(v, Ty::I64)
        }
        Ty::F64 => {
            let v = fb.load_elem(base, idx, Ty::F64);
            guarded_to_int(fb, v)
        }
        Ty::F32 => {
            let v = fb.load_elem(base, idx, Ty::F32);
            let w = fb.cast(CastOp::FpExt, v, Ty::F64);
            guarded_to_int(fb, w)
        }
        _ => Value::i64(0),
    }
}

/// Clamp a float into `fptosi`'s well-defined range before converting (NaN
/// is flushed through fmin/fmax; infinities are clamped).
fn guarded_to_int(fb: &mut FuncBuilder<'_>, v: Value) -> Value {
    let lo = fb.intrinsic(tinyir::Intrinsic::FMax, vec![v, Value::f64(-1e15)]);
    let g = fb.intrinsic(tinyir::Intrinsic::FMin, vec![lo, Value::f64(1e15)]);
    fb.cast(CastOp::FpToSi, g, Ty::I64)
}

fn build_stmt(fb: &mut FuncBuilder<'_>, cx: &mut Ctx, s: &Stmt) {
    match s {
        Stmt::IntAcc { op, e } => {
            let v = build_int(fb, cx, e);
            let cur = fb.load(cx.acc, Ty::I64);
            let upd = int_bin(fb, *op, cur, v);
            fb.store(upd, cx.acc);
        }
        Stmt::FloatAcc { op, e } => {
            let v = build_float(fb, cx, e);
            let cur = fb.load(cx.facc, Ty::F64);
            let upd = fb.bin(*op, cur, v, Ty::F64);
            fb.store(upd, cx.facc);
        }
        Stmt::Store { arr, idx, val } => {
            let (g, a) = cx.arrays[*arr % cx.arrays.len()].clone();
            let iv = build_int(fb, cx, idx);
            let masked = fb.bin(BinOp::And, iv, Value::i64(a.mask()), Ty::I64);
            let vv = build_int(fb, cx, val);
            let base = fb.global(g);
            match a.ty {
                Ty::I64 => fb.store_elem(vv, base, masked, Ty::I64),
                Ty::I32 => {
                    let t = fb.cast(CastOp::Trunc, vv, Ty::I32);
                    fb.store_elem(t, base, masked, Ty::I32);
                }
                Ty::F64 => {
                    let t = fb.cast(CastOp::SiToFp, vv, Ty::F64);
                    fb.store_elem(t, base, masked, Ty::F64);
                }
                Ty::F32 => {
                    let t = fb.cast(CastOp::SiToFp, vv, Ty::F64);
                    let t32 = fb.cast(CastOp::FpTrunc, t, Ty::F32);
                    fb.store_elem(t32, base, masked, Ty::F32);
                }
                _ => {}
            }
        }
        Stmt::If { pred, l, r, then_v, else_v } => {
            let lv = build_int(fb, cx, l);
            let rv = build_int(fb, cx, r);
            let cond = fb.icmp(*pred, lv, rv);
            let then_bb = fb.new_block("fz.then");
            let else_bb = fb.new_block("fz.else");
            let join = fb.new_block("fz.join");
            fb.cond_br(cond, then_bb, else_bb);
            // Expression lowering is straight-line, so each arm stays in its
            // own single block and the phi incomings are exact.
            fb.switch_to(then_bb);
            let tv = build_int(fb, cx, then_v);
            fb.br(join);
            fb.switch_to(else_bb);
            let ev = build_int(fb, cx, else_v);
            fb.br(join);
            fb.switch_to(join);
            let p = fb.phi(vec![(then_bb, tv), (else_bb, ev)], Ty::I64);
            let cur = fb.load(cx.acc, Ty::I64);
            let upd = fb.bin(BinOp::Xor, cur, p, Ty::I64);
            fb.store(upd, cx.acc);
        }
        Stmt::Loop { trips, body } => {
            let trips = *trips as i64;
            fb.for_loop(Value::i64(0), Value::i64(trips), |fb, iv| {
                cx.ivs.push(iv);
                for s in body {
                    build_stmt(fb, cx, s);
                }
                cx.ivs.pop();
            });
        }
        Stmt::Call { which, arg } => {
            if cx.helper_ids.is_empty() {
                return;
            }
            let hid = cx.helper_ids[*which as usize % cx.helper_ids.len()];
            let av = build_int(fb, cx, arg);
            let rv = fb.call(hid, vec![av]);
            let cur = fb.load(cx.acc, Ty::I64);
            let upd = fb.add(cur, rv, Ty::I64);
            fb.store(upd, cx.acc);
        }
    }
}

/// Shift amounts must be masked or the engines' UB conventions would differ.
fn int_bin(fb: &mut FuncBuilder<'_>, op: BinOp, l: Value, r: Value) -> Value {
    match op {
        BinOp::Shl | BinOp::LShr | BinOp::AShr => {
            let amt = fb.bin(BinOp::And, r, Value::i64(63), Ty::I64);
            fb.bin(op, l, amt, Ty::I64)
        }
        _ => fb.bin(op, l, r, Ty::I64),
    }
}

fn build_int(fb: &mut FuncBuilder<'_>, cx: &mut Ctx, e: &IntExpr) -> Value {
    match e {
        IntExpr::Const(k) => Value::i64(*k),
        IntExpr::N => fb.arg(0),
        IntExpr::Acc => fb.load(cx.acc, Ty::I64),
        IntExpr::Iv(d) => {
            if cx.ivs.is_empty() {
                fb.arg(0)
            } else {
                let i = cx.ivs.len().saturating_sub(1 + *d as usize);
                cx.ivs[i]
            }
        }
        IntExpr::Load { arr, idx } => {
            let (g, a) = cx.arrays[*arr % cx.arrays.len()].clone();
            let iv = build_int(fb, cx, idx);
            let masked = fb.bin(BinOp::And, iv, Value::i64(a.mask()), Ty::I64);
            load_elem_as_i64(fb, fb.global(g), masked, a.ty)
        }
        IntExpr::Indirect { a, b, idx } => {
            let (ga, sa) = cx.arrays[*a % cx.arrays.len()].clone();
            let (gb, sb) = cx.arrays[*b % cx.arrays.len()].clone();
            let iv = build_int(fb, cx, idx);
            let m1 = fb.bin(BinOp::And, iv, Value::i64(sa.mask()), Ty::I64);
            let first = load_elem_as_i64(fb, fb.global(ga), m1, sa.ty);
            let m2 = fb.bin(BinOp::And, first, Value::i64(sb.mask()), Ty::I64);
            load_elem_as_i64(fb, fb.global(gb), m2, sb.ty)
        }
        IntExpr::Bin { op, l, r } => {
            let lv = build_int(fb, cx, l);
            let rv = build_int(fb, cx, r);
            int_bin(fb, *op, lv, rv)
        }
        IntExpr::FromFloat(fe) => {
            let fv = build_float(fb, cx, fe);
            guarded_to_int(fb, fv)
        }
        IntExpr::Select { pred, cl, cr, t, f } => {
            let clv = build_int(fb, cx, cl);
            let crv = build_int(fb, cx, cr);
            let cond = fb.icmp(*pred, clv, crv);
            let tv = build_int(fb, cx, t);
            let fv = build_int(fb, cx, f);
            fb.select(cond, tv, fv, Ty::I64)
        }
    }
}

fn build_float(fb: &mut FuncBuilder<'_>, cx: &mut Ctx, e: &FloatExpr) -> Value {
    match e {
        FloatExpr::Const(x) => Value::f64(*x),
        FloatExpr::Facc => fb.load(cx.facc, Ty::F64),
        FloatExpr::Load { arr, idx } => {
            let (g, a) = cx.arrays[*arr % cx.arrays.len()].clone();
            let iv = build_int(fb, cx, idx);
            let masked = fb.bin(BinOp::And, iv, Value::i64(a.mask()), Ty::I64);
            match a.ty {
                Ty::F64 => fb.load_elem(fb.global(g), masked, Ty::F64),
                Ty::F32 => {
                    let v = fb.load_elem(fb.global(g), masked, Ty::F32);
                    fb.cast(CastOp::FpExt, v, Ty::F64)
                }
                // Integer arrays reached through a shrunk spec: convert.
                _ => {
                    let v = load_elem_as_i64(fb, fb.global(g), masked, a.ty);
                    fb.cast(CastOp::SiToFp, v, Ty::F64)
                }
            }
        }
        FloatExpr::Bin { op, l, r } => {
            let lv = build_float(fb, cx, l);
            let rv = build_float(fb, cx, r);
            fb.bin(*op, lv, rv, Ty::F64)
        }
        FloatExpr::FromInt(ie) => {
            let iv = build_int(fb, cx, ie);
            fb.cast(CastOp::SiToFp, iv, Ty::F64)
        }
        FloatExpr::Sqrt(fe) => {
            let fv = build_float(fb, cx, fe);
            let a = fb.intrinsic(tinyir::Intrinsic::Fabs, vec![fv]);
            fb.sqrt(a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_always_verify() {
        for seed in 0..200 {
            let spec = ProgramSpec::generate(seed);
            let m = build(&spec); // panics on verify failure
            assert!(m.func_by_name("main").is_some());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build(&ProgramSpec::generate(42));
        let b = build(&ProgramSpec::generate(42));
        assert_eq!(tinyir::display::print_module(&a), tinyir::display::print_module(&b));
    }

    #[test]
    fn trap_programs_exist() {
        let trapping = (0..100)
            .filter(|&s| ProgramSpec::generate(s).trap.is_some())
            .count();
        assert!(trapping > 3, "{trapping} trapping programs in 100 seeds");
    }
}
