//! One-off generator for the minimized reproducers under tests/regressions/.
//! Each module is the shrunk form of a divergence the fuzzer found (plus the
//! f32 print bug found by the round-trip property); all must replay clean.

use tinyir::builder::ModuleBuilder;
use tinyir::{BinOp, CastOp, ICmp, Ty, Value};

fn save(name: &str, m: &tinyir::Module) {
    tinyir::verify::verify_module(m).expect(name);
    if let Some(d) = carefuzz::oracle::check_module(m, 0xC0FFEE) {
        panic!("{name} still diverges: {d}");
    }
    let path = format!("tests/regressions/{name}.tir");
    std::fs::write(&path, tinyir::display::print_module(m)).unwrap();
    println!("wrote {path}");
}

fn main() {
    // 1. f32 constants used to print as 16-hex f64 carrier bits; the parser
    //    then reparsed the low 32 bits as the f32 pattern, corrupting every
    //    f32 literal that is inexact in f64's low word (e.g. 0.1, 1e300
    //    saturates). Found by the print→parse→print fixpoint oracle.
    let mut mb = ModuleBuilder::new("fuzz", "fuzz.c");
    let g = mb.global_zeroed("g0", Ty::F32, 8);
    mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
        let base = fb.global(g);
        fb.store_elem(Value::ConstFloat(0.1, Ty::F32), base, Value::i64(0), Ty::F32);
        fb.store_elem(Value::ConstFloat(1e300, Ty::F32), base, Value::i64(1), Ty::F32);
        let v = fb.load_elem(base, Value::i64(0), Ty::F32);
        let w = fb.cast(CastOp::FpExt, v, Ty::F64);
        let lo = fb.intrinsic(tinyir::Intrinsic::FMax, vec![w, Value::f64(-1e15)]);
        let cl = fb.intrinsic(tinyir::Intrinsic::FMin, vec![lo, Value::f64(1e15)]);
        let i = fb.cast(CastOp::FpToSi, cl, Ty::I64);
        let r = fb.add(i, fb.arg(0), Ty::I64);
        fb.ret(Some(r));
    });
    save("f32_const_roundtrip", &mb.finish());

    // 2. A diamond-join phi whose only use is the access's address slice is
    //    dead at the access, yet Armor accepted it as a kernel parameter
    //    (phis were presumed fetchable). Found by the liveness oracle.
    let mut mb = ModuleBuilder::new("fuzz", "fuzz.c");
    let g = mb.global_zeroed("g0", Ty::I64, 64);
    mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
        let cond = fb.icmp(ICmp::Slt, fb.arg(0), Value::i64(1));
        let then_bb = fb.new_block("then");
        let else_bb = fb.new_block("else");
        let join = fb.new_block("join");
        fb.cond_br(cond, then_bb, else_bb);
        fb.switch_to(then_bb);
        fb.br(join);
        fb.switch_to(else_bb);
        fb.br(join);
        fb.switch_to(join);
        let p = fb.phi(vec![(then_bb, Value::i64(3)), (else_bb, fb.arg(0))], Ty::I64);
        let scaled = fb.mul(p, Value::i64(5), Ty::I64);
        let idx = fb.bin(BinOp::And, scaled, Value::i64(63), Ty::I64);
        let v = fb.load_elem(fb.global(g), idx, Ty::I64);
        fb.ret(Some(v));
    });
    save("dead_phi_kernel_param", &mb.finish());

    // 3. A load cloned into a kernel is re-executed at recovery time; when a
    //    later store clobbers the loaded location (here around the loop
    //    backedge), the kernel recomputes a different address than the
    //    original access used. Found by the kernel-probe oracle.
    let mut mb = ModuleBuilder::new("fuzz", "fuzz.c");
    let g = mb.global_zeroed("g0", Ty::I64, 128);
    mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
        let acc = fb.alloca(Ty::I64, 1);
        fb.store(fb.arg(0), acc);
        let seed = fb.load_elem(fb.global(g), Value::i64(1), Ty::I64);
        fb.for_loop(Value::i64(0), Value::i64(2), |fb, _iv| {
            let cur = fb.load(acc, Ty::I64);
            let mixed = fb.add(cur, seed, Ty::I64);
            let idx = fb.bin(BinOp::And, mixed, Value::i64(127), Ty::I64);
            let v = fb.load_elem(fb.global(g), idx, Ty::I64);
            fb.store_elem(v, fb.global(g), Value::i64(1), Ty::I64);
            let upd = fb.add(cur, v, Ty::I64);
            fb.store(upd, acc);
        });
        let r = fb.load(acc, Ty::I64);
        fb.ret(Some(r));
    });
    save("clobbered_load_in_kernel", &mb.finish());
}
