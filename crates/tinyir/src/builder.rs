//! Ergonomic construction of TinyIR modules and functions.
//!
//! The workloads crate builds its scientific kernels through this API. The
//! builder assigns every emitted instruction a unique, synthetic
//! `(file, line, col)` debug location, mirroring Armor's fake-debug-data
//! path (paper §3.3) so that every memory access has a distinct
//! recovery-table key without requiring `-g`.

use crate::debugloc::{DebugLoc, FileId};
use crate::instr::{BinOp, Callee, CastOp, FCmp, ICmp, Instr, InstrKind, Intrinsic};
use crate::module::{Function, Global, GlobalInit, Module};
use crate::types::Ty;
use crate::value::{BlockId, FuncId, GlobalId, Value};

/// Builds a [`Module`], interning globals and function declarations before
/// their bodies exist so that calls can be emitted in any order.
pub struct ModuleBuilder {
    module: Module,
    file: FileId,
    next_line: u32,
}

impl ModuleBuilder {
    /// Start a module named `name` whose synthetic debug file is `file`.
    pub fn new(name: &str, file: &str) -> ModuleBuilder {
        let mut module = Module::new(name);
        let file = module.intern_file(file);
        ModuleBuilder { module, file, next_line: 1 }
    }

    /// Add a zero-initialised global array of `count` elements.
    pub fn global_zeroed(&mut self, name: &str, elem_ty: Ty, count: u32) -> GlobalId {
        self.module.add_global(Global {
            name: name.into(),
            elem_ty,
            count,
            init: GlobalInit::Zero,
        })
    }

    /// Add a global with an explicit initialiser.
    pub fn global_init(
        &mut self,
        name: &str,
        elem_ty: Ty,
        count: u32,
        init: GlobalInit,
    ) -> GlobalId {
        self.module.add_global(Global { name: name.into(), elem_ty, count, init })
    }

    /// Pre-declare a function so it can be called before its body is built.
    pub fn declare(&mut self, name: &str, params: Vec<Ty>, ret_ty: Option<Ty>) -> FuncId {
        let mut f = Function::new(name, params, ret_ty);
        f.is_decl = true;
        self.module.add_func(f)
    }

    /// Build (or fill in a pre-declared) function via a closure over a
    /// [`FuncBuilder`].
    pub fn define(
        &mut self,
        name: &str,
        params: Vec<Ty>,
        ret_ty: Option<Ty>,
        body: impl FnOnce(&mut FuncBuilder<'_>),
    ) -> FuncId {
        let id = match self.module.func_by_name(name) {
            Some(id) => {
                let f = self.module.func_mut(id);
                assert!(f.is_decl, "function {name} already defined");
                f.params = params;
                f.ret_ty = ret_ty;
                f.is_decl = false;
                id
            }
            None => self.module.add_func(Function::new(name, params, ret_ty)),
        };
        // The placeholder keeps the real signature so that recursive calls
        // emitted inside `body` see the correct return type.
        let sig_params = self.module.func(id).params.clone();
        let sig_ret = self.module.func(id).ret_ty;
        let mut placeholder = Function::new("<in-progress>", sig_params, sig_ret);
        placeholder.is_decl = true;
        let mut func = std::mem::replace(self.module.func_mut(id), placeholder);
        func.is_decl = false;
        let cur = func.entry();
        let mut fb = FuncBuilder {
            mb: self,
            func,
            cur,
            terminated: false,
        };
        body(&mut fb);
        let func = fb.func;
        *self.module.func_mut(id) = func;
        id
    }

    /// Finish and return the module.
    pub fn finish(mut self) -> Module {
        self.module.rebuild_indexes();
        self.module
    }

    fn fresh_loc(&mut self) -> DebugLoc {
        let line = self.next_line;
        self.next_line += 1;
        DebugLoc::new(self.file, line, 1)
    }
}

/// Builds a single function; tracks the "current" block like LLVM's
/// `IRBuilder`.
pub struct FuncBuilder<'m> {
    mb: &'m mut ModuleBuilder,
    func: Function,
    cur: BlockId,
    terminated: bool,
}

impl<'m> FuncBuilder<'m> {
    /// The `n`-th formal argument.
    pub fn arg(&self, n: u32) -> Value {
        assert!((n as usize) < self.func.params.len());
        Value::Arg(n)
    }

    /// The address of a global variable.
    pub fn global(&self, id: GlobalId) -> Value {
        Value::Global(id)
    }

    /// Current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Create a new block (does not move the insertion point).
    pub fn new_block(&mut self, name: &str) -> BlockId {
        self.func.add_block(name)
    }

    /// Move the insertion point.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.cur = bb;
        self.terminated = false;
    }

    fn emit(&mut self, kind: InstrKind) -> Value {
        assert!(
            !self.terminated,
            "emitting into a terminated block in {}",
            self.func.name
        );
        let loc = self.mb.fresh_loc();
        let instr = Instr { kind, loc: Some(loc) };
        let term = instr.is_terminator();
        let id = self.func.push_instr(self.cur, instr);
        if term {
            self.terminated = true;
        }
        Value::Instr(id)
    }

    // -- memory ----------------------------------------------------------

    /// Stack allocation.
    pub fn alloca(&mut self, elem_ty: Ty, count: u32) -> Value {
        self.emit(InstrKind::Alloca { elem_ty, count })
    }

    /// Load a value of type `ty` from `ptr`.
    pub fn load(&mut self, ptr: Value, ty: Ty) -> Value {
        self.emit(InstrKind::Load { ptr, ty })
    }

    /// Store `val` to `ptr`.
    pub fn store(&mut self, val: Value, ptr: Value) {
        self.emit(InstrKind::Store { val, ptr });
    }

    /// `base + index * elem_size` address arithmetic.
    pub fn gep(&mut self, base: Value, index: Value, elem_size: u32) -> Value {
        self.emit(InstrKind::Gep { base, index, elem_size })
    }

    /// Typed element address: `gep` scaled by `ty.size()`.
    pub fn gep_ty(&mut self, base: Value, index: Value, ty: Ty) -> Value {
        self.gep(base, index, ty.size())
    }

    /// Convenience: load element `idx` of the `ty` array at `base`.
    pub fn load_elem(&mut self, base: Value, idx: Value, ty: Ty) -> Value {
        let p = self.gep_ty(base, idx, ty);
        self.load(p, ty)
    }

    /// Convenience: store `val` to element `idx` of the `ty` array at `base`.
    pub fn store_elem(&mut self, val: Value, base: Value, idx: Value, ty: Ty) {
        let p = self.gep_ty(base, idx, ty);
        self.store(val, p);
    }

    // -- arithmetic --------------------------------------------------------

    /// Generic binary operation of result type `ty`.
    pub fn bin(&mut self, op: BinOp, lhs: Value, rhs: Value, ty: Ty) -> Value {
        self.emit(InstrKind::Bin { op, lhs, rhs, ty })
    }

    /// Integer add (type inferred from lhs where possible, i64 default).
    pub fn add(&mut self, l: Value, r: Value, ty: Ty) -> Value {
        self.bin(BinOp::Add, l, r, ty)
    }
    /// Integer subtract.
    pub fn sub(&mut self, l: Value, r: Value, ty: Ty) -> Value {
        self.bin(BinOp::Sub, l, r, ty)
    }
    /// Integer multiply.
    pub fn mul(&mut self, l: Value, r: Value, ty: Ty) -> Value {
        self.bin(BinOp::Mul, l, r, ty)
    }
    /// Signed divide.
    pub fn sdiv(&mut self, l: Value, r: Value, ty: Ty) -> Value {
        self.bin(BinOp::SDiv, l, r, ty)
    }
    /// Signed remainder.
    pub fn srem(&mut self, l: Value, r: Value, ty: Ty) -> Value {
        self.bin(BinOp::SRem, l, r, ty)
    }
    /// Float add.
    pub fn fadd(&mut self, l: Value, r: Value, ty: Ty) -> Value {
        self.bin(BinOp::FAdd, l, r, ty)
    }
    /// Float subtract.
    pub fn fsub(&mut self, l: Value, r: Value, ty: Ty) -> Value {
        self.bin(BinOp::FSub, l, r, ty)
    }
    /// Float multiply.
    pub fn fmul(&mut self, l: Value, r: Value, ty: Ty) -> Value {
        self.bin(BinOp::FMul, l, r, ty)
    }
    /// Float divide.
    pub fn fdiv(&mut self, l: Value, r: Value, ty: Ty) -> Value {
        self.bin(BinOp::FDiv, l, r, ty)
    }

    /// Integer comparison.
    pub fn icmp(&mut self, pred: ICmp, lhs: Value, rhs: Value) -> Value {
        self.emit(InstrKind::Icmp { pred, lhs, rhs })
    }

    /// Float comparison.
    pub fn fcmp(&mut self, pred: FCmp, lhs: Value, rhs: Value) -> Value {
        self.emit(InstrKind::Fcmp { pred, lhs, rhs })
    }

    /// Conversion.
    pub fn cast(&mut self, op: CastOp, val: Value, to: Ty) -> Value {
        self.emit(InstrKind::Cast { op, val, to })
    }

    /// `sext` shortcut (i32 index -> i64, the idiom in Figure 4's IR).
    pub fn sext(&mut self, val: Value, to: Ty) -> Value {
        self.cast(CastOp::Sext, val, to)
    }

    /// `cond ? t : f`.
    pub fn select(&mut self, cond: Value, t: Value, f: Value, ty: Ty) -> Value {
        self.emit(InstrKind::Select { cond, t, f, ty })
    }

    /// Raw phi node. Prefer [`FuncBuilder::for_loop`] which builds loop phis
    /// for you.
    pub fn phi(&mut self, incomings: Vec<(BlockId, Value)>, ty: Ty) -> Value {
        self.emit(InstrKind::Phi { incomings, ty })
    }

    // -- calls ---------------------------------------------------------------

    /// Call a module function.
    pub fn call(&mut self, callee: FuncId, args: Vec<Value>) -> Value {
        let ret_ty = self.mb.module.func(callee).ret_ty;
        self.emit(InstrKind::Call { callee: Callee::Func(callee), args, ret_ty })
    }

    /// Call an intrinsic.
    pub fn intrinsic(&mut self, which: Intrinsic, args: Vec<Value>) -> Value {
        assert_eq!(args.len(), which.arity(), "intrinsic {:?} arity", which);
        self.emit(InstrKind::Call {
            callee: Callee::Intrinsic(which),
            args,
            ret_ty: which.ret_ty(),
        })
    }

    /// `sqrt` shortcut.
    pub fn sqrt(&mut self, v: Value) -> Value {
        self.intrinsic(Intrinsic::Sqrt, vec![v])
    }

    /// Assert an `i1` condition; traps with `SIGABRT` when false.
    pub fn assert_cond(&mut self, cond: Value) {
        self.intrinsic(Intrinsic::Assert, vec![cond]);
    }

    // -- control flow --------------------------------------------------------

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.emit(InstrKind::Br { target });
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) {
        self.emit(InstrKind::CondBr { cond, then_bb, else_bb });
    }

    /// Return.
    pub fn ret(&mut self, val: Option<Value>) {
        self.emit(InstrKind::Ret { val });
    }

    /// Structured counted loop: `for iv in start..end { body }` with an
    /// `i64` induction variable. Returns nothing; leaves the insertion point
    /// in the exit block.
    ///
    /// The loop phi/increment/compare it emits is exactly the pattern whose
    /// in-place register update makes induction variables unrecoverable for
    /// CARE under `-O1` (paper §5.6).
    pub fn for_loop(
        &mut self,
        start: Value,
        end: Value,
        body: impl FnOnce(&mut FuncBuilder<'_>, Value),
    ) {
        self.for_loop_step(start, end, Value::i64(1), body)
    }

    /// Counted loop with an explicit step.
    pub fn for_loop_step(
        &mut self,
        start: Value,
        end: Value,
        step: Value,
        body: impl FnOnce(&mut FuncBuilder<'_>, Value),
    ) {
        let pre = self.cur;
        let header = self.new_block("loop.header");
        let body_bb = self.new_block("loop.body");
        let exit = self.new_block("loop.exit");
        self.br(header);

        self.switch_to(header);
        let iv = self.phi(vec![(pre, start)], Ty::I64);
        let cond = self.icmp(ICmp::Slt, iv, end);
        self.cond_br(cond, body_bb, exit);

        self.switch_to(body_bb);
        body(self, iv);
        // The body may have moved the insertion point (nested loops); the
        // block we are now in is the latch.
        let latch = self.cur;
        let next = self.add(iv, step, Ty::I64);
        self.br(header);

        // Patch the phi with the latch incoming.
        if let InstrKind::Phi { incomings, .. } =
            &mut self.func.instr_mut(iv.as_instr().unwrap()).kind
        {
            incomings.push((latch, next));
        }
        self.switch_to(exit);
    }

    /// Structured `if (cond) { then }`; leaves the insertion point in the
    /// join block.
    pub fn if_then(&mut self, cond: Value, then: impl FnOnce(&mut FuncBuilder<'_>)) {
        let then_bb = self.new_block("if.then");
        let join = self.new_block("if.join");
        self.cond_br(cond, then_bb, join);
        self.switch_to(then_bb);
        then(self);
        if !self.terminated {
            self.br(join);
        }
        self.switch_to(join);
    }

    /// Structured `if (cond) { then } else { els }`.
    pub fn if_then_else(
        &mut self,
        cond: Value,
        then: impl FnOnce(&mut FuncBuilder<'_>),
        els: impl FnOnce(&mut FuncBuilder<'_>),
    ) {
        let then_bb = self.new_block("if.then");
        let else_bb = self.new_block("if.else");
        let join = self.new_block("if.join");
        self.cond_br(cond, then_bb, else_bb);
        self.switch_to(then_bb);
        then(self);
        if !self.terminated {
            self.br(join);
        }
        self.switch_to(else_bb);
        els(self);
        if !self.terminated {
            self.br(join);
        }
        self.switch_to(join);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::value_ty;

    #[test]
    fn build_simple_function() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let fid = mb.define("axpy_elem", vec![Ty::Ptr, Ty::Ptr, Ty::I64, Ty::F64], None, |fb| {
            let x = fb.load_elem(fb.arg(0), fb.arg(2), Ty::F64);
            let ax = fb.fmul(fb.arg(3), x, Ty::F64);
            let y = fb.load_elem(fb.arg(1), fb.arg(2), Ty::F64);
            let s = fb.fadd(ax, y, Ty::F64);
            fb.store_elem(s, fb.arg(1), fb.arg(2), Ty::F64);
            fb.ret(None);
        });
        let m = mb.finish();
        let f = m.func(fid);
        assert_eq!(f.mem_access_instrs().len(), 3);
        // Every instruction got a unique debug location.
        let mut locs: Vec<_> = f.instrs.iter().filter_map(|i| i.loc).collect();
        let n = locs.len();
        locs.sort();
        locs.dedup();
        assert_eq!(locs.len(), n);
    }

    #[test]
    fn for_loop_produces_wellformed_phi() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let fid = mb.define("sum", vec![Ty::Ptr, Ty::I64], Some(Ty::F64), |fb| {
            let acc = fb.alloca(Ty::F64, 1);
            fb.store(Value::f64(0.0), acc);
            fb.for_loop(Value::i64(0), fb.arg(1), |fb, iv| {
                let x = fb.load_elem(fb.arg(0), iv, Ty::F64);
                let a = fb.load(acc, Ty::F64);
                let s = fb.fadd(a, x, Ty::F64);
                fb.store(s, acc);
            });
            let r = fb.load(acc, Ty::F64);
            fb.ret(Some(r));
        });
        let m = mb.finish();
        let f = m.func(fid);
        // The loop phi must have two incomings (preheader + latch).
        let phi = f
            .instrs
            .iter()
            .find_map(|i| match &i.kind {
                InstrKind::Phi { incomings, .. } => Some(incomings.len()),
                _ => None,
            })
            .unwrap();
        assert_eq!(phi, 2);
        assert_eq!(value_ty(f, Value::Arg(0)), Some(Ty::Ptr));
    }

    #[test]
    fn declare_then_define() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let callee = mb.declare("helper", vec![Ty::F64], Some(Ty::F64));
        mb.define("caller", vec![Ty::F64], Some(Ty::F64), |fb| {
            let r = fb.call(callee, vec![fb.arg(0)]);
            fb.ret(Some(r));
        });
        mb.define("helper", vec![Ty::F64], Some(Ty::F64), |fb| {
            let r = fb.fmul(fb.arg(0), Value::f64(2.0), Ty::F64);
            fb.ret(Some(r));
        });
        let m = mb.finish();
        assert!(!m.func(callee).is_decl);
    }

    #[test]
    fn if_then_else_joins() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("clamp", vec![Ty::I64], Some(Ty::I64), |fb| {
            let out = fb.alloca(Ty::I64, 1);
            let neg = fb.icmp(ICmp::Slt, fb.arg(0), Value::i64(0));
            fb.if_then_else(
                neg,
                |fb| fb.store(Value::i64(0), out),
                |fb| fb.store(fb.arg(0), out),
            );
            let r = fb.load(out, Ty::I64);
            fb.ret(Some(r));
        });
        let m = mb.finish();
        assert_eq!(m.funcs.len(), 1);
        // 4 blocks: entry, then, else, join.
        assert_eq!(m.funcs[0].blocks.len(), 4);
    }

    #[test]
    #[should_panic(expected = "terminated")]
    fn emitting_after_terminator_panics() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("bad", vec![], None, |fb| {
            fb.ret(None);
            fb.ret(None);
        });
    }
}
