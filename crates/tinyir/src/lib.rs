//! # TinyIR — the SSA intermediate representation underpinning the CARE reproduction
//!
//! TinyIR is a deliberately LLVM-shaped SSA IR: functions of basic blocks,
//! instructions that define values, explicit `load`/`store`/`gep` memory
//! operations, `phi` nodes, and `(file, line, col)` debug locations. It is
//! the representation on which the **Armor** compiler pass (crate `armor`)
//! extracts recovery kernels, and from which the **SimISA** backend (crate
//! `simx`) generates simulated machine code.
//!
//! The crate provides:
//!
//! * the data model ([`Module`], [`Function`], [`Instr`], [`Value`], [`Ty`]),
//! * an ergonomic [`builder::ModuleBuilder`] used by the `workloads` crate,
//! * a textual [`display`] printer and [`parser`] (round-trip tested),
//! * a structural [`verify`] pass,
//! * a reference [`interp`] interpreter over any [`mem::Memory`].

pub mod builder;
pub mod debugloc;
pub mod display;
pub mod instr;
pub mod interp;
pub mod mem;
pub mod module;
pub mod parser;
pub mod types;
pub mod value;
pub mod verify;

pub use debugloc::{DebugLoc, FileId};
pub use instr::{BinOp, Callee, CastOp, FCmp, ICmp, Instr, InstrKind, Intrinsic};
pub use module::{Block, Function, Global, GlobalInit, Module};
pub use types::Ty;
pub use value::{BlockId, FuncId, GlobalId, InstrId, Value};
