//! Instruction kinds and operand access.

use crate::debugloc::DebugLoc;
use crate::types::Ty;
use crate::value::{BlockId, FuncId, Value};

/// Integer and floating-point binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
}

impl BinOp {
    /// True for the floating-point operators.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// True if the operator can raise a division trap (`SIGFPE`).
    #[inline]
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem)
    }

    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }

    /// Parse a mnemonic.
    pub fn parse(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "sdiv" => BinOp::SDiv,
            "udiv" => BinOp::UDiv,
            "srem" => BinOp::SRem,
            "urem" => BinOp::URem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "lshr" => BinOp::LShr,
            "ashr" => BinOp::AShr,
            "fadd" => BinOp::FAdd,
            "fsub" => BinOp::FSub,
            "fmul" => BinOp::FMul,
            "fdiv" => BinOp::FDiv,
            _ => return None,
        })
    }
}

/// Integer comparison predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ICmp {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl ICmp {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ICmp::Eq => "eq",
            ICmp::Ne => "ne",
            ICmp::Slt => "slt",
            ICmp::Sle => "sle",
            ICmp::Sgt => "sgt",
            ICmp::Sge => "sge",
            ICmp::Ult => "ult",
            ICmp::Ule => "ule",
            ICmp::Ugt => "ugt",
            ICmp::Uge => "uge",
        }
    }

    /// Parse a mnemonic.
    pub fn parse(s: &str) -> Option<ICmp> {
        Some(match s {
            "eq" => ICmp::Eq,
            "ne" => ICmp::Ne,
            "slt" => ICmp::Slt,
            "sle" => ICmp::Sle,
            "sgt" => ICmp::Sgt,
            "sge" => ICmp::Sge,
            "ult" => ICmp::Ult,
            "ule" => ICmp::Ule,
            "ugt" => ICmp::Ugt,
            "uge" => ICmp::Uge,
            _ => return None,
        })
    }
}

/// Floating-point comparison predicates (ordered comparisons only; NaN
/// compares false, matching LLVM's `o*` predicates).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FCmp {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
}

impl FCmp {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCmp::Oeq => "oeq",
            FCmp::One => "one",
            FCmp::Olt => "olt",
            FCmp::Ole => "ole",
            FCmp::Ogt => "ogt",
            FCmp::Oge => "oge",
        }
    }

    /// Parse a mnemonic.
    pub fn parse(s: &str) -> Option<FCmp> {
        Some(match s {
            "oeq" => FCmp::Oeq,
            "one" => FCmp::One,
            "olt" => FCmp::Olt,
            "ole" => FCmp::Ole,
            "ogt" => FCmp::Ogt,
            "oge" => FCmp::Oge,
            _ => return None,
        })
    }
}

/// Conversion operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CastOp {
    /// Sign-extend an integer.
    Sext,
    /// Zero-extend an integer.
    Zext,
    /// Truncate an integer.
    Trunc,
    /// Signed int -> float.
    SiToFp,
    /// Float -> signed int (round toward zero).
    FpToSi,
    /// f32 -> f64.
    FpExt,
    /// f64 -> f32.
    FpTrunc,
    /// Pointer -> i64.
    PtrToInt,
    /// i64 -> pointer.
    IntToPtr,
}

impl CastOp {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Sext => "sext",
            CastOp::Zext => "zext",
            CastOp::Trunc => "trunc",
            CastOp::SiToFp => "sitofp",
            CastOp::FpToSi => "fptosi",
            CastOp::FpExt => "fpext",
            CastOp::FpTrunc => "fptrunc",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
        }
    }

    /// Parse a mnemonic.
    pub fn parse(s: &str) -> Option<CastOp> {
        Some(match s {
            "sext" => CastOp::Sext,
            "zext" => CastOp::Zext,
            "trunc" => CastOp::Trunc,
            "sitofp" => CastOp::SiToFp,
            "fptosi" => CastOp::FpToSi,
            "fpext" => CastOp::FpExt,
            "fptrunc" => CastOp::FpTrunc,
            "ptrtoint" => CastOp::PtrToInt,
            "inttoptr" => CastOp::IntToPtr,
            _ => return None,
        })
    }
}

/// Built-in math/runtime intrinsics.
///
/// The paper's Armor treats calls to "simple math operators, e.g. `sqrt`" as
/// ordinary binary instructions (extraction continues through them), while
/// "complex" calls terminate extraction. TinyIR models both classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Intrinsic {
    /// `f64 sqrt(f64)` — pure, extraction-transparent.
    Sqrt,
    /// `f64 fabs(f64)` — pure.
    Fabs,
    /// `f64 sin(f64)` — pure.
    Sin,
    /// `f64 cos(f64)` — pure.
    Cos,
    /// `f64 exp(f64)` — pure.
    Exp,
    /// `f64 floor(f64)` — pure.
    Floor,
    /// `f64 pow(f64, f64)` — pure.
    Pow,
    /// `i64 imin(i64, i64)` — pure.
    IMin,
    /// `i64 imax(i64, i64)` — pure.
    IMax,
    /// `f64 fmin(f64, f64)` — pure.
    FMin,
    /// `f64 fmax(f64, f64)` — pure.
    FMax,
    /// `void assert(i1)` — aborts the process (`SIGABRT`) when the condition
    /// is false; models application-level sanity checks (GTC-P bounds tests).
    Assert,
    /// `void abort()` — unconditional `SIGABRT`.
    Abort,
    /// `ptr malloc(i64)` — heap allocation; "complex" (terminates extraction).
    Malloc,
    /// `void free(ptr)` — heap release; "complex".
    Free,
}

impl Intrinsic {
    /// True for intrinsics that Armor may treat as a plain arithmetic
    /// operator (pure, no memory side effects, no allocation).
    #[inline]
    pub fn is_simple_math(self) -> bool {
        matches!(
            self,
            Intrinsic::Sqrt
                | Intrinsic::Fabs
                | Intrinsic::Sin
                | Intrinsic::Cos
                | Intrinsic::Exp
                | Intrinsic::Floor
                | Intrinsic::Pow
                | Intrinsic::IMin
                | Intrinsic::IMax
                | Intrinsic::FMin
                | Intrinsic::FMax
        )
    }

    /// Number of arguments the intrinsic expects.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Sqrt
            | Intrinsic::Fabs
            | Intrinsic::Sin
            | Intrinsic::Cos
            | Intrinsic::Exp
            | Intrinsic::Floor
            | Intrinsic::Assert
            | Intrinsic::Free
            | Intrinsic::Malloc => 1,
            Intrinsic::Pow
            | Intrinsic::IMin
            | Intrinsic::IMax
            | Intrinsic::FMin
            | Intrinsic::FMax => 2,
            Intrinsic::Abort => 0,
        }
    }

    /// Result type, if any.
    pub fn ret_ty(self) -> Option<Ty> {
        match self {
            Intrinsic::Sqrt
            | Intrinsic::Fabs
            | Intrinsic::Sin
            | Intrinsic::Cos
            | Intrinsic::Exp
            | Intrinsic::Floor
            | Intrinsic::Pow
            | Intrinsic::FMin
            | Intrinsic::FMax => Some(Ty::F64),
            Intrinsic::IMin | Intrinsic::IMax => Some(Ty::I64),
            Intrinsic::Malloc => Some(Ty::Ptr),
            Intrinsic::Assert | Intrinsic::Abort | Intrinsic::Free => None,
        }
    }

    /// Textual name used by the printer/parser.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Fabs => "fabs",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Exp => "exp",
            Intrinsic::Floor => "floor",
            Intrinsic::Pow => "pow",
            Intrinsic::IMin => "imin",
            Intrinsic::IMax => "imax",
            Intrinsic::FMin => "fmin",
            Intrinsic::FMax => "fmax",
            Intrinsic::Assert => "assert",
            Intrinsic::Abort => "abort",
            Intrinsic::Malloc => "malloc",
            Intrinsic::Free => "free",
        }
    }

    /// Parse a textual name.
    pub fn parse(s: &str) -> Option<Intrinsic> {
        Some(match s {
            "sqrt" => Intrinsic::Sqrt,
            "fabs" => Intrinsic::Fabs,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "exp" => Intrinsic::Exp,
            "floor" => Intrinsic::Floor,
            "pow" => Intrinsic::Pow,
            "imin" => Intrinsic::IMin,
            "imax" => Intrinsic::IMax,
            "fmin" => Intrinsic::FMin,
            "fmax" => Intrinsic::FMax,
            "assert" => Intrinsic::Assert,
            "abort" => Intrinsic::Abort,
            "malloc" => Intrinsic::Malloc,
            "free" => Intrinsic::Free,
            _ => return None,
        })
    }
}

/// Call target: an ordinary module function or a built-in intrinsic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Callee {
    /// A function defined in (or imported into) the module.
    Func(FuncId),
    /// A built-in intrinsic.
    Intrinsic(Intrinsic),
}

/// A TinyIR instruction.
///
/// The instruction is stored in a per-function arena; its id is the
/// [`crate::InstrId`] index into that arena. The result value (if any) is
/// referenced as `Value::Instr(id)`.
#[derive(Clone, PartialEq, Debug)]
pub enum InstrKind {
    /// Stack allocation of `count` elements of `elem_ty`; yields a `Ptr`.
    Alloca { elem_ty: Ty, count: u32 },
    /// Load a `ty` value from `ptr`.
    Load { ptr: Value, ty: Ty },
    /// Store `val` to `ptr`.
    Store { val: Value, ptr: Value },
    /// Address arithmetic: `base + index * elem_size` (bytes); yields `Ptr`.
    ///
    /// Chained `Gep`s plus integer arithmetic reproduce the multi-operation
    /// address computations of Table 5.
    Gep { base: Value, index: Value, elem_size: u32 },
    /// Binary arithmetic/logic.
    Bin { op: BinOp, lhs: Value, rhs: Value, ty: Ty },
    /// Integer comparison; yields `I1`.
    Icmp { pred: ICmp, lhs: Value, rhs: Value },
    /// Float comparison; yields `I1`.
    Fcmp { pred: FCmp, lhs: Value, rhs: Value },
    /// Conversion.
    Cast { op: CastOp, val: Value, to: Ty },
    /// `cond ? t : f`.
    Select { cond: Value, t: Value, f: Value, ty: Ty },
    /// SSA phi node.
    Phi { incomings: Vec<(BlockId, Value)>, ty: Ty },
    /// Function or intrinsic call.
    Call { callee: Callee, args: Vec<Value>, ret_ty: Option<Ty> },
    /// Unconditional branch.
    Br { target: BlockId },
    /// Conditional branch.
    CondBr { cond: Value, then_bb: BlockId, else_bb: BlockId },
    /// Return, with optional value.
    Ret { val: Option<Value> },
}

/// An instruction together with its metadata (debug location).
#[derive(Clone, PartialEq, Debug)]
pub struct Instr {
    /// What the instruction does.
    pub kind: InstrKind,
    /// Source location `(file, line, col)` — the CARE recovery-table key for
    /// memory-access instructions.
    pub loc: Option<DebugLoc>,
}

impl Instr {
    /// Create an instruction with no debug location.
    pub fn new(kind: InstrKind) -> Instr {
        Instr { kind, loc: None }
    }

    /// Result type of the instruction, `None` for void instructions
    /// (stores, branches, returns, void calls).
    pub fn result_ty(&self) -> Option<Ty> {
        match &self.kind {
            InstrKind::Alloca { .. } | InstrKind::Gep { .. } => Some(Ty::Ptr),
            InstrKind::Load { ty, .. } => Some(*ty),
            InstrKind::Bin { ty, .. }
            | InstrKind::Select { ty, .. }
            | InstrKind::Phi { ty, .. } => Some(*ty),
            InstrKind::Icmp { .. } | InstrKind::Fcmp { .. } => Some(Ty::I1),
            InstrKind::Cast { to, .. } => Some(*to),
            InstrKind::Call { ret_ty, .. } => *ret_ty,
            InstrKind::Store { .. }
            | InstrKind::Br { .. }
            | InstrKind::CondBr { .. }
            | InstrKind::Ret { .. } => None,
        }
    }

    /// True if this is a block terminator.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.kind,
            InstrKind::Br { .. } | InstrKind::CondBr { .. } | InstrKind::Ret { .. }
        )
    }

    /// True if this instruction reads or writes memory.
    pub fn is_mem_access(&self) -> bool {
        matches!(self.kind, InstrKind::Load { .. } | InstrKind::Store { .. })
    }

    /// The address operand of a load/store, if this is a memory access.
    pub fn addr_operand(&self) -> Option<Value> {
        match &self.kind {
            InstrKind::Load { ptr, .. } => Some(*ptr),
            InstrKind::Store { ptr, .. } => Some(*ptr),
            _ => None,
        }
    }

    /// All value operands, in a fixed order.
    pub fn operands(&self) -> Vec<Value> {
        match &self.kind {
            InstrKind::Alloca { .. } => vec![],
            InstrKind::Load { ptr, .. } => vec![*ptr],
            InstrKind::Store { val, ptr } => vec![*val, *ptr],
            InstrKind::Gep { base, index, .. } => vec![*base, *index],
            InstrKind::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            InstrKind::Icmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            InstrKind::Fcmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            InstrKind::Cast { val, .. } => vec![*val],
            InstrKind::Select { cond, t, f, .. } => vec![*cond, *t, *f],
            InstrKind::Phi { incomings, .. } => incomings.iter().map(|(_, v)| *v).collect(),
            InstrKind::Call { args, .. } => args.clone(),
            InstrKind::Br { .. } => vec![],
            InstrKind::CondBr { cond, .. } => vec![*cond],
            InstrKind::Ret { val } => val.iter().copied().collect(),
        }
    }

    /// Apply `f` to every value operand in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match &mut self.kind {
            InstrKind::Alloca { .. } | InstrKind::Br { .. } => {}
            InstrKind::Load { ptr, .. } => *ptr = f(*ptr),
            InstrKind::Store { val, ptr } => {
                *val = f(*val);
                *ptr = f(*ptr);
            }
            InstrKind::Gep { base, index, .. } => {
                *base = f(*base);
                *index = f(*index);
            }
            InstrKind::Bin { lhs, rhs, .. }
            | InstrKind::Icmp { lhs, rhs, .. }
            | InstrKind::Fcmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            InstrKind::Cast { val, .. } => *val = f(*val),
            InstrKind::Select { cond, t, f: fv, .. } => {
                *cond = f(*cond);
                *t = f(*t);
                *fv = f(*fv);
            }
            InstrKind::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    *v = f(*v);
                }
            }
            InstrKind::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            InstrKind::CondBr { cond, .. } => *cond = f(*cond),
            InstrKind::Ret { val } => {
                if let Some(v) = val {
                    *v = f(*v);
                }
            }
        }
    }

    /// Successor blocks for a terminator (empty for non-terminators / ret).
    pub fn successors(&self) -> Vec<BlockId> {
        match &self.kind {
            InstrKind::Br { target } => vec![*target],
            InstrKind::CondBr { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::InstrId;

    #[test]
    fn result_types() {
        let gep = Instr::new(InstrKind::Gep {
            base: Value::Arg(0),
            index: Value::i64(1),
            elem_size: 8,
        });
        assert_eq!(gep.result_ty(), Some(Ty::Ptr));
        let st = Instr::new(InstrKind::Store { val: Value::f64(0.0), ptr: Value::Arg(0) });
        assert_eq!(st.result_ty(), None);
        assert!(st.is_mem_access());
        assert_eq!(st.addr_operand(), Some(Value::Arg(0)));
    }

    #[test]
    fn operand_listing_and_mapping() {
        let mut sel = Instr::new(InstrKind::Select {
            cond: Value::Instr(InstrId(0)),
            t: Value::Instr(InstrId(1)),
            f: Value::Instr(InstrId(2)),
            ty: Ty::I64,
        });
        assert_eq!(sel.operands().len(), 3);
        sel.map_operands(|v| match v {
            Value::Instr(InstrId(n)) => Value::Instr(InstrId(n + 10)),
            other => other,
        });
        assert_eq!(
            sel.operands(),
            vec![
                Value::Instr(InstrId(10)),
                Value::Instr(InstrId(11)),
                Value::Instr(InstrId(12))
            ]
        );
    }

    #[test]
    fn terminators_and_successors() {
        let br = Instr::new(InstrKind::Br { target: BlockId(3) });
        assert!(br.is_terminator());
        assert_eq!(br.successors(), vec![BlockId(3)]);
        let ret = Instr::new(InstrKind::Ret { val: None });
        assert!(ret.is_terminator());
        assert!(ret.successors().is_empty());
    }

    #[test]
    fn intrinsic_classification() {
        assert!(Intrinsic::Sqrt.is_simple_math());
        assert!(!Intrinsic::Malloc.is_simple_math());
        assert!(!Intrinsic::Assert.is_simple_math());
        assert_eq!(Intrinsic::Pow.arity(), 2);
        assert_eq!(Intrinsic::Abort.arity(), 0);
    }

    #[test]
    fn mnemonic_round_trips() {
        for op in [
            BinOp::Add,
            BinOp::FMul,
            BinOp::AShr,
            BinOp::SRem,
            BinOp::UDiv,
        ] {
            assert_eq!(BinOp::parse(op.mnemonic()), Some(op));
        }
        for p in [ICmp::Slt, ICmp::Uge, ICmp::Eq] {
            assert_eq!(ICmp::parse(p.mnemonic()), Some(p));
        }
        for c in [CastOp::Sext, CastOp::IntToPtr, CastOp::FpTrunc] {
            assert_eq!(CastOp::parse(c.mnemonic()), Some(c));
        }
        for i in [Intrinsic::Sqrt, Intrinsic::Assert, Intrinsic::Malloc] {
            assert_eq!(Intrinsic::parse(i.name()), Some(i));
        }
    }
}
