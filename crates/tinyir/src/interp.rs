//! Reference interpreter for TinyIR.
//!
//! The interpreter serves three roles in the CARE reproduction:
//!
//! 1. **Golden semantics** — fault-injection campaigns compare machine-level
//!    runs against the interpreter's output to classify SDCs.
//! 2. **Recovery-kernel execution** — Safeguard executes recovery kernels
//!    (which are ordinary TinyIR functions) against the *stopped process's*
//!    memory, modelling the paper's `dlopen` + `libffi` call path.
//! 3. **Differential testing** — property tests check interpreter ⟷ SimISA
//!    equivalence.
//!
//! Values are passed around as raw little-endian bit patterns (`u64`); the
//! instruction's type decides how the bits are interpreted, exactly like a
//! register file.

use crate::debugloc::DebugLoc;
use crate::instr::{BinOp, Callee, CastOp, FCmp, ICmp, InstrKind, Intrinsic};
use crate::mem::{MemFault, Memory};
use crate::module::Module;
use crate::types::Ty;
use crate::value::{BlockId, FuncId, GlobalId, InstrId, Value};

/// Why execution stopped abnormally.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FaultKind {
    /// Invalid memory reference (`SIGSEGV`), with the faulting address.
    Segv(u64),
    /// Misaligned access (`SIGBUS`), with the faulting address.
    Bus(u64),
    /// Integer divide error (`SIGFPE`).
    Fpe,
    /// Failed assertion / `abort()` (`SIGABRT`).
    Abort,
    /// Instruction budget exhausted — the run is classified as a hang.
    OutOfFuel,
    /// Ill-formed IR encountered at runtime (verifier escape hatch).
    Invalid(&'static str),
}

/// An abnormal termination: what happened and where.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Fault {
    /// Signal-like classification.
    pub kind: FaultKind,
    /// Debug location of the faulting instruction, if known.
    pub loc: Option<DebugLoc>,
}

/// Result alias for interpreter operations.
pub type ExecResult<T> = Result<T, Fault>;

/// Sign-extend the low `ty.bits()` bits.
#[inline]
pub fn sext_bits(bits: u64, ty: Ty) -> i64 {
    let b = ty.bits();
    if b >= 64 {
        return bits as i64;
    }
    let shift = 64 - b;
    ((bits << shift) as i64) >> shift
}

/// Zero-extend (mask) the low `ty.bits()` bits.
#[inline]
pub fn zext_bits(bits: u64, ty: Ty) -> u64 {
    bits & ty.mask()
}

/// Interpret bits as the float type `ty` (f32 stored in the low 32 bits).
#[inline]
pub fn float_of_bits(bits: u64, ty: Ty) -> f64 {
    match ty {
        Ty::F32 => f32::from_bits(bits as u32) as f64,
        _ => f64::from_bits(bits),
    }
}

/// Encode a float as bits of type `ty`.
#[inline]
pub fn bits_of_float(v: f64, ty: Ty) -> u64 {
    match ty {
        Ty::F32 => (v as f32).to_bits() as u64,
        _ => v.to_bits(),
    }
}

/// Bit pattern of a constant [`Value`]; `None` for non-constants.
pub fn const_bits(v: Value) -> Option<u64> {
    match v {
        Value::ConstInt(x, ty) => Some((x as u64) & ty.mask()),
        Value::ConstFloat(x, ty) => Some(bits_of_float(x, ty)),
        Value::ConstNull => Some(0),
        _ => None,
    }
}

/// Lay the module's globals out in `mem` starting at `base`, each in its own
/// page-aligned region separated by an unmapped guard page, and write their
/// initialisers. Returns the address of each global (index = [`GlobalId`]).
///
/// Guard pages make stray addresses fault quickly, which is what gives the
/// single-bit-flip campaign its SIGSEGV-dominated failure profile.
pub fn layout_globals<M: Memory>(module: &Module, mem: &mut M, base: u64) -> Vec<u64> {
    let mut addrs = Vec::with_capacity(module.globals.len());
    let mut cur = base;
    for g in &module.globals {
        cur = (cur + crate::mem::PAGE_SIZE - 1) & !(crate::mem::PAGE_SIZE - 1);
        let size = g.size().max(1);
        mem.map_region(cur, size);
        addrs.push(cur);
        // Leave one unmapped guard page after the data.
        cur += size + crate::mem::PAGE_SIZE;
    }
    // Write initialisers. `write_region` via the trait store would enforce
    // alignment, so encode as element-size stores.
    for (g, &addr) in module.globals.iter().zip(&addrs) {
        let bytes = g.init.to_bytes(g.size() as usize);
        let es = g.elem_ty.size();
        for (i, chunk) in bytes.chunks(es as usize).enumerate() {
            let mut bits = 0u64;
            for (j, b) in chunk.iter().enumerate() {
                bits |= (*b as u64) << (8 * j);
            }
            mem.store(addr + (i as u64) * es as u64, es, bits)
                .expect("global region just mapped");
        }
    }
    addrs
}

/// The interpreter. Owns no memory: it executes against any [`Memory`]
/// implementation plus a global address table.
pub struct Interp<'a, M: Memory> {
    /// Module being executed.
    pub module: &'a Module,
    /// Backing memory.
    pub mem: &'a mut M,
    /// Address of each global (index = [`GlobalId`]).
    pub globals: &'a [u64],
    /// Bump pointer for stack allocations (grows upward).
    pub stack_ptr: u64,
    /// Upper bound for the stack region.
    pub stack_limit: u64,
    /// Bump pointer for `malloc`.
    pub heap_ptr: u64,
    /// Remaining instruction budget; hitting zero raises `OutOfFuel`.
    pub fuel: u64,
    /// Dynamic instructions executed so far.
    pub steps: u64,
}

impl<'a, M: Memory> Interp<'a, M> {
    /// Create an interpreter with the given stack/heap windows and fuel.
    pub fn new(
        module: &'a Module,
        mem: &'a mut M,
        globals: &'a [u64],
        stack_base: u64,
        stack_limit: u64,
        heap_base: u64,
        fuel: u64,
    ) -> Interp<'a, M> {
        Interp {
            module,
            mem,
            globals,
            stack_ptr: stack_base,
            stack_limit,
            heap_ptr: heap_base,
            fuel,
            steps: 0,
        }
    }

    /// Call function `f` with raw-bit `args`; returns the raw-bit result.
    pub fn call(&mut self, f: FuncId, args: &[u64]) -> ExecResult<Option<u64>> {
        let func = self.module.func(f);
        if func.is_decl {
            return Err(Fault { kind: FaultKind::Invalid("call to declaration"), loc: None });
        }
        if args.len() != func.params.len() {
            return Err(Fault { kind: FaultKind::Invalid("arity mismatch"), loc: None });
        }
        let saved_sp = self.stack_ptr;
        let mut regs: Vec<Option<u64>> = vec![None; func.instrs.len()];
        let mut cur = func.entry();
        let mut pred: Option<BlockId> = None;
        let result = loop {
            // Evaluate phis atomically on block entry.
            if let Some(p) = pred {
                let block = func.block(cur);
                let mut phi_vals: Vec<(InstrId, u64)> = Vec::new();
                for &iid in &block.instrs {
                    match &func.instr(iid).kind {
                        InstrKind::Phi { incomings, .. } => {
                            let v = incomings
                                .iter()
                                .find(|(b, _)| *b == p)
                                .map(|(_, v)| *v)
                                .ok_or(Fault {
                                    kind: FaultKind::Invalid("phi missing incoming"),
                                    loc: func.instr(iid).loc,
                                })?;
                            let bits = self.value_bits(&regs, args, func, v, iid)?;
                            phi_vals.push((iid, bits));
                        }
                        _ => break,
                    }
                }
                for (iid, bits) in phi_vals {
                    regs[iid.0 as usize] = Some(bits);
                }
            }

            let block = func.block(cur);
            let mut next: Option<(BlockId, BlockId)> = None; // (from, to)
            let mut returned: Option<Option<u64>> = None;
            for &iid in &block.instrs {
                let instr = func.instr(iid);
                if matches!(instr.kind, InstrKind::Phi { .. }) {
                    continue; // handled above
                }
                if self.fuel == 0 {
                    break;
                }
                self.fuel -= 1;
                self.steps += 1;
                let loc = instr.loc;
                match &instr.kind {
                    InstrKind::Alloca { elem_ty, count } => {
                        let size = (elem_ty.size() as u64 * *count as u64).max(1);
                        let align = elem_ty.align() as u64;
                        let addr = (self.stack_ptr + align - 1) & !(align - 1);
                        if addr + size > self.stack_limit {
                            return Err(Fault { kind: FaultKind::Segv(addr + size), loc });
                        }
                        self.mem.map_region(addr, size);
                        self.stack_ptr = addr + size;
                        regs[iid.0 as usize] = Some(addr);
                    }
                    InstrKind::Load { ptr, ty } => {
                        let addr = self.value_bits(&regs, args, func, *ptr, iid)?;
                        let bits = self.mem.load(addr, ty.size()).map_err(|e| fault_of(e, loc))?;
                        regs[iid.0 as usize] = Some(bits);
                    }
                    InstrKind::Store { val, ptr } => {
                        let ty = crate::module::value_ty(func, *val).ok_or(Fault {
                            kind: FaultKind::Invalid("untyped store value"),
                            loc,
                        })?;
                        let bits = self.value_bits(&regs, args, func, *val, iid)?;
                        let addr = self.value_bits(&regs, args, func, *ptr, iid)?;
                        self.mem
                            .store(addr, ty.size(), bits)
                            .map_err(|e| fault_of(e, loc))?;
                    }
                    InstrKind::Gep { base, index, elem_size } => {
                        let b = self.value_bits(&regs, args, func, *base, iid)?;
                        let i = self.value_bits(&regs, args, func, *index, iid)? as i64;
                        let addr = (b as i64).wrapping_add(i.wrapping_mul(*elem_size as i64));
                        regs[iid.0 as usize] = Some(addr as u64);
                    }
                    InstrKind::Bin { op, lhs, rhs, ty } => {
                        let l = self.value_bits(&regs, args, func, *lhs, iid)?;
                        let r = self.value_bits(&regs, args, func, *rhs, iid)?;
                        let bits = eval_bin(*op, l, r, *ty).map_err(|k| Fault { kind: k, loc })?;
                        regs[iid.0 as usize] = Some(bits);
                    }
                    InstrKind::Icmp { pred: p, lhs, rhs } => {
                        let ty = crate::module::value_ty(func, *lhs).unwrap_or(Ty::I64);
                        let l = self.value_bits(&regs, args, func, *lhs, iid)?;
                        let r = self.value_bits(&regs, args, func, *rhs, iid)?;
                        regs[iid.0 as usize] = Some(eval_icmp(*p, l, r, ty) as u64);
                    }
                    InstrKind::Fcmp { pred: p, lhs, rhs } => {
                        let ty = crate::module::value_ty(func, *lhs).unwrap_or(Ty::F64);
                        let l = float_of_bits(self.value_bits(&regs, args, func, *lhs, iid)?, ty);
                        let r = float_of_bits(self.value_bits(&regs, args, func, *rhs, iid)?, ty);
                        regs[iid.0 as usize] = Some(eval_fcmp(*p, l, r) as u64);
                    }
                    InstrKind::Cast { op, val, to } => {
                        let from = crate::module::value_ty(func, *val).unwrap_or(Ty::I64);
                        let v = self.value_bits(&regs, args, func, *val, iid)?;
                        regs[iid.0 as usize] = Some(eval_cast(*op, v, from, *to));
                    }
                    InstrKind::Select { cond, t, f: fv, .. } => {
                        let c = self.value_bits(&regs, args, func, *cond, iid)? & 1;
                        let chosen = if c != 0 { *t } else { *fv };
                        let bits = self.value_bits(&regs, args, func, chosen, iid)?;
                        regs[iid.0 as usize] = Some(bits);
                    }
                    InstrKind::Phi { .. } => unreachable!(),
                    InstrKind::Call { callee, args: call_args, .. } => {
                        let mut argv = Vec::with_capacity(call_args.len());
                        for a in call_args {
                            argv.push(self.value_bits(&regs, args, func, *a, iid)?);
                        }
                        match callee {
                            Callee::Intrinsic(i) => {
                                let r = self
                                    .eval_intrinsic(*i, &argv)
                                    .map_err(|k| Fault { kind: k, loc })?;
                                if let Some(bits) = r {
                                    regs[iid.0 as usize] = Some(bits);
                                }
                            }
                            Callee::Func(fid) => {
                                let r = self.call(*fid, &argv)?;
                                if let Some(bits) = r {
                                    regs[iid.0 as usize] = Some(bits);
                                }
                            }
                        }
                    }
                    InstrKind::Br { target } => {
                        next = Some((cur, *target));
                        break;
                    }
                    InstrKind::CondBr { cond, then_bb, else_bb } => {
                        let c = self.value_bits(&regs, args, func, *cond, iid)? & 1;
                        next = Some((cur, if c != 0 { *then_bb } else { *else_bb }));
                        break;
                    }
                    InstrKind::Ret { val } => {
                        returned = Some(match val {
                            Some(v) => Some(self.value_bits(&regs, args, func, *v, iid)?),
                            None => None,
                        });
                        break;
                    }
                }
            }
            if self.fuel == 0 {
                break Err(Fault { kind: FaultKind::OutOfFuel, loc: None });
            }
            if let Some(r) = returned {
                break Ok(r);
            }
            match next {
                Some((from, to)) => {
                    pred = Some(from);
                    cur = to;
                }
                None => {
                    break Err(Fault {
                        kind: FaultKind::Invalid("block fell through without terminator"),
                        loc: None,
                    })
                }
            }
        };
        self.stack_ptr = saved_sp;
        result
    }

    fn value_bits(
        &mut self,
        regs: &[Option<u64>],
        args: &[u64],
        func: &crate::module::Function,
        v: Value,
        _at: InstrId,
    ) -> ExecResult<u64> {
        match v {
            Value::Instr(id) => regs[id.0 as usize].ok_or(Fault {
                kind: FaultKind::Invalid("use of undefined value"),
                loc: func.instr(id).loc,
            }),
            Value::Arg(i) => Ok(args[i as usize]),
            Value::Global(GlobalId(g)) => Ok(self.globals[g as usize]),
            _ => const_bits(v).ok_or(Fault {
                kind: FaultKind::Invalid("non-const in const position"),
                loc: None,
            }),
        }
    }

    fn eval_intrinsic(&mut self, i: Intrinsic, args: &[u64]) -> Result<Option<u64>, FaultKind> {
        let f = |n: usize| f64::from_bits(args[n]);
        Ok(match i {
            Intrinsic::Sqrt => Some(f(0).sqrt().to_bits()),
            Intrinsic::Fabs => Some(f(0).abs().to_bits()),
            Intrinsic::Sin => Some(f(0).sin().to_bits()),
            Intrinsic::Cos => Some(f(0).cos().to_bits()),
            Intrinsic::Exp => Some(f(0).exp().to_bits()),
            Intrinsic::Floor => Some(f(0).floor().to_bits()),
            Intrinsic::Pow => Some(f(0).powf(f(1)).to_bits()),
            Intrinsic::FMin => Some(f(0).min(f(1)).to_bits()),
            Intrinsic::FMax => Some(f(0).max(f(1)).to_bits()),
            Intrinsic::IMin => Some(((args[0] as i64).min(args[1] as i64)) as u64),
            Intrinsic::IMax => Some(((args[0] as i64).max(args[1] as i64)) as u64),
            Intrinsic::Assert => {
                if args[0] & 1 == 0 {
                    return Err(FaultKind::Abort);
                }
                None
            }
            Intrinsic::Abort => return Err(FaultKind::Abort),
            Intrinsic::Malloc => {
                let size = args[0].max(1);
                let align = 16u64;
                let addr = (self.heap_ptr + align - 1) & !(align - 1);
                self.mem.map_region(addr, size);
                // Guard page after each heap object.
                self.heap_ptr = addr + size + crate::mem::PAGE_SIZE;
                Some(addr)
            }
            Intrinsic::Free => None, // bump allocator: free is a no-op
        })
    }
}

fn fault_of(e: MemFault, loc: Option<DebugLoc>) -> Fault {
    let kind = match e {
        MemFault::Unmapped(a) => FaultKind::Segv(a),
        MemFault::Misaligned(a) => FaultKind::Bus(a),
    };
    Fault { kind, loc }
}

/// Evaluate a binary operator on raw bits. Public so that constant folding
/// (in `opt`) and SimISA (in `simx`) share one definition of arithmetic.
#[inline]
pub fn eval_bin(op: BinOp, l: u64, r: u64, ty: Ty) -> Result<u64, FaultKind> {
    if op.is_float() {
        let a = float_of_bits(l, ty);
        let b = float_of_bits(r, ty);
        let v = match op {
            BinOp::FAdd => a + b,
            BinOp::FSub => a - b,
            BinOp::FMul => a * b,
            BinOp::FDiv => a / b,
            _ => unreachable!(),
        };
        return Ok(bits_of_float(v, ty));
    }
    let ls = sext_bits(l, ty);
    let rs = sext_bits(r, ty);
    let lu = zext_bits(l, ty);
    let ru = zext_bits(r, ty);
    let shift_amt = (ru % ty.bits() as u64) as u32;
    let v: u64 = match op {
        BinOp::Add => (ls.wrapping_add(rs)) as u64,
        BinOp::Sub => (ls.wrapping_sub(rs)) as u64,
        BinOp::Mul => (ls.wrapping_mul(rs)) as u64,
        BinOp::SDiv => {
            if rs == 0 {
                return Err(FaultKind::Fpe);
            }
            ls.wrapping_div(rs) as u64
        }
        BinOp::UDiv => {
            if ru == 0 {
                return Err(FaultKind::Fpe);
            }
            lu / ru
        }
        BinOp::SRem => {
            if rs == 0 {
                return Err(FaultKind::Fpe);
            }
            ls.wrapping_rem(rs) as u64
        }
        BinOp::URem => {
            if ru == 0 {
                return Err(FaultKind::Fpe);
            }
            lu % ru
        }
        BinOp::And => lu & ru,
        BinOp::Or => lu | ru,
        BinOp::Xor => lu ^ ru,
        BinOp::Shl => lu.wrapping_shl(shift_amt),
        BinOp::LShr => lu.wrapping_shr(shift_amt),
        BinOp::AShr => (ls >> shift_amt) as u64,
        _ => unreachable!(),
    };
    Ok(v & ty.mask())
}

/// Evaluate an integer comparison on raw bits.
#[inline]
pub fn eval_icmp(pred: ICmp, l: u64, r: u64, ty: Ty) -> bool {
    let ls = sext_bits(l, ty);
    let rs = sext_bits(r, ty);
    let lu = zext_bits(l, ty);
    let ru = zext_bits(r, ty);
    match pred {
        ICmp::Eq => lu == ru,
        ICmp::Ne => lu != ru,
        ICmp::Slt => ls < rs,
        ICmp::Sle => ls <= rs,
        ICmp::Sgt => ls > rs,
        ICmp::Sge => ls >= rs,
        ICmp::Ult => lu < ru,
        ICmp::Ule => lu <= ru,
        ICmp::Ugt => lu > ru,
        ICmp::Uge => lu >= ru,
    }
}

/// Evaluate an ordered float comparison.
#[inline]
pub fn eval_fcmp(pred: FCmp, l: f64, r: f64) -> bool {
    match pred {
        FCmp::Oeq => l == r,
        FCmp::One => l != r && !l.is_nan() && !r.is_nan(),
        FCmp::Olt => l < r,
        FCmp::Ole => l <= r,
        FCmp::Ogt => l > r,
        FCmp::Oge => l >= r,
    }
}

/// Evaluate a conversion on raw bits.
#[inline]
pub fn eval_cast(op: CastOp, v: u64, from: Ty, to: Ty) -> u64 {
    match op {
        CastOp::Sext => (sext_bits(v, from) as u64) & to.mask(),
        CastOp::Zext => zext_bits(v, from) & to.mask(),
        CastOp::Trunc => v & to.mask(),
        CastOp::SiToFp => bits_of_float(sext_bits(v, from) as f64, to),
        CastOp::FpToSi => {
            let f = float_of_bits(v, from);
            let i = if f.is_nan() {
                0i64
            } else {
                f.max(i64::MIN as f64).min(i64::MAX as f64) as i64
            };
            (i as u64) & to.mask()
        }
        CastOp::FpExt => float_of_bits(v, from).to_bits(),
        CastOp::FpTrunc => bits_of_float(float_of_bits(v, from), to),
        CastOp::PtrToInt | CastOp::IntToPtr => v & to.mask(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::mem::PagedMemory;

    const STACK_BASE: u64 = 0x7f00_0000_0000;
    const STACK_LIMIT: u64 = 0x7f00_0100_0000;
    const HEAP_BASE: u64 = 0x6000_0000_0000;

    fn run(module: &Module, func: &str, args: &[u64]) -> ExecResult<Option<u64>> {
        let mut mem = PagedMemory::new();
        let globals = layout_globals(module, &mut mem, 0x1000_0000);
        let mut interp = Interp::new(
            module,
            &mut mem,
            &globals,
            STACK_BASE,
            STACK_LIMIT,
            HEAP_BASE,
            100_000_000,
        );
        let fid = module.func_by_name(func).unwrap();
        interp.call(fid, args)
    }

    #[test]
    fn arithmetic_loop_sums() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("tri", vec![Ty::I64], Some(Ty::I64), |fb| {
            let acc = fb.alloca(Ty::I64, 1);
            fb.store(Value::i64(0), acc);
            fb.for_loop(Value::i64(1), fb.arg(0), |fb, iv| {
                let a = fb.load(acc, Ty::I64);
                let s = fb.add(a, iv, Ty::I64);
                fb.store(s, acc);
            });
            let r = fb.load(acc, Ty::I64);
            fb.ret(Some(r));
        });
        let m = mb.finish();
        // sum 1..10 = 45
        assert_eq!(run(&m, "tri", &[10]).unwrap(), Some(45));
    }

    #[test]
    fn global_array_stencil() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_init(
            "data",
            Ty::F64,
            4,
            crate::module::GlobalInit::F64s(vec![1.0, 2.0, 3.0, 4.0]),
        );
        mb.define("sum2", vec![Ty::I64], Some(Ty::F64), |fb| {
            let base = fb.global(g);
            let a = fb.load_elem(base, fb.arg(0), Ty::F64);
            let i1 = fb.add(fb.arg(0), Value::i64(1), Ty::I64);
            let b = fb.load_elem(base, i1, Ty::F64);
            let s = fb.fadd(a, b, Ty::F64);
            fb.ret(Some(s));
        });
        let m = mb.finish();
        let bits = run(&m, "sum2", &[1]).unwrap().unwrap();
        assert_eq!(f64::from_bits(bits), 5.0);
    }

    #[test]
    fn out_of_bounds_faults_as_segv() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_zeroed("data", Ty::F64, 8);
        mb.define("oob", vec![Ty::I64], Some(Ty::F64), |fb| {
            let v = fb.load_elem(fb.global(g), fb.arg(0), Ty::F64);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        // Far past the guard page.
        let err = run(&m, "oob", &[1_000_000]).unwrap_err();
        assert!(matches!(err.kind, FaultKind::Segv(_)));
        assert!(err.loc.is_some());
    }

    #[test]
    fn misaligned_access_is_bus() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_zeroed("data", Ty::F64, 8);
        mb.define("mis", vec![], Some(Ty::F64), |fb| {
            let p = fb.global(g);
            let pi = fb.cast(CastOp::PtrToInt, p, Ty::I64);
            let off = fb.add(pi, Value::i64(3), Ty::I64);
            let p2 = fb.cast(CastOp::IntToPtr, off, Ty::Ptr);
            let v = fb.load(p2, Ty::F64);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        let err = run(&m, "mis", &[]).unwrap_err();
        assert!(matches!(err.kind, FaultKind::Bus(_)));
    }

    #[test]
    fn divide_by_zero_is_fpe() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("div", vec![Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let q = fb.sdiv(fb.arg(0), fb.arg(1), Ty::I64);
            fb.ret(Some(q));
        });
        let m = mb.finish();
        assert_eq!(run(&m, "div", &[10, 2]).unwrap(), Some(5));
        assert_eq!(run(&m, "div", &[10, 0]).unwrap_err().kind, FaultKind::Fpe);
    }

    #[test]
    fn failed_assert_aborts() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("chk", vec![Ty::I64], None, |fb| {
            let ok = fb.icmp(ICmp::Slt, fb.arg(0), Value::i64(100));
            fb.assert_cond(ok);
            fb.ret(None);
        });
        let m = mb.finish();
        assert!(run(&m, "chk", &[5]).is_ok());
        assert_eq!(run(&m, "chk", &[500]).unwrap_err().kind, FaultKind::Abort);
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("spin", vec![], None, |fb| {
            let bb = fb.new_block("spin");
            fb.br(bb);
            fb.switch_to(bb);
            fb.br(bb);
        });
        let m = mb.finish();
        let mut mem = PagedMemory::new();
        let globals = layout_globals(&m, &mut mem, 0x1000_0000);
        let mut interp =
            Interp::new(&m, &mut mem, &globals, STACK_BASE, STACK_LIMIT, HEAP_BASE, 10_000);
        let fid = m.func_by_name("spin").unwrap();
        assert_eq!(
            interp.call(fid, &[]).unwrap_err().kind,
            FaultKind::OutOfFuel
        );
    }

    #[test]
    fn recursion_and_calls() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let fact = mb.declare("fact", vec![Ty::I64], Some(Ty::I64));
        mb.define("fact", vec![Ty::I64], Some(Ty::I64), |fb| {
            let is_base = fb.icmp(ICmp::Sle, fb.arg(0), Value::i64(1));
            let ret_slot = fb.alloca(Ty::I64, 1);
            fb.if_then_else(
                is_base,
                |fb| fb.store(Value::i64(1), ret_slot),
                |fb| {
                    let n1 = fb.sub(fb.arg(0), Value::i64(1), Ty::I64);
                    let sub = fb.call(fact, vec![n1]);
                    let v = fb.mul(fb.arg(0), sub, Ty::I64);
                    fb.store(v, ret_slot);
                },
            );
            let r = fb.load(ret_slot, Ty::I64);
            fb.ret(Some(r));
        });
        let m = mb.finish();
        assert_eq!(run(&m, "fact", &[6]).unwrap(), Some(720));
    }

    #[test]
    fn intrinsics_and_float_math() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("hyp", vec![Ty::F64, Ty::F64], Some(Ty::F64), |fb| {
            let a2 = fb.fmul(fb.arg(0), fb.arg(0), Ty::F64);
            let b2 = fb.fmul(fb.arg(1), fb.arg(1), Ty::F64);
            let s = fb.fadd(a2, b2, Ty::F64);
            let r = fb.sqrt(s);
            fb.ret(Some(r));
        });
        let m = mb.finish();
        let bits = run(&m, "hyp", &[3.0f64.to_bits(), 4.0f64.to_bits()])
            .unwrap()
            .unwrap();
        assert_eq!(f64::from_bits(bits), 5.0);
    }

    #[test]
    fn malloc_returns_usable_guarded_memory() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("heap", vec![], Some(Ty::I64), |fb| {
            let p = fb.intrinsic(Intrinsic::Malloc, vec![Value::i64(64)]);
            fb.store_elem(Value::i64(77), p, Value::i64(3), Ty::I64);
            let v = fb.load_elem(p, Value::i64(3), Ty::I64);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        assert_eq!(run(&m, "heap", &[]).unwrap(), Some(77));
    }

    #[test]
    fn bit_helpers() {
        assert_eq!(sext_bits(0xff, Ty::I8), -1);
        assert_eq!(sext_bits(0x7f, Ty::I8), 127);
        assert_eq!(zext_bits(0xffff_ffff_ffff_ffff, Ty::I32), 0xffff_ffff);
        assert_eq!(
            eval_bin(BinOp::Add, 0xffff_ffff, 1, Ty::I32).unwrap(),
            0
        );
        assert_eq!(eval_bin(BinOp::AShr, 0x8000_0000, 31, Ty::I32).unwrap(), 0xffff_ffff);
        assert!(eval_icmp(ICmp::Slt, 0xffff_ffff, 0, Ty::I32) /* -1 < 0 */);
        assert!(!eval_icmp(ICmp::Ult, 0xffff_ffff, 0, Ty::I32));
        assert_eq!(eval_cast(CastOp::Sext, 0x80, Ty::I8, Ty::I64), 0xffff_ffff_ffff_ff80);
    }
}
