//! Parser for the textual TinyIR format produced by [`crate::display`].
//!
//! `parse_module(print_module(m))` reproduces a module that prints
//! identically — the round-trip property the test suite (and the proptest
//! suite in `tests/`) relies on.

use crate::debugloc::{DebugLoc, FileId};
use crate::instr::{BinOp, Callee, CastOp, FCmp, ICmp, Instr, InstrKind, Intrinsic};
use crate::module::{Block, Function, Global, GlobalInit, Module};
use crate::types::Ty;
use crate::value::{BlockId, FuncId, GlobalId, InstrId, Value};

/// A parse failure with a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

struct Cursor<'a> {
    s: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str, line: usize) -> Cursor<'a> {
        Cursor { s, pos: 0, line }
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError { line: self.line, msg: msg.into() })
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with([' ', '\t']) {
            self.pos += 1;
        }
    }

    fn eof(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> PResult<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            self.err(format!("expected `{tok}` at `{}`", truncate(self.rest())))
        }
    }

    fn word(&mut self) -> PResult<&'a str> {
        self.skip_ws();
        let start = self.pos;
        while self
            .rest()
            .starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        {
            self.pos += 1;
        }
        if self.pos == start {
            self.err(format!("expected word at `{}`", truncate(self.rest())))
        } else {
            Ok(&self.s[start..self.pos])
        }
    }

    fn number<T: std::str::FromStr>(&mut self) -> PResult<T> {
        self.skip_ws();
        let start = self.pos;
        if self.rest().starts_with('-') {
            self.pos += 1;
        }
        while self
            .rest()
            .starts_with(|c: char| c.is_ascii_digit() || c == '.' || c == 'e' || c == '-' || c == '+')
        {
            self.pos += 1;
        }
        self.s[start..self.pos]
            .parse()
            .map_err(|_| ParseError {
                line: self.line,
                msg: format!("bad number `{}`", &self.s[start..self.pos]),
            })
    }

    fn quoted(&mut self) -> PResult<String> {
        self.expect("\"")?;
        let start = self.pos;
        match self.rest().find('"') {
            Some(end) => {
                let out = self.s[start..start + end].to_string();
                self.pos = start + end + 1;
                Ok(out)
            }
            None => self.err("unterminated string"),
        }
    }
}

fn truncate(s: &str) -> &str {
    &s[..s.len().min(24)]
}

fn parse_ty(c: &mut Cursor<'_>) -> PResult<Ty> {
    let w = c.word()?;
    Ty::parse(w).ok_or(ParseError { line: c.line, msg: format!("unknown type `{w}`") })
}

/// Parse a value operand: `%vN`, `%aN`, `@gN`, `null`, or `ty literal`.
fn parse_value(c: &mut Cursor<'_>) -> PResult<Value> {
    c.skip_ws();
    if c.eat("%v") {
        return Ok(Value::Instr(InstrId(c.number()?)));
    }
    if c.eat("%a") {
        return Ok(Value::Arg(c.number()?));
    }
    if c.eat("@g") {
        return Ok(Value::Global(GlobalId(c.number()?)));
    }
    if c.eat("null") {
        return Ok(Value::ConstNull);
    }
    // Typed constant.
    let ty = parse_ty(c)?;
    c.skip_ws();
    if c.eat("0fx") {
        let hex = c.word()?;
        let bits = u64::from_str_radix(hex, 16)
            .map_err(|_| ParseError { line: c.line, msg: format!("bad float bits `{hex}`") })?;
        let v = match ty {
            Ty::F32 => f32::from_bits(bits as u32) as f64,
            _ => f64::from_bits(bits),
        };
        return Ok(Value::ConstFloat(v, ty));
    }
    let n: i64 = c.number()?;
    if ty.is_float() {
        Ok(Value::ConstFloat(n as f64, ty))
    } else {
        Ok(Value::ConstInt(n, ty))
    }
}

fn parse_ret_ty(c: &mut Cursor<'_>) -> PResult<Option<Ty>> {
    c.skip_ws();
    if c.eat("void") {
        Ok(None)
    } else {
        Ok(Some(parse_ty(c)?))
    }
}

fn parse_bb(c: &mut Cursor<'_>) -> PResult<BlockId> {
    c.expect("bb")?;
    Ok(BlockId(c.number()?))
}

fn parse_loc(c: &mut Cursor<'_>) -> PResult<Option<DebugLoc>> {
    c.skip_ws();
    if !c.eat("!") {
        return Ok(None);
    }
    let file: u32 = c.number()?;
    c.expect(":")?;
    let line: u32 = c.number()?;
    c.expect(":")?;
    let col: u32 = c.number()?;
    Ok(Some(DebugLoc::new(FileId(file), line, col)))
}

fn parse_instr_body(c: &mut Cursor<'_>) -> PResult<InstrKind> {
    let op = c.word()?;
    let kind = match op {
        "alloca" => {
            let elem_ty = parse_ty(c)?;
            c.expect(",")?;
            let count: u32 = c.number()?;
            InstrKind::Alloca { elem_ty, count }
        }
        "load" => {
            let ty = parse_ty(c)?;
            c.expect(",")?;
            let ptr = parse_value(c)?;
            InstrKind::Load { ptr, ty }
        }
        "store" => {
            let val = parse_value(c)?;
            c.expect(",")?;
            let ptr = parse_value(c)?;
            InstrKind::Store { val, ptr }
        }
        "gep" => {
            let base = parse_value(c)?;
            c.expect(",")?;
            let index = parse_value(c)?;
            c.expect(",")?;
            let elem_size: u32 = c.number()?;
            InstrKind::Gep { base, index, elem_size }
        }
        "icmp" => {
            let p = c.word()?;
            let pred = ICmp::parse(p)
                .ok_or(ParseError { line: c.line, msg: format!("bad icmp pred `{p}`") })?;
            let lhs = parse_value(c)?;
            c.expect(",")?;
            let rhs = parse_value(c)?;
            InstrKind::Icmp { pred, lhs, rhs }
        }
        "fcmp" => {
            let p = c.word()?;
            let pred = FCmp::parse(p)
                .ok_or(ParseError { line: c.line, msg: format!("bad fcmp pred `{p}`") })?;
            let lhs = parse_value(c)?;
            c.expect(",")?;
            let rhs = parse_value(c)?;
            InstrKind::Fcmp { pred, lhs, rhs }
        }
        "select" => {
            let ty = parse_ty(c)?;
            let cond = parse_value(c)?;
            c.expect(",")?;
            let t = parse_value(c)?;
            c.expect(",")?;
            let f = parse_value(c)?;
            InstrKind::Select { cond, t, f, ty }
        }
        "phi" => {
            let ty = parse_ty(c)?;
            let mut incomings = Vec::new();
            loop {
                c.skip_ws();
                if !c.eat("[") {
                    break;
                }
                let bb = parse_bb(c)?;
                c.expect(":")?;
                let v = parse_value(c)?;
                c.expect("]")?;
                incomings.push((bb, v));
                if !c.eat(",") {
                    break;
                }
            }
            InstrKind::Phi { incomings, ty }
        }
        "call" => {
            let ret_ty = parse_ret_ty(c)?;
            c.skip_ws();
            let callee = if c.eat("@f") {
                Callee::Func(FuncId(c.number()?))
            } else if c.eat("$") {
                let name = c.word()?;
                Callee::Intrinsic(Intrinsic::parse(name).ok_or(ParseError {
                    line: c.line,
                    msg: format!("unknown intrinsic `{name}`"),
                })?)
            } else {
                return c.err("expected callee");
            };
            c.expect("(")?;
            let mut args = Vec::new();
            c.skip_ws();
            if !c.eat(")") {
                loop {
                    args.push(parse_value(c)?);
                    if c.eat(")") {
                        break;
                    }
                    c.expect(",")?;
                }
            }
            InstrKind::Call { callee, args, ret_ty }
        }
        "br" => InstrKind::Br { target: parse_bb(c)? },
        "condbr" => {
            let cond = parse_value(c)?;
            c.expect(",")?;
            let then_bb = parse_bb(c)?;
            c.expect(",")?;
            let else_bb = parse_bb(c)?;
            InstrKind::CondBr { cond, then_bb, else_bb }
        }
        "ret" => {
            c.skip_ws();
            if c.eat("void") {
                InstrKind::Ret { val: None }
            } else {
                InstrKind::Ret { val: Some(parse_value(c)?) }
            }
        }
        other => {
            if let Some(bin) = BinOp::parse(other) {
                let ty = parse_ty(c)?;
                let lhs = parse_value(c)?;
                c.expect(",")?;
                let rhs = parse_value(c)?;
                InstrKind::Bin { op: bin, lhs, rhs, ty }
            } else if let Some(cast) = CastOp::parse(other) {
                let val = parse_value(c)?;
                c.expect("to")?;
                let to = parse_ty(c)?;
                InstrKind::Cast { op: cast, val, to }
            } else {
                return c.err(format!("unknown instruction `{other}`"));
            }
        }
    };
    Ok(kind)
}

/// One parsed instruction line before arena placement.
struct PendingInstr {
    explicit_id: Option<u32>,
    instr: Instr,
    block: usize,
}

/// Parse a whole module from its textual form.
pub fn parse_module(text: &str) -> PResult<Module> {
    let mut module = Module::new("");
    let lines = text.lines().enumerate().peekable();
    let mut cur_func: Option<(String, Vec<Ty>, Option<Ty>)> = None;
    let mut pending: Vec<PendingInstr> = Vec::new();
    let mut blocks: Vec<Block> = Vec::new();

    for (idx, raw) in lines {
        let lineno = idx + 1;
        let stripped = match raw.find(';') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let trimmed = stripped.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut c = Cursor::new(trimmed, lineno);
        if cur_func.is_none() {
            if c.eat("module") {
                module.name = c.quoted()?;
            } else if c.eat("file") {
                let _idx: u32 = c.number()?;
                let name = c.quoted()?;
                module.intern_file(&name);
            } else if c.eat("global") {
                c.expect("@g")?;
                let _gid: u32 = c.number()?;
                let name = c.quoted()?;
                let elem_ty = parse_ty(&mut c)?;
                c.expect("x")?;
                let count: u32 = c.number()?;
                let init = parse_global_init(&mut c)?;
                module.add_global(Global { name, elem_ty, count, init });
            } else if c.eat("declare") {
                c.expect("@")?;
                let name = c.word()?.to_string();
                let (params, ret_ty) = parse_signature(&mut c)?;
                let mut f = Function::new(name, params, ret_ty);
                f.is_decl = true;
                module.add_func(f);
            } else if c.eat("func") {
                c.expect("@")?;
                let name = c.word()?.to_string();
                let (params, ret_ty) = parse_signature(&mut c)?;
                c.expect("{")?;
                cur_func = Some((name, params, ret_ty));
                pending.clear();
                blocks.clear();
            } else {
                return c.err(format!("unexpected top-level line `{trimmed}`"));
            }
        } else if trimmed == "}" {
            let (name, params, ret_ty) = cur_func.take().unwrap();
            let func = assemble_function(name, params, ret_ty, &mut pending, &mut blocks, lineno)?;
            module.add_func(func);
        } else if trimmed.starts_with("bb") {
            let mut c2 = Cursor::new(trimmed, lineno);
            c2.expect("bb")?;
            let n: u32 = c2.number()?;
            c2.expect(":")?;
            if n as usize != blocks.len() {
                return c2.err("blocks must appear in order");
            }
            blocks.push(Block { name: format!("bb{n}"), instrs: Vec::new() });
        } else {
            if blocks.is_empty() {
                return c.err("instruction before first block label");
            }
            let explicit_id = if trimmed.starts_with("%v") {
                c.expect("%v")?;
                let n: u32 = c.number()?;
                c.expect("=")?;
                Some(n)
            } else {
                None
            };
            let kind = parse_instr_body(&mut c)?;
            let loc = parse_loc(&mut c)?;
            if !c.eof() {
                return c.err(format!("trailing input `{}`", truncate(c.rest())));
            }
            pending.push(PendingInstr {
                explicit_id,
                instr: Instr { kind, loc },
                block: blocks.len() - 1,
            });
        }
    }
    if cur_func.is_some() {
        return Err(ParseError { line: 0, msg: "unterminated function".into() });
    }
    module.rebuild_indexes();
    Ok(module)
}

fn parse_signature(c: &mut Cursor<'_>) -> PResult<(Vec<Ty>, Option<Ty>)> {
    c.expect("(")?;
    let mut params = Vec::new();
    c.skip_ws();
    if !c.eat(")") {
        loop {
            let ty = parse_ty(c)?;
            c.expect("%a")?;
            let _n: u32 = c.number()?;
            params.push(ty);
            if c.eat(")") {
                break;
            }
            c.expect(",")?;
        }
    }
    c.expect("->")?;
    let ret_ty = parse_ret_ty(c)?;
    Ok((params, ret_ty))
}

fn parse_global_init(c: &mut Cursor<'_>) -> PResult<GlobalInit> {
    let w = c.word()?;
    Ok(match w {
        "zero" => GlobalInit::Zero,
        "i32s" => {
            let mut v = Vec::new();
            while !c.eof() {
                v.push(c.number()?);
            }
            GlobalInit::I32s(v)
        }
        "i64s" => {
            let mut v = Vec::new();
            while !c.eof() {
                v.push(c.number()?);
            }
            GlobalInit::I64s(v)
        }
        "f32s" => {
            let mut v = Vec::new();
            while !c.eof() {
                c.expect("0fx")?;
                let hex = c.word()?;
                let bits = u32::from_str_radix(hex, 16)
                    .map_err(|_| ParseError { line: c.line, msg: "bad f32 bits".into() })?;
                v.push(f32::from_bits(bits));
            }
            GlobalInit::F32s(v)
        }
        "f64s" => {
            let mut v = Vec::new();
            while !c.eof() {
                c.expect("0fx")?;
                let hex = c.word()?;
                let bits = u64::from_str_radix(hex, 16)
                    .map_err(|_| ParseError { line: c.line, msg: "bad f64 bits".into() })?;
                v.push(f64::from_bits(bits));
            }
            GlobalInit::F64s(v)
        }
        other => {
            return Err(ParseError { line: c.line, msg: format!("unknown init kind `{other}`") })
        }
    })
}

/// Place parsed instructions into the arena so that `%vN` lands at
/// `InstrId(N)`; void instructions fill the remaining slots.
fn assemble_function(
    name: String,
    params: Vec<Ty>,
    ret_ty: Option<Ty>,
    pending: &mut Vec<PendingInstr>,
    blocks: &mut Vec<Block>,
    lineno: usize,
) -> PResult<Function> {
    let total = pending.len();
    let mut used = vec![false; total];
    for p in pending.iter() {
        if let Some(id) = p.explicit_id {
            let slot = id as usize;
            if slot >= total || used[slot] {
                return Err(ParseError {
                    line: lineno,
                    msg: format!("value id %v{id} out of range or duplicated in @{name}"),
                });
            }
            used[slot] = true;
        }
    }
    let mut free: Vec<usize> = (0..total).filter(|&i| !used[i]).collect();
    free.reverse(); // pop from the front in order

    let placeholder = Instr::new(InstrKind::Ret { val: None });
    let mut instrs = vec![placeholder; total];
    let mut final_blocks: Vec<Block> = blocks
        .iter()
        .map(|b| Block { name: b.name.clone(), instrs: Vec::new() })
        .collect();
    for p in pending.drain(..) {
        let slot = match p.explicit_id {
            Some(id) => id as usize,
            None => free.pop().ok_or(ParseError {
                line: lineno,
                msg: "internal: slot exhaustion".into(),
            })?,
        };
        instrs[slot] = p.instr;
        final_blocks[p.block].instrs.push(InstrId(slot as u32));
    }
    blocks.clear();
    let mut f = Function::new(name, params, ret_ty);
    f.instrs = instrs;
    f.blocks = final_blocks;
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::display::print_module;
    use crate::value::Value;

    fn round_trip(m: &Module) {
        let t1 = print_module(m);
        let parsed = parse_module(&t1).expect("parse");
        let t2 = print_module(&parsed);
        assert_eq!(t1, t2, "print->parse->print not idempotent");
    }

    #[test]
    fn round_trip_simple() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_init(
            "tab",
            Ty::I32,
            3,
            GlobalInit::I32s(vec![1, -2, 3]),
        );
        mb.define("f", vec![Ty::Ptr, Ty::I64], Some(Ty::F64), |fb| {
            let x = fb.load_elem(fb.arg(0), fb.arg(1), Ty::F64);
            let t = fb.load_elem(fb.global(g), fb.arg(1), Ty::I32);
            let ts = fb.sext(t, Ty::I64);
            let tf = fb.cast(CastOp::SiToFp, ts, Ty::F64);
            let s = fb.fadd(x, tf, Ty::F64);
            fb.ret(Some(s));
        });
        round_trip(&mb.finish());
    }

    #[test]
    fn round_trip_control_flow_and_calls() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let h = mb.declare("h", vec![Ty::F64], Some(Ty::F64));
        mb.define("g", vec![Ty::I64], Some(Ty::F64), |fb| {
            let acc = fb.alloca(Ty::F64, 1);
            fb.store(Value::f64(0.0), acc);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
                let ivf = fb.cast(CastOp::SiToFp, iv, Ty::F64);
                let r = fb.call(h, vec![ivf]);
                let a = fb.load(acc, Ty::F64);
                let s = fb.fadd(a, r, Ty::F64);
                fb.store(s, acc);
            });
            let out = fb.load(acc, Ty::F64);
            fb.ret(Some(out));
        });
        mb.define("h", vec![Ty::F64], Some(Ty::F64), |fb| {
            let r = fb.sqrt(fb.arg(0));
            fb.ret(Some(r));
        });
        round_trip(&mb.finish());
    }

    #[test]
    fn round_trip_float_precision() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("c", vec![], Some(Ty::F64), |fb| {
            let v = fb.fadd(
                Value::f64(0.1),
                Value::f64(1.0 / 3.0),
                Ty::F64,
            );
            fb.ret(Some(v));
        });
        round_trip(&mb.finish());
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "module \"x\"\nbogus line here\n";
        let err = parse_module(text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_duplicate_value_ids() {
        let text = "module \"x\"\nfunc @f() -> i64 {\nbb0:\n  %v0 = add i64 i64 1, i64 2\n  %v0 = add i64 i64 1, i64 2\n  ret %v0\n}\n";
        assert!(parse_module(text).is_err());
    }

    #[test]
    fn parses_handwritten_module() {
        let text = r#"
module "hand"
file 0 "hand.c"
global @g0 "arr" f64 x 8 zero
func @get(i64 %a0) -> f64 {
bb0:
  %v0 = gep @g0, %a0, 8 !0:1:1
  %v1 = load f64, %v0 !0:2:1
  ret %v1
}
"#;
        let m = parse_module(text).unwrap();
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.globals.len(), 1);
        assert_eq!(m.funcs[0].mem_access_instrs().len(), 1);
        assert_eq!(m.funcs[0].instr(InstrId(1)).loc.unwrap().line, 2);
    }
}
