//! The memory abstraction shared by the reference interpreter and the SimISA
//! machine.
//!
//! Memory is sparse and page-granular: only explicitly mapped pages are
//! accessible, and touching an unmapped page produces the simulated
//! equivalent of `SIGSEGV` (with the faulting address, like `siginfo_t`'s
//! `si_addr`). Misaligned accesses produce the equivalent of `SIGBUS`.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Page size of the simulated address space (4 KiB, like Linux/x86_64).
pub const PAGE_SIZE: u64 = 4096;

type Page = [u8; PAGE_SIZE as usize];

/// The one all-zero page every fresh mapping aliases until first write.
fn zero_page() -> &'static Arc<Page> {
    static ZERO: OnceLock<Arc<Page>> = OnceLock::new();
    ZERO.get_or_init(|| Arc::new([0u8; PAGE_SIZE as usize]))
}

/// A memory access fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemFault {
    /// Access to an unmapped page — manifests as `SIGSEGV`.
    Unmapped(u64),
    /// Naturally-misaligned access — manifests as `SIGBUS`.
    Misaligned(u64),
}

impl MemFault {
    /// The faulting address.
    pub fn addr(self) -> u64 {
        match self {
            MemFault::Unmapped(a) | MemFault::Misaligned(a) => a,
        }
    }
}

/// Byte-addressable, fault-reporting memory.
pub trait Memory {
    /// Load `size` bytes (1, 2, 4 or 8) from `addr` as little-endian bits.
    fn load(&mut self, addr: u64, size: u32) -> Result<u64, MemFault>;

    /// Store the low `size` bytes of `bits` to `addr`.
    fn store(&mut self, addr: u64, size: u32, bits: u64) -> Result<(), MemFault>;

    /// Make `[addr, addr+len)` accessible (zero-filled).
    fn map_region(&mut self, addr: u64, len: u64);

    /// Release the mapping for `[addr, addr+len)` (page granular).
    fn unmap_region(&mut self, addr: u64, len: u64);

    /// True if `addr` lies in a mapped page.
    fn is_mapped(&self, addr: u64) -> bool;
}

/// Sparse paged memory backed by a page-table hash map.
///
/// Pages are reference-counted and copy-on-write: `clone()` shares every
/// page with the original (O(mapped pages) pointer copies, no byte copies),
/// and the first store to a shared page unshares just that page. Fresh
/// mappings alias a single static zero page, so mapping a large region
/// (e.g. the 32 MiB stack) allocates nothing until it is written.
#[derive(Clone, Default)]
pub struct PagedMemory {
    pages: HashMap<u64, Arc<Page>>,
    /// Total number of loads+stores served (profiling aid).
    pub access_count: u64,
}

impl PagedMemory {
    /// Fresh, fully-unmapped memory.
    pub fn new() -> PagedMemory {
        PagedMemory::default()
    }

    /// Number of currently mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of mapped pages exclusively owned by this memory (i.e. already
    /// unshared from any snapshot and from the zero page).
    pub fn private_pages(&self) -> usize {
        self.pages.values().filter(|p| Arc::strong_count(p) == 1).count()
    }

    /// Resident size in bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    #[inline]
    fn page_of(addr: u64) -> (u64, usize) {
        (addr / PAGE_SIZE, (addr % PAGE_SIZE) as usize)
    }

    /// Read raw bytes without alignment checks (used by loaders/debuggers).
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr + i as u64;
            let (p, off) = Self::page_of(a);
            let page = self.pages.get(&p).ok_or(MemFault::Unmapped(a))?;
            *b = page[off];
        }
        Ok(())
    }

    /// Write raw bytes without alignment checks (used by loaders).
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemFault> {
        for (i, b) in buf.iter().enumerate() {
            let a = addr + i as u64;
            let (p, off) = Self::page_of(a);
            let page = self.pages.get_mut(&p).ok_or(MemFault::Unmapped(a))?;
            Arc::make_mut(page)[off] = *b;
        }
        Ok(())
    }
}

impl Memory for PagedMemory {
    fn load(&mut self, addr: u64, size: u32) -> Result<u64, MemFault> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        if !addr.is_multiple_of(size as u64) {
            return Err(MemFault::Misaligned(addr));
        }
        self.access_count += 1;
        let (p, off) = Self::page_of(addr);
        let page = self.pages.get(&p).ok_or(MemFault::Unmapped(addr))?;
        // Natural alignment guarantees the value does not straddle a page.
        let mut bits = 0u64;
        for i in 0..size as usize {
            bits |= (page[off + i] as u64) << (8 * i);
        }
        Ok(bits)
    }

    fn store(&mut self, addr: u64, size: u32, bits: u64) -> Result<(), MemFault> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        if !addr.is_multiple_of(size as u64) {
            return Err(MemFault::Misaligned(addr));
        }
        self.access_count += 1;
        let (p, off) = Self::page_of(addr);
        let page = self.pages.get_mut(&p).ok_or(MemFault::Unmapped(addr))?;
        // Unshare the page on first write (no-op once exclusively owned).
        let page = Arc::make_mut(page);
        for i in 0..size as usize {
            page[off + i] = (bits >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn map_region(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for p in first..=last {
            self.pages.entry(p).or_insert_with(|| Arc::clone(zero_page()));
        }
    }

    fn unmap_region(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for p in first..=last {
            self.pages.remove(&p);
        }
    }

    fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr / PAGE_SIZE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults_with_address() {
        let mut m = PagedMemory::new();
        assert_eq!(m.load(0x4000_0000, 8), Err(MemFault::Unmapped(0x4000_0000)));
        assert_eq!(m.store(0x123450, 8, 0), Err(MemFault::Unmapped(0x123450)));
    }

    #[test]
    fn misaligned_access_is_a_bus_error() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, PAGE_SIZE);
        assert_eq!(m.load(0x1001, 8), Err(MemFault::Misaligned(0x1001)));
        assert_eq!(m.load(0x1004, 8), Err(MemFault::Misaligned(0x1004)));
        assert!(m.load(0x1004, 4).is_ok());
        assert!(m.load(0x1001, 1).is_ok());
    }

    #[test]
    fn round_trip_all_sizes() {
        let mut m = PagedMemory::new();
        m.map_region(0x2000, PAGE_SIZE);
        for (size, val) in [(1u32, 0xabu64), (2, 0xbeef), (4, 0xdead_beef), (8, 0x0123_4567_89ab_cdef)]
        {
            m.store(0x2000, size, val).unwrap();
            assert_eq!(m.load(0x2000, size).unwrap(), val);
        }
    }

    #[test]
    fn stores_do_not_leak_beyond_size() {
        let mut m = PagedMemory::new();
        m.map_region(0x3000, PAGE_SIZE);
        m.store(0x3000, 8, u64::MAX).unwrap();
        m.store(0x3000, 2, 0).unwrap();
        assert_eq!(m.load(0x3000, 8).unwrap(), !0xffff);
    }

    #[test]
    fn map_and_unmap_page_granularity() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, 2 * PAGE_SIZE);
        assert!(m.is_mapped(0x1000));
        assert!(m.is_mapped(0x1fff));
        assert!(m.is_mapped(0x2000));
        assert!(!m.is_mapped(0x3000));
        m.unmap_region(0x1000, PAGE_SIZE);
        assert!(!m.is_mapped(0x1000));
        assert!(m.is_mapped(0x2000));
    }

    #[test]
    fn raw_byte_io() {
        let mut m = PagedMemory::new();
        m.map_region(0x5000, PAGE_SIZE);
        m.write_bytes(0x5003, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        m.read_bytes(0x5003, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        assert!(m.read_bytes(0x9000, &mut buf).is_err());
    }

    #[test]
    fn clone_shares_pages_until_written() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, 4 * PAGE_SIZE);
        m.store(0x1000, 8, 0x1111).unwrap();
        let mut snap = m.clone();
        // All pages shared between m, snap (and the zero page for untouched
        // ones): nothing exclusively owned.
        assert_eq!(m.private_pages(), 0);
        assert_eq!(snap.private_pages(), 0);
        // Writes diverge without affecting the other side.
        snap.store(0x1000, 8, 0x2222).unwrap();
        snap.store(0x2000, 8, 0x3333).unwrap();
        assert_eq!(m.load(0x1000, 8).unwrap(), 0x1111);
        assert_eq!(m.load(0x2000, 8).unwrap(), 0);
        assert_eq!(snap.load(0x1000, 8).unwrap(), 0x2222);
        assert_eq!(snap.load(0x2000, 8).unwrap(), 0x3333);
        assert_eq!(snap.private_pages(), 2);
    }

    #[test]
    fn fresh_mappings_alias_the_zero_page() {
        let mut a = PagedMemory::new();
        a.map_region(0, 1024 * PAGE_SIZE);
        assert_eq!(a.mapped_pages(), 1024);
        // Zero-filled but not materialised: no page is exclusively owned.
        assert_eq!(a.private_pages(), 0);
        assert_eq!(a.load(512 * PAGE_SIZE, 8).unwrap(), 0);
        a.store(512 * PAGE_SIZE, 8, 7).unwrap();
        assert_eq!(a.private_pages(), 1);
    }

    #[test]
    fn values_never_straddle_pages_when_aligned() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, PAGE_SIZE);
        // Last aligned u64 slot of the page.
        let addr = 0x1000 + PAGE_SIZE - 8;
        m.store(addr, 8, 42).unwrap();
        assert_eq!(m.load(addr, 8).unwrap(), 42);
    }
}
