//! The memory abstraction shared by the reference interpreter and the SimISA
//! machine.
//!
//! Memory is sparse and page-granular: only explicitly mapped pages are
//! accessible, and touching an unmapped page produces the simulated
//! equivalent of `SIGSEGV` (with the faulting address, like `siginfo_t`'s
//! `si_addr`). Misaligned accesses produce the equivalent of `SIGBUS`.
//!
//! # The software TLB
//!
//! [`PagedMemory`] keeps two small direct-mapped translation caches — one
//! for loads, one for stores — so the common same-page access skips both
//! the page-table `HashMap` probe and the CoW `Arc::make_mut` ownership
//! check. An entry caches a raw pointer to the page's backing allocation
//! (the `[u8; 4096]` inside its `Arc`, which never moves even when the
//! page-table rehashes). Validity is tracked with epochs:
//!
//! * a **read** entry is valid while the page stays mapped with the same
//!   backing allocation — invalidated wholesale by bumping `read_epoch` on
//!   `unmap_region`, and updated in place when a store unshares the page
//!   (CoW replaces the allocation);
//! * a **write** entry additionally requires the allocation to be
//!   *exclusively owned* (entries are only filled right after
//!   `Arc::make_mut`), so it must also die whenever the memory is cloned —
//!   `clone()` shares every page with the snapshot, and a stale write
//!   pointer would silently corrupt the forked sibling. `Clone::clone`
//!   only gets `&self`, hence `write_epoch` is an atomic the clone path
//!   can bump.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Page size of the simulated address space (4 KiB, like Linux/x86_64).
pub const PAGE_SIZE: u64 = 4096;

type Page = [u8; PAGE_SIZE as usize];

/// The one all-zero page every fresh mapping aliases until first write.
fn zero_page() -> &'static Arc<Page> {
    static ZERO: OnceLock<Arc<Page>> = OnceLock::new();
    ZERO.get_or_init(|| Arc::new([0u8; PAGE_SIZE as usize]))
}

/// A memory access fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemFault {
    /// Access to an unmapped page — manifests as `SIGSEGV`.
    Unmapped(u64),
    /// Naturally-misaligned access — manifests as `SIGBUS`.
    Misaligned(u64),
}

impl MemFault {
    /// The faulting address.
    pub fn addr(self) -> u64 {
        match self {
            MemFault::Unmapped(a) | MemFault::Misaligned(a) => a,
        }
    }
}

/// Access and TLB counters kept by [`PagedMemory`].
///
/// `loads`/`stores` are bumped on the hot paths (replacing the old single
/// `access_count` — same cost, one increment); the `*_tlb_misses` fields
/// are only bumped on the slow paths, so hits need no counter at all:
/// `hits = accesses − misses`. Bulk [`PagedMemory::read_bytes`] /
/// [`PagedMemory::write_bytes`] traffic is excluded, as it was from
/// `access_count` — these count *simulated* word accesses, not loader I/O.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Word loads served (including ones that faulted after the alignment
    /// check).
    pub loads: u64,
    /// Word stores served (same caveat).
    pub stores: u64,
    /// Loads that missed the read TLB and walked the page table.
    pub read_tlb_misses: u64,
    /// Stores that missed the write TLB and took the CoW slow path.
    pub write_tlb_misses: u64,
}

impl MemStats {
    /// Total word accesses (the old `access_count`).
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// TLB hits across both caches.
    pub fn hits(&self) -> u64 {
        self.accesses() - self.read_tlb_misses - self.write_tlb_misses
    }

    /// Combined hit rate in `[0, 1]`; 1.0 for an idle memory.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits() as f64 / self.accesses() as f64
        }
    }

    /// Counter deltas since an earlier snapshot of the same memory.
    pub fn since(&self, base: &MemStats) -> MemStats {
        MemStats {
            loads: self.loads - base.loads,
            stores: self.stores - base.stores,
            read_tlb_misses: self.read_tlb_misses - base.read_tlb_misses,
            write_tlb_misses: self.write_tlb_misses - base.write_tlb_misses,
        }
    }

    /// Elementwise accumulation (for aggregating per-run deltas).
    pub fn merge(&mut self, other: &MemStats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.read_tlb_misses += other.read_tlb_misses;
        self.write_tlb_misses += other.write_tlb_misses;
    }
}

/// Byte-addressable, fault-reporting memory.
pub trait Memory {
    /// Load `size` bytes (1, 2, 4 or 8) from `addr` as little-endian bits.
    fn load(&mut self, addr: u64, size: u32) -> Result<u64, MemFault>;

    /// Store the low `size` bytes of `bits` to `addr`.
    fn store(&mut self, addr: u64, size: u32, bits: u64) -> Result<(), MemFault>;

    /// Make `[addr, addr+len)` accessible (zero-filled).
    fn map_region(&mut self, addr: u64, len: u64);

    /// Release the mapping for `[addr, addr+len)` (page granular).
    fn unmap_region(&mut self, addr: u64, len: u64);

    /// True if `addr` lies in a mapped page.
    fn is_mapped(&self, addr: u64) -> bool;
}

/// Number of direct-mapped entries per TLB (indexed by the page number's
/// low bits). 64 entries comfortably cover a stack page + the handful of
/// global-array pages an inner loop streams through.
const TLB_WAYS: usize = 64;

/// One translation-cache entry. `epoch` must match the owning TLB's
/// current epoch for the entry to be live; `page == u64::MAX` (no valid
/// address maps there) marks a never-filled slot.
#[derive(Clone, Copy)]
struct TlbEntry {
    page: u64,
    epoch: u64,
    ptr: *mut Page,
}

const TLB_EMPTY: TlbEntry =
    TlbEntry { page: u64::MAX, epoch: 0, ptr: std::ptr::null_mut() };

#[inline]
fn tlb_idx(page: u64) -> usize {
    page as usize & (TLB_WAYS - 1)
}

/// Sparse paged memory backed by a page-table hash map plus a zero-span
/// interval list.
///
/// Pages are reference-counted and copy-on-write: `clone()` shares every
/// page with the original (O(*written* pages) pointer copies, no byte
/// copies), and the first store to a shared page unshares just that page.
/// Fresh mappings are recorded as **zero spans** — sorted, disjoint page
/// ranges that read as zero through the one static zero page and only
/// materialise a page-table entry on first store. Mapping a large region
/// (e.g. the 32 MiB stack) therefore costs one interval insert, not one
/// table entry per page — which is what keeps snapshot forks cheap: a
/// campaign forks thousands of processes, and each fork clones the page
/// table.
///
/// Loads and stores are accelerated by a software TLB (see module docs);
/// the TLB is an invisible cache — behaviour is bit-identical to the
/// TLB-free page-table walk (`tests/mem_model.rs` checks this against a
/// reference model over arbitrary op interleavings).
pub struct PagedMemory {
    pages: HashMap<u64, Arc<Page>>,
    /// Mapped-but-never-written page ranges (inclusive); sorted, disjoint,
    /// non-adjacent. `pages` takes precedence: a materialised page may
    /// still be covered by a span, and both are removed on unmap.
    zero_spans: Vec<(u64, u64)>,
    /// Access and TLB-miss counters (profiling aid; see [`MemStats`]).
    pub stats: MemStats,
    read_tlb: [TlbEntry; TLB_WAYS],
    write_tlb: [TlbEntry; TLB_WAYS],
    /// Epoch of live read entries; bumped on unmap.
    read_epoch: u64,
    /// Epoch of live write entries; bumped on unmap and on `clone()`
    /// (atomic because `clone` only has `&self`).
    write_epoch: AtomicU64,
}

// SAFETY: the raw TLB pointers always point into `Arc<Page>` allocations
// owned (or co-owned) by `pages`, so they are valid whenever their epoch
// check passes. They are only dereferenced under `&mut self` (`load` /
// `store`), never through `&self`, so moving or sharing a `PagedMemory`
// across threads cannot introduce a data race the borrow checker would
// not already rule out for the equivalent pointer-free structure.
unsafe impl Send for PagedMemory {}
unsafe impl Sync for PagedMemory {}

impl Default for PagedMemory {
    fn default() -> PagedMemory {
        PagedMemory {
            pages: HashMap::new(),
            zero_spans: Vec::new(),
            stats: MemStats::default(),
            read_tlb: [TLB_EMPTY; TLB_WAYS],
            write_tlb: [TLB_EMPTY; TLB_WAYS],
            // Epochs start above the never-filled entries' 0.
            read_epoch: 1,
            write_epoch: AtomicU64::new(1),
        }
    }
}

impl Clone for PagedMemory {
    fn clone(&self) -> PagedMemory {
        // Every page is now shared with the snapshot: a write through a
        // stale write-TLB pointer would mutate the sibling's copy behind
        // the CoW machinery's back, so retire the source's write TLB by
        // bumping its epoch (read entries stay valid — the allocations
        // survive and shared pages are read-safe). The snapshot starts
        // with cold TLBs of its own.
        self.write_epoch.fetch_add(1, Ordering::Relaxed);
        PagedMemory {
            pages: self.pages.clone(),
            zero_spans: self.zero_spans.clone(),
            stats: self.stats,
            ..PagedMemory::default()
        }
    }
}

impl PagedMemory {
    /// Fresh, fully-unmapped memory.
    pub fn new() -> PagedMemory {
        PagedMemory::default()
    }

    /// True when page `p` lies inside a zero span (mapped, reads as zero,
    /// no table entry yet).
    #[inline]
    fn span_contains(&self, p: u64) -> bool {
        self.zero_spans
            .binary_search_by(|&(a, b)| {
                if b < p {
                    std::cmp::Ordering::Less
                } else if a > p {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Number of currently mapped pages (materialised + zero-span).
    pub fn mapped_pages(&self) -> usize {
        let span_pages: u64 = self.zero_spans.iter().map(|&(a, b)| b - a + 1).sum();
        let outside = self.pages.keys().filter(|&&p| !self.span_contains(p)).count();
        span_pages as usize + outside
    }

    /// Number of mapped pages exclusively owned by this memory (i.e. already
    /// unshared from any snapshot and from the zero page).
    pub fn private_pages(&self) -> usize {
        self.pages.values().filter(|p| Arc::strong_count(p) == 1).count()
    }

    /// Resident size in bytes: materialised pages only (zero-span pages
    /// have no backing allocation of their own).
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    #[inline]
    fn page_of(addr: u64) -> (u64, usize) {
        (addr / PAGE_SIZE, (addr % PAGE_SIZE) as usize)
    }

    /// TLB-miss path for stores: probe the page table, unshare the page
    /// (CoW), and refresh both TLBs — the write entry because the page is
    /// now exclusively owned, the read entry because unsharing may have
    /// *replaced* the backing allocation a read entry points at.
    fn store_page_slow(&mut self, p: u64, fault_addr: u64) -> Result<&mut Page, MemFault> {
        if !self.pages.contains_key(&p) {
            if !self.span_contains(p) {
                return Err(MemFault::Unmapped(fault_addr));
            }
            // Materialise: first store to a zero-span page. The static
            // zero page's refcount never drops to one, so `make_mut`
            // below copies it — the normal CoW unshare.
            self.pages.insert(p, Arc::clone(zero_page()));
        }
        let arc = self.pages.get_mut(&p).expect("just checked/inserted");
        let ptr: *mut Page = Arc::make_mut(arc);
        let i = tlb_idx(p);
        self.write_tlb[i] =
            TlbEntry { page: p, epoch: self.write_epoch.load(Ordering::Relaxed), ptr };
        self.read_tlb[i] = TlbEntry { page: p, epoch: self.read_epoch, ptr };
        // SAFETY: `ptr` was just derived from the exclusively-owned page.
        Ok(unsafe { &mut *ptr })
    }

    /// Read raw bytes without alignment checks (used by loaders/debuggers).
    ///
    /// Walks page-by-page (one page-table probe per page, `copy_from_slice`
    /// for the bytes). A range crossing an unmapped hole faults with the
    /// first unmapped address, exactly like the byte-at-a-time walk.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let (p, off) = Self::page_of(a);
            let n = (PAGE_SIZE as usize - off).min(buf.len() - done);
            let page: &Page = match self.pages.get(&p) {
                Some(arc) => arc,
                None if self.span_contains(p) => zero_page(),
                None => return Err(MemFault::Unmapped(a)),
            };
            buf[done..done + n].copy_from_slice(&page[off..off + n]);
            done += n;
        }
        Ok(())
    }

    /// Write raw bytes without alignment checks (used by loaders).
    ///
    /// Page-granular like [`read_bytes`](Self::read_bytes); pages before an
    /// unmapped hole are written before the fault is reported (the same
    /// partial effect as the byte-at-a-time walk, which always faults on a
    /// page boundary).
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemFault> {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let (p, off) = Self::page_of(a);
            let n = (PAGE_SIZE as usize - off).min(buf.len() - done);
            let page = self.store_page_slow(p, a)?;
            page[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
        }
        Ok(())
    }
}

impl Memory for PagedMemory {
    #[inline]
    fn load(&mut self, addr: u64, size: u32) -> Result<u64, MemFault> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        // `size` is a power of two, so the natural-alignment check is a
        // mask — not the hardware division `addr % size` would cost.
        if addr & (size as u64 - 1) != 0 {
            return Err(MemFault::Misaligned(addr));
        }
        self.stats.loads += 1;
        let (p, off) = Self::page_of(addr);
        let i = tlb_idx(p);
        let e = self.read_tlb[i];
        let page: &Page = if e.page == p && e.epoch == self.read_epoch {
            // SAFETY: a live read entry points at the current backing
            // allocation of a still-mapped page (see module docs).
            unsafe { &*e.ptr }
        } else {
            self.stats.read_tlb_misses += 1;
            let ptr = match self.pages.get(&p) {
                Some(arc) => Arc::as_ptr(arc) as *mut Page,
                // A zero-span page reads through the static zero page; the
                // pointer stays valid forever, and a store materialising
                // the page refreshes this entry (`store_page_slow`).
                None if self.span_contains(p) => {
                    Arc::as_ptr(zero_page()) as *mut Page
                }
                None => return Err(MemFault::Unmapped(addr)),
            };
            self.read_tlb[i] = TlbEntry { page: p, epoch: self.read_epoch, ptr };
            // SAFETY: `ptr` points into an `Arc` the page table holds, or
            // into the immortal static zero page.
            unsafe { &*ptr }
        };
        // Natural alignment guarantees the value does not straddle a page.
        Ok(match size {
            1 => page[off] as u64,
            2 => u16::from_le_bytes(page[off..off + 2].try_into().unwrap()) as u64,
            4 => u32::from_le_bytes(page[off..off + 4].try_into().unwrap()) as u64,
            _ => u64::from_le_bytes(page[off..off + 8].try_into().unwrap()),
        })
    }

    #[inline]
    fn store(&mut self, addr: u64, size: u32, bits: u64) -> Result<(), MemFault> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        if addr & (size as u64 - 1) != 0 {
            return Err(MemFault::Misaligned(addr));
        }
        self.stats.stores += 1;
        let (p, off) = Self::page_of(addr);
        let e = self.write_tlb[tlb_idx(p)];
        let page: &mut Page =
            if e.page == p && e.epoch == self.write_epoch.load(Ordering::Relaxed) {
                // SAFETY: a live write entry points at the exclusively-owned
                // backing allocation of a still-mapped page — exclusivity
                // can only be lost through `clone()`/`unmap_region`, both of
                // which bump `write_epoch` (see module docs).
                unsafe { &mut *e.ptr }
            } else {
                self.stats.write_tlb_misses += 1;
                self.store_page_slow(p, addr)?
            };
        match size {
            1 => page[off] = bits as u8,
            2 => page[off..off + 2].copy_from_slice(&(bits as u16).to_le_bytes()),
            4 => page[off..off + 4].copy_from_slice(&(bits as u32).to_le_bytes()),
            _ => page[off..off + 8].copy_from_slice(&bits.to_le_bytes()),
        }
        Ok(())
    }

    fn map_region(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        // One interval insert, however large the region. Already-mapped
        // pages keep their allocation (`pages` takes precedence over the
        // span on every access), so live TLB entries stay correct; fresh
        // pages cannot have live entries (unmap bumped the epochs when
        // they were last dropped). Overlapping or adjacent spans coalesce
        // to keep the list sorted, disjoint and non-adjacent.
        let mut merged = (first, last);
        let mut out = Vec::with_capacity(self.zero_spans.len() + 1);
        for &(a, b) in &self.zero_spans {
            if b.saturating_add(1) >= merged.0 && a <= merged.1.saturating_add(1) {
                merged = (merged.0.min(a), merged.1.max(b));
            } else {
                out.push((a, b));
            }
        }
        out.push(merged);
        out.sort_unstable();
        self.zero_spans = out;
    }

    fn unmap_region(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        // Drop materialised pages in the range; walk whichever side is
        // smaller so unmapping a huge never-written span stays cheap.
        if ((last - first) as u128) < self.pages.len() as u128 {
            for p in first..=last {
                self.pages.remove(&p);
            }
        } else {
            self.pages.retain(|&p, _| p < first || p > last);
        }
        // Split any zero span straddling the range (stays sorted/disjoint).
        let mut out = Vec::with_capacity(self.zero_spans.len() + 1);
        for &(a, b) in &self.zero_spans {
            if b < first || a > last {
                out.push((a, b));
                continue;
            }
            if a < first {
                out.push((a, first - 1));
            }
            if b > last {
                out.push((last + 1, b));
            }
        }
        self.zero_spans = out;
        // Dropping a page may free its allocation: retire both TLBs.
        self.read_epoch += 1;
        self.write_epoch.fetch_add(1, Ordering::Relaxed);
    }

    fn is_mapped(&self, addr: u64) -> bool {
        let p = addr / PAGE_SIZE;
        self.pages.contains_key(&p) || self.span_contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults_with_address() {
        let mut m = PagedMemory::new();
        assert_eq!(m.load(0x4000_0000, 8), Err(MemFault::Unmapped(0x4000_0000)));
        assert_eq!(m.store(0x123450, 8, 0), Err(MemFault::Unmapped(0x123450)));
    }

    #[test]
    fn misaligned_access_is_a_bus_error() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, PAGE_SIZE);
        assert_eq!(m.load(0x1001, 8), Err(MemFault::Misaligned(0x1001)));
        assert_eq!(m.load(0x1004, 8), Err(MemFault::Misaligned(0x1004)));
        assert!(m.load(0x1004, 4).is_ok());
        assert!(m.load(0x1001, 1).is_ok());
    }

    #[test]
    fn round_trip_all_sizes() {
        let mut m = PagedMemory::new();
        m.map_region(0x2000, PAGE_SIZE);
        for (size, val) in [(1u32, 0xabu64), (2, 0xbeef), (4, 0xdead_beef), (8, 0x0123_4567_89ab_cdef)]
        {
            m.store(0x2000, size, val).unwrap();
            assert_eq!(m.load(0x2000, size).unwrap(), val);
        }
    }

    #[test]
    fn stores_do_not_leak_beyond_size() {
        let mut m = PagedMemory::new();
        m.map_region(0x3000, PAGE_SIZE);
        m.store(0x3000, 8, u64::MAX).unwrap();
        m.store(0x3000, 2, 0).unwrap();
        assert_eq!(m.load(0x3000, 8).unwrap(), !0xffff);
    }

    #[test]
    fn map_and_unmap_page_granularity() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, 2 * PAGE_SIZE);
        assert!(m.is_mapped(0x1000));
        assert!(m.is_mapped(0x1fff));
        assert!(m.is_mapped(0x2000));
        assert!(!m.is_mapped(0x3000));
        m.unmap_region(0x1000, PAGE_SIZE);
        assert!(!m.is_mapped(0x1000));
        assert!(m.is_mapped(0x2000));
    }

    #[test]
    fn raw_byte_io() {
        let mut m = PagedMemory::new();
        m.map_region(0x5000, PAGE_SIZE);
        m.write_bytes(0x5003, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        m.read_bytes(0x5003, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        assert!(m.read_bytes(0x9000, &mut buf).is_err());
    }

    #[test]
    fn bulk_io_crosses_pages() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, 3 * PAGE_SIZE);
        let data: Vec<u8> = (0..2 * PAGE_SIZE + 100).map(|i| (i % 251) as u8).collect();
        m.write_bytes(0x1000 + PAGE_SIZE / 2, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read_bytes(0x1000 + PAGE_SIZE / 2, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn bulk_read_across_unmapped_hole_faults_with_first_unmapped_address() {
        let mut m = PagedMemory::new();
        // Mapped page at 0x1000, hole at 0x2000, mapped again at 0x3000.
        m.map_region(0x1000, PAGE_SIZE);
        m.map_region(0x3000, PAGE_SIZE);
        let mut buf = [0u8; 0x30];
        // Read starts mid-page and crosses into the hole: the fault address
        // must be the first byte of the unmapped page, not the range start.
        assert_eq!(
            m.read_bytes(0x1ff0, &mut buf),
            Err(MemFault::Unmapped(0x2000))
        );
        // A read starting inside the hole faults at its own first byte.
        assert_eq!(
            m.read_bytes(0x2ff8, &mut buf),
            Err(MemFault::Unmapped(0x2ff8))
        );
        // Same contract for writes.
        assert_eq!(
            m.write_bytes(0x1ff0, &buf),
            Err(MemFault::Unmapped(0x2000))
        );
        // And a multi-page gap still reports the *first* unmapped address.
        let mut big = vec![0u8; 3 * PAGE_SIZE as usize];
        assert_eq!(
            m.read_bytes(0x1000, &mut big),
            Err(MemFault::Unmapped(0x2000))
        );
    }

    #[test]
    fn clone_shares_pages_until_written() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, 4 * PAGE_SIZE);
        m.store(0x1000, 8, 0x1111).unwrap();
        let mut snap = m.clone();
        // All pages shared between m, snap (and the zero page for untouched
        // ones): nothing exclusively owned.
        assert_eq!(m.private_pages(), 0);
        assert_eq!(snap.private_pages(), 0);
        // Writes diverge without affecting the other side.
        snap.store(0x1000, 8, 0x2222).unwrap();
        snap.store(0x2000, 8, 0x3333).unwrap();
        assert_eq!(m.load(0x1000, 8).unwrap(), 0x1111);
        assert_eq!(m.load(0x2000, 8).unwrap(), 0);
        assert_eq!(snap.load(0x1000, 8).unwrap(), 0x2222);
        assert_eq!(snap.load(0x2000, 8).unwrap(), 0x3333);
        assert_eq!(snap.private_pages(), 2);
    }

    #[test]
    fn fresh_mappings_alias_the_zero_page() {
        let mut a = PagedMemory::new();
        a.map_region(0, 1024 * PAGE_SIZE);
        assert_eq!(a.mapped_pages(), 1024);
        // Zero-filled but not materialised: no page is exclusively owned.
        assert_eq!(a.private_pages(), 0);
        assert_eq!(a.load(512 * PAGE_SIZE, 8).unwrap(), 0);
        a.store(512 * PAGE_SIZE, 8, 7).unwrap();
        assert_eq!(a.private_pages(), 1);
    }

    #[test]
    fn values_never_straddle_pages_when_aligned() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, PAGE_SIZE);
        // Last aligned u64 slot of the page.
        let addr = 0x1000 + PAGE_SIZE - 8;
        m.store(addr, 8, 42).unwrap();
        assert_eq!(m.load(addr, 8).unwrap(), 42);
    }

    // ------------------------------------------------------------------
    // TLB invalidation: each test arms a TLB entry, triggers one of the
    // invalidation events, and checks the next access cannot go stale.
    // ------------------------------------------------------------------

    #[test]
    fn stale_write_tlb_after_clone_cannot_corrupt_the_snapshot() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, PAGE_SIZE);
        // Arm the write TLB with an exclusively-owned page.
        m.store(0x1000, 8, 0xAAAA).unwrap();
        assert_eq!(m.private_pages(), 1);
        let mut snap = m.clone();
        // This store must miss the (retired) write TLB, unshare the page,
        // and leave the snapshot's copy untouched.
        m.store(0x1000, 8, 0xBBBB).unwrap();
        assert_eq!(snap.load(0x1000, 8).unwrap(), 0xAAAA);
        assert_eq!(m.load(0x1000, 8).unwrap(), 0xBBBB);
        // And again with the roles flipped (snapshot writes first).
        let mut m2 = snap.clone();
        snap.store(0x1000, 8, 0xCCCC).unwrap();
        assert_eq!(m2.load(0x1000, 8).unwrap(), 0xAAAA);
        assert_eq!(snap.load(0x1000, 8).unwrap(), 0xCCCC);
        m2.store(0x1000, 8, 0xDDDD).unwrap();
        assert_eq!(snap.load(0x1000, 8).unwrap(), 0xCCCC);
    }

    #[test]
    fn repeated_clones_each_retire_the_write_tlb() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, PAGE_SIZE);
        for round in 0..4u64 {
            // Re-arm the write TLB (store unshares + fills the entry)...
            m.store(0x1000, 8, round).unwrap();
            // ...then clone and make sure the sibling never sees the next
            // round's write.
            let mut snap = m.clone();
            m.store(0x1000, 8, round + 100).unwrap();
            assert_eq!(snap.load(0x1000, 8).unwrap(), round);
        }
    }

    #[test]
    fn read_tlb_is_updated_when_a_store_unshares_the_page() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, PAGE_SIZE);
        m.store(0x1000, 8, 0x1111).unwrap();
        let snap = m.clone();
        // Arm m's read TLB on the (now shared) page...
        assert_eq!(m.load(0x1000, 8).unwrap(), 0x1111);
        // ...then unshare it via a store: the read entry must follow the
        // page to its new allocation, not keep serving the snapshot's copy.
        m.store(0x1008, 8, 0x2222).unwrap();
        assert_eq!(m.load(0x1000, 8).unwrap(), 0x1111);
        assert_eq!(m.load(0x1008, 8).unwrap(), 0x2222);
        drop(snap);
    }

    #[test]
    fn read_tlb_is_updated_when_a_store_materialises_a_zero_page() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, PAGE_SIZE);
        // Arm the read TLB on the zero-page alias.
        assert_eq!(m.load(0x1000, 8).unwrap(), 0);
        // First write replaces the alias with a private allocation; reads
        // must see it immediately.
        m.store(0x1000, 8, 77).unwrap();
        assert_eq!(m.load(0x1000, 8).unwrap(), 77);
    }

    #[test]
    fn unmap_invalidates_both_tlbs() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, PAGE_SIZE);
        m.store(0x1000, 8, 5).unwrap(); // arms write TLB
        assert_eq!(m.load(0x1000, 8).unwrap(), 5); // arms read TLB
        m.unmap_region(0x1000, PAGE_SIZE);
        // Stale entries must not let accesses reach the freed page.
        assert_eq!(m.load(0x1000, 8), Err(MemFault::Unmapped(0x1000)));
        assert_eq!(m.store(0x1000, 8, 9), Err(MemFault::Unmapped(0x1000)));
        // Remapping yields a fresh zero page, not the old contents.
        m.map_region(0x1000, PAGE_SIZE);
        assert_eq!(m.load(0x1000, 8).unwrap(), 0);
    }

    #[test]
    fn tlb_handles_colliding_pages() {
        // Pages 0x1000 and 0x1000 + TLB_WAYS*PAGE_SIZE map to the same
        // direct-mapped slot; alternating accesses must stay correct.
        let a = 0x1000u64;
        let b = a + TLB_WAYS as u64 * PAGE_SIZE;
        let mut m = PagedMemory::new();
        m.map_region(a, PAGE_SIZE);
        m.map_region(b, PAGE_SIZE);
        for i in 0..8u64 {
            m.store(a, 8, i).unwrap();
            m.store(b, 8, 1000 + i).unwrap();
            assert_eq!(m.load(a, 8).unwrap(), i);
            assert_eq!(m.load(b, 8).unwrap(), 1000 + i);
        }
    }

    #[test]
    fn mem_stats_count_accesses_and_misses() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, PAGE_SIZE);
        // First store misses (cold TLB), the rest hit.
        for i in 0..10u64 {
            m.store(0x1000 + i * 8, 8, i).unwrap();
        }
        // Every load hits: the store slow path pre-warmed the read TLB.
        for i in 0..10u64 {
            assert_eq!(m.load(0x1000 + i * 8, 8).unwrap(), i);
        }
        let s = m.stats;
        assert_eq!(s.loads, 10);
        assert_eq!(s.stores, 10);
        assert_eq!(s.accesses(), 20);
        assert_eq!(s.read_tlb_misses, 0);
        assert_eq!(s.write_tlb_misses, 1);
        assert_eq!(s.hits(), 19);
        assert!((s.hit_rate() - 0.95).abs() < 1e-12);
        // Deltas relative to a snapshot of the counters.
        let base = m.stats;
        m.load(0x1000, 8).unwrap();
        let d = m.stats.since(&base);
        assert_eq!((d.loads, d.stores, d.read_tlb_misses), (1, 0, 0));
        // Faulting accesses still count as accesses (they passed the
        // alignment gate), matching the old access_count semantics.
        let before = m.stats.loads;
        assert!(m.load(0x9000_0000, 8).is_err());
        assert_eq!(m.stats.loads, before + 1);
        // merge() accumulates elementwise.
        let mut acc = MemStats::default();
        acc.merge(&d);
        acc.merge(&d);
        assert_eq!(acc.loads, 2);
        // An idle memory reports a perfect hit rate rather than NaN.
        assert_eq!(MemStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn write_bytes_keeps_tlbs_coherent() {
        let mut m = PagedMemory::new();
        m.map_region(0x1000, 2 * PAGE_SIZE);
        // Arm the read TLB on the second page.
        assert_eq!(m.load(0x2000, 8).unwrap(), 0);
        let snap = m.clone();
        // Bulk write spans both pages, unsharing them.
        let data = vec![0xAB; PAGE_SIZE as usize + 16];
        m.write_bytes(0x1ff0, &data).unwrap();
        assert_eq!(m.load(0x2000, 8).unwrap(), 0xABAB_ABAB_ABAB_ABAB);
        // The snapshot still reads zeros.
        let mut s = snap;
        assert_eq!(s.load(0x2000, 8).unwrap(), 0);
    }
}
