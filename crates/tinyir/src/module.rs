//! Module, function, block and global-variable containers.

use crate::debugloc::FileId;
use crate::instr::{Instr, InstrKind};
use crate::types::Ty;
use crate::value::{BlockId, FuncId, GlobalId, InstrId, Value};
use std::collections::HashMap;

/// Initial contents of a global variable.
#[derive(Clone, PartialEq, Debug)]
pub enum GlobalInit {
    /// All bytes zero.
    Zero,
    /// Repeated i32 values.
    I32s(Vec<i32>),
    /// Repeated i64 values.
    I64s(Vec<i64>),
    /// Repeated f32 values.
    F32s(Vec<f32>),
    /// Repeated f64 values.
    F64s(Vec<f64>),
}

impl GlobalInit {
    /// Encode the initialiser into little-endian bytes, padded/truncated to
    /// `size` bytes.
    pub fn to_bytes(&self, size: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(size);
        match self {
            GlobalInit::Zero => {}
            GlobalInit::I32s(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            GlobalInit::I64s(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            GlobalInit::F32s(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            GlobalInit::F64s(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        out.resize(size, 0);
        out
    }
}

/// A module-level global variable: a named, fixed-size region in the data
/// section of the (simulated) process image.
#[derive(Clone, Debug)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Element type (determines alignment and the element size reported to
    /// address arithmetic).
    pub elem_ty: Ty,
    /// Number of elements.
    pub count: u32,
    /// Initialiser.
    pub init: GlobalInit,
}

impl Global {
    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.elem_ty.size() as u64 * self.count as u64
    }
}

/// A basic block: an ordered list of instruction ids, the last of which is a
/// terminator once the function is complete.
#[derive(Clone, Default, Debug)]
pub struct Block {
    /// Optional label for printing.
    pub name: String,
    /// Instruction ids in execution order.
    pub instrs: Vec<InstrId>,
}

/// A function: argument signature, instruction arena and block list.
#[derive(Clone, Debug)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Argument types.
    pub params: Vec<Ty>,
    /// Optional argument names (for printing / DIE variable names).
    pub param_names: Vec<String>,
    /// Return type (`None` = void).
    pub ret_ty: Option<Ty>,
    /// Instruction arena; [`InstrId`] indexes into this.
    pub instrs: Vec<Instr>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// True for external declarations with no body.
    pub is_decl: bool,
}

impl Function {
    /// Create an empty function with a single (entry) block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret_ty: Option<Ty>) -> Function {
        Function {
            name: name.into(),
            param_names: (0..params.len()).map(|i| format!("arg{i}")).collect(),
            params,
            ret_ty,
            instrs: Vec::new(),
            blocks: vec![Block { name: "entry".into(), instrs: Vec::new() }],
            is_decl: false,
        }
    }

    /// Access an instruction by id.
    #[inline]
    pub fn instr(&self, id: InstrId) -> &Instr {
        &self.instrs[id.0 as usize]
    }

    /// Mutable access to an instruction by id.
    #[inline]
    pub fn instr_mut(&mut self, id: InstrId) -> &mut Instr {
        &mut self.instrs[id.0 as usize]
    }

    /// Access a block by id.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// The entry block id.
    #[inline]
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Append a new empty block and return its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block { name: name.into(), instrs: Vec::new() });
        id
    }

    /// Append an instruction to a block and return its id.
    pub fn push_instr(&mut self, bb: BlockId, instr: Instr) -> InstrId {
        let id = InstrId(self.instrs.len() as u32);
        self.instrs.push(instr);
        self.blocks[bb.0 as usize].instrs.push(id);
        id
    }

    /// Iterate `(BlockId, &Block)` pairs.
    pub fn block_iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// The block containing each instruction (index = instr id).
    pub fn instr_blocks(&self) -> Vec<BlockId> {
        let mut owner = vec![BlockId(0); self.instrs.len()];
        for (bid, b) in self.block_iter() {
            for &i in &b.instrs {
                owner[i.0 as usize] = bid;
            }
        }
        owner
    }

    /// Ids of all memory-access instructions (loads and stores) in block
    /// order — the instruction population Armor builds kernels for.
    pub fn mem_access_instrs(&self) -> Vec<InstrId> {
        let mut out = Vec::new();
        for (_, b) in self.block_iter() {
            for &i in &b.instrs {
                if self.instr(i).is_mem_access() {
                    out.push(i);
                }
            }
        }
        out
    }

    /// Count instructions reachable through block membership (instructions
    /// left in the arena but removed from every block do not count).
    pub fn live_instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

/// A TinyIR module: globals, functions, and the file-name interner used by
/// debug locations.
#[derive(Clone, Default, Debug)]
pub struct Module {
    /// Module name (informational).
    pub name: String,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Functions.
    pub funcs: Vec<Function>,
    /// Interned source-file names (index = [`FileId`]).
    pub files: Vec<String>,
    func_index: HashMap<String, FuncId>,
    global_index: HashMap<String, GlobalId>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module { name: name.into(), ..Module::default() }
    }

    /// Intern a file name, returning its id.
    pub fn intern_file(&mut self, name: &str) -> FileId {
        if let Some(i) = self.files.iter().position(|f| f == name) {
            return FileId(i as u32);
        }
        self.files.push(name.to_string());
        FileId(self.files.len() as u32 - 1)
    }

    /// Look up an interned file name.
    pub fn file_name(&self, id: FileId) -> &str {
        &self.files[id.0 as usize]
    }

    /// Add a global variable; returns its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.global_index.insert(g.name.clone(), id);
        self.globals.push(g);
        id
    }

    /// Add a function; returns its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.func_index.insert(f.name.clone(), id);
        self.funcs.push(f);
        id
    }

    /// Access a function by id.
    #[inline]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutable access to a function by id.
    #[inline]
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Access a global by id.
    #[inline]
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Find a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_index.get(name).copied()
    }

    /// Find a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.global_index.get(name).copied()
    }

    /// Rebuild the name indexes (used by the parser after bulk insertion).
    pub fn rebuild_indexes(&mut self) {
        self.func_index = self
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
        self.global_index = self
            .globals
            .iter()
            .enumerate()
            .map(|(i, g)| (g.name.clone(), GlobalId(i as u32)))
            .collect();
    }

    /// Total number of memory-access instructions across all defined
    /// functions.
    pub fn mem_access_count(&self) -> usize {
        self.funcs
            .iter()
            .filter(|f| !f.is_decl)
            .map(|f| f.mem_access_instrs().len())
            .sum()
    }
}

/// Resolve the type of a [`Value`] in the context of a function.
pub fn value_ty(f: &Function, v: Value) -> Option<Ty> {
    match v {
        Value::Instr(id) => f.instr(id).result_ty(),
        Value::Arg(i) => f.params.get(i as usize).copied(),
        Value::Global(_) => Some(Ty::Ptr),
        Value::ConstInt(_, t) => Some(t),
        Value::ConstFloat(_, t) => Some(t),
        Value::ConstNull => Some(Ty::Ptr),
    }
}

/// Classify an instruction the way the Figure 5 pseudo-code does: alloca,
/// global (handled at the `Value` level), argument, phi, call, other.
pub fn is_alloca(f: &Function, v: Value) -> bool {
    matches!(
        v.as_instr().map(|id| &f.instr(id).kind),
        Some(InstrKind::Alloca { .. })
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinOp, Instr, InstrKind};

    fn sample_function() -> Function {
        let mut f = Function::new("f", vec![Ty::Ptr, Ty::I64], Some(Ty::F64));
        let e = f.entry();
        let gep = f.push_instr(
            e,
            Instr::new(InstrKind::Gep {
                base: Value::Arg(0),
                index: Value::Arg(1),
                elem_size: 8,
            }),
        );
        let ld = f.push_instr(
            e,
            Instr::new(InstrKind::Load { ptr: Value::Instr(gep), ty: Ty::F64 }),
        );
        let add = f.push_instr(
            e,
            Instr::new(InstrKind::Bin {
                op: BinOp::FAdd,
                lhs: Value::Instr(ld),
                rhs: Value::f64(1.0),
                ty: Ty::F64,
            }),
        );
        f.push_instr(e, Instr::new(InstrKind::Ret { val: Some(Value::Instr(add)) }));
        f
    }

    #[test]
    fn build_and_query() {
        let f = sample_function();
        assert_eq!(f.live_instr_count(), 4);
        assert_eq!(f.mem_access_instrs().len(), 1);
        assert_eq!(value_ty(&f, Value::Arg(0)), Some(Ty::Ptr));
        assert_eq!(value_ty(&f, Value::Instr(InstrId(1))), Some(Ty::F64));
    }

    #[test]
    fn module_name_lookup() {
        let mut m = Module::new("test");
        let g = m.add_global(Global {
            name: "data".into(),
            elem_ty: Ty::F64,
            count: 16,
            init: GlobalInit::Zero,
        });
        let fid = m.add_func(sample_function());
        assert_eq!(m.global_by_name("data"), Some(g));
        assert_eq!(m.func_by_name("f"), Some(fid));
        assert_eq!(m.global(g).size(), 128);
        assert_eq!(m.mem_access_count(), 1);
    }

    #[test]
    fn file_interning() {
        let mut m = Module::new("test");
        let a = m.intern_file("a.c");
        let b = m.intern_file("b.c");
        assert_ne!(a, b);
        assert_eq!(m.intern_file("a.c"), a);
        assert_eq!(m.file_name(b), "b.c");
    }

    #[test]
    fn global_init_bytes() {
        let init = GlobalInit::I32s(vec![1, -1]);
        let bytes = init.to_bytes(12);
        assert_eq!(&bytes[0..4], &1i32.to_le_bytes());
        assert_eq!(&bytes[4..8], &(-1i32).to_le_bytes());
        assert_eq!(&bytes[8..12], &[0, 0, 0, 0]);
    }

    #[test]
    fn instr_block_ownership() {
        let mut f = Function::new("g", vec![], None);
        let bb1 = f.add_block("next");
        let e = f.entry();
        let i0 = f.push_instr(e, Instr::new(InstrKind::Br { target: bb1 }));
        let i1 = f.push_instr(bb1, Instr::new(InstrKind::Ret { val: None }));
        let owner = f.instr_blocks();
        assert_eq!(owner[i0.0 as usize], e);
        assert_eq!(owner[i1.0 as usize], bb1);
    }
}
