//! Value references and entity ids.

use crate::types::Ty;
use std::fmt;

/// Index of an instruction within a function's instruction arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct InstrId(pub u32);

/// Index of a basic block within a function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of a function within a module.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Index of a global variable within a module.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%v{}", self.0)
    }
}
impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// An SSA operand: either the result of an instruction, a function argument,
/// the address of a global, or a constant.
///
/// This mirrors LLVM's `Value` hierarchy closely enough for the Armor
/// extraction algorithm (Figure 5 of the paper), which dispatches on exactly
/// these cases: `AllocaInst` / `GlobalVariable` / `Argument` / `PHINode` /
/// `CallInst` / constants / ordinary instructions.
#[derive(Clone, Copy, Debug)]
pub enum Value {
    /// Result of the instruction with the given id.
    Instr(InstrId),
    /// The `n`-th formal argument of the enclosing function.
    Arg(u32),
    /// Address of a module-level global variable (always of type `Ptr`).
    Global(GlobalId),
    /// Integer constant with its type (bits stored sign-extended in an `i64`).
    ConstInt(i64, Ty),
    /// Floating-point constant with its type.
    ConstFloat(f64, Ty),
    /// Null pointer constant.
    ConstNull,
}

impl Value {
    /// True if this operand is any kind of constant ("ConstantData" in the
    /// paper's pseudocode — constants never need to become kernel parameters).
    #[inline]
    pub fn is_const(&self) -> bool {
        matches!(
            self,
            Value::ConstInt(..) | Value::ConstFloat(..) | Value::ConstNull
        )
    }

    /// The instruction id if this operand is an instruction result.
    #[inline]
    pub fn as_instr(&self) -> Option<InstrId> {
        match self {
            Value::Instr(id) => Some(*id),
            _ => None,
        }
    }

    /// Convenience constructor for `i32` constants.
    #[inline]
    pub fn i32(v: i32) -> Value {
        Value::ConstInt(v as i64, Ty::I32)
    }

    /// Convenience constructor for `i64` constants.
    #[inline]
    pub fn i64(v: i64) -> Value {
        Value::ConstInt(v, Ty::I64)
    }

    /// Convenience constructor for `f64` constants.
    #[inline]
    pub fn f64(v: f64) -> Value {
        Value::ConstFloat(v, Ty::F64)
    }

    /// Convenience constructor for `f32` constants.
    #[inline]
    pub fn f32(v: f32) -> Value {
        Value::ConstFloat(v as f64, Ty::F32)
    }
}

// Hash/Eq: f64 is not Eq; we compare constants by bit pattern so values can
// be used as keys in CSE-style maps. PartialEq must agree with Hash (bitwise
// on floats, so -0.0 != 0.0 and NaN == NaN here) or hash-map dedup of float
// constants becomes dependent on hasher randomness.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Instr(a), Value::Instr(b)) => a == b,
            (Value::Arg(a), Value::Arg(b)) => a == b,
            (Value::Global(a), Value::Global(b)) => a == b,
            (Value::ConstInt(a, ta), Value::ConstInt(b, tb)) => a == b && ta == tb,
            (Value::ConstFloat(a, ta), Value::ConstFloat(b, tb)) => {
                a.to_bits() == b.to_bits() && ta == tb
            }
            (Value::ConstNull, Value::ConstNull) => true,
            _ => false,
        }
    }
}
impl Eq for Value {}
impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Instr(id) => {
                0u8.hash(state);
                id.hash(state);
            }
            Value::Arg(n) => {
                1u8.hash(state);
                n.hash(state);
            }
            Value::Global(g) => {
                2u8.hash(state);
                g.hash(state);
            }
            Value::ConstInt(v, t) => {
                3u8.hash(state);
                v.hash(state);
                t.hash(state);
            }
            Value::ConstFloat(v, t) => {
                4u8.hash(state);
                v.to_bits().hash(state);
                t.hash(state);
            }
            Value::ConstNull => 5u8.hash(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn const_predicates() {
        assert!(Value::i32(3).is_const());
        assert!(Value::f64(1.5).is_const());
        assert!(Value::ConstNull.is_const());
        assert!(!Value::Instr(InstrId(0)).is_const());
        assert!(!Value::Arg(0).is_const());
        assert!(!Value::Global(GlobalId(0)).is_const());
    }

    #[test]
    fn as_instr() {
        assert_eq!(Value::Instr(InstrId(7)).as_instr(), Some(InstrId(7)));
        assert_eq!(Value::Arg(1).as_instr(), None);
    }

    #[test]
    fn hashable_in_sets() {
        let mut s = HashSet::new();
        s.insert(Value::f64(1.0));
        s.insert(Value::f64(1.0));
        s.insert(Value::f64(-1.0));
        assert_eq!(s.len(), 2);
        // 0.0 and -0.0 have distinct bit patterns: distinct keys.
        s.insert(Value::f64(0.0));
        s.insert(Value::f64(-0.0));
        assert_eq!(s.len(), 4);
    }
}
