//! Structural and type verification for TinyIR modules.
//!
//! The verifier enforces the invariants the rest of the pipeline (analysis,
//! optimisation, codegen, Armor extraction) assumes:
//!
//! * every block ends with exactly one terminator, which is its last
//!   instruction;
//! * phis appear only at the head of a block and have one incoming per CFG
//!   predecessor;
//! * every value use is defined (SSA), arguments/globals are in range;
//! * operand types match the instruction's expectations;
//! * uses are dominated by definitions (checked via a lightweight dominance
//!   computation over reachable blocks).

use crate::instr::{Callee, InstrKind};
use crate::module::{value_ty, Function, Module};
use crate::types::Ty;
use crate::value::{BlockId, InstrId, Value};
use std::collections::{HashMap, HashSet, VecDeque};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the failure occurred.
    pub func: String,
    /// Description of the violated invariant.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "verify error in @{}: {}", self.func, self.msg)
    }
}

impl std::error::Error for VerifyError {}

/// Verify every defined function in the module.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.funcs {
        if !f.is_decl {
            verify_function(m, f)?;
        }
    }
    Ok(())
}

/// Verify a single function.
pub fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    let err = |msg: String| Err(VerifyError { func: f.name.clone(), msg });

    if f.blocks.is_empty() {
        return err("function has no blocks".into());
    }

    // -- terminator discipline & def collection ---------------------------
    let mut defined: HashSet<InstrId> = HashSet::new();
    for (bid, block) in f.block_iter() {
        if block.instrs.is_empty() {
            return err(format!("{bid} is empty"));
        }
        for (pos, &iid) in block.instrs.iter().enumerate() {
            if iid.0 as usize >= f.instrs.len() {
                return err(format!("{bid} references out-of-range instr {iid:?}"));
            }
            if !defined.insert(iid) {
                return err(format!("instruction {iid} appears twice"));
            }
            let instr = f.instr(iid);
            let is_last = pos + 1 == block.instrs.len();
            if instr.is_terminator() != is_last {
                return err(format!(
                    "{bid}: terminator placement wrong at position {pos} ({})",
                    crate::display::instr_body_str(&instr.kind)
                ));
            }
            if matches!(instr.kind, InstrKind::Phi { .. }) {
                // Phis must be a prefix of the block.
                let head = block.instrs[..pos]
                    .iter()
                    .all(|&p| matches!(f.instr(p).kind, InstrKind::Phi { .. }));
                if !head {
                    return err(format!("{bid}: phi not at block head"));
                }
            }
        }
    }

    // -- CFG, reachability, predecessors ----------------------------------
    let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for (bid, block) in f.block_iter() {
        let term = f.instr(*block.instrs.last().unwrap());
        for s in term.successors() {
            if s.0 as usize >= f.blocks.len() {
                return err(format!("{bid} branches to out-of-range {s}"));
            }
            preds.entry(s).or_default().push(bid);
        }
    }
    let mut reachable: HashSet<BlockId> = HashSet::new();
    let mut queue = VecDeque::from([f.entry()]);
    while let Some(b) = queue.pop_front() {
        if !reachable.insert(b) {
            continue;
        }
        let term = f.instr(*f.block(b).instrs.last().unwrap());
        for s in term.successors() {
            queue.push_back(s);
        }
    }

    // -- per-instruction operand checks ------------------------------------
    // These run for *every* block, reachable or not: downstream passes
    // (liveness, codegen, printing) walk all blocks, so ill-formed operands
    // in unreachable code would still index out of range or type-confuse
    // them. Only the dominance analysis below is restricted to reachable
    // blocks, where dominators are well-defined.
    for (bid, block) in f.block_iter() {
        let reach = reachable.contains(&bid);
        let mut seen_in_block: HashSet<InstrId> = HashSet::new();
        for &iid in &block.instrs {
            let instr = f.instr(iid);
            for v in instr.operands() {
                match v {
                    Value::Instr(d)
                        if !defined.contains(&d) => {
                            return err(format!("{iid} uses undefined value {d}"));
                        }
                    Value::Arg(n)
                        if n as usize >= f.params.len() => {
                            return err(format!("{iid} uses out-of-range arg %a{n}"));
                        }
                    Value::Global(g)
                        if g.0 as usize >= m.globals.len() => {
                            return err(format!("{iid} uses out-of-range global @g{}", g.0));
                        }
                    _ => {}
                }
                // In unreachable blocks dominators are undefined, so the
                // dominance pass below skips them; still reject the local
                // use-before-def shape, which needs only block positions.
                if !reach {
                    if let Value::Instr(d) = v {
                        if block.instrs.contains(&d) && !seen_in_block.contains(&d) {
                            return err(format!(
                                "{iid} in unreachable {bid} uses {d} before its definition"
                            ));
                        }
                    }
                }
            }
            seen_in_block.insert(iid);
            check_types(m, f, iid)?;
            if let InstrKind::Phi { incomings, .. } = &f.instr(iid).kind {
                let mut ps: Vec<BlockId> =
                    preds.get(&bid).cloned().unwrap_or_default();
                ps.sort();
                ps.dedup();
                let mut inc: Vec<BlockId> = incomings.iter().map(|(b, _)| *b).collect();
                inc.sort();
                let mut inc_d = inc.clone();
                inc_d.dedup();
                if inc_d.len() != inc.len() {
                    return err(format!("{iid}: duplicate phi incoming blocks"));
                }
                let missing: Vec<_> = ps.iter().filter(|p| !inc.contains(p)).collect();
                if !missing.is_empty() {
                    return err(format!("{iid}: phi missing incoming for {missing:?}"));
                }
            }
        }
    }

    // -- dominance of uses --------------------------------------------------
    verify_dominance(f, &preds, &reachable)?;

    Ok(())
}

fn check_types(m: &Module, f: &Function, iid: InstrId) -> Result<(), VerifyError> {
    let err = |msg: String| Err(VerifyError { func: f.name.clone(), msg });
    let instr = f.instr(iid);
    let ty_of = |v: Value| value_ty(f, v);
    match &instr.kind {
        InstrKind::Load { ptr, .. } | InstrKind::Store { ptr, .. }
            if ty_of(*ptr) != Some(Ty::Ptr) => {
                return err(format!("{iid}: memory address operand is not a pointer"));
            }
        InstrKind::Gep { base, index, elem_size } => {
            if ty_of(*base) != Some(Ty::Ptr) {
                return err(format!("{iid}: gep base is not a pointer"));
            }
            if !ty_of(*index).map(Ty::is_int).unwrap_or(false) {
                return err(format!("{iid}: gep index is not an integer"));
            }
            if *elem_size == 0 {
                return err(format!("{iid}: gep elem_size is zero"));
            }
        }
        InstrKind::Bin { op, lhs, rhs, ty } => {
            if op.is_float() != ty.is_float() {
                return err(format!("{iid}: binop float-ness mismatch with type {ty}"));
            }
            for v in [lhs, rhs] {
                if let Some(t) = ty_of(*v) {
                    if t != *ty && !(t.is_ptr() && ty.is_int()) {
                        return err(format!("{iid}: operand type {t} != result type {ty}"));
                    }
                }
            }
        }
        InstrKind::Icmp { lhs, rhs, .. } => {
            let (a, b) = (ty_of(*lhs), ty_of(*rhs));
            if let (Some(a), Some(b)) = (a, b) {
                if a.is_float() || b.is_float() {
                    return err(format!("{iid}: icmp on float operands"));
                }
                if a != b {
                    return err(format!("{iid}: icmp operand types differ ({a} vs {b})"));
                }
            }
        }
        InstrKind::Fcmp { lhs, rhs, .. } => {
            for v in [lhs, rhs] {
                if !ty_of(*v).map(Ty::is_float).unwrap_or(false) {
                    return err(format!("{iid}: fcmp on non-float operand"));
                }
            }
        }
        InstrKind::CondBr { cond, .. }
            if ty_of(*cond) != Some(Ty::I1) => {
                return err(format!("{iid}: condbr condition is not i1"));
            }
        InstrKind::Call { callee, args, ret_ty } => match callee {
            Callee::Func(fid) => {
                if fid.0 as usize >= m.funcs.len() {
                    return err(format!("{iid}: call to out-of-range function"));
                }
                let callee_f = m.func(*fid);
                if callee_f.params.len() != args.len() {
                    return err(format!(
                        "{iid}: call arity {} != {} for @{}",
                        args.len(),
                        callee_f.params.len(),
                        callee_f.name
                    ));
                }
                if callee_f.ret_ty != *ret_ty {
                    return err(format!("{iid}: call return type mismatch"));
                }
            }
            Callee::Intrinsic(i) => {
                if i.arity() != args.len() {
                    return err(format!("{iid}: intrinsic arity mismatch"));
                }
            }
        },
        InstrKind::Ret { val } => {
            match (f.ret_ty, val) {
                (Some(rt), Some(v)) => {
                    if let Some(t) = ty_of(*v) {
                        if t != rt {
                            return err(format!("{iid}: return type {t} != {rt}"));
                        }
                    }
                }
                (None, None) => {}
                _ => return err(format!("{iid}: return value presence mismatch")),
            }
        }
        _ => {}
    }
    Ok(())
}

/// Check that every non-phi use is dominated by its definition, using a
/// simple iterative dominator computation (sufficient for verification; the
/// `analysis` crate has the production dominator tree).
fn verify_dominance(
    f: &Function,
    preds: &HashMap<BlockId, Vec<BlockId>>,
    reachable: &HashSet<BlockId>,
) -> Result<(), VerifyError> {
    let err = |msg: String| Err(VerifyError { func: f.name.clone(), msg });
    let nblocks = f.blocks.len();
    // dom[b] = set of blocks dominating b, as bitset.
    let full: Vec<bool> = vec![true; nblocks];
    let mut dom: Vec<Vec<bool>> = vec![full; nblocks];
    let entry = f.entry().0 as usize;
    dom[entry] = vec![false; nblocks];
    dom[entry][entry] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nblocks {
            if b == entry || !reachable.contains(&BlockId(b as u32)) {
                continue;
            }
            let mut newdom = vec![true; nblocks];
            let empty = Vec::new();
            let ps = preds.get(&BlockId(b as u32)).unwrap_or(&empty);
            let mut any = false;
            for p in ps {
                if !reachable.contains(p) {
                    continue;
                }
                any = true;
                for i in 0..nblocks {
                    newdom[i] = newdom[i] && dom[p.0 as usize][i];
                }
            }
            if !any {
                newdom = vec![false; nblocks];
            }
            newdom[b] = true;
            if newdom != dom[b] {
                dom[b] = newdom;
                changed = true;
            }
        }
    }

    let owner = f.instr_blocks();
    let mut pos_in_block: HashMap<InstrId, usize> = HashMap::new();
    for (_, block) in f.block_iter() {
        for (i, &iid) in block.instrs.iter().enumerate() {
            pos_in_block.insert(iid, i);
        }
    }

    for (bid, block) in f.block_iter() {
        if !reachable.contains(&bid) {
            continue;
        }
        for &iid in &block.instrs {
            let instr = f.instr(iid);
            if let InstrKind::Phi { incomings, .. } = &instr.kind {
                // A phi use must be dominated by its def at the end of the
                // incoming block.
                for (inb, v) in incomings {
                    if let Value::Instr(d) = v {
                        if !reachable.contains(inb) {
                            continue;
                        }
                        let db = owner[d.0 as usize];
                        if !dom[inb.0 as usize][db.0 as usize] {
                            return err(format!(
                                "phi {iid}: incoming {v:?} from {inb} not dominated by def in {db}"
                            ));
                        }
                    }
                }
                continue;
            }
            for v in instr.operands() {
                if let Value::Instr(d) = v {
                    let db = owner[d.0 as usize];
                    if db == bid {
                        if pos_in_block[&d] >= pos_in_block[&iid] {
                            return err(format!("{iid} uses {d} before its definition"));
                        }
                    } else if !dom[bid.0 as usize][db.0 as usize] {
                        return err(format!(
                            "{iid} in {bid} uses {d} defined in non-dominating {db}"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::{BinOp, Instr};

    #[test]
    fn builder_output_verifies() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("f", vec![Ty::Ptr, Ty::I64], Some(Ty::F64), |fb| {
            let acc = fb.alloca(Ty::F64, 1);
            fb.store(Value::f64(0.0), acc);
            fb.for_loop(Value::i64(0), fb.arg(1), |fb, iv| {
                let x = fb.load_elem(fb.arg(0), iv, Ty::F64);
                let a = fb.load(acc, Ty::F64);
                let s = fb.fadd(a, x, Ty::F64);
                fb.store(s, acc);
            });
            let r = fb.load(acc, Ty::F64);
            fb.ret(Some(r));
        });
        let m = mb.finish();
        verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![], None);
        let e = f.entry();
        f.push_instr(e, Instr::new(InstrKind::Alloca { elem_ty: Ty::I64, count: 1 }));
        m.add_func(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_use_before_def() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![], Some(Ty::I64));
        let e = f.entry();
        // %v0 = add %v1, 1   (uses %v1 before it's defined)
        f.push_instr(
            e,
            Instr::new(InstrKind::Bin {
                op: BinOp::Add,
                lhs: Value::Instr(InstrId(1)),
                rhs: Value::i64(1),
                ty: Ty::I64,
            }),
        );
        f.push_instr(
            e,
            Instr::new(InstrKind::Bin {
                op: BinOp::Add,
                lhs: Value::i64(1),
                rhs: Value::i64(1),
                ty: Ty::I64,
            }),
        );
        f.push_instr(e, Instr::new(InstrKind::Ret { val: Some(Value::Instr(InstrId(0))) }));
        m.add_func(f);
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("before its definition"), "{err}");
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![Ty::F64], Some(Ty::F64));
        let e = f.entry();
        // fadd with integer type annotation.
        f.push_instr(
            e,
            Instr::new(InstrKind::Bin {
                op: BinOp::FAdd,
                lhs: Value::Arg(0),
                rhs: Value::Arg(0),
                ty: Ty::I64,
            }),
        );
        f.push_instr(e, Instr::new(InstrKind::Ret { val: Some(Value::Arg(0)) }));
        m.add_func(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_bad_phi() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![], Some(Ty::I64));
        let e = f.entry();
        let bb1 = f.add_block("next");
        f.push_instr(e, Instr::new(InstrKind::Br { target: bb1 }));
        // Phi with no incoming for the entry predecessor.
        f.push_instr(
            bb1,
            Instr::new(InstrKind::Phi { incomings: vec![], ty: Ty::I64 }),
        );
        f.push_instr(bb1, Instr::new(InstrKind::Ret { val: Some(Value::i64(0)) }));
        m.add_func(f);
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("phi missing incoming"), "{err}");
    }

    /// Build `f() -> i64` with a reachable entry that just returns, plus one
    /// unreachable block whose instructions come from `fill`.
    fn with_unreachable_block(fill: impl FnOnce(&mut Function, BlockId)) -> Module {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![Ty::I64], Some(Ty::I64));
        let e = f.entry();
        f.push_instr(e, Instr::new(InstrKind::Ret { val: Some(Value::i64(0)) }));
        let dead = f.add_block("dead");
        fill(&mut f, dead);
        m.add_func(f);
        m
    }

    #[test]
    fn accepts_wellformed_unreachable_block() {
        let m = with_unreachable_block(|f, bb| {
            f.push_instr(
                bb,
                Instr::new(InstrKind::Bin {
                    op: BinOp::Add,
                    lhs: Value::Arg(0),
                    rhs: Value::i64(1),
                    ty: Ty::I64,
                }),
            );
            f.push_instr(bb, Instr::new(InstrKind::Ret { val: Some(Value::i64(1)) }));
        });
        verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_out_of_range_arg_in_unreachable_block() {
        // Before the all-blocks operand check this passed verification and
        // then panicked Liveness::compute, which walks every block and
        // indexes arguments by `n_instrs + argno`.
        let m = with_unreachable_block(|f, bb| {
            f.push_instr(
                bb,
                Instr::new(InstrKind::Bin {
                    op: BinOp::Add,
                    lhs: Value::Arg(7),
                    rhs: Value::i64(1),
                    ty: Ty::I64,
                }),
            );
            f.push_instr(bb, Instr::new(InstrKind::Ret { val: Some(Value::i64(1)) }));
        });
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("out-of-range arg"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_global_in_unreachable_block() {
        let m = with_unreachable_block(|f, bb| {
            f.push_instr(
                bb,
                Instr::new(InstrKind::Load {
                    ptr: Value::Global(crate::GlobalId(3)),
                    ty: Ty::I64,
                }),
            );
            f.push_instr(bb, Instr::new(InstrKind::Ret { val: Some(Value::i64(1)) }));
        });
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("out-of-range global"), "{err}");
    }

    #[test]
    fn rejects_use_before_def_in_unreachable_block() {
        let m = with_unreachable_block(|f, bb| {
            // %v1 = add %v2, 1 ; %v2 = add 1, 1 — same-block use before def.
            f.push_instr(
                bb,
                Instr::new(InstrKind::Bin {
                    op: BinOp::Add,
                    lhs: Value::Instr(InstrId(2)),
                    rhs: Value::i64(1),
                    ty: Ty::I64,
                }),
            );
            f.push_instr(
                bb,
                Instr::new(InstrKind::Bin {
                    op: BinOp::Add,
                    lhs: Value::i64(1),
                    rhs: Value::i64(1),
                    ty: Ty::I64,
                }),
            );
            f.push_instr(bb, Instr::new(InstrKind::Ret { val: Some(Value::i64(1)) }));
        });
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("before its definition"), "{err}");
    }

    #[test]
    fn rejects_type_mismatch_in_unreachable_block() {
        let m = with_unreachable_block(|f, bb| {
            f.push_instr(
                bb,
                Instr::new(InstrKind::Bin {
                    op: BinOp::FAdd,
                    lhs: Value::i64(1),
                    rhs: Value::i64(1),
                    ty: Ty::I64,
                }),
            );
            f.push_instr(bb, Instr::new(InstrKind::Ret { val: Some(Value::i64(1)) }));
        });
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("float-ness"), "{err}");
    }

    #[test]
    fn rejects_duplicate_phi_incomings_in_unreachable_block() {
        let m = with_unreachable_block(|f, bb| {
            f.push_instr(
                bb,
                Instr::new(InstrKind::Phi {
                    incomings: vec![
                        (BlockId(0), Value::i64(1)),
                        (BlockId(0), Value::i64(2)),
                    ],
                    ty: Ty::I64,
                }),
            );
            f.push_instr(bb, Instr::new(InstrKind::Ret { val: Some(Value::i64(1)) }));
        });
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("duplicate phi incoming"), "{err}");
    }

    #[test]
    fn rejects_non_pointer_memory_operand() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![Ty::I64], Some(Ty::I64));
        let e = f.entry();
        f.push_instr(e, Instr::new(InstrKind::Load { ptr: Value::Arg(0), ty: Ty::I64 }));
        f.push_instr(
            e,
            Instr::new(InstrKind::Ret { val: Some(Value::Instr(InstrId(0))) }),
        );
        m.add_func(f);
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("not a pointer"), "{err}");
    }
}
