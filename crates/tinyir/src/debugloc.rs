//! Source locations — the `(file, line, column)` tuples that CARE uses as
//! recovery-table keys.
//!
//! The paper (§3.3) keys recovery kernels by the debug-information tuple
//! `(file, line, column)` because it is the one identifier available both to
//! the compiler pass (Armor, at IR level) and to the runtime (Safeguard, via
//! the DWARF line table). When an application is built without `-g`, Armor
//! synthesises *fake* debug data that is merely unique per memory-access
//! instruction; [`DebugLoc::synthetic`] models that.

use std::fmt;

/// Interned file id. Files are interned per [`crate::Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// A `(file, line, column)` source location.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DebugLoc {
    /// Interned source file.
    pub file: FileId,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl DebugLoc {
    /// Construct a location.
    pub fn new(file: FileId, line: u32, col: u32) -> DebugLoc {
        DebugLoc { file, line, col }
    }

    /// Synthesise a unique "fake" location for instruction `n` of file
    /// `file`, used when real debug data is absent (paper §3.3: "Armor can
    /// generate a fake debug data for each memory access instruction if the
    /// debug flag is not enabled").
    ///
    /// The encoding keeps line/column positive and collision-free for up to
    /// 2^31 instructions per file.
    pub fn synthetic(file: FileId, n: u32) -> DebugLoc {
        DebugLoc { file, line: n / 1000 + 1, col: n % 1000 + 1 }
    }
}

impl fmt::Display for DebugLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "!{}:{}:{}", self.file.0, self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn synthetic_locations_are_unique() {
        let mut seen = HashSet::new();
        for n in 0..10_000u32 {
            assert!(seen.insert(DebugLoc::synthetic(FileId(0), n)));
        }
    }

    #[test]
    fn synthetic_locations_are_one_based() {
        let l = DebugLoc::synthetic(FileId(0), 0);
        assert!(l.line >= 1 && l.col >= 1);
    }

    #[test]
    fn display_form() {
        let l = DebugLoc::new(FileId(2), 156, 9);
        assert_eq!(l.to_string(), "!2:156:9");
    }
}
