//! Textual printer for TinyIR modules.
//!
//! The format is LLVM-flavoured and round-trips through [`crate::parser`]:
//!
//! ```text
//! module "gtcp"
//! file 0 "gtcp.c"
//! global @g0 "phitmp" f64 x 4096 zero
//! func @chargei(ptr %a0, i64 %a1) -> f64 {
//! bb0:
//!   %v0 = gep %a0, %a1, 8 !0:3:1
//!   %v1 = load f64, %v0 !0:4:1
//!   ret %v1 !0:5:1
//! }
//! ```

use crate::instr::{Callee, InstrKind};
use crate::module::{Function, GlobalInit, Module};
use crate::value::Value;
use std::fmt::Write;

/// Render a value operand.
pub fn value_str(v: Value) -> String {
    match v {
        Value::Instr(id) => format!("%v{}", id.0),
        Value::Arg(i) => format!("%a{i}"),
        Value::Global(g) => format!("@g{}", g.0),
        Value::ConstInt(x, t) => format!("{t} {x}"),
        Value::ConstFloat(x, t) => format!("{t} {}", fmt_float(x, t)),
        Value::ConstNull => "null".to_string(),
    }
}

fn fmt_float(x: f64, t: crate::types::Ty) -> String {
    // Hex bit pattern preserves exact values through round-trips. The width
    // must match the type: the parser decodes `f32 0fx…` as 32 f32 bits, so
    // printing the carrier f64's 64-bit pattern here would corrupt every f32
    // constant on a round trip (found by the carefuzz print→parse oracle).
    if t == crate::types::Ty::F32 {
        format!("0fx{:08x}", (x as f32).to_bits())
    } else {
        format!("0fx{:016x}", x.to_bits())
    }
}

/// Render one instruction (without the leading result binding).
pub fn instr_body_str(i: &InstrKind) -> String {
    match i {
        InstrKind::Alloca { elem_ty, count } => format!("alloca {elem_ty}, {count}"),
        InstrKind::Load { ptr, ty } => format!("load {ty}, {}", value_str(*ptr)),
        InstrKind::Store { val, ptr } => {
            format!("store {}, {}", value_str(*val), value_str(*ptr))
        }
        InstrKind::Gep { base, index, elem_size } => format!(
            "gep {}, {}, {elem_size}",
            value_str(*base),
            value_str(*index)
        ),
        InstrKind::Bin { op, lhs, rhs, ty } => format!(
            "{} {ty} {}, {}",
            op.mnemonic(),
            value_str(*lhs),
            value_str(*rhs)
        ),
        InstrKind::Icmp { pred, lhs, rhs } => format!(
            "icmp {} {}, {}",
            pred.mnemonic(),
            value_str(*lhs),
            value_str(*rhs)
        ),
        InstrKind::Fcmp { pred, lhs, rhs } => format!(
            "fcmp {} {}, {}",
            pred.mnemonic(),
            value_str(*lhs),
            value_str(*rhs)
        ),
        InstrKind::Cast { op, val, to } => {
            format!("{} {} to {to}", op.mnemonic(), value_str(*val))
        }
        InstrKind::Select { cond, t, f, ty } => format!(
            "select {ty} {}, {}, {}",
            value_str(*cond),
            value_str(*t),
            value_str(*f)
        ),
        InstrKind::Phi { incomings, ty } => {
            let parts: Vec<String> = incomings
                .iter()
                .map(|(b, v)| format!("[bb{}: {}]", b.0, value_str(*v)))
                .collect();
            format!("phi {ty} {}", parts.join(", "))
        }
        InstrKind::Call { callee, args, ret_ty } => {
            let argstr: Vec<String> = args.iter().map(|a| value_str(*a)).collect();
            let rt = match ret_ty {
                Some(t) => format!("{t}"),
                None => "void".into(),
            };
            match callee {
                Callee::Func(f) => format!("call {rt} @f{}({})", f.0, argstr.join(", ")),
                Callee::Intrinsic(i) => {
                    format!("call {rt} ${}({})", i.name(), argstr.join(", "))
                }
            }
        }
        InstrKind::Br { target } => format!("br bb{}", target.0),
        InstrKind::CondBr { cond, then_bb, else_bb } => format!(
            "condbr {}, bb{}, bb{}",
            value_str(*cond),
            then_bb.0,
            else_bb.0
        ),
        InstrKind::Ret { val } => match val {
            Some(v) => format!("ret {}", value_str(*v)),
            None => "ret void".into(),
        },
    }
}

/// Render a whole function.
pub fn print_function(f: &Function, out: &mut String) {
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{t} %a{i}"))
        .collect();
    let ret = match f.ret_ty {
        Some(t) => format!("{t}"),
        None => "void".into(),
    };
    if f.is_decl {
        let _ = writeln!(out, "declare @{}({}) -> {}", f.name, params.join(", "), ret);
        return;
    }
    let _ = writeln!(out, "func @{}({}) -> {} {{", f.name, params.join(", "), ret);
    for (bid, block) in f.block_iter() {
        let _ = writeln!(out, "bb{}:", bid.0);
        for &iid in &block.instrs {
            let instr = f.instr(iid);
            let body = instr_body_str(&instr.kind);
            let loc = instr
                .loc
                .map(|l| format!(" !{}:{}:{}", l.file.0, l.line, l.col))
                .unwrap_or_default();
            if instr.result_ty().is_some() {
                let _ = writeln!(out, "  %v{} = {}{}", iid.0, body, loc);
            } else {
                let _ = writeln!(out, "  {}{}", body, loc);
            }
        }
    }
    let _ = writeln!(out, "}}");
}

/// Render a whole module in the round-trippable textual format.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", m.name);
    for (i, file) in m.files.iter().enumerate() {
        let _ = writeln!(out, "file {i} \"{file}\"");
    }
    for (i, g) in m.globals.iter().enumerate() {
        let init = match &g.init {
            GlobalInit::Zero => "zero".to_string(),
            GlobalInit::I32s(v) => format!(
                "i32s {}",
                v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" ")
            ),
            GlobalInit::I64s(v) => format!(
                "i64s {}",
                v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" ")
            ),
            GlobalInit::F32s(v) => format!(
                "f32s {}",
                v.iter()
                    .map(|x| format!("0fx{:08x}", x.to_bits()))
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
            GlobalInit::F64s(v) => format!(
                "f64s {}",
                v.iter()
                    .map(|x| format!("0fx{:016x}", x.to_bits()))
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
        };
        let _ = writeln!(
            out,
            "global @g{i} \"{}\" {} x {} {}",
            g.name, g.elem_ty, g.count, init
        );
    }
    for f in &m.funcs {
        print_function(f, &mut out);
    }
    out
}

impl std::fmt::Display for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&print_module(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::Ty;

    #[test]
    fn printed_module_contains_structure() {
        let mut mb = ModuleBuilder::new("demo", "demo.c");
        let g = mb.global_zeroed("data", Ty::F64, 32);
        mb.define("touch", vec![Ty::I64], Some(Ty::F64), |fb| {
            let v = fb.load_elem(fb.global(g), fb.arg(0), Ty::F64);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        let text = print_module(&m);
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("global @g0 \"data\" f64 x 32 zero"));
        assert!(text.contains("func @touch(i64 %a0) -> f64 {"));
        assert!(text.contains("load f64, %v0"));
        assert!(text.contains("gep @g0"));
        // Debug locations are printed.
        assert!(text.contains(" !0:"));
    }

    #[test]
    fn float_constants_print_as_bit_patterns() {
        assert_eq!(
            value_str(Value::f64(1.0)),
            format!("f64 0fx{:016x}", 1.0f64.to_bits())
        );
    }

    #[test]
    fn f32_constants_print_f32_bit_patterns() {
        // An f32 constant must print the 32-bit pattern the parser decodes
        // (`0fx` + 8 hex digits), not the bits of its f64 carrier.
        assert_eq!(
            value_str(Value::f32(0.1)),
            format!("f32 0fx{:08x}", 0.1f32.to_bits())
        );
        // Round trip through the parser preserves the exact value.
        let printed = value_str(Value::f32(0.1));
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("f", vec![], Some(Ty::F32), |fb| {
            let s = fb.fadd(Value::f32(0.1), Value::f32(0.0), Ty::F32);
            fb.ret(Some(s));
        });
        let m = mb.finish();
        let t1 = print_module(&m);
        assert!(t1.contains(&printed), "{t1}");
        let parsed = crate::parser::parse_module(&t1).unwrap();
        assert_eq!(t1, print_module(&parsed), "f32 constants must round-trip");
    }
}
