//! Scalar and pointer types for TinyIR values.

use std::fmt;

/// The type of a TinyIR value.
///
/// TinyIR models the subset of LLVM's first-class types that the CARE
/// pipeline needs: fixed-width integers, IEEE floats and opaque pointers.
/// Aggregates are modelled in memory (via [`crate::InstrKind::Gep`] address
/// arithmetic) rather than as SSA values, exactly like `-O0`/`-O1` LLVM IR
/// for C scientific codes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Ty {
    /// 1-bit boolean (result of comparisons).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// Opaque pointer (64-bit on SimISA).
    Ptr,
}

impl Ty {
    /// Size of a value of this type in bytes when stored in memory.
    #[inline]
    pub fn size(self) -> u32 {
        match self {
            Ty::I1 | Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 | Ty::F32 => 4,
            Ty::I64 | Ty::F64 | Ty::Ptr => 8,
        }
    }

    /// Natural alignment in bytes (SimISA requires natural alignment;
    /// violating it raises a bus error, mirroring `SIGBUS`).
    #[inline]
    pub fn align(self) -> u32 {
        self.size()
    }

    /// True for `I1`/`I8`/`I16`/`I32`/`I64`.
    #[inline]
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I1 | Ty::I8 | Ty::I16 | Ty::I32 | Ty::I64)
    }

    /// True for `F32`/`F64`.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// True for `Ptr`.
    #[inline]
    pub fn is_ptr(self) -> bool {
        matches!(self, Ty::Ptr)
    }

    /// Number of value bits (1 for `I1`, 64 for `Ptr`).
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            Ty::I1 => 1,
            _ => self.size() * 8,
        }
    }

    /// Mask selecting the valid low bits of an integer of this type.
    #[inline]
    pub fn mask(self) -> u64 {
        match self.bits() {
            64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Parse a type from its textual form (`"i32"`, `"f64"`, `"ptr"`, ...).
    pub fn parse(s: &str) -> Option<Ty> {
        Some(match s {
            "i1" => Ty::I1,
            "i8" => Ty::I8,
            "i16" => Ty::I16,
            "i32" => Ty::I32,
            "i64" => Ty::I64,
            "f32" => Ty::F32,
            "f64" => Ty::F64,
            "ptr" => Ty::Ptr,
            _ => return None,
        })
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I1 => "i1",
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F32 => "f32",
            Ty::F64 => "f64",
            Ty::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_alignment() {
        assert_eq!(Ty::I1.size(), 1);
        assert_eq!(Ty::I8.size(), 1);
        assert_eq!(Ty::I16.size(), 2);
        assert_eq!(Ty::I32.size(), 4);
        assert_eq!(Ty::I64.size(), 8);
        assert_eq!(Ty::F32.size(), 4);
        assert_eq!(Ty::F64.size(), 8);
        assert_eq!(Ty::Ptr.size(), 8);
        for t in [Ty::I8, Ty::I32, Ty::F64, Ty::Ptr] {
            assert_eq!(t.align(), t.size());
        }
    }

    #[test]
    fn masks() {
        assert_eq!(Ty::I1.mask(), 1);
        assert_eq!(Ty::I8.mask(), 0xff);
        assert_eq!(Ty::I32.mask(), 0xffff_ffff);
        assert_eq!(Ty::I64.mask(), u64::MAX);
    }

    #[test]
    fn parse_round_trip() {
        for t in [
            Ty::I1,
            Ty::I8,
            Ty::I16,
            Ty::I32,
            Ty::I64,
            Ty::F32,
            Ty::F64,
            Ty::Ptr,
        ] {
            assert_eq!(Ty::parse(&t.to_string()), Some(t));
        }
        assert_eq!(Ty::parse("i128"), None);
    }

    #[test]
    fn kind_predicates() {
        assert!(Ty::I32.is_int() && !Ty::I32.is_float() && !Ty::I32.is_ptr());
        assert!(Ty::F32.is_float() && !Ty::F32.is_int());
        assert!(Ty::Ptr.is_ptr() && !Ty::Ptr.is_int());
    }
}
