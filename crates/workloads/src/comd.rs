//! CoMD — a reference classical molecular-dynamics mini-app (Table 1),
//! miniaturised: link-cell Lennard-Jones with velocity-Verlet integration.
//!
//! The CARE-relevant structure is the link-cell traversal: per-atom cell
//! ids, per-cell list heads and per-atom `next` chains produce long
//! address-computation sequences (`pos[3*cellList[head[cellOf[i]]]]`-style)
//! with rarely-updated bases — the access profile the paper credits for
//! CoMD's recoverable-fault population.

use crate::spec::{init_f64, Workload};
use tinyir::builder::ModuleBuilder;
use tinyir::{GlobalInit, ICmp, Ty, Value};

/// Build the CoMD workload: `natoms` atoms in an `ncell³` link-cell box,
/// advanced `steps` velocity-Verlet steps.
pub fn build(natoms: i64, ncell: i64, steps: i64) -> Workload {
    let ncells = ncell * ncell * ncell;
    let box_len = ncell as f64; // cell size 1.0 => cutoff 1.0
    let mut mb = ModuleBuilder::new("comd", "comd.c");

    // SoA particle state.
    let pos: Vec<f64> = (0..3 * natoms)
        .map(|i| (init_f64(23, i as u64) * 0.5 + 0.5) * box_len)
        .collect();
    let vel: Vec<f64> = (0..3 * natoms)
        .map(|i| init_f64(29, i as u64) * 0.05)
        .collect();
    let g_pos = mb.global_init("pos", Ty::F64, 3 * natoms as u32, GlobalInit::F64s(pos));
    let g_vel = mb.global_init("vel", Ty::F64, 3 * natoms as u32, GlobalInit::F64s(vel));
    let g_force = mb.global_zeroed("force", Ty::F64, 3 * natoms as u32);
    let g_head = mb.global_zeroed("cell_head", Ty::I64, ncells as u32);
    let g_next = mb.global_zeroed("atom_next", Ty::I64, natoms as u32);
    let g_epot = mb.global_zeroed("e_pot", Ty::F64, 1);
    let g_checksum = mb.global_zeroed("checksum", Ty::F64, 2);

    let na = Value::i64(natoms);
    let nc = Value::i64(ncell);

    // cell_of(i): clamp(floor(pos)) per axis, linearised.
    let cell_of = mb.define("cell_of", vec![Ty::I64], Some(Ty::I64), |fb| {
        let i3 = fb.mul(fb.arg(0), Value::i64(3), Ty::I64);
        let acc = fb.alloca(Ty::I64, 1);
        fb.store(Value::i64(0), acc);
        fb.for_loop(Value::i64(0), Value::i64(3), |fb, ax| {
            let idx = fb.add(i3, ax, Ty::I64);
            let p = fb.load_elem(fb.global(g_pos), idx, Ty::F64);
            let ci = fb.cast(tinyir::CastOp::FpToSi, p, Ty::I64);
            let lo = fb.intrinsic(tinyir::Intrinsic::IMax, vec![ci, Value::i64(0)]);
            let n1 = fb.sub(nc, Value::i64(1), Ty::I64);
            let c = fb.intrinsic(tinyir::Intrinsic::IMin, vec![lo, n1]);
            let a = fb.load(acc, Ty::I64);
            let an = fb.mul(a, nc, Ty::I64);
            let a2 = fb.add(an, c, Ty::I64);
            fb.store(a2, acc);
        });
        let r = fb.load(acc, Ty::I64);
        fb.ret(Some(r));
    });

    // build_cells(): reset heads to -1, push each atom onto its cell list.
    let build_cells = mb.define("build_cells", vec![], None, |fb| {
        fb.for_loop(Value::i64(0), Value::i64(ncells), |fb, c| {
            fb.store_elem(Value::i64(-1), fb.global(g_head), c, Ty::I64);
        });
        fb.for_loop(Value::i64(0), na, |fb, i| {
            let c = fb.call(cell_of, vec![i]);
            let old = fb.load_elem(fb.global(g_head), c, Ty::I64);
            fb.store_elem(old, fb.global(g_next), i, Ty::I64);
            fb.store_elem(i, fb.global(g_head), c, Ty::I64);
        });
        fb.ret(None);
    });

    // lj_pair(i, j): accumulate the LJ force of j on i (and energy).
    let lj_pair = mb.define("lj_pair", vec![Ty::I64, Ty::I64], None, |fb| {
        let (i, j) = (fb.arg(0), fb.arg(1));
        let same = fb.icmp(ICmp::Eq, i, j);
        let done = fb.new_block("done");
        let work = fb.new_block("work");
        fb.cond_br(same, done, work);
        fb.switch_to(work);
        let i3 = fb.mul(i, Value::i64(3), Ty::I64);
        let j3 = fb.mul(j, Value::i64(3), Ty::I64);
        // r2 = Σ (pos[i3+a] - pos[j3+a])²  (open boundaries)
        let r2s = fb.alloca(Ty::F64, 1);
        fb.store(Value::f64(0.0), r2s);
        let dxs = fb.alloca(Ty::F64, 3);
        fb.for_loop(Value::i64(0), Value::i64(3), |fb, ax| {
            let ia = fb.add(i3, ax, Ty::I64);
            let ja = fb.add(j3, ax, Ty::I64);
            let pi = fb.load_elem(fb.global(g_pos), ia, Ty::F64);
            let pj = fb.load_elem(fb.global(g_pos), ja, Ty::F64);
            let d = fb.fsub(pi, pj, Ty::F64);
            fb.store_elem(d, dxs, ax, Ty::F64);
            let d2 = fb.fmul(d, d, Ty::F64);
            let a = fb.load(r2s, Ty::F64);
            let s = fb.fadd(a, d2, Ty::F64);
            fb.store(s, r2s);
        });
        let r2 = fb.load(r2s, Ty::F64);
        // Cutoff at 1.0 (cell size); also guard r2 ~ 0.
        let in_cut = fb.fcmp(tinyir::FCmp::Olt, r2, Value::f64(1.0));
        let not_self = fb.fcmp(tinyir::FCmp::Ogt, r2, Value::f64(1e-9));
        let go = fb.bin(tinyir::BinOp::And, in_cut, not_self, Ty::I1);
        fb.if_then(go, |fb| {
            // sigma = 0.4: s2 = sigma²/r2; s6 = s2³.
            let s2 = fb.fdiv(Value::f64(0.16), r2, Ty::F64);
            let s4 = fb.fmul(s2, s2, Ty::F64);
            let s6 = fb.fmul(s4, s2, Ty::F64);
            let s12 = fb.fmul(s6, s6, Ty::F64);
            let diff = fb.fsub(s12, s6, Ty::F64);
            let e = fb.fmul(Value::f64(4.0), diff, Ty::F64);
            let ep = fb.load_elem(fb.global(g_epot), Value::i64(0), Ty::F64);
            let ep2 = fb.fadd(ep, e, Ty::F64);
            fb.store_elem(ep2, fb.global(g_epot), Value::i64(0), Ty::F64);
            // f = 24(2·s12 − s6)/r2 · dx
            let t = fb.fmul(Value::f64(2.0), s12, Ty::F64);
            let t2 = fb.fsub(t, s6, Ty::F64);
            let t3 = fb.fmul(Value::f64(24.0), t2, Ty::F64);
            let fmag = fb.fdiv(t3, r2, Ty::F64);
            fb.for_loop(Value::i64(0), Value::i64(3), |fb, ax| {
                let d = fb.load_elem(dxs, ax, Ty::F64);
                let fc = fb.fmul(fmag, d, Ty::F64);
                let ia = fb.add(i3, ax, Ty::I64);
                let f0 = fb.load_elem(fb.global(g_force), ia, Ty::F64);
                let f1 = fb.fadd(f0, fc, Ty::F64);
                fb.store_elem(f1, fb.global(g_force), ia, Ty::F64);
            });
        });
        fb.br(done);
        fb.switch_to(done);
        fb.ret(None);
    });

    // compute_force(): zero forces, then for each atom walk the 27
    // neighbouring cell chains.
    let compute_force = mb.define("compute_force", vec![], None, |fb| {
        fb.store_elem(
            Value::f64(0.0),
            fb.global(g_epot),
            Value::i64(0),
            Ty::F64,
        );
        let n3 = fb.mul(na, Value::i64(3), Ty::I64);
        fb.for_loop(Value::i64(0), n3, |fb, k| {
            fb.store_elem(Value::f64(0.0), fb.global(g_force), k, Ty::F64);
        });
        fb.call(build_cells, vec![]);
        fb.for_loop(Value::i64(0), na, |fb, i| {
            let ci = fb.call(cell_of, vec![i]);
            // Decompose the cell id: cz = ci/(n*n), cy = (ci/n)%n, cx = ci%n.
            let nn = fb.mul(nc, nc, Ty::I64);
            let cz = fb.sdiv(ci, nn, Ty::I64);
            let cyx = fb.srem(ci, nn, Ty::I64);
            let cy = fb.sdiv(cyx, nc, Ty::I64);
            let cx = fb.srem(cyx, nc, Ty::I64);
            fb.for_loop(Value::i64(-1), Value::i64(2), |fb, dz| {
                fb.for_loop(Value::i64(-1), Value::i64(2), |fb, dy| {
                    fb.for_loop(Value::i64(-1), Value::i64(2), |fb, dx| {
                        let nz = fb.add(cz, dz, Ty::I64);
                        let ny = fb.add(cy, dy, Ty::I64);
                        let nx = fb.add(cx, dx, Ty::I64);
                        let okz0 = fb.icmp(ICmp::Sge, nz, Value::i64(0));
                        let okz1 = fb.icmp(ICmp::Slt, nz, nc);
                        let oky0 = fb.icmp(ICmp::Sge, ny, Value::i64(0));
                        let oky1 = fb.icmp(ICmp::Slt, ny, nc);
                        let okx0 = fb.icmp(ICmp::Sge, nx, Value::i64(0));
                        let okx1 = fb.icmp(ICmp::Slt, nx, nc);
                        let a = fb.bin(tinyir::BinOp::And, okz0, okz1, Ty::I1);
                        let b = fb.bin(tinyir::BinOp::And, oky0, oky1, Ty::I1);
                        let c = fb.bin(tinyir::BinOp::And, okx0, okx1, Ty::I1);
                        let ab = fb.bin(tinyir::BinOp::And, a, b, Ty::I1);
                        let ok = fb.bin(tinyir::BinOp::And, ab, c, Ty::I1);
                        fb.if_then(ok, |fb| {
                            let zz = fb.mul(nz, nc, Ty::I64);
                            let zy = fb.add(zz, ny, Ty::I64);
                            let zyx = fb.mul(zy, nc, Ty::I64);
                            let cell = fb.add(zyx, nx, Ty::I64);
                            // Walk the chain: j = head[cell]; while j >= 0.
                            let cur = fb.alloca(Ty::I64, 1);
                            let h = fb.load_elem(fb.global(g_head), cell, Ty::I64);
                            fb.store(h, cur);
                            let header = fb.new_block("chain.header");
                            let body = fb.new_block("chain.body");
                            let exit = fb.new_block("chain.exit");
                            fb.br(header);
                            fb.switch_to(header);
                            let j = fb.load(cur, Ty::I64);
                            let alive = fb.icmp(ICmp::Sge, j, Value::i64(0));
                            fb.cond_br(alive, body, exit);
                            fb.switch_to(body);
                            let j2 = fb.load(cur, Ty::I64);
                            fb.call(lj_pair, vec![i, j2]);
                            let nxt = fb.load_elem(fb.global(g_next), j2, Ty::I64);
                            fb.store(nxt, cur);
                            fb.br(header);
                            fb.switch_to(exit);
                        });
                    });
                });
            });
        });
        fb.ret(None);
    });

    // main(steps): velocity Verlet (forces are recomputed each half-kick).
    mb.define("main", vec![Ty::I64], Some(Ty::F64), |fb| {
        let dt = Value::f64(0.002);
        let half_dt = Value::f64(0.001);
        fb.call(compute_force, vec![]);
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, _s| {
            let n3 = fb.mul(na, Value::i64(3), Ty::I64);
            // v += f·dt/2 ; x += v·dt
            fb.for_loop(Value::i64(0), n3, |fb, k| {
                let v = fb.load_elem(fb.global(g_vel), k, Ty::F64);
                let f = fb.load_elem(fb.global(g_force), k, Ty::F64);
                let dv = fb.fmul(f, half_dt, Ty::F64);
                let v1 = fb.fadd(v, dv, Ty::F64);
                let x = fb.load_elem(fb.global(g_pos), k, Ty::F64);
                let dx = fb.fmul(v1, dt, Ty::F64);
                let x1 = fb.fadd(x, dx, Ty::F64);
                fb.store_elem(x1, fb.global(g_pos), k, Ty::F64);
                fb.store_elem(v1, fb.global(g_vel), k, Ty::F64);
            });
            fb.call(compute_force, vec![]);
            // v += f·dt/2
            fb.for_loop(Value::i64(0), n3, |fb, k| {
                let v = fb.load_elem(fb.global(g_vel), k, Ty::F64);
                let f = fb.load_elem(fb.global(g_force), k, Ty::F64);
                let dv = fb.fmul(f, half_dt, Ty::F64);
                let v1 = fb.fadd(v, dv, Ty::F64);
                fb.store_elem(v1, fb.global(g_vel), k, Ty::F64);
            });
        });
        // checksum[0] = E_pot, checksum[1] = Σ v².
        let ep = fb.load_elem(fb.global(g_epot), Value::i64(0), Ty::F64);
        fb.store_elem(ep, fb.global(g_checksum), Value::i64(0), Ty::F64);
        let acc = fb.alloca(Ty::F64, 1);
        fb.store(Value::f64(0.0), acc);
        let n3 = fb.mul(na, Value::i64(3), Ty::I64);
        fb.for_loop(Value::i64(0), n3, |fb, k| {
            let v = fb.load_elem(fb.global(g_vel), k, Ty::F64);
            let v2 = fb.fmul(v, v, Ty::F64);
            let a = fb.load(acc, Ty::F64);
            let s = fb.fadd(a, v2, Ty::F64);
            fb.store(s, acc);
        });
        let ke = fb.load(acc, Ty::F64);
        fb.store_elem(ke, fb.global(g_checksum), Value::i64(1), Ty::F64);
        fb.ret(Some(ep));
    });

    let module = mb.finish();
    Workload::new(
        "CoMD",
        module,
        vec![steps as u64],
        vec![
            ("pos", 3 * natoms as u64 * 8),
            ("vel", 3 * natoms as u64 * 8),
            ("checksum", 16),
        ],
    )
}

/// Campaign-scale default.
pub fn default() -> Workload {
    build(32, 3, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::interp::{layout_globals, Interp};
    use tinyir::mem::PagedMemory;
    use tinyir::verify::verify_module;

    #[test]
    fn comd_runs_with_finite_energy() {
        let w = default();
        verify_module(&w.module).unwrap();
        let mut mem = PagedMemory::new();
        let globals = layout_globals(&w.module, &mut mem, 0x1000_0000);
        let mut interp = Interp::new(
            &w.module,
            &mut mem,
            &globals,
            0x7f00_0000_0000,
            0x7f00_0100_0000,
            0x6000_0000_0000,
            500_000_000,
        );
        let fid = w.module.func_by_name("main").unwrap();
        let bits = interp.call(fid, &w.args).unwrap().unwrap();
        let epot = f64::from_bits(bits);
        assert!(epot.is_finite(), "potential energy must stay finite: {epot}");
    }
}
