//! miniFE — an implicit finite-element mini-app (Table 1), miniaturised:
//! assembly of a sparse linear system from 8-node hex elements on a brick
//! domain, followed by an un-preconditioned CG solve.
//!
//! The assembly's scatter — searching each row's column list for the slot
//! matching a global node id — is a load-dependent address computation
//! chain, the deepest in the workload set (the paper's miniFE row of
//! Table 5 shows 94 % multi-op accesses).

use crate::spec::Workload;
use tinyir::builder::ModuleBuilder;
use tinyir::{ICmp, Ty, Value};

/// Nonzero slots per matrix row (27 for a trilinear hex mesh).
const SLOTS: i64 = 27;

/// Build the miniFE workload for an `ne³`-element brick and `iters` CG
/// iterations.
pub fn build(ne: i64, iters: i64) -> Workload {
    let nn = ne + 1; // nodes per edge
    let nnodes = nn * nn * nn;
    let mut mb = ModuleBuilder::new("minife", "minife.cpp");

    let a_vals = mb.global_zeroed("a_vals", Ty::F64, (nnodes * SLOTS) as u32);
    let a_cols = mb.global_zeroed("a_cols", Ty::I64, (nnodes * SLOTS) as u32);
    let a_rowlen = mb.global_zeroed("a_rowlen", Ty::I64, nnodes as u32);
    let xv = mb.global_zeroed("x", Ty::F64, nnodes as u32);
    let bv = mb.global_zeroed("b", Ty::F64, nnodes as u32);
    let rv = mb.global_zeroed("r", Ty::F64, nnodes as u32);
    let pv = mb.global_zeroed("p", Ty::F64, nnodes as u32);
    let qv = mb.global_zeroed("q", Ty::F64, nnodes as u32);
    let g_checksum = mb.global_zeroed("checksum", Ty::F64, 2);

    // add_entry(row, col, val): search the row's column list for `col`,
    // accumulating into the existing slot or appending a new one.
    let add_entry = mb.define(
        "add_entry",
        vec![Ty::I64, Ty::I64, Ty::F64],
        None,
        |fb| {
            let (row, col, val) = (fb.arg(0), fb.arg(1), fb.arg(2));
            let base = fb.mul(row, Value::i64(SLOTS), Ty::I64);
            let len = fb.load_elem(fb.global(a_rowlen), row, Ty::I64);
            let found = fb.alloca(Ty::I64, 1);
            fb.store(Value::i64(-1), found);
            fb.for_loop(Value::i64(0), len, |fb, s| {
                let k = fb.add(base, s, Ty::I64);
                let c = fb.load_elem(fb.global(a_cols), k, Ty::I64);
                let hit = fb.icmp(ICmp::Eq, c, col);
                fb.if_then(hit, |fb| {
                    fb.store(s, found);
                });
            });
            let fidx = fb.load(found, Ty::I64);
            let missing = fb.icmp(ICmp::Slt, fidx, Value::i64(0));
            fb.if_then_else(
                missing,
                |fb| {
                    // Append.
                    let k = fb.add(base, len, Ty::I64);
                    fb.store_elem(col, fb.global(a_cols), k, Ty::I64);
                    fb.store_elem(val, fb.global(a_vals), k, Ty::F64);
                    let l1 = fb.add(len, Value::i64(1), Ty::I64);
                    fb.store_elem(l1, fb.global(a_rowlen), row, Ty::I64);
                },
                |fb| {
                    // Accumulate.
                    let k = fb.add(base, fidx, Ty::I64);
                    let cur = fb.load_elem(fb.global(a_vals), k, Ty::F64);
                    let upd = fb.fadd(cur, val, Ty::F64);
                    fb.store_elem(upd, fb.global(a_vals), k, Ty::F64);
                },
            );
            fb.ret(None);
        },
    );

    // node_id(ix, iy, iz) for the nn³ lattice.
    let node_id = mb.define(
        "node_id",
        vec![Ty::I64, Ty::I64, Ty::I64],
        Some(Ty::I64),
        |fb| {
            let n = Value::i64(nn);
            let zy = fb.mul(fb.arg(2), n, Ty::I64);
            let zy2 = fb.add(zy, fb.arg(1), Ty::I64);
            let zyx = fb.mul(zy2, n, Ty::I64);
            let id = fb.add(zyx, fb.arg(0), Ty::I64);
            fb.ret(Some(id));
        },
    );

    // assemble(): loop elements, scatter an 8×8 local stiffness (diag 8,
    // off-diagonal −8/7 scaled: a crude but SPD surrogate for the hex
    // Laplacian).
    let assemble = mb.define("assemble", vec![], None, |fb| {
        let e = Value::i64(ne);
        fb.for_loop(Value::i64(0), e, |fb, ez| {
            fb.for_loop(Value::i64(0), e, |fb, ey| {
                fb.for_loop(Value::i64(0), e, |fb, ex| {
                    // The 8 element nodes.
                    let nodes = fb.alloca(Ty::I64, 8);
                    fb.for_loop(Value::i64(0), Value::i64(8), |fb, c| {
                        // Corner bits: dx = c&1, dy = (c>>1)&1, dz = (c>>2)&1.
                        let dx = fb.bin(tinyir::BinOp::And, c, Value::i64(1), Ty::I64);
                        let c1 = fb.bin(tinyir::BinOp::LShr, c, Value::i64(1), Ty::I64);
                        let dy = fb.bin(tinyir::BinOp::And, c1, Value::i64(1), Ty::I64);
                        let c2 = fb.bin(tinyir::BinOp::LShr, c, Value::i64(2), Ty::I64);
                        let dz = fb.bin(tinyir::BinOp::And, c2, Value::i64(1), Ty::I64);
                        let ix = fb.add(ex, dx, Ty::I64);
                        let iy = fb.add(ey, dy, Ty::I64);
                        let iz = fb.add(ez, dz, Ty::I64);
                        let id = fb.call(node_id, vec![ix, iy, iz]);
                        fb.store_elem(id, nodes, c, Ty::I64);
                    });
                    // Scatter the local matrix.
                    fb.for_loop(Value::i64(0), Value::i64(8), |fb, li| {
                        let gi = fb.load_elem(nodes, li, Ty::I64);
                        fb.for_loop(Value::i64(0), Value::i64(8), |fb, lj| {
                            let gj = fb.load_elem(nodes, lj, Ty::I64);
                            let diag = fb.icmp(ICmp::Eq, li, lj);
                            // Diagonal 9 vs off-diagonal −8/7 keeps each
                            // element row sum positive (diagonally dominant
                            // SPD surrogate), so b = A·1 is nonzero.
                            let val = fb.select(
                                diag,
                                Value::f64(9.0),
                                Value::f64(-8.0 / 7.0),
                                Ty::F64,
                            );
                            fb.call(add_entry, vec![gi, gj, val]);
                        });
                    });
                });
            });
        });
        fb.ret(None);
    });

    // sparsemv / ddot / waxpby (same kernels as HPCCG but over this mesh).
    let sparsemv = mb.define("sparsemv", vec![Ty::Ptr, Ty::Ptr], None, |fb| {
        fb.for_loop(Value::i64(0), Value::i64(nnodes), |fb, row| {
            let sum = fb.alloca(Ty::F64, 1);
            fb.store(Value::f64(0.0), sum);
            let len = fb.load_elem(fb.global(a_rowlen), row, Ty::I64);
            let base = fb.mul(row, Value::i64(SLOTS), Ty::I64);
            fb.for_loop(Value::i64(0), len, |fb, s| {
                let k = fb.add(base, s, Ty::I64);
                let a = fb.load_elem(fb.global(a_vals), k, Ty::F64);
                let c = fb.load_elem(fb.global(a_cols), k, Ty::I64);
                let xc = fb.load_elem(fb.arg(1), c, Ty::F64);
                let prod = fb.fmul(a, xc, Ty::F64);
                let s0 = fb.load(sum, Ty::F64);
                let s1 = fb.fadd(s0, prod, Ty::F64);
                fb.store(s1, sum);
            });
            let s = fb.load(sum, Ty::F64);
            fb.store_elem(s, fb.arg(0), row, Ty::F64);
        });
        fb.ret(None);
    });
    let ddot = mb.define("ddot", vec![Ty::Ptr, Ty::Ptr], Some(Ty::F64), |fb| {
        let acc = fb.alloca(Ty::F64, 1);
        fb.store(Value::f64(0.0), acc);
        fb.for_loop(Value::i64(0), Value::i64(nnodes), |fb, i| {
            let a = fb.load_elem(fb.arg(0), i, Ty::F64);
            let b = fb.load_elem(fb.arg(1), i, Ty::F64);
            let p = fb.fmul(a, b, Ty::F64);
            let s0 = fb.load(acc, Ty::F64);
            let s1 = fb.fadd(s0, p, Ty::F64);
            fb.store(s1, acc);
        });
        let r = fb.load(acc, Ty::F64);
        fb.ret(Some(r));
    });
    let waxpby = mb.define(
        "waxpby",
        vec![Ty::F64, Ty::Ptr, Ty::F64, Ty::Ptr, Ty::Ptr],
        None,
        |fb| {
            fb.for_loop(Value::i64(0), Value::i64(nnodes), |fb, i| {
                let x = fb.load_elem(fb.arg(1), i, Ty::F64);
                let ax = fb.fmul(fb.arg(0), x, Ty::F64);
                let y = fb.load_elem(fb.arg(3), i, Ty::F64);
                let by = fb.fmul(fb.arg(2), y, Ty::F64);
                let w = fb.fadd(ax, by, Ty::F64);
                fb.store_elem(w, fb.arg(4), i, Ty::F64);
            });
            fb.ret(None);
        },
    );

    // main(iters): assemble, b = A·1, CG.
    mb.define("main", vec![Ty::I64], Some(Ty::F64), |fb| {
        fb.call(assemble, vec![]);
        fb.for_loop(Value::i64(0), Value::i64(nnodes), |fb, i| {
            fb.store_elem(Value::f64(0.0), fb.global(xv), i, Ty::F64);
            fb.store_elem(Value::f64(1.0), fb.global(pv), i, Ty::F64);
        });
        fb.call(sparsemv, vec![fb.global(bv), fb.global(pv)]);
        fb.call(
            waxpby,
            vec![Value::f64(1.0), fb.global(bv), Value::f64(0.0), fb.global(xv), fb.global(rv)],
        );
        fb.call(
            waxpby,
            vec![Value::f64(1.0), fb.global(rv), Value::f64(0.0), fb.global(xv), fb.global(pv)],
        );
        let rtrans = fb.alloca(Ty::F64, 1);
        let rt0 = fb.call(ddot, vec![fb.global(rv), fb.global(rv)]);
        fb.store(rt0, rtrans);
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, _k| {
            fb.call(sparsemv, vec![fb.global(qv), fb.global(pv)]);
            let pq = fb.call(ddot, vec![fb.global(pv), fb.global(qv)]);
            let rt = fb.load(rtrans, Ty::F64);
            let alpha = fb.fdiv(rt, pq, Ty::F64);
            fb.call(
                waxpby,
                vec![Value::f64(1.0), fb.global(xv), alpha, fb.global(pv), fb.global(xv)],
            );
            let neg = fb.fsub(Value::f64(0.0), alpha, Ty::F64);
            fb.call(
                waxpby,
                vec![Value::f64(1.0), fb.global(rv), neg, fb.global(qv), fb.global(rv)],
            );
            let rt_new = fb.call(ddot, vec![fb.global(rv), fb.global(rv)]);
            let beta = fb.fdiv(rt_new, rt, Ty::F64);
            fb.store(rt_new, rtrans);
            fb.call(
                waxpby,
                vec![Value::f64(1.0), fb.global(rv), beta, fb.global(pv), fb.global(pv)],
            );
        });
        let rt = fb.load(rtrans, Ty::F64);
        let norm = fb.sqrt(rt);
        fb.store_elem(norm, fb.global(g_checksum), Value::i64(0), Ty::F64);
        let xx = fb.call(ddot, vec![fb.global(xv), fb.global(xv)]);
        fb.store_elem(xx, fb.global(g_checksum), Value::i64(1), Ty::F64);
        fb.ret(Some(norm));
    });

    let module = mb.finish();
    Workload::new(
        "miniFE",
        module,
        vec![iters as u64],
        vec![("x", nnodes as u64 * 8), ("checksum", 16)],
    )
}

/// Campaign-scale default.
pub fn default() -> Workload {
    build(2, 6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::interp::{layout_globals, Interp};
    use tinyir::mem::PagedMemory;
    use tinyir::verify::verify_module;

    #[test]
    fn minife_assembles_and_solves() {
        let w = build(2, 30);
        verify_module(&w.module).unwrap();
        let mut mem = PagedMemory::new();
        let globals = layout_globals(&w.module, &mut mem, 0x1000_0000);
        let mut interp = Interp::new(
            &w.module,
            &mut mem,
            &globals,
            0x7f00_0000_0000,
            0x7f00_0100_0000,
            0x6000_0000_0000,
            500_000_000,
        );
        let fid = w.module.func_by_name("main").unwrap();
        let bits = interp.call(fid, &w.args).unwrap().unwrap();
        let res = f64::from_bits(bits);
        assert!(res.is_finite());
        assert!(res < 1e-5, "CG residual after exact-dim iterations: {res}");
    }
}
