//! # workloads — the paper's scientific mini-apps, written in TinyIR
//!
//! Table 1 of the paper: HPCCG (conjugate gradient on a 3-D chimney), CoMD
//! (link-cell Lennard-Jones MD), miniMD (neighbour-list LJ MD), miniFE
//! (finite-element assembly + CG) and GTC-P (2-D gyrokinetic PIC), plus the
//! REAL level-1 BLAS library and its `sblat1` driver for §5.5.
//!
//! Each builder returns a [`spec::Workload`] carrying the module, entry
//! arguments and the output regions used for SDC classification. Problem
//! sizes are miniaturised so that a 10 000-injection campaign stays
//! tractable, while preserving the address-computation structure (Table 5)
//! that CARE exploits.

pub mod blas;
pub mod comd;
pub mod gtcp;
pub mod hpccg;
pub mod minife;
pub mod minimd;
pub mod spec;

pub use blas::BlasSetup;
pub use spec::Workload;

/// The five Table 1 workloads at campaign-scale defaults, in the paper's
/// order.
pub fn all() -> Vec<Workload> {
    vec![
        hpccg::default(),
        comd::default(),
        minife::default(),
        minimd::default(),
        gtcp::default(),
    ]
}

/// The four workloads evaluated in §5 (the paper skips miniFE there because
/// its C++-STL reliance exceeded the prototype; we keep it for the §2
/// tables).
pub fn evaluated() -> Vec<Workload> {
    vec![
        gtcp::default(),
        hpccg::default(),
        minimd::default(),
        comd::default(),
    ]
}
