//! HPCCG — "a simple conjugate gradient benchmark code for a 3D chimney
//! domain" (Table 1 of the paper), miniaturised.
//!
//! Structure follows the Mantevo original: `generate_matrix` builds a
//! 27-point stencil in a padded-ELL sparse format, `sparsemv` performs the
//! indirect `x[cols[k]]` gather (the address-computation pattern CARE
//! protects), `ddot`/`waxpby` are the vector kernels, and `main` runs
//! un-preconditioned CG iterations.

use crate::spec::Workload;
use tinyir::builder::ModuleBuilder;
use tinyir::{CastOp, ICmp, Ty, Value};

/// Maximum nonzeros per row (27-point stencil).
const NNZ_PER_ROW: i64 = 27;

/// Build the HPCCG workload for an `nx × nx × nx` grid and `iters` CG
/// iterations.
pub fn build(nx: i64, iters: i64) -> Workload {
    let nrows = nx * nx * nx;
    let nnz = nrows * NNZ_PER_ROW;
    let mut mb = ModuleBuilder::new("hpccg", "hpccg.cpp");

    let a_vals = mb.global_zeroed("a_vals", Ty::F64, nnz as u32);
    let a_cols = mb.global_zeroed("a_cols", Ty::I64, nnz as u32);
    let a_rowlen = mb.global_zeroed("a_rowlen", Ty::I64, nrows as u32);
    let xv = mb.global_zeroed("x", Ty::F64, nrows as u32);
    let bv = mb.global_zeroed("b", Ty::F64, nrows as u32);
    let rv = mb.global_zeroed("r", Ty::F64, nrows as u32);
    let pv = mb.global_zeroed("p", Ty::F64, nrows as u32);
    let qv = mb.global_zeroed("q", Ty::F64, nrows as u32);
    let checksum = mb.global_zeroed("checksum", Ty::F64, 2);

    // ddot(n, x, y) -> Σ x[i]·y[i]
    let ddot = mb.define(
        "ddot",
        vec![Ty::I64, Ty::Ptr, Ty::Ptr],
        Some(Ty::F64),
        |fb| {
            let acc = fb.alloca(Ty::F64, 1);
            fb.store(Value::f64(0.0), acc);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let a = fb.load_elem(fb.arg(1), i, Ty::F64);
                let b = fb.load_elem(fb.arg(2), i, Ty::F64);
                let prod = fb.fmul(a, b, Ty::F64);
                let s0 = fb.load(acc, Ty::F64);
                let s1 = fb.fadd(s0, prod, Ty::F64);
                fb.store(s1, acc);
            });
            let r = fb.load(acc, Ty::F64);
            fb.ret(Some(r));
        },
    );

    // waxpby(n, alpha, x, beta, y, w): w = alpha·x + beta·y
    let waxpby = mb.define(
        "waxpby",
        vec![Ty::I64, Ty::F64, Ty::Ptr, Ty::F64, Ty::Ptr, Ty::Ptr],
        None,
        |fb| {
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let x = fb.load_elem(fb.arg(2), i, Ty::F64);
                let ax = fb.fmul(fb.arg(1), x, Ty::F64);
                let y = fb.load_elem(fb.arg(4), i, Ty::F64);
                let by = fb.fmul(fb.arg(3), y, Ty::F64);
                let w = fb.fadd(ax, by, Ty::F64);
                fb.store_elem(w, fb.arg(5), i, Ty::F64);
            });
            fb.ret(None);
        },
    );

    // sparsemv(n, y, x): y = A·x over the padded-ELL arrays.
    let sparsemv = mb.define(
        "sparsemv",
        vec![Ty::I64, Ty::Ptr, Ty::Ptr],
        None,
        |fb| {
            let (vals, cols, rowlen) =
                (fb.global(a_vals), fb.global(a_cols), fb.global(a_rowlen));
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, row| {
                let sum = fb.alloca(Ty::F64, 1);
                fb.store(Value::f64(0.0), sum);
                let len = fb.load_elem(rowlen, row, Ty::I64);
                let base = fb.mul(row, Value::i64(NNZ_PER_ROW), Ty::I64);
                fb.for_loop(Value::i64(0), len, |fb, j| {
                    let k = fb.add(base, j, Ty::I64);
                    let aval = fb.load_elem(vals, k, Ty::F64);
                    // The signature HPCCG access: x[cols[k]] — an address
                    // computed from a *loaded* index.
                    let col = fb.load_elem(cols, k, Ty::I64);
                    let xc = fb.load_elem(fb.arg(2), col, Ty::F64);
                    let prod = fb.fmul(aval, xc, Ty::F64);
                    let s0 = fb.load(sum, Ty::F64);
                    let s1 = fb.fadd(s0, prod, Ty::F64);
                    fb.store(s1, sum);
                });
                let s = fb.load(sum, Ty::F64);
                fb.store_elem(s, fb.arg(1), row, Ty::F64);
            });
            fb.ret(None);
        },
    );

    // generate_matrix(): 27-point stencil on the nx³ chimney domain.
    let generate = mb.define("generate_matrix", vec![], None, |fb| {
        let (vals, cols, rowlen) =
            (fb.global(a_vals), fb.global(a_cols), fb.global(a_rowlen));
        let n = Value::i64(nx);
        fb.for_loop(Value::i64(0), n, |fb, iz| {
            fb.for_loop(Value::i64(0), n, |fb, iy| {
                fb.for_loop(Value::i64(0), n, |fb, ix| {
                    let zy = fb.mul(iz, n, Ty::I64);
                    let zy2 = fb.add(zy, iy, Ty::I64);
                    let zyx = fb.mul(zy2, n, Ty::I64);
                    let row = fb.add(zyx, ix, Ty::I64);
                    let cnt = fb.alloca(Ty::I64, 1);
                    fb.store(Value::i64(0), cnt);
                    fb.for_loop(Value::i64(-1), Value::i64(2), |fb, sz| {
                        fb.for_loop(Value::i64(-1), Value::i64(2), |fb, sy| {
                            fb.for_loop(Value::i64(-1), Value::i64(2), |fb, sx| {
                                let cz = fb.add(iz, sz, Ty::I64);
                                let cy = fb.add(iy, sy, Ty::I64);
                                let cx = fb.add(ix, sx, Ty::I64);
                                // In-bounds test for all three coords.
                                let okz0 = fb.icmp(ICmp::Sge, cz, Value::i64(0));
                                let okz1 = fb.icmp(ICmp::Slt, cz, n);
                                let oky0 = fb.icmp(ICmp::Sge, cy, Value::i64(0));
                                let oky1 = fb.icmp(ICmp::Slt, cy, n);
                                let okx0 = fb.icmp(ICmp::Sge, cx, Value::i64(0));
                                let okx1 = fb.icmp(ICmp::Slt, cx, n);
                                let a = fb.bin(tinyir::BinOp::And, okz0, okz1, Ty::I1);
                                let b = fb.bin(tinyir::BinOp::And, oky0, oky1, Ty::I1);
                                let c = fb.bin(tinyir::BinOp::And, okx0, okx1, Ty::I1);
                                let ab = fb.bin(tinyir::BinOp::And, a, b, Ty::I1);
                                let ok = fb.bin(tinyir::BinOp::And, ab, c, Ty::I1);
                                fb.if_then(ok, |fb| {
                                    let czy = fb.mul(cz, n, Ty::I64);
                                    let czy2 = fb.add(czy, cy, Ty::I64);
                                    let czyx = fb.mul(czy2, n, Ty::I64);
                                    let col = fb.add(czyx, cx, Ty::I64);
                                    let is_diag = fb.icmp(ICmp::Eq, col, row);
                                    let val = fb.select(
                                        is_diag,
                                        Value::f64(27.0),
                                        Value::f64(-1.0),
                                        Ty::F64,
                                    );
                                    let c0 = fb.load(cnt, Ty::I64);
                                    let rbase =
                                        fb.mul(row, Value::i64(NNZ_PER_ROW), Ty::I64);
                                    let k = fb.add(rbase, c0, Ty::I64);
                                    fb.store_elem(val, vals, k, Ty::F64);
                                    fb.store_elem(col, cols, k, Ty::I64);
                                    let c1 = fb.add(c0, Value::i64(1), Ty::I64);
                                    fb.store(c1, cnt);
                                });
                            });
                        });
                    });
                    let cfin = fb.load(cnt, Ty::I64);
                    fb.store_elem(cfin, rowlen, row, Ty::I64);
                });
            });
        });
        fb.ret(None);
    });

    // main(iters): CG solve of A·x = b with b = A·1.
    mb.define("main", vec![Ty::I64], Some(Ty::F64), |fb| {
        let n = Value::i64(nrows);
        fb.call(generate, vec![]);
        // x = 0, p = 1 (temporarily the "ones" vector), b = A·p.
        fb.for_loop(Value::i64(0), n, |fb, i| {
            fb.store_elem(Value::f64(0.0), fb.global(xv), i, Ty::F64);
            fb.store_elem(Value::f64(1.0), fb.global(pv), i, Ty::F64);
        });
        fb.call(sparsemv, vec![n, fb.global(bv), fb.global(pv)]);
        // r = b; p = r.
        fb.call(
            waxpby,
            vec![
                n,
                Value::f64(1.0),
                fb.global(bv),
                Value::f64(0.0),
                fb.global(xv),
                fb.global(rv),
            ],
        );
        fb.call(
            waxpby,
            vec![
                n,
                Value::f64(1.0),
                fb.global(rv),
                Value::f64(0.0),
                fb.global(xv),
                fb.global(pv),
            ],
        );
        let rtrans = fb.alloca(Ty::F64, 1);
        let rt0 = fb.call(ddot, vec![n, fb.global(rv), fb.global(rv)]);
        fb.store(rt0, rtrans);

        fb.for_loop(Value::i64(0), fb.arg(0), |fb, _k| {
            // q = A·p
            fb.call(sparsemv, vec![n, fb.global(qv), fb.global(pv)]);
            let pq = fb.call(ddot, vec![n, fb.global(pv), fb.global(qv)]);
            let rt = fb.load(rtrans, Ty::F64);
            let alpha = fb.fdiv(rt, pq, Ty::F64);
            // x += alpha·p
            fb.call(
                waxpby,
                vec![
                    n,
                    Value::f64(1.0),
                    fb.global(xv),
                    alpha,
                    fb.global(pv),
                    fb.global(xv),
                ],
            );
            // r -= alpha·q
            let neg = fb.fsub(Value::f64(0.0), alpha, Ty::F64);
            fb.call(
                waxpby,
                vec![
                    n,
                    Value::f64(1.0),
                    fb.global(rv),
                    neg,
                    fb.global(qv),
                    fb.global(rv),
                ],
            );
            let rt_new = fb.call(ddot, vec![n, fb.global(rv), fb.global(rv)]);
            let beta = fb.fdiv(rt_new, rt, Ty::F64);
            fb.store(rt_new, rtrans);
            // p = r + beta·p
            fb.call(
                waxpby,
                vec![
                    n,
                    Value::f64(1.0),
                    fb.global(rv),
                    beta,
                    fb.global(pv),
                    fb.global(pv),
                ],
            );
        });

        // checksum[0] = ||r||, checksum[1] = x·x.
        let rt = fb.load(rtrans, Ty::F64);
        let norm = fb.sqrt(rt);
        fb.store_elem(norm, fb.global(checksum), Value::i64(0), Ty::F64);
        let xsum = fb.call(ddot, vec![n, fb.global(xv), fb.global(xv)]);
        fb.store_elem(xsum, fb.global(checksum), Value::i64(1), Ty::F64);
        let _ = CastOp::Sext;
        fb.ret(Some(norm));
    });

    let module = mb.finish();
    Workload::new(
        "HPCCG",
        module,
        vec![iters as u64],
        vec![
            ("x", nrows as u64 * 8),
            ("checksum", 16),
        ],
    )
}

/// Paper-scale default (kept small enough for 10 000-injection campaigns).
pub fn default() -> Workload {
    build(4, 6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::interp::{layout_globals, Interp};
    use tinyir::mem::PagedMemory;
    use tinyir::verify::verify_module;

    #[test]
    fn hpccg_converges_under_interpreter() {
        let w = build(3, 30);
        verify_module(&w.module).unwrap();
        let mut mem = PagedMemory::new();
        let globals = layout_globals(&w.module, &mut mem, 0x1000_0000);
        let mut interp = Interp::new(
            &w.module,
            &mut mem,
            &globals,
            0x7f00_0000_0000,
            0x7f00_0100_0000,
            0x6000_0000_0000,
            200_000_000,
        );
        let fid = w.module.func_by_name("main").unwrap();
        let bits = interp.call(fid, &w.args).unwrap().unwrap();
        let residual = f64::from_bits(bits);
        // CG on this SPD stencil matrix must drive the residual down hard.
        assert!(residual.is_finite());
        assert!(residual < 1e-6, "CG did not converge: {residual}");
    }
}
