//! GTC-P — a 2-D domain-decomposition gyrokinetic particle-in-cell code
//! (Table 1), miniaturised.
//!
//! This reproduces the exact access pattern of the paper's Figure 2:
//! `phitmp[(mzeta+1)*(igrid[i]-igrid_in)+k]` — a deposition/gather index
//! built from an irregular per-surface offset table (`igrid`), a rarely-
//! changing scalar (`mzeta`), and per-particle state. GTC-P is also the
//! workload with the paper's largest `SIGABRT` population (Table 3), which
//! we model with the original code's bounds assertions around the
//! deposition scatter.

use crate::spec::{init_f64, Workload};
use tinyir::builder::ModuleBuilder;
use tinyir::{CastOp, GlobalInit, ICmp, Intrinsic, Ty, Value};

/// Build the GTC-P workload.
///
/// * `mpsi` — radial surfaces,
/// * `mzeta` — toroidal planes,
/// * `nparticles` — particles,
/// * `steps` — time steps.
pub fn build(mpsi: i64, mzeta: i64, nparticles: i64, steps: i64) -> Workload {
    // Poloidal points per surface grow with radius: mtheta[i] = 8 + 2i.
    let mtheta: Vec<i64> = (0..mpsi).map(|i| 8 + 2 * i).collect();
    let mgrid: i64 = mtheta.iter().sum();
    let field_len = (mzeta + 1) * mgrid;
    let igrid: Vec<i64> = mtheta
        .iter()
        .scan(0i64, |acc, &m| {
            let v = *acc;
            *acc += m;
            Some(v)
        })
        .collect();

    let mut mb = ModuleBuilder::new("gtcp", "gtcp.c");
    let g_mtheta = mb.global_init("mtheta", Ty::I64, mpsi as u32, GlobalInit::I64s(mtheta));
    let g_igrid = mb.global_init("igrid", Ty::I64, mpsi as u32, GlobalInit::I64s(igrid));
    let g_phitmp = mb.global_zeroed("phitmp", Ty::F64, field_len as u32);
    let g_density = mb.global_zeroed("densityi", Ty::F64, field_len as u32);
    // Particle state: radial surface, poloidal cell, toroidal plane, weight.
    let g_pr = mb.global_init(
        "p_r",
        Ty::I64,
        nparticles as u32,
        GlobalInit::I64s(
            (0..nparticles)
                .map(|i| ((init_f64(11, i as u64).abs() * mpsi as f64) as i64).min(mpsi - 1))
                .collect(),
        ),
    );
    let g_pt = mb.global_init(
        "p_theta",
        Ty::I64,
        nparticles as u32,
        GlobalInit::I64s(
            (0..nparticles)
                .map(|i| (init_f64(13, i as u64).abs() * 64.0) as i64)
                .collect(),
        ),
    );
    let g_pk = mb.global_init(
        "p_zeta",
        Ty::I64,
        nparticles as u32,
        GlobalInit::I64s(
            (0..nparticles)
                .map(|i| ((init_f64(17, i as u64).abs() * mzeta as f64) as i64).min(mzeta - 1))
                .collect(),
        ),
    );
    let g_pw = mb.global_init(
        "p_w",
        Ty::F64,
        nparticles as u32,
        GlobalInit::F64s((0..nparticles).map(|i| init_f64(19, i as u64)).collect()),
    );
    let g_checksum = mb.global_zeroed("checksum", Ty::F64, 2);

    let np = Value::i64(nparticles);
    let mzeta_c = Value::i64(mzeta);
    let igrid_in = Value::i64(0); // single-domain decomposition: offset 0

    // field_index(ri, ti, k) = (mzeta+1)*(igrid[ri] + (ti % mtheta[ri]) - igrid_in) + k
    let field_index = mb.define(
        "field_index",
        vec![Ty::I64, Ty::I64, Ty::I64],
        Some(Ty::I64),
        |fb| {
            let (ri, ti, k) = (fb.arg(0), fb.arg(1), fb.arg(2));
            let gi = fb.load_elem(fb.global(g_igrid), ri, Ty::I64);
            let mt = fb.load_elem(fb.global(g_mtheta), ri, Ty::I64);
            let tmod = fb.srem(ti, mt, Ty::I64);
            let off = fb.add(gi, tmod, Ty::I64);
            let m1 = fb.add(mzeta_c, Value::i64(1), Ty::I64);
            let d = fb.sub(off, igrid_in, Ty::I64);
            let p = fb.mul(m1, d, Ty::I64);
            let idx = fb.add(p, k, Ty::I64);
            fb.ret(Some(idx));
        },
    );

    // chargei(): deposit particle weights onto densityi (Figure 2 pattern),
    // with GTC's bounds assertion before the scatter.
    let chargei = mb.define("chargei", vec![], None, |fb| {
        fb.for_loop(Value::i64(0), np, |fb, i| {
            let ri = fb.load_elem(fb.global(g_pr), i, Ty::I64);
            let ti = fb.load_elem(fb.global(g_pt), i, Ty::I64);
            let k = fb.load_elem(fb.global(g_pk), i, Ty::I64);
            let w = fb.load_elem(fb.global(g_pw), i, Ty::F64);
            let idx = fb.call(field_index, vec![ri, ti, k]);
            // GTC-P's defensive bounds checks: SIGABRT on violation.
            let lo = fb.icmp(ICmp::Sge, idx, Value::i64(0));
            let hi = fb.icmp(ICmp::Slt, idx, Value::i64(field_len));
            let ok = fb.bin(tinyir::BinOp::And, lo, hi, Ty::I1);
            fb.assert_cond(ok);
            let cur = fb.load_elem(fb.global(g_density), idx, Ty::F64);
            let upd = fb.fadd(cur, w, Ty::F64);
            fb.store_elem(upd, fb.global(g_density), idx, Ty::F64);
        });
        fb.ret(None);
    });

    // smooth(): phitmp = relaxed densityi (stencil over the field, matching
    // the Figure 4 load/store pair phitmp[idx] -> phitmp[idx']).
    let smooth = mb.define("smooth", vec![], None, |fb| {
        let len = Value::i64(field_len);
        fb.for_loop(Value::i64(0), len, |fb, j| {
            let d = fb.load_elem(fb.global(g_density), j, Ty::F64);
            let j1 = fb.add(j, Value::i64(1), Ty::I64);
            let wrapped = fb.srem(j1, len, Ty::I64);
            let dn = fb.load_elem(fb.global(g_density), wrapped, Ty::F64);
            let sum = fb.fadd(d, dn, Ty::F64);
            let avg = fb.fmul(sum, Value::f64(0.5), Ty::F64);
            fb.store_elem(avg, fb.global(g_phitmp), j, Ty::F64);
        });
        fb.ret(None);
    });

    // pushi(): gather the field at each particle and advance its state.
    let pushi = mb.define("pushi", vec![], None, |fb| {
        fb.for_loop(Value::i64(0), np, |fb, i| {
            let ri = fb.load_elem(fb.global(g_pr), i, Ty::I64);
            let ti = fb.load_elem(fb.global(g_pt), i, Ty::I64);
            let k = fb.load_elem(fb.global(g_pk), i, Ty::I64);
            let idx = fb.call(field_index, vec![ri, ti, k]);
            let e = fb.load_elem(fb.global(g_phitmp), idx, Ty::F64);
            // Advance poloidal cell by a field-dependent kick (1 or 2).
            let kick = fb.fcmp(tinyir::FCmp::Ogt, e, Value::f64(0.0));
            let dti = fb.select(kick, Value::i64(2), Value::i64(1), Ty::I64);
            let ti2 = fb.add(ti, dti, Ty::I64);
            fb.store_elem(ti2, fb.global(g_pt), i, Ty::I64);
            // Weight evolves with the gathered field.
            let w = fb.load_elem(fb.global(g_pw), i, Ty::F64);
            let scaled = fb.fmul(e, Value::f64(0.01), Ty::F64);
            let w2 = fb.fadd(w, scaled, Ty::F64);
            fb.store_elem(w2, fb.global(g_pw), i, Ty::F64);
        });
        fb.ret(None);
    });

    // main(steps): the PIC cycle.
    mb.define("main", vec![Ty::I64], Some(Ty::F64), |fb| {
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, _s| {
            fb.call(chargei, vec![]);
            fb.call(smooth, vec![]);
            fb.call(pushi, vec![]);
        });
        // checksum[0] = Σ field, checksum[1] = Σ |w|.
        let acc = fb.alloca(Ty::F64, 1);
        fb.store(Value::f64(0.0), acc);
        fb.for_loop(Value::i64(0), Value::i64(field_len), |fb, j| {
            let v = fb.load_elem(fb.global(g_phitmp), j, Ty::F64);
            let a = fb.load(acc, Ty::F64);
            let s = fb.fadd(a, v, Ty::F64);
            fb.store(s, acc);
        });
        let fsum = fb.load(acc, Ty::F64);
        fb.store_elem(fsum, fb.global(g_checksum), Value::i64(0), Ty::F64);
        fb.store(Value::f64(0.0), acc);
        fb.for_loop(Value::i64(0), np, |fb, i| {
            let w = fb.load_elem(fb.global(g_pw), i, Ty::F64);
            let aw = fb.intrinsic(Intrinsic::Fabs, vec![w]);
            let a = fb.load(acc, Ty::F64);
            let s = fb.fadd(a, aw, Ty::F64);
            fb.store(s, acc);
        });
        let wsum = fb.load(acc, Ty::F64);
        fb.store_elem(wsum, fb.global(g_checksum), Value::i64(1), Ty::F64);
        let _ = CastOp::Sext;
        fb.ret(Some(fsum));
    });

    let module = mb.finish();
    Workload::new(
        "GTC-P",
        module,
        vec![steps as u64],
        vec![
            ("phitmp", field_len as u64 * 8),
            ("p_w", nparticles as u64 * 8),
            ("checksum", 16),
        ],
    )
}

/// Campaign-scale default.
pub fn default() -> Workload {
    build(8, 2, 64, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::interp::{layout_globals, Interp};
    use tinyir::mem::PagedMemory;
    use tinyir::verify::verify_module;

    #[test]
    fn gtcp_runs_and_deposits_charge() {
        let w = default();
        verify_module(&w.module).unwrap();
        let mut mem = PagedMemory::new();
        let globals = layout_globals(&w.module, &mut mem, 0x1000_0000);
        let mut interp = Interp::new(
            &w.module,
            &mut mem,
            &globals,
            0x7f00_0000_0000,
            0x7f00_0100_0000,
            0x6000_0000_0000,
            200_000_000,
        );
        let fid = w.module.func_by_name("main").unwrap();
        let bits = interp.call(fid, &w.args).unwrap().unwrap();
        let field_sum = f64::from_bits(bits);
        assert!(field_sum.is_finite());
        assert_ne!(field_sum, 0.0, "deposition must accumulate charge");
    }
}
