//! REAL level-1 BLAS as a simulated shared library, plus an `sblat1`-style
//! driver — the paper's §5.5 experiment.
//!
//! The routines mirror the reference Fortran BLAS (from LAPACK 3.8.0)
//! semantics including increment arguments, whose `i·incx` indexing is
//! address arithmetic CARE can protect. The library is compiled as its own
//! [`tinyir::Module`] and loaded at a shared-library base, so recoveries in
//! it exercise Safeguard's `PC − base` keying path.

use crate::spec::{init_f32, Workload};
use tinyir::builder::{FuncBuilder, ModuleBuilder};
use tinyir::{CastOp, FCmp, GlobalInit, ICmp, Intrinsic, Module, Ty, Value};

/// The BLAS experiment bundle: library module + driver workload.
#[derive(Clone, Debug)]
pub struct BlasSetup {
    /// `libblas.so` source.
    pub lib: Module,
    /// The `sblat1` driver (declares and calls the library routines).
    pub driver: Workload,
}

/// f32 |v| helper (fpext → fabs → fptrunc).
fn fabs32(fb: &mut FuncBuilder<'_>, v: Value) -> Value {
    let d = fb.cast(CastOp::FpExt, v, Ty::F64);
    let a = fb.intrinsic(Intrinsic::Fabs, vec![d]);
    fb.cast(CastOp::FpTrunc, a, Ty::F32)
}

/// Build the BLAS library module.
pub fn build_lib() -> Module {
    let mut mb = ModuleBuilder::new("libblas", "blas.f");

    // sdot(n, x, incx, y, incy) -> Σ x[i·incx]·y[i·incy]
    mb.define(
        "sdot",
        vec![Ty::I64, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64],
        Some(Ty::F32),
        |fb| {
            let acc = fb.alloca(Ty::F32, 1);
            fb.store(Value::f32(0.0), acc);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let ix = fb.mul(i, fb.arg(2), Ty::I64);
                let iy = fb.mul(i, fb.arg(4), Ty::I64);
                let xv = fb.load_elem(fb.arg(1), ix, Ty::F32);
                let yv = fb.load_elem(fb.arg(3), iy, Ty::F32);
                let p = fb.fmul(xv, yv, Ty::F32);
                let a = fb.load(acc, Ty::F32);
                let s = fb.fadd(a, p, Ty::F32);
                fb.store(s, acc);
            });
            let r = fb.load(acc, Ty::F32);
            fb.ret(Some(r));
        },
    );

    // saxpy(n, a, x, incx, y, incy): y += a·x
    mb.define(
        "saxpy",
        vec![Ty::I64, Ty::F32, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64],
        None,
        |fb| {
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let ix = fb.mul(i, fb.arg(3), Ty::I64);
                let iy = fb.mul(i, fb.arg(5), Ty::I64);
                let xv = fb.load_elem(fb.arg(2), ix, Ty::F32);
                let ax = fb.fmul(fb.arg(1), xv, Ty::F32);
                let yv = fb.load_elem(fb.arg(4), iy, Ty::F32);
                let s = fb.fadd(yv, ax, Ty::F32);
                fb.store_elem(s, fb.arg(4), iy, Ty::F32);
            });
            fb.ret(None);
        },
    );

    // sscal(n, a, x, incx): x *= a
    mb.define(
        "sscal",
        vec![Ty::I64, Ty::F32, Ty::Ptr, Ty::I64],
        None,
        |fb| {
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let ix = fb.mul(i, fb.arg(3), Ty::I64);
                let xv = fb.load_elem(fb.arg(2), ix, Ty::F32);
                let s = fb.fmul(xv, fb.arg(1), Ty::F32);
                fb.store_elem(s, fb.arg(2), ix, Ty::F32);
            });
            fb.ret(None);
        },
    );

    // scopy(n, x, incx, y, incy): y = x
    mb.define(
        "scopy",
        vec![Ty::I64, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64],
        None,
        |fb| {
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let ix = fb.mul(i, fb.arg(2), Ty::I64);
                let iy = fb.mul(i, fb.arg(4), Ty::I64);
                let xv = fb.load_elem(fb.arg(1), ix, Ty::F32);
                fb.store_elem(xv, fb.arg(3), iy, Ty::F32);
            });
            fb.ret(None);
        },
    );

    // sswap(n, x, incx, y, incy)
    mb.define(
        "sswap",
        vec![Ty::I64, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64],
        None,
        |fb| {
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let ix = fb.mul(i, fb.arg(2), Ty::I64);
                let iy = fb.mul(i, fb.arg(4), Ty::I64);
                let xv = fb.load_elem(fb.arg(1), ix, Ty::F32);
                let yv = fb.load_elem(fb.arg(3), iy, Ty::F32);
                fb.store_elem(yv, fb.arg(1), ix, Ty::F32);
                fb.store_elem(xv, fb.arg(3), iy, Ty::F32);
            });
            fb.ret(None);
        },
    );

    // sasum(n, x, incx) -> Σ |x|
    mb.define(
        "sasum",
        vec![Ty::I64, Ty::Ptr, Ty::I64],
        Some(Ty::F32),
        |fb| {
            let acc = fb.alloca(Ty::F32, 1);
            fb.store(Value::f32(0.0), acc);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let ix = fb.mul(i, fb.arg(2), Ty::I64);
                let xv = fb.load_elem(fb.arg(1), ix, Ty::F32);
                let av = fabs32(fb, xv);
                let a = fb.load(acc, Ty::F32);
                let s = fb.fadd(a, av, Ty::F32);
                fb.store(s, acc);
            });
            let r = fb.load(acc, Ty::F32);
            fb.ret(Some(r));
        },
    );

    // snrm2(n, x, incx) -> sqrt(Σ x²) (computed in f64 like sdsdot's style)
    mb.define(
        "snrm2",
        vec![Ty::I64, Ty::Ptr, Ty::I64],
        Some(Ty::F32),
        |fb| {
            let acc = fb.alloca(Ty::F64, 1);
            fb.store(Value::f64(0.0), acc);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let ix = fb.mul(i, fb.arg(2), Ty::I64);
                let xv = fb.load_elem(fb.arg(1), ix, Ty::F32);
                let xd = fb.cast(CastOp::FpExt, xv, Ty::F64);
                let sq = fb.fmul(xd, xd, Ty::F64);
                let a = fb.load(acc, Ty::F64);
                let s = fb.fadd(a, sq, Ty::F64);
                fb.store(s, acc);
            });
            let sum = fb.load(acc, Ty::F64);
            let root = fb.sqrt(sum);
            let r = fb.cast(CastOp::FpTrunc, root, Ty::F32);
            fb.ret(Some(r));
        },
    );

    // isamax(n, x, incx) -> first index of max |x| (0-based)
    mb.define(
        "isamax",
        vec![Ty::I64, Ty::Ptr, Ty::I64],
        Some(Ty::I64),
        |fb| {
            let best = fb.alloca(Ty::I64, 1);
            let bestv = fb.alloca(Ty::F32, 1);
            fb.store(Value::i64(0), best);
            fb.store(Value::f32(-1.0), bestv);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let ix = fb.mul(i, fb.arg(2), Ty::I64);
                let xv = fb.load_elem(fb.arg(1), ix, Ty::F32);
                let av = fabs32(fb, xv);
                let b = fb.load(bestv, Ty::F32);
                let gt = fb.fcmp(FCmp::Ogt, av, b);
                fb.if_then(gt, |fb| {
                    fb.store(av, bestv);
                    fb.store(i, best);
                });
            });
            let r = fb.load(best, Ty::I64);
            fb.ret(Some(r));
        },
    );

    // srot(n, x, incx, y, incy, c, s): plane rotation.
    mb.define(
        "srot",
        vec![Ty::I64, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64, Ty::F32, Ty::F32],
        None,
        |fb| {
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let ix = fb.mul(i, fb.arg(2), Ty::I64);
                let iy = fb.mul(i, fb.arg(4), Ty::I64);
                let xv = fb.load_elem(fb.arg(1), ix, Ty::F32);
                let yv = fb.load_elem(fb.arg(3), iy, Ty::F32);
                let cx = fb.fmul(fb.arg(5), xv, Ty::F32);
                let sy = fb.fmul(fb.arg(6), yv, Ty::F32);
                let nx = fb.fadd(cx, sy, Ty::F32);
                let cy = fb.fmul(fb.arg(5), yv, Ty::F32);
                let sx = fb.fmul(fb.arg(6), xv, Ty::F32);
                let ny = fb.fsub(cy, sx, Ty::F32);
                fb.store_elem(nx, fb.arg(1), ix, Ty::F32);
                fb.store_elem(ny, fb.arg(3), iy, Ty::F32);
            });
            fb.ret(None);
        },
    );

    // srotg(a_ptr, b_ptr, c_ptr, s_ptr): generate a Givens rotation.
    mb.define(
        "srotg",
        vec![Ty::Ptr, Ty::Ptr, Ty::Ptr, Ty::Ptr],
        None,
        |fb| {
            let a = fb.load(fb.arg(0), Ty::F32);
            let b = fb.load(fb.arg(1), Ty::F32);
            let ad = fb.cast(CastOp::FpExt, a, Ty::F64);
            let bd = fb.cast(CastOp::FpExt, b, Ty::F64);
            let a2 = fb.fmul(ad, ad, Ty::F64);
            let b2 = fb.fmul(bd, bd, Ty::F64);
            let sum = fb.fadd(a2, b2, Ty::F64);
            let rd = fb.sqrt(sum);
            let tiny = fb.fcmp(FCmp::Olt, rd, Value::f64(1e-30));
            fb.if_then_else(
                tiny,
                |fb| {
                    fb.store(Value::f32(1.0), fb.arg(2));
                    fb.store(Value::f32(0.0), fb.arg(3));
                },
                |fb| {
                    let c = fb.fdiv(ad, rd, Ty::F64);
                    let s = fb.fdiv(bd, rd, Ty::F64);
                    let cf = fb.cast(CastOp::FpTrunc, c, Ty::F32);
                    let sf = fb.cast(CastOp::FpTrunc, s, Ty::F32);
                    fb.store(cf, fb.arg(2));
                    fb.store(sf, fb.arg(3));
                    let rf = fb.cast(CastOp::FpTrunc, rd, Ty::F32);
                    fb.store(rf, fb.arg(0));
                },
            );
            fb.ret(None);
        },
    );

    // sdsdot(n, sb, x, incx, y, incy) -> sb + Σ x·y accumulated in f64.
    mb.define(
        "sdsdot",
        vec![Ty::I64, Ty::F32, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64],
        Some(Ty::F32),
        |fb| {
            let acc = fb.alloca(Ty::F64, 1);
            let sb = fb.cast(CastOp::FpExt, fb.arg(1), Ty::F64);
            fb.store(sb, acc);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let ix = fb.mul(i, fb.arg(3), Ty::I64);
                let iy = fb.mul(i, fb.arg(5), Ty::I64);
                let xv = fb.load_elem(fb.arg(2), ix, Ty::F32);
                let yv = fb.load_elem(fb.arg(4), iy, Ty::F32);
                let xd = fb.cast(CastOp::FpExt, xv, Ty::F64);
                let yd = fb.cast(CastOp::FpExt, yv, Ty::F64);
                let p = fb.fmul(xd, yd, Ty::F64);
                let a = fb.load(acc, Ty::F64);
                let s = fb.fadd(a, p, Ty::F64);
                fb.store(s, acc);
            });
            let sum = fb.load(acc, Ty::F64);
            let r = fb.cast(CastOp::FpTrunc, sum, Ty::F32);
            fb.ret(Some(r));
        },
    );

    mb.finish()
}

/// Build the `sblat1` driver workload (declares the library routines and
/// exercises them across sizes and increments, accumulating a checksum).
pub fn build_driver(passes: i64) -> Workload {
    let n = 64i64;
    let mut mb = ModuleBuilder::new("sblat1", "sblat1.f");
    let template: Vec<f32> = (0..2 * n).map(|i| init_f32(41, i as u64)).collect();
    let g_template =
        mb.global_init("template", Ty::F32, 2 * n as u32, GlobalInit::F32s(template));
    let g_sx = mb.global_zeroed("sx", Ty::F32, 2 * n as u32);
    let g_sy = mb.global_zeroed("sy", Ty::F32, 2 * n as u32);
    let g_scratch = mb.global_zeroed("scratch", Ty::F32, 4);
    let g_checksum = mb.global_zeroed("checksum", Ty::F32, 1);

    let sdot = mb.declare(
        "sdot",
        vec![Ty::I64, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64],
        Some(Ty::F32),
    );
    let saxpy = mb.declare(
        "saxpy",
        vec![Ty::I64, Ty::F32, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64],
        None,
    );
    let sscal = mb.declare("sscal", vec![Ty::I64, Ty::F32, Ty::Ptr, Ty::I64], None);
    let scopy = mb.declare(
        "scopy",
        vec![Ty::I64, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64],
        None,
    );
    let sswap = mb.declare(
        "sswap",
        vec![Ty::I64, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64],
        None,
    );
    let sasum = mb.declare("sasum", vec![Ty::I64, Ty::Ptr, Ty::I64], Some(Ty::F32));
    let snrm2 = mb.declare("snrm2", vec![Ty::I64, Ty::Ptr, Ty::I64], Some(Ty::F32));
    let isamax = mb.declare("isamax", vec![Ty::I64, Ty::Ptr, Ty::I64], Some(Ty::I64));
    let srot = mb.declare(
        "srot",
        vec![Ty::I64, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64, Ty::F32, Ty::F32],
        None,
    );
    let srotg = mb.declare("srotg", vec![Ty::Ptr, Ty::Ptr, Ty::Ptr, Ty::Ptr], None);
    let sdsdot = mb.declare(
        "sdsdot",
        vec![Ty::I64, Ty::F32, Ty::Ptr, Ty::I64, Ty::Ptr, Ty::I64],
        Some(Ty::F32),
    );

    mb.define("main", vec![Ty::I64], Some(Ty::F32), |fb| {
        let nv = Value::i64(n);
        let half = Value::i64(n / 2);
        let acc = fb.alloca(Ty::F32, 1);
        fb.store(Value::f32(0.0), acc);
        let bump = |fb: &mut FuncBuilder<'_>, acc: Value, v: Value| {
            let a = fb.load(acc, Ty::F32);
            let s = fb.fadd(a, v, Ty::F32);
            fb.store(s, acc);
        };
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, _pass| {
            // Reset the working vectors from the template.
            let n2 = fb.mul(nv, Value::i64(2), Ty::I64);
            fb.call(
                scopy,
                vec![
                    n2,
                    fb.global(g_template),
                    Value::i64(1),
                    fb.global(g_sx),
                    Value::i64(1),
                ],
            );
            fb.call(
                scopy,
                vec![nv, fb.global(g_template), Value::i64(2), fb.global(g_sy), Value::i64(1)],
            );
            // Unit and strided increments over the level-1 set.
            for inc in [1i64, 2] {
                let count = if inc == 1 { nv } else { half };
                let incv = Value::i64(inc);
                let d = fb.call(
                    sdot,
                    vec![count, fb.global(g_sx), incv, fb.global(g_sy), Value::i64(1)],
                );
                bump(fb, acc, d);
                fb.call(
                    saxpy,
                    vec![
                        count,
                        Value::f32(0.5),
                        fb.global(g_sx),
                        incv,
                        fb.global(g_sy),
                        Value::i64(1),
                    ],
                );
                let a = fb.call(sasum, vec![count, fb.global(g_sy), incv]);
                bump(fb, acc, a);
                let nrm = fb.call(snrm2, vec![count, fb.global(g_sx), incv]);
                bump(fb, acc, nrm);
                let im = fb.call(isamax, vec![count, fb.global(g_sx), incv]);
                let imf = fb.cast(CastOp::SiToFp, im, Ty::F64);
                let imf32 = fb.cast(CastOp::FpTrunc, imf, Ty::F32);
                bump(fb, acc, imf32);
                let dd = fb.call(
                    sdsdot,
                    vec![
                        count,
                        Value::f32(0.25),
                        fb.global(g_sx),
                        incv,
                        fb.global(g_sy),
                        Value::i64(1),
                    ],
                );
                bump(fb, acc, dd);
            }
            fb.call(sscal, vec![nv, Value::f32(1.01), fb.global(g_sx), Value::i64(1)]);
            fb.call(
                sswap,
                vec![half, fb.global(g_sx), Value::i64(1), fb.global(g_sy), Value::i64(2)],
            );
            // Givens rotation path.
            let s0 = fb.gep_ty(fb.global(g_scratch), Value::i64(0), Ty::F32);
            let s1 = fb.gep_ty(fb.global(g_scratch), Value::i64(1), Ty::F32);
            let s2 = fb.gep_ty(fb.global(g_scratch), Value::i64(2), Ty::F32);
            let s3 = fb.gep_ty(fb.global(g_scratch), Value::i64(3), Ty::F32);
            fb.store(Value::f32(3.0), s0);
            fb.store(Value::f32(4.0), s1);
            fb.call(srotg, vec![s0, s1, s2, s3]);
            let c = fb.load(s2, Ty::F32);
            let s = fb.load(s3, Ty::F32);
            fb.call(
                srot,
                vec![half, fb.global(g_sx), Value::i64(1), fb.global(g_sy), Value::i64(1), c, s],
            );
            let tail = fb.call(sdot, vec![half, fb.global(g_sx), Value::i64(1), fb.global(g_sy), Value::i64(1)]);
            bump(fb, acc, tail);
        });
        let total = fb.load(acc, Ty::F32);
        fb.store_elem(total, fb.global(g_checksum), Value::i64(0), Ty::F32);
        let _ = ICmp::Eq;
        fb.ret(Some(total));
    });

    let module = mb.finish();
    Workload::new(
        "sblat1",
        module,
        vec![passes as u64],
        vec![
            ("sx", 2 * n as u64 * 4),
            ("sy", 2 * n as u64 * 4),
            ("checksum", 4),
        ],
    )
}

/// The full BLAS experiment setup.
pub fn setup() -> BlasSetup {
    BlasSetup { lib: build_lib(), driver: build_driver(3) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::verify::verify_module;

    #[test]
    fn library_and_driver_verify() {
        let s = setup();
        verify_module(&s.lib).unwrap();
        verify_module(&s.driver.module).unwrap();
        // All 11 routines are defined in the library.
        for name in [
            "sdot", "saxpy", "sscal", "scopy", "sswap", "sasum", "snrm2", "isamax", "srot",
            "srotg", "sdsdot",
        ] {
            let fid = s.lib.func_by_name(name).unwrap();
            assert!(!s.lib.func(fid).is_decl, "{name} must be defined");
        }
    }

    #[test]
    fn sdot_matches_native() {
        // Cross-check one routine against a native Rust computation by
        // executing lib+driver on the machine (cross-module golden).
        let s = setup();
        let lib_mm = simx::compile_module(&s.lib, true, &[]);
        let drv_mm = simx::compile_module(&s.driver.module, true, &[]);
        let mut p = simx::Process::new(drv_mm, vec![lib_mm.into()]);
        p.start("main", &[1]);
        match p.run() {
            simx::RunExit::Done(Some(bits)) => {
                let total = f32::from_bits(bits as u32);
                assert!(total.is_finite());
                assert_ne!(total, 0.0);
            }
            other => panic!("{other:?}"),
        }
    }
}
