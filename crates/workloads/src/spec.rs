//! Workload descriptors: what to run, with which inputs, and which memory
//! regions constitute the observable output (for SDC classification).

use tinyir::Module;

/// A runnable scientific workload (Table 1 of the paper).
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name ("HPCCG", "CoMD", ...).
    pub name: &'static str,
    /// The TinyIR program.
    pub module: Module,
    /// Entry function (conventionally `main`).
    pub entry: &'static str,
    /// Raw-bit arguments for the entry function.
    pub args: Vec<u64>,
    /// Output regions compared bit-for-bit against the golden run to detect
    /// SDCs: `(global name, bytes)`.
    pub outputs: Vec<(String, u64)>,
}

impl Workload {
    /// Construct a descriptor.
    pub fn new(
        name: &'static str,
        module: Module,
        args: Vec<u64>,
        outputs: Vec<(&str, u64)>,
    ) -> Workload {
        Workload {
            name,
            module,
            entry: "main",
            args,
            outputs: outputs
                .into_iter()
                .map(|(n, b)| (n.to_string(), b))
                .collect(),
        }
    }
}

/// Deterministic pseudo-random f64 in `(-1, 1)` for initial data (a host-
/// side splitmix64 so goldens are stable across platforms).
pub fn init_f64(seed: u64, i: u64) -> f64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Map to (-1, 1) with 53-bit resolution.
    (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// Deterministic pseudo-random f32 in `(-1, 1)`.
pub fn init_f32(seed: u64, i: u64) -> f32 {
    init_f64(seed, i) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_data_is_deterministic_and_bounded() {
        for i in 0..1000 {
            let a = init_f64(42, i);
            assert_eq!(a, init_f64(42, i));
            assert!((-1.0..1.0).contains(&a), "{a}");
        }
        assert_ne!(init_f64(1, 0), init_f64(2, 0));
    }
}
