//! miniMD — a simple parallel molecular-dynamics mini-app (Table 1),
//! miniaturised: Lennard-Jones with an explicit Verlet *neighbour list*.
//!
//! Where CoMD walks link-cell chains, miniMD materialises `neigh[i*MAXN+m]`
//! index arrays and streams through them in the force kernel — the flat
//! indexed-gather pattern whose redundant-update elimination under `-O1`
//! *extends* CARE's recovery scope (paper Figure 8 / miniMD's +7 %
//! coverage).

use crate::spec::{init_f64, Workload};
use tinyir::builder::ModuleBuilder;
use tinyir::{GlobalInit, ICmp, Ty, Value};

/// Maximum neighbours tracked per atom.
const MAXN: i64 = 48;

/// Build the miniMD workload.
pub fn build(natoms: i64, steps: i64) -> Workload {
    let box_len = 3.0f64;
    let mut mb = ModuleBuilder::new("minimd", "minimd.cpp");

    let pos: Vec<f64> = (0..3 * natoms)
        .map(|i| (init_f64(31, i as u64) * 0.5 + 0.5) * box_len)
        .collect();
    let vel: Vec<f64> = (0..3 * natoms)
        .map(|i| init_f64(37, i as u64) * 0.05)
        .collect();
    let g_pos = mb.global_init("pos", Ty::F64, 3 * natoms as u32, GlobalInit::F64s(pos));
    let g_vel = mb.global_init("vel", Ty::F64, 3 * natoms as u32, GlobalInit::F64s(vel));
    let g_force = mb.global_zeroed("force", Ty::F64, 3 * natoms as u32);
    let g_neigh = mb.global_zeroed("neigh", Ty::I64, (natoms * MAXN) as u32);
    let g_numneigh = mb.global_zeroed("numneigh", Ty::I64, natoms as u32);
    let g_epot = mb.global_zeroed("e_pot", Ty::F64, 1);
    let g_checksum = mb.global_zeroed("checksum", Ty::F64, 2);

    let na = Value::i64(natoms);

    // dist2(i, j): squared distance.
    let dist2 = mb.define("dist2", vec![Ty::I64, Ty::I64], Some(Ty::F64), |fb| {
        let i3 = fb.mul(fb.arg(0), Value::i64(3), Ty::I64);
        let j3 = fb.mul(fb.arg(1), Value::i64(3), Ty::I64);
        let acc = fb.alloca(Ty::F64, 1);
        fb.store(Value::f64(0.0), acc);
        fb.for_loop(Value::i64(0), Value::i64(3), |fb, ax| {
            let ia = fb.add(i3, ax, Ty::I64);
            let ja = fb.add(j3, ax, Ty::I64);
            let pi = fb.load_elem(fb.global(g_pos), ia, Ty::F64);
            let pj = fb.load_elem(fb.global(g_pos), ja, Ty::F64);
            let d = fb.fsub(pi, pj, Ty::F64);
            let d2 = fb.fmul(d, d, Ty::F64);
            let a = fb.load(acc, Ty::F64);
            let s = fb.fadd(a, d2, Ty::F64);
            fb.store(s, acc);
        });
        let r = fb.load(acc, Ty::F64);
        fb.ret(Some(r));
    });

    // build_neighbors(): all-pairs with a skin radius (rebuilt per step,
    // like miniMD's re-neighbouring).
    let build_neighbors = mb.define("build_neighbors", vec![], None, |fb| {
        fb.for_loop(Value::i64(0), na, |fb, i| {
            let cnt = fb.alloca(Ty::I64, 1);
            fb.store(Value::i64(0), cnt);
            fb.for_loop(Value::i64(0), na, |fb, j| {
                let ne = fb.icmp(ICmp::Ne, i, j);
                fb.if_then(ne, |fb| {
                    let r2 = fb.call(dist2, vec![i, j]);
                    // Neighbour skin: (cutoff+skin)² = 1.3² = 1.69.
                    let close = fb.fcmp(tinyir::FCmp::Olt, r2, Value::f64(1.69));
                    fb.if_then(close, |fb| {
                        let c = fb.load(cnt, Ty::I64);
                        let room = fb.icmp(ICmp::Slt, c, Value::i64(MAXN));
                        fb.if_then(room, |fb| {
                            let base = fb.mul(i, Value::i64(MAXN), Ty::I64);
                            let slot = fb.add(base, c, Ty::I64);
                            fb.store_elem(j, fb.global(g_neigh), slot, Ty::I64);
                            let c1 = fb.add(c, Value::i64(1), Ty::I64);
                            fb.store(c1, cnt);
                        });
                    });
                });
            });
            let cfin = fb.load(cnt, Ty::I64);
            fb.store_elem(cfin, fb.global(g_numneigh), i, Ty::I64);
        });
        fb.ret(None);
    });

    // force(): LJ over the neighbour list — neigh[i*MAXN+m] gathers.
    let force = mb.define("force", vec![], None, |fb| {
        fb.store_elem(Value::f64(0.0), fb.global(g_epot), Value::i64(0), Ty::F64);
        let n3 = fb.mul(na, Value::i64(3), Ty::I64);
        fb.for_loop(Value::i64(0), n3, |fb, k| {
            fb.store_elem(Value::f64(0.0), fb.global(g_force), k, Ty::F64);
        });
        fb.for_loop(Value::i64(0), na, |fb, i| {
            let nn = fb.load_elem(fb.global(g_numneigh), i, Ty::I64);
            let base = fb.mul(i, Value::i64(MAXN), Ty::I64);
            let i3 = fb.mul(i, Value::i64(3), Ty::I64);
            fb.for_loop(Value::i64(0), nn, |fb, m| {
                let slot = fb.add(base, m, Ty::I64);
                let j = fb.load_elem(fb.global(g_neigh), slot, Ty::I64);
                let r2 = fb.call(dist2, vec![i, j]);
                let in_cut = fb.fcmp(tinyir::FCmp::Olt, r2, Value::f64(1.0));
                let sane = fb.fcmp(tinyir::FCmp::Ogt, r2, Value::f64(1e-9));
                let go = fb.bin(tinyir::BinOp::And, in_cut, sane, Ty::I1);
                fb.if_then(go, |fb| {
                    let s2 = fb.fdiv(Value::f64(0.16), r2, Ty::F64);
                    let s4 = fb.fmul(s2, s2, Ty::F64);
                    let s6 = fb.fmul(s4, s2, Ty::F64);
                    let s12 = fb.fmul(s6, s6, Ty::F64);
                    let diff = fb.fsub(s12, s6, Ty::F64);
                    let e = fb.fmul(Value::f64(2.0), diff, Ty::F64); // half per pair
                    let ep = fb.load_elem(fb.global(g_epot), Value::i64(0), Ty::F64);
                    let ep1 = fb.fadd(ep, e, Ty::F64);
                    fb.store_elem(ep1, fb.global(g_epot), Value::i64(0), Ty::F64);
                    let t = fb.fmul(Value::f64(2.0), s12, Ty::F64);
                    let t2 = fb.fsub(t, s6, Ty::F64);
                    let t3 = fb.fmul(Value::f64(24.0), t2, Ty::F64);
                    let fmag = fb.fdiv(t3, r2, Ty::F64);
                    let j3 = fb.mul(j, Value::i64(3), Ty::I64);
                    fb.for_loop(Value::i64(0), Value::i64(3), |fb, ax| {
                        let ia = fb.add(i3, ax, Ty::I64);
                        let ja = fb.add(j3, ax, Ty::I64);
                        let pi = fb.load_elem(fb.global(g_pos), ia, Ty::F64);
                        let pj = fb.load_elem(fb.global(g_pos), ja, Ty::F64);
                        let d = fb.fsub(pi, pj, Ty::F64);
                        let fc = fb.fmul(fmag, d, Ty::F64);
                        let f0 = fb.load_elem(fb.global(g_force), ia, Ty::F64);
                        let f1 = fb.fadd(f0, fc, Ty::F64);
                        fb.store_elem(f1, fb.global(g_force), ia, Ty::F64);
                    });
                });
            });
        });
        fb.ret(None);
    });

    // main(steps): leapfrog with per-step re-neighbouring.
    mb.define("main", vec![Ty::I64], Some(Ty::F64), |fb| {
        let dt = Value::f64(0.002);
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, _s| {
            fb.call(build_neighbors, vec![]);
            fb.call(force, vec![]);
            let n3 = fb.mul(na, Value::i64(3), Ty::I64);
            fb.for_loop(Value::i64(0), n3, |fb, k| {
                let v = fb.load_elem(fb.global(g_vel), k, Ty::F64);
                let f = fb.load_elem(fb.global(g_force), k, Ty::F64);
                let dv = fb.fmul(f, dt, Ty::F64);
                let v1 = fb.fadd(v, dv, Ty::F64);
                let x = fb.load_elem(fb.global(g_pos), k, Ty::F64);
                let dx = fb.fmul(v1, dt, Ty::F64);
                let x1 = fb.fadd(x, dx, Ty::F64);
                fb.store_elem(v1, fb.global(g_vel), k, Ty::F64);
                fb.store_elem(x1, fb.global(g_pos), k, Ty::F64);
            });
        });
        let ep = fb.load_elem(fb.global(g_epot), Value::i64(0), Ty::F64);
        fb.store_elem(ep, fb.global(g_checksum), Value::i64(0), Ty::F64);
        let acc = fb.alloca(Ty::F64, 1);
        fb.store(Value::f64(0.0), acc);
        let n3 = fb.mul(na, Value::i64(3), Ty::I64);
        fb.for_loop(Value::i64(0), n3, |fb, k| {
            let x = fb.load_elem(fb.global(g_pos), k, Ty::F64);
            let a = fb.load(acc, Ty::F64);
            let s = fb.fadd(a, x, Ty::F64);
            fb.store(s, acc);
        });
        let xsum = fb.load(acc, Ty::F64);
        fb.store_elem(xsum, fb.global(g_checksum), Value::i64(1), Ty::F64);
        fb.ret(Some(ep));
    });

    let module = mb.finish();
    Workload::new(
        "miniMD",
        module,
        vec![steps as u64],
        vec![
            ("pos", 3 * natoms as u64 * 8),
            ("vel", 3 * natoms as u64 * 8),
            ("checksum", 16),
        ],
    )
}

/// Campaign-scale default.
pub fn default() -> Workload {
    build(32, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::interp::{layout_globals, Interp};
    use tinyir::mem::PagedMemory;
    use tinyir::verify::verify_module;

    #[test]
    fn minimd_runs_and_builds_neighbor_lists() {
        let w = default();
        verify_module(&w.module).unwrap();
        let mut mem = PagedMemory::new();
        let globals = layout_globals(&w.module, &mut mem, 0x1000_0000);
        let mut interp = Interp::new(
            &w.module,
            &mut mem,
            &globals,
            0x7f00_0000_0000,
            0x7f00_0100_0000,
            0x6000_0000_0000,
            500_000_000,
        );
        let fid = w.module.func_by_name("main").unwrap();
        let bits = interp.call(fid, &w.args).unwrap().unwrap();
        assert!(f64::from_bits(bits).is_finite());
    }
}
