//! Content-addressed campaign keys.
//!
//! A campaign's identity is `(module_hash, opt, engine_version)`:
//!
//! * `module_hash` — a [`ContentHash`] over the module's **canonical
//!   TinyIR printing** (`tinyir::display::print_module`), not its source
//!   text, plus the invocation that defines the golden run (entry symbol,
//!   raw-bit arguments, output regions). Reformatting the source —
//!   whitespace, comments, ordering of equivalent text — cannot change
//!   the key; changing one instruction must.
//! * `opt` — the optimisation level the module is compiled at (different
//!   machine code, different injection space).
//! * `engine_version` — [`simx::ENGINE_VERSION`], the version of the
//!   engines' observable record semantics. Engine *kind* is deliberately
//!   absent: interpreter and compiled backend are pinned bit-identical.
//!
//! An individual injection result is then keyed by
//! `(campaign_key, model, seed, injection_index)` — the first three name
//! a record log and a run context inside it ([`crate::log`]), the index
//! names the record line.
//!
//! The canonical string encoding is `care1:<32 hex>:<opt>:e<version>` and
//! is a stability contract (golden-pinned in careserve's proto tests): it
//! replaces the server's old `Debug`-formatted text keys.

use crate::hash::ContentHash;
use tinyir::display::print_module;
use tinyir::Module;

/// Prefix of the canonical key encoding; bump the digit if the encoding
/// itself (not the hash) ever changes shape.
const KEY_PREFIX: &str = "care1";

/// The `(module_hash, opt, engine_version)` campaign identity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CampaignKey {
    /// Hash of canonical module printing + entry + args + outputs.
    pub module_hash: ContentHash,
    /// Optimisation-level name (`O0`, `O1`, ...).
    pub opt: String,
    /// [`simx::ENGINE_VERSION`] at key construction.
    pub engine_version: u32,
}

impl CampaignKey {
    /// Canonical string encoding: `care1:<32 hex>:<opt>:e<version>`.
    pub fn encode(&self) -> String {
        format!("{KEY_PREFIX}:{}:{}:e{}", self.module_hash, self.opt, self.engine_version)
    }

    /// Inverse of [`encode`](Self::encode).
    pub fn decode(s: &str) -> Option<CampaignKey> {
        let mut parts = s.split(':');
        if parts.next()? != KEY_PREFIX {
            return None;
        }
        let module_hash = ContentHash::from_hex(parts.next()?)?;
        let opt = parts.next()?;
        if opt.is_empty() {
            return None;
        }
        let ver = parts.next()?.strip_prefix('e')?;
        if parts.next().is_some() {
            return None;
        }
        Some(CampaignKey {
            module_hash,
            opt: opt.to_string(),
            engine_version: ver.parse().ok()?,
        })
    }

    /// Filesystem name of this campaign's record log.
    pub fn file_name(&self) -> String {
        format!("{}-{}-e{}.jsonl", self.module_hash, self.opt, self.engine_version)
    }
}

/// Build the campaign key for a workload: `module` is canonically printed
/// (so the key is invariant under source reformatting), and the golden
/// run's invocation — `entry`, `args`, `outputs` — is folded into the
/// hash alongside it (a different argument vector is a different golden
/// run, hence a different injection space).
pub fn campaign_key(
    module: &Module,
    entry: &str,
    args: &[u64],
    outputs: &[(String, u64)],
    opt: &str,
) -> CampaignKey {
    let mut input = String::with_capacity(4096);
    input.push_str("care-campaign/v1\n");
    input.push_str(&print_module(module));
    // '\n' cannot appear inside the printed fields below, so the framing
    // is unambiguous without escaping.
    input.push_str("\nentry=");
    input.push_str(entry);
    for a in args {
        input.push_str("\narg=");
        input.push_str(&a.to_string());
    }
    for (name, bytes) in outputs {
        input.push_str("\nout=");
        input.push_str(name);
        input.push('=');
        input.push_str(&bytes.to_string());
    }
    CampaignKey {
        module_hash: ContentHash::of(input.as_bytes()),
        opt: opt.to_string(),
        engine_version: simx::ENGINE_VERSION,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::builder::ModuleBuilder;
    use tinyir::parser::parse_module;
    use tinyir::{Ty, Value};

    fn tiny_module(addend: i64) -> Module {
        let mut mb = ModuleBuilder::new("tiny", "tiny.c");
        let out = mb.global_zeroed("out", Ty::I64, 1);
        mb.define("main", vec![], Some(Ty::I64), |fb| {
            let a = fb.add(Value::i64(2), Value::i64(addend), Ty::I64);
            fb.store(a, fb.global(out));
            fb.ret(Some(a));
        });
        mb.finish()
    }

    fn key_of(m: &Module) -> CampaignKey {
        campaign_key(m, "main", &[], &[("out".to_string(), 8)], "O1")
    }

    /// Reformatting the source text — indentation, blank lines, comments —
    /// is invisible: the hash covers the canonical printing of the parsed
    /// module, not the bytes it arrived as.
    #[test]
    fn reformatted_module_text_hashes_identically() {
        let canonical = print_module(&tiny_module(3));
        let reformatted: String = canonical
            .lines()
            .map(|l| format!("   {l}   ; a trailing comment\n\n"))
            .collect();
        assert_ne!(canonical, reformatted);
        let a = parse_module(&canonical).expect("canonical parses");
        let b = parse_module(&reformatted).expect("reformatted parses");
        assert_eq!(key_of(&a), key_of(&b));
        assert_eq!(key_of(&a), key_of(&tiny_module(3)));
    }

    /// One changed instruction must change the key.
    #[test]
    fn one_instruction_change_changes_the_key() {
        assert_ne!(key_of(&tiny_module(3)).module_hash, key_of(&tiny_module(4)).module_hash);
    }

    /// The invocation is part of the identity: same module, different
    /// args/outputs → different golden run → different key.
    #[test]
    fn invocation_is_part_of_the_key() {
        let m = tiny_module(3);
        let base = key_of(&m);
        let other_args = campaign_key(&m, "main", &[1], &[("out".to_string(), 8)], "O1");
        let other_out = campaign_key(&m, "main", &[], &[("out".to_string(), 16)], "O1");
        assert_ne!(base.module_hash, other_args.module_hash);
        assert_ne!(base.module_hash, other_out.module_hash);
        // Opt level separates without touching the hash.
        let o0 = campaign_key(&m, "main", &[], &[("out".to_string(), 8)], "O0");
        assert_eq!(base.module_hash, o0.module_hash);
        assert_ne!(base.encode(), o0.encode());
    }

    #[test]
    fn encoding_round_trips_and_rejects_garbage() {
        let k = key_of(&tiny_module(3));
        let s = k.encode();
        assert!(s.starts_with("care1:"));
        assert_eq!(CampaignKey::decode(&s), Some(k.clone()));
        assert_eq!(CampaignKey::decode(""), None);
        assert_eq!(CampaignKey::decode("care2:x"), None);
        assert_eq!(CampaignKey::decode(&s.replace(":e", ":")), None);
        assert_eq!(CampaignKey::decode(&format!("{s}:extra")), None);
        assert!(k.file_name().ends_with(&format!("-O1-e{}.jsonl", simx::ENGINE_VERSION)));
    }
}
