//! The store proper: a directory of per-campaign record logs, plus the
//! resume/residual orchestration around [`faultsim::Campaign::run_selected`].
//!
//! [`Store::run_campaign`] is the drop-in persistent counterpart of
//! [`faultsim::Campaign::run_job`]:
//!
//! 1. scan this campaign's log for records matching `(model, seed, cfg)`;
//! 2. compute the **residual work list** — requested indexes that are
//!    neither stored nor known skips of a completed shorter run;
//! 3. execute only the residual (the trellis scheduler samples only those
//!    indexes, so its cursor-shard windows shrink to the prefixes the
//!    residual actually needs), appending each record to the log the
//!    moment it is classified;
//! 4. merge stored + fresh records in index order into a canonical report.
//!
//! ## Report identity
//!
//! Store-backed reports use **attributed** step accounting — they are
//! `CampaignReport::from_records` over the merged records, exactly the
//! per-injection scheduler's semantics — because "steps the run actually
//! executed" is a property of how warm the store was, not of the
//! campaign. The payoff is the byte-identity contract: a warm re-run
//! (zero residual), a cold run through the store, and a kill + resume all
//! produce the same records and therefore the *same report, byte for
//! byte*. The records themselves are bit-identical to plain
//! [`faultsim::Campaign::run`] under every scheduler/engine/thread
//! combination (pinned by faultsim's own tests).

use crate::key::CampaignKey;
use crate::log::{run_signature, scan_log, LogWriter};
use crate::record::{push_field_u64, push_record_fields};
use faultsim::{
    Campaign, CampaignConfig, CampaignReport, InjectionRecord, JobControl, RecordSink,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use telemetry::Hooks;

/// Counters for one store-backed run, also mirrored into `store.*`
/// telemetry. All accumulation saturates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records reused from the log (`store.hits`).
    pub hits: u64,
    /// Indexes executed fresh — the residual (`store.misses`).
    pub misses: u64,
    /// Indexes below a completed run's bound with no record: the sampled
    /// point never fired, so there is nothing to run (`store.known_skips`).
    pub known_skips: u64,
    /// Records appended to the log by this run (`store.appended`).
    pub appended: u64,
    /// Unparseable log lines skipped while scanning (`store.corrupt_lines`).
    pub corrupt_lines: u64,
    /// 1 if any log append failed (`store.write_errors`); the run itself
    /// still completes — persistence degrades, correctness does not.
    pub write_errors: u64,
}

impl StoreStats {
    /// Residual fraction: misses / requested indexes (0 on empty input).
    pub fn residual_fraction(&self, requested: usize) -> f64 {
        if requested == 0 {
            0.0
        } else {
            self.misses as f64 / requested as f64
        }
    }
}

/// A store-backed campaign result: the canonical report plus what the
/// store did to produce it.
#[derive(Debug)]
pub struct StoreRun {
    /// Canonical (attributed-accounting) report over stored + fresh records.
    pub report: CampaignReport,
    /// Hit/miss/append accounting for this run.
    pub stats: StoreStats,
}

/// The sink that tees every fresh record into the log *and* an in-memory
/// map for the merge, from concurrent pool workers.
struct LogSink<'a> {
    writer: &'a LogWriter,
    fresh: Mutex<BTreeMap<usize, InjectionRecord>>,
}

impl RecordSink for LogSink<'_> {
    fn emit(&self, index: usize, record: &InjectionRecord) {
        let mut line = String::from("{\"kind\":\"record\"");
        push_field_u64(&mut line, "index", index as u64);
        push_record_fields(&mut line, record);
        line.push('}');
        self.writer.append_line(&line);
        self.fresh.lock().expect("sink poisoned").insert(index, record.clone());
    }
}

/// A content-addressed store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Open (creating the directory if needed).
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Store> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Store { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the record log for one campaign key.
    pub fn log_path(&self, key: &CampaignKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Run `cfg` against `campaign` through the store: load matching
    /// records, execute only the residual (appending incrementally, so a
    /// kill loses at most in-flight work), and merge into the canonical
    /// report. See the module docs for the identity contract.
    pub fn run_campaign<H: Hooks>(
        &self,
        key: &CampaignKey,
        campaign: &Campaign,
        cfg: &CampaignConfig,
        hooks: &H,
        ctl: &JobControl,
    ) -> std::io::Result<StoreRun> {
        let path = self.log_path(key);
        let sig = run_signature(cfg);
        let scan = scan_log(&path, cfg.model, cfg.seed, &sig)?;
        let mut stats = StoreStats { corrupt_lines: scan.corrupt, ..StoreStats::default() };

        let mut merged: BTreeMap<usize, InjectionRecord> = BTreeMap::new();
        let mut residual: Vec<usize> = Vec::new();
        for i in 0..cfg.injections {
            if let Some(rec) = scan.records.get(&i) {
                merged.insert(i, rec.clone());
                stats.hits += 1;
            } else if i < scan.covered {
                stats.known_skips += 1;
            } else {
                residual.push(i);
            }
        }
        stats.misses = residual.len() as u64;

        let mut cancelled = ctl.is_cancelled();
        if !residual.is_empty() && !cancelled {
            let writer = LogWriter::open_append(&path)?;
            writer.run_header(cfg, &key.encode());
            let sink = LogSink { writer: &writer, fresh: Mutex::new(BTreeMap::new()) };
            campaign.run_selected(cfg, &residual, hooks, ctl, &sink);
            cancelled = ctl.is_cancelled();
            if !cancelled {
                writer.complete(cfg);
            }
            let fresh = sink.fresh.into_inner().expect("sink poisoned");
            stats.appended = fresh.len() as u64;
            stats.write_errors = writer.failed() as u64;
            merged.extend(fresh);
        }

        let mut report =
            CampaignReport::from_records(merged.into_values().collect::<Vec<_>>());
        report.cancelled = cancelled;
        if !cfg.keep_records {
            report.records = Vec::new();
        }
        if H::ENABLED {
            hooks.add("store.hits", stats.hits);
            hooks.add("store.misses", stats.misses);
            hooks.add("store.known_skips", stats.known_skips);
            hooks.add("store.appended", stats.appended);
            hooks.add("store.corrupt_lines", stats.corrupt_lines);
            hooks.add("store.write_errors", stats.write_errors);
            hooks.add("store.runs", 1);
        }
        Ok(StoreRun { report, stats })
    }

    /// Every record-log file currently in the store (for triage sweeps).
    pub fn log_files(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "jsonl") {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }
}

