//! # carestore — content-addressed, append-only campaign-result storage
//!
//! A production campaign service re-runs mostly unchanged work. This
//! crate makes every injection result addressable and persistent, so a
//! re-run only executes the delta and a killed campaign resumes from its
//! log:
//!
//! * [`hash`] — a stable, hand-rolled 128-bit content hash (no external
//!   dependencies; golden-pinned so stored keys never rot);
//! * [`key`] — campaign identity `(module_hash, opt, engine_version)`
//!   where `module_hash` covers the **canonical TinyIR printing** plus
//!   the golden-run invocation, and the canonical `care1:...` string
//!   encoding that replaces careserve's old `Debug`-formatted text keys;
//! * [`record`] — the `InjectionRecord` JSON codec shared with the
//!   careserve wire protocol (one encoding, no drift);
//! * [`log`] — the append-only JSONL record log with `run` / `record` /
//!   `complete` lines, written incrementally and scanned on startup;
//! * [`store`] — [`Store::run_campaign`], the resume/residual
//!   orchestration around [`faultsim::Campaign::run_selected`], with
//!   `store.*` telemetry counters;
//! * [`lru`] — the capacity-bounded cache careserve uses for prepared
//!   campaigns;
//! * [`triage`] — the cross-run dedup/clustering pass over a whole store
//!   by `(outcome kind, decline, fault site)`.

pub mod hash;
pub mod key;
pub mod log;
pub mod lru;
pub mod record;
pub mod store;
pub mod triage;

pub use hash::ContentHash;
pub use key::{campaign_key, CampaignKey};
pub use log::{run_signature, scan_log, LogScan, LogWriter, STORE_VERSION};
pub use lru::LruCache;
pub use store::{Store, StoreRun, StoreStats};
pub use triage::{triage, TriageCluster};
