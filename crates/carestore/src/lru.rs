//! A small, dependency-free LRU cache — the bound for careserve's
//! prepared-campaign cache (an unbounded `HashMap` before this existed:
//! an adversarial stream of distinct inline jobs grew it without limit).
//!
//! Recency is a monotone logical clock stamped on every hit/insert;
//! eviction scans for the minimum stamp. That is O(capacity), which is
//! the right trade at the capacities this serves (tens of multi-megabyte
//! prepared campaigns): the scan is nanoseconds against a cache entry
//! that took a golden run to build, and there is no intrusive list to
//! get wrong.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// A capacity-bounded map with least-recently-used eviction.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    clock: u64,
    cap: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `cap` entries (`cap` ≥ 1).
    pub fn new(cap: usize) -> LruCache<K, V> {
        LruCache { map: HashMap::new(), clock: 0, cap: cap.max(1), evictions: 0 }
    }

    /// Look up and touch (marks the entry most recently used).
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = clock;
            &*v
        })
    }

    /// Insert (touching the entry), evicting the least recently used
    /// entry first when at capacity with a new key.
    pub fn insert(&mut self, key: K, value: V) {
        self.clock += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (value, self.clock));
    }

    /// Entries currently held (always ≤ capacity).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Evictions performed since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_within_cap_and_evicts_least_recent() {
        let mut c: LruCache<String, u32> = LruCache::new(2);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        assert_eq!(c.get("a"), Some(&1)); // touch a: b is now oldest
        c.insert("c".into(), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get("b"), None, "least-recently-used entry survives eviction");
        assert_eq!(c.get("a"), Some(&1));
        assert_eq!(c.get("c"), Some(&3));
    }

    #[test]
    fn reinsert_updates_without_eviction_and_cap_is_floored() {
        let mut c: LruCache<u64, u64> = LruCache::new(0); // floored to 1
        assert_eq!(c.cap(), 1);
        c.insert(1, 10);
        c.insert(1, 11); // same key: update, no eviction
        assert_eq!((c.len(), c.evictions()), (1, 0));
        assert_eq!(c.get(&1), Some(&11));
        c.insert(2, 20);
        assert_eq!((c.len(), c.evictions()), (1, 1));
    }

    #[test]
    fn thousand_distinct_inserts_stay_bounded() {
        let mut c: LruCache<u64, u64> = LruCache::new(16);
        for i in 0..1000 {
            c.insert(i, i);
            assert!(c.len() <= 16);
        }
        assert_eq!(c.len(), 16);
        assert_eq!(c.evictions(), 1000 - 16);
        // The survivors are exactly the 16 most recent.
        for i in 984..1000 {
            assert_eq!(c.get(&i), Some(&i));
        }
    }
}
