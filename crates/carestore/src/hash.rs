//! A stable, hand-rolled 128-bit content hash — the workspace stays
//! dependency-free, and the hash is a *persistence contract*: its output
//! for a given byte string must never change across releases, platforms
//! or endianness (stored campaign keys outlive the process). The golden
//! vectors pinned in the tests are that contract.
//!
//! Construction: two independent 64-bit lanes of an xxHash64-style mix
//! (distinct odd multiplier schedules per lane seeded differently),
//! length-fortified and avalanche-finalized. Non-cryptographic by design —
//! the store keys trusted local artefacts, it does not defend against an
//! adversary manufacturing collisions — but 128 bits keep accidental
//! collision probability negligible at any realistic store size.

const P1: u64 = 0x9e3779b185ebca87;
const P2: u64 = 0xc2b2ae3d27d4eb4f;
const P3: u64 = 0x165667b19e3779f9;
const P4: u64 = 0x85ebca77c2b2ae63;
const P5: u64 = 0x27d4eb2f165667c5;

/// A 128-bit content hash, printed/parsed as 32 lowercase hex digits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ContentHash {
    /// High 64 bits (lane seeded with `SEED_HI`).
    pub hi: u64,
    /// Low 64 bits (lane seeded with `SEED_LO`).
    pub lo: u64,
}

const SEED_HI: u64 = 0xCA2E_5709_C0DE_0001;
const SEED_LO: u64 = 0xCA2E_5709_C0DE_0002;

impl ContentHash {
    /// Hash a byte string. Deterministic in the bytes alone.
    pub fn of(bytes: &[u8]) -> ContentHash {
        ContentHash { hi: lane(SEED_HI, bytes), lo: lane(SEED_LO, bytes) }
    }

    /// 32 lowercase hex digits, high lane first.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Inverse of [`to_hex`](Self::to_hex); rejects anything that is not
    /// exactly 32 hex digits.
    pub fn from_hex(s: &str) -> Option<ContentHash> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(ContentHash { hi, lo })
    }
}

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// One 64-bit lane: 4-way striped accumulation over 32-byte blocks, then
/// the tail bytes, then a length-aware avalanche.
fn lane(seed: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(32);
    let mut acc = if bytes.len() >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        for block in chunks.by_ref() {
            v1 = round(v1, word(block, 0));
            v2 = round(v2, word(block, 8));
            v3 = round(v3, word(block, 16));
            v4 = round(v4, word(block, 24));
        }
        let mut acc = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        for v in [v1, v2, v3, v4] {
            acc = (acc ^ round(0, v)).wrapping_mul(P1).wrapping_add(P4);
        }
        acc
    } else {
        seed.wrapping_add(P5)
    };
    acc = acc.wrapping_add(bytes.len() as u64);
    let mut tail = chunks.remainder();
    while tail.len() >= 8 {
        acc = (acc ^ round(0, word(tail, 0))).rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        tail = &tail[8..];
    }
    if tail.len() >= 4 {
        let w = u32::from_le_bytes(tail[..4].try_into().expect("4 bytes")) as u64;
        acc = (acc ^ w.wrapping_mul(P1)).rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        tail = &tail[4..];
    }
    for &b in tail {
        acc = (acc ^ (b as u64).wrapping_mul(P5)).rotate_left(11).wrapping_mul(P1);
    }
    avalanche(acc)
}

/// Little-endian u64 at `offset` — byte-order pinned explicitly so the
/// hash is identical on every platform.
fn word(block: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(block[offset..offset + 8].try_into().expect("8 bytes"))
}

fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2)).rotate_left(31).wrapping_mul(P1)
}

fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The persistence contract: these exact outputs must hold forever.
    /// If this test fails, the hash changed and every stored campaign key
    /// silently rotted — fix the hash, never the vectors.
    #[test]
    fn golden_vectors_are_pinned() {
        let cases: [(&[u8], &str); 5] = [
            (b"", "0bcdcaccaaddd682d4bdad9b104aabcf"),
            (b"a", "86a5d9d2c26366e9ba39947af42c1ba1"),
            (b"CARE: compiler-assisted recovery", "3733d68d7d8531ca66a583845f0f0b12"),
            (
                b"The quick brown fox jumps over the lazy dog, twice over the lazy dog.",
                "4bc2c1b92a0eff3c3ba9b1c5c7847221",
            ),
            (&[0u8; 64], "5df406774e523863502a6206a73e2164"),
        ];
        for (input, want) in cases {
            assert_eq!(ContentHash::of(input).to_hex(), want, "input {input:?}");
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        for input in [&b""[..], b"x", b"hello world", &[7u8; 100]] {
            let h = ContentHash::of(input);
            assert_eq!(ContentHash::from_hex(&h.to_hex()), Some(h));
        }
        assert_eq!(ContentHash::from_hex(""), None);
        assert_eq!(ContentHash::from_hex("zz27e366bb6e8db1da0853f22f9003ca"), None);
        assert_eq!(ContentHash::from_hex("2e27e366bb6e8db1da0853f22f9003c"), None);
    }

    /// Every byte position matters: flipping any single byte of a block-
    /// sized input changes both lanes.
    #[test]
    fn single_byte_changes_flip_both_lanes() {
        let base: Vec<u8> = (0..100u8).collect();
        let h0 = ContentHash::of(&base);
        for i in [0usize, 1, 31, 32, 63, 64, 95, 96, 99] {
            let mut mutated = base.clone();
            mutated[i] ^= 1;
            let h1 = ContentHash::of(&mutated);
            assert_ne!(h0.hi, h1.hi, "hi lane blind to byte {i}");
            assert_ne!(h0.lo, h1.lo, "lo lane blind to byte {i}");
        }
    }

    /// Length is part of the hash (no extension/padding ambiguity).
    #[test]
    fn length_disambiguates() {
        assert_ne!(ContentHash::of(&[0u8; 7]), ContentHash::of(&[0u8; 8]));
        assert_ne!(ContentHash::of(&[0u8; 32]), ContentHash::of(&[0u8; 33]));
    }
}
