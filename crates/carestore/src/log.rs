//! The append-only JSONL record log — one file per campaign key.
//!
//! Three line kinds, all in the workspace JSON dialect:
//!
//! * `{"kind":"run","store":1,"model":...,"seed":...,"cfg":...,...}` —
//!   opens a *run context*: every following `record` line belongs to it
//!   until the next `run` line. `model`, `seed` and `cfg` (the
//!   [`run_signature`] of the record-affecting config) identify which
//!   requests may reuse the records; `scheduler`/`engine`/`threads` ride
//!   along for humans only — records are pinned bit-identical across all
//!   of them.
//! * `{"kind":"record","index":I,...}` — one [`InjectionRecord`] in the
//!   shared codec of [`crate::record`], written the moment a worker
//!   classifies it (append order is completion order, not index order).
//! * `{"kind":"complete","model":...,"seed":...,"cfg":...,"injections":N}`
//!   — the run covering indexes `0..N` finished *uncancelled*. This is
//!   what makes absence meaningful: below a completed `N`, an index with
//!   no record is a *known skip* (the sampled point never fired — fresh
//!   runs skip it too); above every completed `N`, an absent index is
//!   simply unexecuted and stays residual work.
//!
//! A killed campaign leaves records without a `complete` trailer; the
//! next run reloads them and executes only the rest. Scanning tolerates a
//! torn final line (a kill mid-append) and any unparseable line by
//! counting it as corrupt and moving on — an append-only log must never
//! brick its campaign.

use crate::record::{get_u64, push_field_str, push_field_u64, record_from_json};
use faultsim::{CampaignConfig, FaultModel, InjectionRecord};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Mutex;
use telemetry::parse_json;

/// Version of the log line vocabulary, written into every `run` line.
/// Scanners ignore runs from a different store version.
pub const STORE_VERSION: u32 = 1;

/// Canonical signature of the record-affecting [`CampaignConfig`] fields
/// *other than* model and seed (those key the run context directly).
/// Scheduler, engine kind, thread and shard counts are deliberately
/// excluded: records are pinned bit-identical across all of them, so a
/// trellis run may reuse a per-injection run's records and vice versa.
/// `injections` is excluded too — index `i`'s record depends only on
/// `(seed, i)`, so a longer re-run reuses a shorter run's records.
pub fn run_signature(cfg: &CampaignConfig) -> String {
    format!(
        "ec={},ao={},hf={},mr={},pb={},sg={}",
        cfg.evaluate_care as u8,
        cfg.app_only as u8,
        cfg.hang_factor,
        cfg.max_recoveries,
        cfg.patch_base_first as u8,
        cfg.skip_equality_guard as u8,
    )
}

/// What a scan recovered for one `(model, seed, cfg)` request.
#[derive(Debug, Default)]
pub struct LogScan {
    /// Stored records by injection index.
    pub records: BTreeMap<usize, InjectionRecord>,
    /// Highest `injections` of any matching *completed* run: every index
    /// below this is resolved (a record, or a known skip).
    pub covered: usize,
    /// Lines that failed to parse or decode (torn tail, corruption).
    pub corrupt: u64,
}

/// Scan a log file for records usable by a `(model, seed, cfg)` request.
/// A missing file is an empty scan, not an error.
pub fn scan_log(
    path: &Path,
    model: FaultModel,
    seed: u64,
    cfg_sig: &str,
) -> std::io::Result<LogScan> {
    let mut scan = LogScan::default();
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(scan),
        Err(e) => return Err(e),
    };
    // Does a run context's (model, seed, cfg, store version) match ours?
    let matches = |v: &telemetry::Json| -> bool {
        get_u64(v, "store") == Some(STORE_VERSION as u64)
            && v.get("model").and_then(telemetry::Json::as_str) == Some(model.name())
            && get_u64(v, "seed") == Some(seed)
            && v.get("cfg").and_then(telemetry::Json::as_str) == Some(cfg_sig)
    };
    let mut in_matching_run = false;
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = parse_json(&line) else {
            scan.corrupt += 1;
            continue;
        };
        match v.get("kind").and_then(telemetry::Json::as_str) {
            Some("run") => in_matching_run = matches(&v),
            Some("record") if in_matching_run => {
                match (get_u64(&v, "index"), record_from_json(&v)) {
                    (Some(i), Ok(rec)) => {
                        // Overlapping partial runs can re-execute an index;
                        // determinism makes the records identical, so
                        // last-wins is a no-op in practice.
                        scan.records.insert(i as usize, rec);
                    }
                    _ => scan.corrupt += 1,
                }
            }
            Some("record") => {}
            Some("complete") => {
                if matches(&v) {
                    if let Some(n) = get_u64(&v, "injections") {
                        scan.covered = scan.covered.max(n as usize);
                    }
                }
            }
            _ => scan.corrupt += 1,
        }
    }
    Ok(scan)
}

/// Append-side handle: serializes whole-line writes from concurrent pool
/// workers and flushes each line, so a kill tears at most the final line.
pub struct LogWriter {
    file: Mutex<File>,
    /// Sticky I/O failure flag: the campaign itself must not die because
    /// the store volume did, but the caller surfaces this in its stats.
    failed: std::sync::atomic::AtomicBool,
}

impl LogWriter {
    /// Open (creating parents' file if needed) for append.
    pub fn open_append(path: &Path) -> std::io::Result<LogWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(LogWriter { file: Mutex::new(file), failed: std::sync::atomic::AtomicBool::new(false) })
    }

    /// True if any append failed since opening.
    pub fn failed(&self) -> bool {
        self.failed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Append one already-rendered JSON line.
    pub fn append_line(&self, line: &str) {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        let mut f = self.file.lock().expect("log writer poisoned");
        if f.write_all(buf.as_bytes()).and_then(|()| f.flush()).is_err() {
            self.failed.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Append the `run` context line for a run about to execute.
    pub fn run_header(&self, cfg: &CampaignConfig, campaign_key: &str) {
        let mut s = String::from("{\"kind\":\"run\"");
        push_field_u64(&mut s, "store", STORE_VERSION as u64);
        push_field_str(&mut s, "campaign", campaign_key);
        push_field_str(&mut s, "model", cfg.model.name());
        push_field_u64(&mut s, "seed", cfg.seed);
        push_field_str(&mut s, "cfg", &run_signature(cfg));
        push_field_str(&mut s, "scheduler", cfg.scheduler.name());
        push_field_str(&mut s, "engine", cfg.engine.name());
        s.push('}');
        self.append_line(&s);
    }

    /// Append the `complete` trailer after an uncancelled run over
    /// `0..cfg.injections`.
    pub fn complete(&self, cfg: &CampaignConfig) {
        let mut s = String::from("{\"kind\":\"complete\"");
        push_field_u64(&mut s, "store", STORE_VERSION as u64);
        push_field_str(&mut s, "model", cfg.model.name());
        push_field_u64(&mut s, "seed", cfg.seed);
        push_field_str(&mut s, "cfg", &run_signature(cfg));
        push_field_u64(&mut s, "injections", cfg.injections as u64);
        s.push('}');
        self.append_line(&s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::push_record_fields;
    use faultsim::{InjectedInto, InjectionPoint, Outcome, StepSplit};
    use simx::ModuleId;
    use tinyir::FuncId;

    fn rec(nth: u64) -> InjectionRecord {
        InjectionRecord {
            point: InjectionPoint { module: ModuleId(0), func: FuncId(0), inst: 1, nth },
            target: InjectedInto::Reg(3),
            outcome: Outcome::Benign,
            latency: None,
            sim_steps: 10 + nth,
            split: StepSplit { prefix: 5, suffix: 5 + nth, care: 0 },
            care: None,
        }
    }

    fn record_line(index: usize, r: &InjectionRecord) -> String {
        let mut s = String::from("{\"kind\":\"record\"");
        push_field_u64(&mut s, "index", index as u64);
        push_record_fields(&mut s, r);
        s.push('}');
        s
    }

    #[test]
    fn scan_matches_run_contexts_and_tolerates_torn_tails() {
        let dir = std::env::temp_dir().join(format!("carestore-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let _ = std::fs::remove_file(&path);

        let cfg = CampaignConfig { seed: 7, injections: 4, ..CampaignConfig::default() };
        let other = CampaignConfig { seed: 8, ..cfg };
        let w = LogWriter::open_append(&path).unwrap();
        w.run_header(&other, "k");
        w.append_line(&record_line(0, &rec(99))); // other seed: must not load
        w.run_header(&cfg, "k");
        w.append_line(&record_line(0, &rec(1)));
        w.append_line(&record_line(2, &rec(2)));
        w.complete(&cfg);
        // A torn final line (kill mid-append).
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"kind\":\"record\",\"ind").unwrap();
        }
        assert!(!w.failed());

        let sig = run_signature(&cfg);
        let scan = scan_log(&path, cfg.model, cfg.seed, &sig).unwrap();
        assert_eq!(scan.covered, 4);
        assert_eq!(scan.corrupt, 1);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[&0], rec(1));
        assert_eq!(scan.records[&2], rec(2));

        // Different cfg signature: nothing matches, covered stays 0.
        let care_cfg = CampaignConfig { evaluate_care: true, ..cfg };
        let scan = scan_log(&path, cfg.model, cfg.seed, &run_signature(&care_cfg)).unwrap();
        assert_eq!(scan.covered, 0);
        assert!(scan.records.is_empty());

        // Missing file: clean empty scan.
        let scan = scan_log(&dir.join("absent.jsonl"), cfg.model, 7, &sig).unwrap();
        assert_eq!((scan.covered, scan.records.len(), scan.corrupt), (0, 0, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
