//! The [`InjectionRecord`] JSON field codec — one encoding shared by the
//! store's record log and careserve's wire protocol (the proto's `record`
//! frames delegate here), so the two can never drift apart.
//!
//! The JSON dialect is the telemetry crate's: hand-rolled escaping via
//! [`telemetry::push_json_str`] / [`telemetry::push_json_f64`], parsing
//! via [`telemetry::parse_json`]. [`telemetry::Json`] holds numbers as
//! `f64`, so `u64` values ride as plain numbers while exactly
//! representable and as decimal strings beyond 2⁵³ ([`push_u64`] /
//! [`get_u64`]); floats use the shortest-round-trip renderer, which
//! parses back to identical bits. The round-trip is exact: decoding an
//! encoded record reproduces it bit for bit.

use faultsim::{
    CareResult, InjectedInto, InjectionPoint, InjectionRecord, Outcome, Signal, StepSplit,
};
use safeguard::DeclineKind;
use simx::ModuleId;
use telemetry::{push_json_f64, push_json_str, Json};
use tinyir::FuncId;

/// Largest u64 exactly representable as an f64-backed JSON number.
const MAX_SAFE_JSON_INT: u64 = 1 << 53;

/// Append `v` as a JSON value that survives the f64-backed parser: a
/// number while exact, a decimal string beyond 2⁵³.
pub fn push_u64(out: &mut String, v: u64) {
    if v <= MAX_SAFE_JSON_INT {
        out.push_str(&v.to_string());
    } else {
        out.push('"');
        out.push_str(&v.to_string());
        out.push('"');
    }
}

/// Decode a `u64` field written by [`push_u64`] (number or string form).
pub fn get_u64(v: &Json, key: &str) -> Option<u64> {
    match v.get(key)? {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_SAFE_JSON_INT as f64 => {
            Some(*n as u64)
        }
        Json::Str(s) => s.parse().ok(),
        _ => None,
    }
}

/// `,"key":"val"` appended to an open object.
pub fn push_field_str(out: &mut String, key: &str, val: &str) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    push_json_str(out, val);
}

/// `,"key":<u64>` appended to an open object (via [`push_u64`]).
pub fn push_field_u64(out: &mut String, key: &str, val: u64) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    push_u64(out, val);
}

/// `,"key":<f64>` appended to an open object (shortest round-trip form).
pub fn push_field_f64(out: &mut String, key: &str, val: f64) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    push_json_f64(out, val);
}

/// `,"key":true|false` appended to an open object.
pub fn push_field_bool(out: &mut String, key: &str, val: bool) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    out.push_str(if val { "true" } else { "false" });
}

/// Parse an [`Outcome`] wire name (inverse of [`Outcome::name`]).
pub fn parse_outcome(s: &str) -> Option<Outcome> {
    Some(match s {
        "benign" => Outcome::Benign,
        "sdc" => Outcome::Sdc,
        "hang" => Outcome::Hang,
        "segv" => Outcome::SoftFailure(Signal::Segv),
        "bus" => Outcome::SoftFailure(Signal::Bus),
        "abort" => Outcome::SoftFailure(Signal::Abort),
        "signal_other" => Outcome::SoftFailure(Signal::Other),
        _ => return None,
    })
}

/// Parse a [`DeclineKind`] short name.
pub fn parse_decline(s: &str) -> Option<DeclineKind> {
    DeclineKind::ALL.into_iter().find(|d| d.short_name() == s)
}

/// Append one record's fields to an already-open JSON object (the caller
/// owns the `{"kind":...}` framing and the closing brace).
pub fn push_record_fields(out: &mut String, r: &InjectionRecord) {
    push_field_u64(out, "module", r.point.module.0 as u64);
    push_field_u64(out, "func", r.point.func.0 as u64);
    push_field_u64(out, "inst", r.point.inst as u64);
    push_field_u64(out, "nth", r.point.nth);
    let (tk, tv) = match r.target {
        InjectedInto::Reg(id) => ("reg", id as u64),
        InjectedInto::Mem(addr) => ("mem", addr),
        InjectedInto::Pc => ("pc", 0),
        InjectedInto::Skipped => ("skipped", 0),
    };
    push_field_str(out, "target", tk);
    push_field_u64(out, "target_val", tv);
    push_field_str(out, "outcome", r.outcome.name());
    if let Some(lat) = r.latency {
        push_field_u64(out, "latency", lat);
    }
    push_field_u64(out, "sim_steps", r.sim_steps);
    push_field_u64(out, "prefix", r.split.prefix);
    push_field_u64(out, "suffix", r.split.suffix);
    push_field_u64(out, "care_steps", r.split.care);
    if let Some(c) = &r.care {
        push_field_bool(out, "covered", c.covered);
        push_field_u64(out, "recoveries", c.recoveries);
        push_field_f64(out, "recovery_ms", c.recovery_ms);
        if let Some(d) = c.decline {
            push_field_str(out, "decline", d.short_name());
        }
    }
}

/// Decode the record fields written by [`push_record_fields`] out of a
/// parsed object (which may carry extra fields — `kind`, `index`,
/// `job_id` — that are simply ignored here).
pub fn record_from_json(v: &Json) -> Result<InjectionRecord, String> {
    let want = |key: &str| format!("record missing {key:?}");
    let get_str = |key: &str| v.get(key).and_then(Json::as_str);
    let get_usize = |key: &str| get_u64(v, key).map(|n| n as usize);
    let point = InjectionPoint {
        module: ModuleId(get_u64(v, "module").ok_or_else(|| want("module"))? as u32),
        func: FuncId(get_u64(v, "func").ok_or_else(|| want("func"))? as u32),
        inst: get_usize("inst").ok_or_else(|| want("inst"))?,
        nth: get_u64(v, "nth").ok_or_else(|| want("nth"))?,
    };
    let tv = get_u64(v, "target_val").unwrap_or(0);
    let target = match get_str("target").ok_or_else(|| want("target"))? {
        "reg" => InjectedInto::Reg(tv as u8),
        "mem" => InjectedInto::Mem(tv),
        "pc" => InjectedInto::Pc,
        "skipped" => InjectedInto::Skipped,
        other => return Err(format!("unknown injection target {other:?}")),
    };
    let outcome = parse_outcome(get_str("outcome").ok_or_else(|| want("outcome"))?)
        .ok_or_else(|| "unknown outcome".to_string())?;
    let care = match v.get("covered") {
        Some(Json::Bool(covered)) => Some(CareResult {
            covered: *covered,
            recoveries: get_u64(v, "recoveries").ok_or_else(|| want("recoveries"))?,
            recovery_ms: v
                .get("recovery_ms")
                .and_then(Json::as_f64)
                .ok_or_else(|| want("recovery_ms"))?,
            decline: match get_str("decline") {
                Some(d) => Some(parse_decline(d).ok_or_else(|| format!("unknown decline {d:?}"))?),
                None => None,
            },
        }),
        None => None,
        Some(_) => return Err("\"covered\" must be a bool".to_string()),
    };
    Ok(InjectionRecord {
        point,
        target,
        outcome,
        latency: get_u64(v, "latency"),
        sim_steps: get_u64(v, "sim_steps").ok_or_else(|| want("sim_steps"))?,
        split: StepSplit {
            prefix: get_u64(v, "prefix").ok_or_else(|| want("prefix"))?,
            suffix: get_u64(v, "suffix").ok_or_else(|| want("suffix"))?,
            care: get_u64(v, "care_steps").ok_or_else(|| want("care_steps"))?,
        },
        care,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::parse_json;

    #[test]
    fn record_fields_round_trip_exactly() {
        let records = vec![
            InjectionRecord {
                point: InjectionPoint { module: ModuleId(1), func: FuncId(2), inst: 3, nth: 4 },
                target: InjectedInto::Mem(u64::MAX - 1),
                outcome: Outcome::SoftFailure(Signal::Segv),
                latency: Some(17),
                sim_steps: (1 << 53) + 99,
                split: StepSplit { prefix: 10, suffix: 20, care: 30 },
                care: Some(CareResult {
                    covered: false,
                    recoveries: 2,
                    recovery_ms: 0.1 + 0.2,
                    decline: Some(DeclineKind::Hang),
                }),
            },
            InjectionRecord {
                point: InjectionPoint { module: ModuleId(0), func: FuncId(0), inst: 0, nth: 0 },
                target: InjectedInto::Skipped,
                outcome: Outcome::Benign,
                latency: None,
                sim_steps: 0,
                split: StepSplit::default(),
                care: None,
            },
        ];
        for r in &records {
            let mut s = String::from("{\"kind\":\"record\",\"index\":7");
            push_record_fields(&mut s, r);
            s.push('}');
            let v = parse_json(&s).unwrap();
            assert_eq!(&record_from_json(&v).unwrap(), r);
        }
    }

    #[test]
    fn u64_fields_round_trip_above_53_bits() {
        for v in [0u64, 1, (1 << 53) - 1, 1 << 53, (1 << 53) + 1, u64::MAX] {
            let mut s = String::from("{\"kind\":\"t\"");
            push_field_u64(&mut s, "x", v);
            s.push('}');
            let j = parse_json(&s).unwrap();
            assert_eq!(get_u64(&j, "x"), Some(v), "round-trip of {v}");
        }
    }
}
