//! Cross-run triage: dedup and cluster every outcome record in a store
//! by `(outcome kind, decline reason, fault site)`.
//!
//! A long-lived store accumulates records across many campaigns, seeds
//! and module versions; triage answers "what keeps happening, and
//! where?" without re-running anything. The fault *site* is the static
//! instruction `(module, func, inst)` — the `nth` execution ordinal is
//! deliberately dropped, because a thousand injections into different
//! iterations of one hot load are one cluster, not a thousand.

use crate::record::{get_u64, parse_outcome};
use crate::store::Store;
use std::collections::BTreeMap;
use std::io::BufRead;
use telemetry::{parse_json, Json};

/// One triage cluster: a distinct `(kind, decline, site)` with its
/// population. Counters saturate on merge — a store scan sums across
/// arbitrarily many runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriageCluster {
    /// Outcome wire name (`benign`, `sdc`, `hang`, `segv`, ...).
    pub outcome: String,
    /// CARE decline short name, or `-` when covered / not evaluated.
    pub decline: String,
    /// Fault site `(module, func, inst)`.
    pub site: (u64, u64, u64),
    /// Records in this cluster.
    pub count: u64,
    /// Distinct campaign logs contributing.
    pub campaigns: u64,
}

/// Scan every log in the store and cluster its records. Clusters come
/// back most-populous first (ties broken by site for determinism).
/// Unparseable lines are skipped, mirroring [`crate::log::scan_log`].
pub fn triage(store: &Store) -> std::io::Result<Vec<TriageCluster>> {
    type ClusterKey = (String, String, (u64, u64, u64));
    // key → (count, campaigns-seen-in)
    let mut clusters: BTreeMap<ClusterKey, (u64, u64)> = BTreeMap::new();
    for path in store.log_files()? {
        let file = std::fs::File::open(&path)?;
        let mut seen_here: std::collections::HashSet<ClusterKey> =
            std::collections::HashSet::new();
        for line in std::io::BufReader::new(file).lines() {
            let line = line?;
            let Ok(v) = parse_json(&line) else { continue };
            if v.get("kind").and_then(Json::as_str) != Some("record") {
                continue;
            }
            let Some(outcome) = v.get("outcome").and_then(Json::as_str) else { continue };
            if parse_outcome(outcome).is_none() {
                continue;
            }
            let (Some(m), Some(f), Some(i)) =
                (get_u64(&v, "module"), get_u64(&v, "func"), get_u64(&v, "inst"))
            else {
                continue;
            };
            let decline = v.get("decline").and_then(Json::as_str).unwrap_or("-").to_string();
            let key = (outcome.to_string(), decline, (m, f, i));
            let entry = clusters.entry(key.clone()).or_insert((0, 0));
            entry.0 = entry.0.saturating_add(1);
            if seen_here.insert(key) {
                entry.1 = entry.1.saturating_add(1);
            }
        }
    }
    let mut out: Vec<TriageCluster> = clusters
        .into_iter()
        .map(|((outcome, decline, site), (count, campaigns))| TriageCluster {
            outcome,
            decline,
            site,
            count,
            campaigns,
        })
        .collect();
    out.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.site.cmp(&b.site)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{push_field_u64, push_record_fields};
    use faultsim::{
        InjectedInto, InjectionPoint, InjectionRecord, Outcome, Signal, StepSplit,
    };
    use simx::ModuleId;
    use tinyir::FuncId;

    fn rec(inst: usize, nth: u64, outcome: Outcome) -> InjectionRecord {
        InjectionRecord {
            point: InjectionPoint { module: ModuleId(0), func: FuncId(1), inst, nth },
            target: InjectedInto::Reg(0),
            outcome,
            latency: None,
            sim_steps: 1,
            split: StepSplit { prefix: 1, suffix: 0, care: 0 },
            care: None,
        }
    }

    fn line(index: usize, r: &InjectionRecord) -> String {
        let mut s = String::from("{\"kind\":\"record\"");
        push_field_u64(&mut s, "index", index as u64);
        push_record_fields(&mut s, r);
        s.push('}');
        s.push('\n');
        s
    }

    #[test]
    fn clusters_collapse_nth_and_count_across_files() {
        let dir =
            std::env::temp_dir().join(format!("carestore-triage-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let segv = Outcome::SoftFailure(Signal::Segv);
        let mut a = String::new();
        a.push_str(&line(0, &rec(5, 1, segv)));
        a.push_str(&line(1, &rec(5, 9, segv))); // same site, different nth
        a.push_str(&line(2, &rec(6, 1, Outcome::Benign)));
        a.push_str("not json\n");
        std::fs::write(dir.join("a.jsonl"), a).unwrap();
        std::fs::write(dir.join("b.jsonl"), line(0, &rec(5, 3, segv))).unwrap();

        let clusters = triage(&store).unwrap();
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].outcome, "segv");
        assert_eq!(clusters[0].site, (0, 1, 5));
        assert_eq!(clusters[0].count, 3, "nth must not split the cluster");
        assert_eq!(clusters[0].campaigns, 2);
        assert_eq!(clusters[1].outcome, "benign");
        assert_eq!(clusters[1].count, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
