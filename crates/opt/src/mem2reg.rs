//! Promotion of stack slots to SSA registers (LLVM's `mem2reg`).
//!
//! This is the pass that creates the paper's `-O0` vs `-O1` behavioural
//! split for CARE:
//!
//! * under `-O0` every local lives in a stack slot, so its value is always
//!   retrievable from memory at recovery time;
//! * after promotion, induction variables and accumulators become SSA values
//!   that the backend keeps in registers and updates **in place** — if a
//!   fault corrupts one of those registers, Safeguard fetches the corrupted
//!   value as a kernel parameter and recovery fails (paper §5.2/§5.6:
//!   HPCCG's 35 % coverage drop at `-O1`);
//! * conversely, promotion deletes the redundant store/load pairs of
//!   Figure 8 case 2, *extending* recovery-kernel coverage scope (miniMD's
//!   +7 %).

use analysis::{Cfg, DomTree};
use std::collections::{HashMap, HashSet};
use tinyir::{BlockId, Function, Instr, InstrId, InstrKind, Module, Ty, Value};

/// Run mem2reg on every defined function. Returns the number of promoted
/// allocas.
pub fn run(module: &mut Module) -> usize {
    let mut promoted = 0;
    for f in &mut module.funcs {
        if !f.is_decl {
            promoted += promote_function(f);
        }
    }
    promoted
}

/// Compute dominance frontiers from a dominator tree.
fn dominance_frontiers(cfg: &Cfg, dt: &DomTree) -> Vec<HashSet<BlockId>> {
    let n = cfg.len();
    let mut df: Vec<HashSet<BlockId>> = vec![HashSet::new(); n];
    for b in 0..n {
        let bid = BlockId(b as u32);
        if cfg.preds[b].len() < 2 {
            continue;
        }
        let Some(idom_b) = dt.idom[b] else { continue };
        for &p in &cfg.preds[b] {
            let mut runner = p;
            while runner != idom_b {
                df[runner.0 as usize].insert(bid);
                match dt.idom[runner.0 as usize] {
                    Some(next) => runner = next,
                    None => break,
                }
            }
        }
    }
    df
}

/// Is this alloca promotable? Scalar (count == 1), and used only as the
/// direct pointer of loads/stores (never stored *as a value*, passed to a
/// call, or offset by a gep).
fn promotable(f: &Function, alloca: InstrId) -> bool {
    let InstrKind::Alloca { count, .. } = f.instr(alloca).kind else {
        return false;
    };
    if count != 1 {
        return false;
    }
    for (_, block) in f.block_iter() {
        for &iid in &block.instrs {
            let instr = f.instr(iid);
            for v in instr.operands() {
                if v != Value::Instr(alloca) {
                    continue;
                }
                match &instr.kind {
                    InstrKind::Load { ptr, .. } if *ptr == v => {}
                    InstrKind::Store { ptr, val } if *ptr == v && *val != v => {}
                    _ => return false,
                }
            }
        }
    }
    true
}

fn promote_function(f: &mut Function) -> usize {
    let cfg = Cfg::new(f);
    let dt = DomTree::new(&cfg);
    let df = dominance_frontiers(&cfg, &dt);

    let allocas: Vec<InstrId> = f
        .instrs
        .iter()
        .enumerate()
        .filter_map(|(i, ins)| {
            matches!(ins.kind, InstrKind::Alloca { .. }).then_some(InstrId(i as u32))
        })
        .filter(|&a| {
            // Must still be block-resident (not already removed).
            f.block_iter().any(|(_, b)| b.instrs.contains(&a))
        })
        .filter(|&a| promotable(f, a))
        .collect();
    if allocas.is_empty() {
        return 0;
    }
    let alloca_set: HashSet<InstrId> = allocas.iter().copied().collect();
    let elem_ty: HashMap<InstrId, Ty> = allocas
        .iter()
        .map(|&a| match f.instr(a).kind {
            InstrKind::Alloca { elem_ty, .. } => (a, elem_ty),
            _ => unreachable!(),
        })
        .collect();

    // -- phi insertion at iterated dominance frontiers ----------------------
    // phi_for[(block, alloca)] = phi instr id
    let mut phi_for: HashMap<(BlockId, InstrId), InstrId> = HashMap::new();
    let owner = f.instr_blocks();
    for &a in &allocas {
        let mut def_blocks: Vec<BlockId> = Vec::new();
        for (bid, block) in f.block_iter() {
            for &iid in &block.instrs {
                if let InstrKind::Store { ptr, .. } = &f.instr(iid).kind {
                    if *ptr == Value::Instr(a) {
                        def_blocks.push(bid);
                    }
                }
            }
        }
        let mut work: Vec<BlockId> = def_blocks.clone();
        let mut has_phi: HashSet<BlockId> = HashSet::new();
        while let Some(b) = work.pop() {
            for &y in &df[b.0 as usize] {
                if has_phi.insert(y) {
                    // Create an empty phi; incomings filled during renaming.
                    let loc = f.instr(a).loc;
                    let id = InstrId(f.instrs.len() as u32);
                    f.instrs.push(Instr {
                        kind: InstrKind::Phi { incomings: vec![], ty: elem_ty[&a] },
                        loc,
                    });
                    f.blocks[y.0 as usize].instrs.insert(0, id);
                    phi_for.insert((y, a), id);
                    work.push(y);
                }
            }
        }
    }
    let _ = owner;

    // -- renaming over the dominator tree -----------------------------------
    let mut replacement: HashMap<InstrId, Value> = HashMap::new(); // load -> value
    let mut to_remove: HashSet<InstrId> = HashSet::new();
    let mut stacks: HashMap<InstrId, Vec<Value>> = allocas
        .iter()
        .map(|&a| {
            // Uninitialised reads yield a zero of the right type, matching
            // the zero-filled simulated stack.
            let zero = match elem_ty[&a] {
                Ty::F32 => Value::ConstFloat(0.0, Ty::F32),
                Ty::F64 => Value::ConstFloat(0.0, Ty::F64),
                Ty::Ptr => Value::ConstNull,
                t => Value::ConstInt(0, t),
            };
            (a, vec![zero])
        })
        .collect();

    // Dominator-tree children.
    let mut dom_children: Vec<Vec<BlockId>> = vec![Vec::new(); cfg.len()];
    for b in 0..cfg.len() {
        if let Some(p) = dt.idom[b] {
            dom_children[p.0 as usize].push(BlockId(b as u32));
        }
    }

    // Iterative DFS carrying push counts for stack unwinding.
    enum Step {
        Visit(BlockId),
        Unwind(Vec<(InstrId, usize)>),
    }
    let mut stack = vec![Step::Visit(f.entry())];
    while let Some(step) = stack.pop() {
        match step {
            Step::Unwind(pops) => {
                for (a, n) in pops {
                    let s = stacks.get_mut(&a).unwrap();
                    s.truncate(s.len() - n);
                }
            }
            Step::Visit(b) => {
                let mut pushes: HashMap<InstrId, usize> = HashMap::new();
                // Phis inserted for allocas at this block head define values.
                let block_instrs = f.blocks[b.0 as usize].instrs.clone();
                for &iid in &block_instrs {
                    if let Some((_, a)) = phi_for
                        .iter()
                        .find(|((bb, _), &pid)| *bb == b && pid == iid)
                        .map(|(k, _)| *k)
                    {
                        stacks.get_mut(&a).unwrap().push(Value::Instr(iid));
                        *pushes.entry(a).or_default() += 1;
                    }
                }
                for &iid in &block_instrs {
                    match f.instr(iid).kind.clone() {
                        InstrKind::Load { ptr: Value::Instr(a), .. }
                            if alloca_set.contains(&a) =>
                        {
                            let cur = *stacks[&a].last().unwrap();
                            replacement.insert(iid, cur);
                            to_remove.insert(iid);
                        }
                        InstrKind::Store { ptr: Value::Instr(a), val }
                            if alloca_set.contains(&a) =>
                        {
                            stacks.get_mut(&a).unwrap().push(val);
                            *pushes.entry(a).or_default() += 1;
                            to_remove.insert(iid);
                        }
                        _ => {}
                    }
                }
                // Fill successor phis.
                for &s in &cfg.succs[b.0 as usize] {
                    for (&(bb, a), &pid) in &phi_for {
                        if bb != s {
                            continue;
                        }
                        let cur = *stacks[&a].last().unwrap();
                        if let InstrKind::Phi { incomings, .. } = &mut f.instr_mut(pid).kind {
                            incomings.push((b, cur));
                        }
                    }
                }
                stack.push(Step::Unwind(pushes.into_iter().collect()));
                for &c in dom_children[b.0 as usize].iter().rev() {
                    stack.push(Step::Visit(c));
                }
            }
        }
    }

    // -- apply replacements (resolving chains) -------------------------------
    let resolve = |mut v: Value| -> Value {
        let mut guard = 0;
        while let Value::Instr(id) = v {
            match replacement.get(&id) {
                Some(&next) => {
                    v = next;
                    guard += 1;
                    assert!(guard < 1_000_000, "replacement cycle");
                }
                None => break,
            }
        }
        v
    };
    for instr in &mut f.instrs {
        instr.map_operands(resolve);
    }

    // -- delete promoted instructions ----------------------------------------
    for &a in &allocas {
        to_remove.insert(a);
    }
    for block in &mut f.blocks {
        block.instrs.retain(|i| !to_remove.contains(i));
    }
    allocas.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::builder::ModuleBuilder;
    use tinyir::interp::{layout_globals, Interp};
    use tinyir::mem::PagedMemory;
    use tinyir::verify::verify_module;

    fn run_fn(m: &Module, name: &str, args: &[u64]) -> Option<u64> {
        let mut mem = PagedMemory::new();
        let globals = layout_globals(m, &mut mem, 0x1000_0000);
        let mut i = Interp::new(
            m,
            &mut mem,
            &globals,
            0x7f00_0000_0000,
            0x7f00_0100_0000,
            0x6000_0000_0000,
            1_000_000_000,
        );
        i.call(m.func_by_name(name).unwrap(), args).unwrap()
    }

    fn accumulator_module() -> Module {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("sumsq", vec![Ty::I64], Some(Ty::I64), |fb| {
            let acc = fb.alloca(Ty::I64, 1);
            fb.store(Value::i64(0), acc);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
                let sq = fb.mul(iv, iv, Ty::I64);
                let a = fb.load(acc, Ty::I64);
                let s = fb.add(a, sq, Ty::I64);
                fb.store(s, acc);
            });
            let r = fb.load(acc, Ty::I64);
            fb.ret(Some(r));
        });
        mb.finish()
    }

    #[test]
    fn promotes_accumulator_and_preserves_semantics() {
        let mut m = accumulator_module();
        let before = run_fn(&m, "sumsq", &[10]);
        let n = run(&mut m);
        assert_eq!(n, 1, "one alloca promoted");
        verify_module(&m).unwrap();
        let after = run_fn(&m, "sumsq", &[10]);
        assert_eq!(before, after);
        // No loads/stores remain: the accumulator is pure SSA now.
        assert_eq!(m.funcs[0].mem_access_instrs().len(), 0);
        // A new phi must exist in the loop header (accumulator) besides the
        // induction variable phi.
        let phis = m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|&&i| matches!(m.funcs[0].instr(i).kind, InstrKind::Phi { .. }))
            .count();
        assert_eq!(phis, 2);
    }

    #[test]
    fn diamond_gets_join_phi() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("absv", vec![Ty::I64], Some(Ty::I64), |fb| {
            let out = fb.alloca(Ty::I64, 1);
            let neg = fb.icmp(tinyir::ICmp::Slt, fb.arg(0), Value::i64(0));
            fb.if_then_else(
                neg,
                |fb| {
                    let n = fb.sub(Value::i64(0), fb.arg(0), Ty::I64);
                    fb.store(n, out);
                },
                |fb| fb.store(fb.arg(0), out),
            );
            let r = fb.load(out, Ty::I64);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        assert_eq!(run_fn(&m, "absv", &[(-5i64) as u64]), Some(5));
        run(&mut m);
        verify_module(&m).unwrap();
        assert_eq!(run_fn(&m, "absv", &[(-5i64) as u64]), Some(5));
        assert_eq!(run_fn(&m, "absv", &[7]), Some(7));
        assert_eq!(m.funcs[0].mem_access_instrs().len(), 0);
    }

    #[test]
    fn escaped_allocas_are_not_promoted() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let callee = mb.declare("esc", vec![Ty::Ptr], None);
        mb.define("escuser", vec![], Some(Ty::I64), |fb| {
            let slot = fb.alloca(Ty::I64, 1);
            fb.store(Value::i64(3), slot);
            fb.call(callee, vec![slot]);
            let r = fb.load(slot, Ty::I64);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        assert_eq!(run(&mut m), 0, "escaped alloca must stay in memory");
    }

    #[test]
    fn array_allocas_are_not_promoted() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("arr", vec![], Some(Ty::I64), |fb| {
            let a = fb.alloca(Ty::I64, 8);
            fb.store_elem(Value::i64(9), a, Value::i64(2), Ty::I64);
            let r = fb.load_elem(a, Value::i64(2), Ty::I64);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        assert_eq!(run(&mut m), 0);
        assert_eq!(run_fn(&m, "arr", &[]), Some(9));
    }

    #[test]
    fn uninitialised_read_becomes_zero() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("uninit", vec![], Some(Ty::I64), |fb| {
            let slot = fb.alloca(Ty::I64, 1);
            let r = fb.load(slot, Ty::I64);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        run(&mut m);
        verify_module(&m).unwrap();
        assert_eq!(run_fn(&m, "uninit", &[]), Some(0));
    }
}
