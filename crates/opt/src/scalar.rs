//! Scalar clean-up passes: constant folding, local CSE, store-to-load
//! forwarding, phi simplification and dead-code elimination.
//!
//! Together with `mem2reg` these form the `-O1` pipeline. Store-to-load
//! forwarding is the transformation of the paper's Figure 8: eliminating a
//! redundant memory round-trip extends the coverage scope of downstream
//! recovery kernels because the forwarded computation becomes part of the
//! backward slice instead of terminating at a load.

use std::collections::HashMap;
use tinyir::interp::{const_bits, eval_bin, eval_cast, eval_fcmp, eval_icmp, float_of_bits};
use tinyir::{
    Callee, Function, InstrId, InstrKind, Module, Ty, Value,
};

/// Fold constant expressions. Returns the number of folds performed.
pub fn const_fold(module: &mut Module) -> usize {
    let mut total = 0;
    for f in &mut module.funcs {
        if f.is_decl {
            continue;
        }
        loop {
            let n = const_fold_function(f);
            total += n;
            if n == 0 {
                break;
            }
        }
    }
    total
}

fn const_value(bits: u64, ty: Ty) -> Value {
    if ty.is_float() {
        Value::ConstFloat(float_of_bits(bits, ty), ty)
    } else if ty.is_ptr() {
        if bits == 0 {
            Value::ConstNull
        } else {
            Value::ConstInt(bits as i64, Ty::I64)
        }
    } else {
        Value::ConstInt(tinyir::interp::sext_bits(bits, ty), ty)
    }
}

fn const_fold_function(f: &mut Function) -> usize {
    let mut replacement: HashMap<InstrId, Value> = HashMap::new();
    // Only block-resident instructions: the arena may hold orphans already
    // removed by earlier passes.
    let resident: Vec<InstrId> = f
        .blocks
        .iter()
        .flat_map(|b| b.instrs.iter().copied())
        .collect();
    for iid in resident {
        let instr = &f.instrs[iid.0 as usize];
        match &instr.kind {
            InstrKind::Bin { op, lhs, rhs, ty } => {
                if let (Some(l), Some(r)) = (const_bits(*lhs), const_bits(*rhs)) {
                    if let Ok(bits) = eval_bin(*op, l, r, *ty) {
                        replacement.insert(iid, const_value(bits, *ty));
                    }
                }
            }
            InstrKind::Icmp { pred, lhs, rhs } => {
                if let (Some(l), Some(r)) = (const_bits(*lhs), const_bits(*rhs)) {
                    let ty = tinyir::module::value_ty(f, *lhs).unwrap_or(Ty::I64);
                    let b = eval_icmp(*pred, l, r, ty);
                    replacement.insert(iid, Value::ConstInt(b as i64, Ty::I1));
                }
            }
            InstrKind::Fcmp { pred, lhs, rhs } => {
                if let (Some(l), Some(r)) = (const_bits(*lhs), const_bits(*rhs)) {
                    let ty = tinyir::module::value_ty(f, *lhs).unwrap_or(Ty::F64);
                    let b = eval_fcmp(*pred, float_of_bits(l, ty), float_of_bits(r, ty));
                    replacement.insert(iid, Value::ConstInt(b as i64, Ty::I1));
                }
            }
            InstrKind::Cast { op, val, to } => {
                if let Some(v) = const_bits(*val) {
                    let from = tinyir::module::value_ty(f, *val).unwrap_or(Ty::I64);
                    let bits = eval_cast(*op, v, from, *to);
                    replacement.insert(iid, const_value(bits, *to));
                }
            }
            InstrKind::Select { cond, t, f: fv, .. } => {
                if let Some(c) = const_bits(*cond) {
                    replacement.insert(iid, if c & 1 != 0 { *t } else { *fv });
                }
            }
            _ => {}
        }
    }
    if replacement.is_empty() {
        return 0;
    }
    let count = replacement.len();
    for instr in &mut f.instrs {
        instr.map_operands(|v| match v {
            Value::Instr(id) => replacement.get(&id).copied().unwrap_or(v),
            other => other,
        });
    }
    // Remove the folded instructions from their blocks.
    for block in &mut f.blocks {
        block.instrs.retain(|i| !replacement.contains_key(i));
    }
    count
}

/// Simplify degenerate phis (single incoming, or all incomings identical).
pub fn simplify_phis(module: &mut Module) -> usize {
    let mut total = 0;
    for f in &mut module.funcs {
        if f.is_decl {
            continue;
        }
        loop {
            let mut replacement: HashMap<InstrId, Value> = HashMap::new();
            let resident: Vec<InstrId> = f
                .blocks
                .iter()
                .flat_map(|b| b.instrs.iter().copied())
                .collect();
            for iid in resident {
                let instr = &f.instrs[iid.0 as usize];
                if let InstrKind::Phi { incomings, .. } = &instr.kind {
                    if incomings.is_empty() {
                        continue;
                    }
                    let first = incomings[0].1;
                    let same = incomings
                        .iter()
                        .all(|(_, v)| *v == first || *v == Value::Instr(iid));
                    if same && first != Value::Instr(iid) {
                        replacement.insert(iid, first);
                    }
                }
            }
            if replacement.is_empty() {
                break;
            }
            total += replacement.len();
            for instr in &mut f.instrs {
                instr.map_operands(|v| match v {
                    Value::Instr(id) => replacement.get(&id).copied().unwrap_or(v),
                    other => other,
                });
            }
            for block in &mut f.blocks {
                block.instrs.retain(|i| !replacement.contains_key(i));
            }
        }
    }
    total
}

/// Key identifying a pure computation for CSE.
#[derive(PartialEq, Eq, Hash)]
enum CseKey {
    Bin(tinyir::BinOp, Value, Value, Ty),
    Icmp(tinyir::ICmp, Value, Value),
    Fcmp(tinyir::FCmp, Value, Value),
    Cast(tinyir::CastOp, Value, Ty),
    Gep(Value, Value, u32),
    Select(Value, Value, Value),
}

fn cse_key(kind: &InstrKind) -> Option<CseKey> {
    Some(match kind {
        InstrKind::Bin { op, lhs, rhs, ty } => CseKey::Bin(*op, *lhs, *rhs, *ty),
        InstrKind::Icmp { pred, lhs, rhs } => CseKey::Icmp(*pred, *lhs, *rhs),
        InstrKind::Fcmp { pred, lhs, rhs } => CseKey::Fcmp(*pred, *lhs, *rhs),
        InstrKind::Cast { op, val, to } => CseKey::Cast(*op, *val, *to),
        InstrKind::Gep { base, index, elem_size } => CseKey::Gep(*base, *index, *elem_size),
        InstrKind::Select { cond, t, f, .. } => CseKey::Select(*cond, *t, *f),
        _ => return None,
    })
}

/// Local (per-block) common-subexpression elimination over pure
/// instructions. Returns the number of instructions eliminated.
pub fn local_cse(module: &mut Module) -> usize {
    let mut total = 0;
    for f in &mut module.funcs {
        if f.is_decl {
            continue;
        }
        let mut replacement: HashMap<InstrId, Value> = HashMap::new();
        for block in &f.blocks {
            let mut seen: HashMap<CseKey, InstrId> = HashMap::new();
            for &iid in &block.instrs {
                if let Some(key) = cse_key(&f.instrs[iid.0 as usize].kind) {
                    match seen.get(&key) {
                        Some(&prev) => {
                            replacement.insert(iid, Value::Instr(prev));
                        }
                        None => {
                            seen.insert(key, iid);
                        }
                    }
                }
            }
        }
        if replacement.is_empty() {
            continue;
        }
        total += replacement.len();
        for instr in &mut f.instrs {
            instr.map_operands(|v| match v {
                Value::Instr(id) => replacement.get(&id).copied().unwrap_or(v),
                other => other,
            });
        }
        for block in &mut f.blocks {
            block.instrs.retain(|i| !replacement.contains_key(i));
        }
    }
    total
}

/// Forward stored values to later loads of the *same SSA address* within a
/// block when no store or call intervenes (conservatively alias-safe).
/// Models the redundancy elimination of the paper's Figure 8.
pub fn store_load_forward(module: &mut Module) -> usize {
    let mut total = 0;
    for f in &mut module.funcs {
        if f.is_decl {
            continue;
        }
        let mut replacement: HashMap<InstrId, Value> = HashMap::new();
        for block in &f.blocks {
            // address value -> available stored/loaded value
            let mut avail: HashMap<Value, Value> = HashMap::new();
            for &iid in &block.instrs {
                match &f.instrs[iid.0 as usize].kind {
                    InstrKind::Store { val, ptr } => {
                        // A store invalidates everything (no alias analysis),
                        // then makes its own value available.
                        avail.clear();
                        avail.insert(*ptr, *val);
                    }
                    InstrKind::Load { ptr, .. } => match avail.get(ptr) {
                        Some(&v) => {
                            replacement.insert(iid, v);
                        }
                        None => {
                            avail.insert(*ptr, Value::Instr(iid));
                        }
                    },
                    InstrKind::Call { .. } => avail.clear(),
                    _ => {}
                }
            }
        }
        if replacement.is_empty() {
            continue;
        }
        total += replacement.len();
        for instr in &mut f.instrs {
            instr.map_operands(|v| match v {
                Value::Instr(id) => replacement.get(&id).copied().unwrap_or(v),
                other => other,
            });
        }
        for block in &mut f.blocks {
            block.instrs.retain(|i| !replacement.contains_key(i));
        }
    }
    total
}

/// Remove pure instructions whose results are unused. Returns the number of
/// instructions removed.
pub fn dce(module: &mut Module) -> usize {
    let mut total = 0;
    for f in &mut module.funcs {
        if f.is_decl {
            continue;
        }
        loop {
            let mut used: Vec<bool> = vec![false; f.instrs.len()];
            for (_, block) in f.block_iter() {
                for &iid in &block.instrs {
                    for v in f.instr(iid).operands() {
                        if let Value::Instr(d) = v {
                            used[d.0 as usize] = true;
                        }
                    }
                }
            }
            let mut removed = 0;
            for block in &mut f.blocks {
                block.instrs.retain(|&iid| {
                    let instr = &f.instrs[iid.0 as usize];
                    let pure = match &instr.kind {
                        InstrKind::Bin { .. }
                        | InstrKind::Icmp { .. }
                        | InstrKind::Fcmp { .. }
                        | InstrKind::Cast { .. }
                        | InstrKind::Select { .. }
                        | InstrKind::Gep { .. }
                        | InstrKind::Phi { .. }
                        | InstrKind::Load { .. }
                        | InstrKind::Alloca { .. } => true,
                        InstrKind::Call { callee: Callee::Intrinsic(i), .. } => {
                            i.is_simple_math()
                        }
                        _ => false,
                    };
                    let keep = !pure || used[iid.0 as usize];
                    if !keep {
                        removed += 1;
                    }
                    keep
                });
            }
            total += removed;
            if removed == 0 {
                break;
            }
        }
    }
    total
}

/// Replace `Instr` placeholders left orphaned in the arena by removed
/// instructions with inert `ret void` markers is unnecessary — blocks no
/// longer reference them. This helper compacts statistics instead.
pub fn live_instruction_count(f: &Function) -> usize {
    f.live_instr_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::builder::ModuleBuilder;
    use tinyir::verify::verify_module;
    use tinyir::{ICmp, Instr};

    #[test]
    fn folds_constant_arithmetic() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("k", vec![], Some(Ty::I64), |fb| {
            let a = fb.add(Value::i64(2), Value::i64(3), Ty::I64);
            let b = fb.mul(a, Value::i64(4), Ty::I64);
            fb.ret(Some(b));
        });
        let mut m = mb.finish();
        let n = const_fold(&mut m);
        assert_eq!(n, 2);
        verify_module(&m).unwrap();
        // Only the ret remains.
        assert_eq!(m.funcs[0].live_instr_count(), 1);
        match &m.funcs[0].instr(*m.funcs[0].blocks[0].instrs.last().unwrap()).kind {
            InstrKind::Ret { val: Some(Value::ConstInt(20, Ty::I64)) } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn folding_preserves_division_traps() {
        // sdiv by constant zero must NOT be folded away (it traps at
        // runtime); eval_bin returns Err and we keep the instruction.
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("k", vec![], Some(Ty::I64), |fb| {
            let a = fb.sdiv(Value::i64(1), Value::i64(0), Ty::I64);
            fb.ret(Some(a));
        });
        let mut m = mb.finish();
        assert_eq!(const_fold(&mut m), 0);
    }

    #[test]
    fn cse_merges_repeated_geps() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("f", vec![Ty::Ptr, Ty::I64], Some(Ty::F64), |fb| {
            let a = fb.load_elem(fb.arg(0), fb.arg(1), Ty::F64);
            let b = fb.load_elem(fb.arg(0), fb.arg(1), Ty::F64);
            let s = fb.fadd(a, b, Ty::F64);
            fb.ret(Some(s));
        });
        let mut m = mb.finish();
        let n_gep_before = count_kind(&m, |k| matches!(k, InstrKind::Gep { .. }));
        assert_eq!(n_gep_before, 2);
        local_cse(&mut m);
        verify_module(&m).unwrap();
        assert_eq!(count_kind(&m, |k| matches!(k, InstrKind::Gep { .. })), 1);
    }

    #[test]
    fn store_load_forwarding_figure8() {
        // a-slot pattern: store x; load -> forwarded.
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_zeroed("cell", Ty::I64, 1);
        mb.define("f", vec![Ty::I64], Some(Ty::I64), |fb| {
            let p = fb.gep_ty(fb.global(g), Value::i64(0), Ty::I64);
            fb.store(fb.arg(0), p);
            let v = fb.load(p, Ty::I64); // forwarded
            let w = fb.add(v, Value::i64(1), Ty::I64);
            fb.ret(Some(w));
        });
        let mut m = mb.finish();
        let n = store_load_forward(&mut m);
        assert_eq!(n, 1);
        verify_module(&m).unwrap();
        assert_eq!(
            count_kind(&m, |k| matches!(k, InstrKind::Load { .. })),
            0,
            "load forwarded from store"
        );
    }

    #[test]
    fn forwarding_blocked_by_intervening_store() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_zeroed("cells", Ty::I64, 4);
        mb.define("f", vec![Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
            let p = fb.gep_ty(fb.global(g), Value::i64(0), Ty::I64);
            let q = fb.gep_ty(fb.global(g), fb.arg(1), Ty::I64);
            fb.store(fb.arg(0), p);
            fb.store(Value::i64(9), q); // may alias p
            let v = fb.load(p, Ty::I64); // must NOT be forwarded
            fb.ret(Some(v));
        });
        let mut m = mb.finish();
        assert_eq!(store_load_forward(&mut m), 0);
    }

    #[test]
    fn dce_removes_dead_chains() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("f", vec![Ty::I64], Some(Ty::I64), |fb| {
            let dead1 = fb.add(fb.arg(0), Value::i64(1), Ty::I64);
            let _dead2 = fb.mul(dead1, Value::i64(2), Ty::I64);
            fb.ret(Some(fb.arg(0)));
        });
        let mut m = mb.finish();
        let n = dce(&mut m);
        assert_eq!(n, 2, "whole dead chain removed across iterations");
        verify_module(&m).unwrap();
    }

    #[test]
    fn dce_keeps_stores_and_nonpure_calls() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_zeroed("out", Ty::I64, 1);
        mb.define("f", vec![Ty::I64], None, |fb| {
            fb.store_elem(fb.arg(0), fb.global(g), Value::i64(0), Ty::I64);
            let ok = fb.icmp(ICmp::Sge, fb.arg(0), Value::i64(0));
            fb.assert_cond(ok);
            fb.ret(None);
        });
        let mut m = mb.finish();
        dce(&mut m);
        assert!(count_kind(&m, |k| matches!(k, InstrKind::Store { .. })) == 1);
        assert!(count_kind(&m, |k| matches!(k, InstrKind::Call { .. })) == 1);
    }

    #[test]
    fn phi_simplification() {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![Ty::I64], Some(Ty::I64));
        let e = f.entry();
        let bb1 = f.add_block("next");
        f.push_instr(e, Instr::new(InstrKind::Br { target: bb1 }));
        let phi = f.push_instr(
            bb1,
            Instr::new(InstrKind::Phi { incomings: vec![(e, Value::Arg(0))], ty: Ty::I64 }),
        );
        f.push_instr(
            bb1,
            Instr::new(InstrKind::Ret { val: Some(Value::Instr(phi)) }),
        );
        m.add_func(f);
        assert_eq!(simplify_phis(&mut m), 1);
        verify_module(&m).unwrap();
    }

    fn count_kind(m: &Module, pred: impl Fn(&InstrKind) -> bool) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| {
                f.blocks
                    .iter()
                    .flat_map(|b| b.instrs.iter().map(|&i| &f.instrs[i.0 as usize].kind))
            })
            .filter(|k| pred(k))
            .count()
    }
}
