//! Function inlining for the `-O1` pipeline.
//!
//! Inlining matters to CARE beyond performance: Armor's extraction stops at
//! complex calls, so an address computation routed through a small helper
//! function is only recoverable up to the call result. Once the helper is
//! inlined, the backward slice crosses the former boundary and the recovery
//! kernel can recompute the whole index — the paper's "code optimization
//! extends the coverage scope" effect (§5.2).
//!
//! Inlined instructions receive **fresh debug locations**: the paper (§3.3)
//! requires unique `(file, line, col)` keys per memory access, and naive
//! inlining would duplicate the callee's tuples at every call site (the
//! "conflicts for some instructions that end up sharing the same debug
//! data" Armor must resolve).

use std::collections::HashMap;
use tinyir::{
    BlockId, Callee, DebugLoc, FuncId, Function, Instr, InstrId, InstrKind, Module,
    Value,
};

/// Default maximum callee size (live instructions) for inlining.
pub const INLINE_THRESHOLD: usize = 64;
/// Maximum inlines applied per caller per pass (growth bound).
const MAX_INLINES_PER_CALLER: usize = 16;

/// Run the inliner over the module. Returns the number of call sites
/// inlined.
pub fn run(module: &mut Module, threshold: usize) -> usize {
    // Next fresh debug line per file, module-wide.
    let mut next_line: u32 = module
        .funcs
        .iter()
        .flat_map(|f| f.instrs.iter())
        .filter_map(|i| i.loc.map(|l| l.line))
        .max()
        .unwrap_or(0)
        + 1;

    // Decide inlinable callees up front (small, defined, not directly
    // recursive).
    let inlinable: Vec<bool> = module
        .funcs
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            if f.is_decl || f.live_instr_count() > threshold {
                return false;
            }
            let self_id = FuncId(fi as u32);
            !f.blocks.iter().flat_map(|b| &b.instrs).any(|&iid| {
                matches!(
                    f.instr(iid).kind,
                    InstrKind::Call { callee: Callee::Func(c), .. } if c == self_id
                )
            })
        })
        .collect();

    let mut total = 0;
    let snapshot: Vec<Function> = module.funcs.clone();
    for caller in &mut module.funcs {
        if caller.is_decl {
            continue;
        }
        let mut budget = MAX_INLINES_PER_CALLER;
        loop {
            if budget == 0 {
                break;
            }
            let Some((bb, pos, callee_id)) = find_inlinable_call(caller, &inlinable) else {
                break;
            };
            inline_one(
                caller,
                bb,
                pos,
                &snapshot[callee_id.0 as usize],
                &mut next_line,
            );
            budget -= 1;
            total += 1;
        }
    }
    module.rebuild_indexes();
    total
}

fn find_inlinable_call(
    f: &Function,
    inlinable: &[bool],
) -> Option<(BlockId, usize, FuncId)> {
    for (bid, block) in f.block_iter() {
        for (pos, &iid) in block.instrs.iter().enumerate() {
            if let InstrKind::Call { callee: Callee::Func(c), .. } = f.instr(iid).kind {
                if inlinable.get(c.0 as usize).copied().unwrap_or(false) {
                    return Some((bid, pos, c));
                }
            }
        }
    }
    None
}

/// Inline the call at `caller.blocks[bb][pos]`, whose callee body is
/// `callee` (a pre-pass snapshot; callees are themselves already small).
fn inline_one(
    caller: &mut Function,
    bb: BlockId,
    pos: usize,
    callee: &Function,
    next_line: &mut u32,
) {
    let call_id = caller.blocks[bb.0 as usize].instrs[pos];
    let (args, _ret_ty) = match &caller.instr(call_id).kind {
        InstrKind::Call { args, ret_ty, .. } => (args.clone(), *ret_ty),
        _ => unreachable!("inline target is a call"),
    };
    let fresh_file = caller.instr(call_id).loc.map(|l| l.file).or_else(|| {
        callee
            .instrs
            .first()
            .and_then(|i| i.loc.map(|l| l.file))
    });

    // Split the containing block: `bb` keeps [0, pos), `cont` gets
    // (pos, ..] — including the original terminator.
    let cont = caller.add_block(format!("inline.cont.{}", call_id.0));
    let tail: Vec<InstrId> =
        caller.blocks[bb.0 as usize].instrs.drain(pos + 1..).collect();
    caller.blocks[bb.0 as usize].instrs.pop(); // drop the call itself
    caller.blocks[cont.0 as usize].instrs = tail;

    // Phis in the original successors referenced `bb`; the edge now comes
    // from `cont`.
    let succs: Vec<BlockId> = caller.blocks[cont.0 as usize]
        .instrs
        .last()
        .map(|&t| caller.instr(t).successors())
        .unwrap_or_default();
    for s in succs {
        let instrs = caller.blocks[s.0 as usize].instrs.clone();
        for iid in instrs {
            if let InstrKind::Phi { incomings, .. } = &mut caller.instr_mut(iid).kind {
                for (b, _) in incomings.iter_mut() {
                    if *b == bb {
                        *b = cont;
                    }
                }
            }
        }
    }

    // Clone callee blocks and instructions.
    let block_map: HashMap<BlockId, BlockId> = callee
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let nb = caller.add_block(format!("inl.{}.{}", call_id.0, b.name));
            (BlockId(i as u32), nb)
        })
        .collect();
    let mut value_map: HashMap<InstrId, InstrId> = HashMap::new();
    // First pass: allocate ids in callee arena order so intra-callee
    // references resolve regardless of block layout.
    for (i, instr) in callee.instrs.iter().enumerate() {
        let new_id = InstrId(caller.instrs.len() as u32);
        let mut cloned = instr.clone();
        // Fresh, unique debug locations (Armor key uniqueness).
        if let Some(file) = fresh_file {
            cloned.loc = Some(DebugLoc::new(file, *next_line, 1));
            *next_line += 1;
        }
        caller.instrs.push(cloned);
        value_map.insert(InstrId(i as u32), new_id);
    }
    // Rewrite the cloned instructions.
    let mut ret_edges: Vec<(BlockId, Option<Value>)> = Vec::new();
    for (old_bid, block) in callee.block_iter() {
        let new_bid = block_map[&old_bid];
        for &old_iid in &block.instrs {
            let new_iid = value_map[&old_iid];
            let mut kind = caller.instrs[new_iid.0 as usize].kind.clone();
            // Remap operands: args -> call arguments, instrs -> clones.
            let remap = |v: Value| -> Value {
                match v {
                    Value::Arg(a) => args[a as usize],
                    Value::Instr(id) => Value::Instr(value_map[&id]),
                    other => other,
                }
            };
            match &mut kind {
                InstrKind::Ret { val } => {
                    let mapped = val.map(remap);
                    ret_edges.push((new_bid, mapped));
                    kind = InstrKind::Br { target: cont };
                }
                other => {
                    let mut tmp = Instr::new(other.clone());
                    tmp.map_operands(remap);
                    // Remap phi incoming blocks and branch targets.
                    match &mut tmp.kind {
                        InstrKind::Phi { incomings, .. } => {
                            for (b, _) in incomings.iter_mut() {
                                *b = block_map[b];
                            }
                        }
                        InstrKind::Br { target } => *target = block_map[target],
                        InstrKind::CondBr { then_bb, else_bb, .. } => {
                            *then_bb = block_map[then_bb];
                            *else_bb = block_map[else_bb];
                        }
                        _ => {}
                    }
                    kind = tmp.kind;
                }
            }
            caller.instrs[new_iid.0 as usize].kind = kind;
            caller.blocks[new_bid.0 as usize].instrs.push(new_iid);
        }
    }

    // Terminate `bb` with a jump into the inlined entry.
    let entry_clone = block_map[&callee.entry()];
    let br_id = InstrId(caller.instrs.len() as u32);
    caller
        .instrs
        .push(Instr::new(InstrKind::Br { target: entry_clone }));
    caller.blocks[bb.0 as usize].instrs.push(br_id);

    // The call's result: single return value substitutes directly; multiple
    // returns merge through a phi at the head of `cont`.
    let result: Option<Value> = match ret_edges.len() {
        0 => None,
        1 => ret_edges[0].1,
        _ => {
            if ret_edges.iter().all(|(_, v)| v.is_none()) {
                None
            } else {
                let phi_id = InstrId(caller.instrs.len() as u32);
                let incomings: Vec<(BlockId, Value)> = ret_edges
                    .iter()
                    .map(|(b, v)| (*b, v.unwrap_or(Value::ConstInt(0, tinyir::Ty::I64))))
                    .collect();
                let ty = incomings
                    .first()
                    .and_then(|(_, v)| tinyir::module::value_ty(caller, *v))
                    .unwrap_or(tinyir::Ty::I64);
                let mut phi = Instr::new(InstrKind::Phi { incomings, ty });
                if let Some(file) = fresh_file {
                    phi.loc = Some(DebugLoc::new(file, *next_line, 1));
                    *next_line += 1;
                }
                caller.instrs.push(phi);
                caller.blocks[cont.0 as usize].instrs.insert(0, phi_id);
                Some(Value::Instr(phi_id))
            }
        }
    };
    if let Some(res) = result {
        for instr in &mut caller.instrs {
            instr.map_operands(|v| if v == Value::Instr(call_id) { res } else { v });
        }
    }

    // An empty `bb` prefix is fine (it holds at least the new Br); an empty
    // `cont` cannot happen because the original block had a terminator
    // after the call.
    debug_assert!(!caller.blocks[cont.0 as usize].instrs.is_empty());
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::builder::ModuleBuilder;
    use tinyir::interp::{layout_globals, Interp};
    use tinyir::mem::PagedMemory;
    use tinyir::verify::verify_module;
    use tinyir::{ICmp, Ty};

    fn run_fn(m: &Module, name: &str, args: &[u64]) -> Option<u64> {
        let mut mem = PagedMemory::new();
        let globals = layout_globals(m, &mut mem, 0x1000_0000);
        let mut i = Interp::new(
            m,
            &mut mem,
            &globals,
            0x7f00_0000_0000,
            0x7f00_0100_0000,
            0x6000_0000_0000,
            1_000_000_000,
        );
        i.call(m.func_by_name(name).unwrap(), args).unwrap()
    }

    #[test]
    fn inlines_straightline_helper() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let helper = mb.declare("triple", vec![Ty::I64], Some(Ty::I64));
        mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
            let a = fb.call(helper, vec![fb.arg(0)]);
            let b = fb.call(helper, vec![a]);
            fb.ret(Some(b));
        });
        mb.define("triple", vec![Ty::I64], Some(Ty::I64), |fb| {
            let r = fb.mul(fb.arg(0), Value::i64(3), Ty::I64);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        assert_eq!(run_fn(&m, "main", &[4]), Some(36));
        let n = run(&mut m, INLINE_THRESHOLD);
        assert_eq!(n, 2);
        verify_module(&m).unwrap();
        assert_eq!(run_fn(&m, "main", &[4]), Some(36));
        // No calls remain in main.
        let main = m.func_by_name("main").unwrap();
        let f = m.func(main);
        assert!(!f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|&i| matches!(f.instr(i).kind, InstrKind::Call { callee: Callee::Func(_), .. })));
    }

    #[test]
    fn inlines_branchy_helper_with_control_flow() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let absf = mb.declare("absv", vec![Ty::I64], Some(Ty::I64));
        mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
            let a = fb.call(absf, vec![fb.arg(0)]);
            let b = fb.add(a, Value::i64(1), Ty::I64);
            fb.ret(Some(b));
        });
        mb.define("absv", vec![Ty::I64], Some(Ty::I64), |fb| {
            let neg = fb.icmp(ICmp::Slt, fb.arg(0), Value::i64(0));
            let slot = fb.alloca(Ty::I64, 1);
            fb.if_then_else(
                neg,
                |fb| {
                    let n = fb.sub(Value::i64(0), fb.arg(0), Ty::I64);
                    fb.store(n, slot);
                },
                |fb| fb.store(fb.arg(0), slot),
            );
            let r = fb.load(slot, Ty::I64);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        let n = run(&mut m, INLINE_THRESHOLD);
        assert_eq!(n, 1);
        verify_module(&m).unwrap();
        assert_eq!(run_fn(&m, "main", &[(-7i64) as u64]), Some(8));
        assert_eq!(run_fn(&m, "main", &[7]), Some(8));
    }

    #[test]
    fn inlined_instructions_get_unique_debug_locations() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let g = mb.global_zeroed("arr", Ty::F64, 64);
        let helper = mb.declare("get", vec![Ty::I64], Some(Ty::F64));
        mb.define("main", vec![Ty::I64], Some(Ty::F64), |fb| {
            let a = fb.call(helper, vec![fb.arg(0)]);
            let i1 = fb.add(fb.arg(0), Value::i64(1), Ty::I64);
            let b = fb.call(helper, vec![i1]);
            let s = fb.fadd(a, b, Ty::F64);
            fb.ret(Some(s));
        });
        mb.define("get", vec![Ty::I64], Some(Ty::F64), |fb| {
            let v = fb.load_elem(fb.global(g), fb.arg(0), Ty::F64);
            fb.ret(Some(v));
        });
        let mut m = mb.finish();
        run(&mut m, INLINE_THRESHOLD);
        verify_module(&m).unwrap();
        // Every memory access across the module still has a unique loc.
        let mut locs = Vec::new();
        for f in &m.funcs {
            for acc in f.mem_access_instrs() {
                locs.push(f.instr(acc).loc.unwrap());
            }
        }
        let n = locs.len();
        locs.sort();
        locs.dedup();
        assert_eq!(locs.len(), n, "inlined accesses must not share debug keys");
    }

    #[test]
    fn recursive_functions_are_not_inlined() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let fact = mb.declare("fact", vec![Ty::I64], Some(Ty::I64));
        mb.define("fact", vec![Ty::I64], Some(Ty::I64), |fb| {
            let base = fb.icmp(ICmp::Sle, fb.arg(0), Value::i64(1));
            let out = fb.alloca(Ty::I64, 1);
            fb.if_then_else(
                base,
                |fb| fb.store(Value::i64(1), out),
                |fb| {
                    let n1 = fb.sub(fb.arg(0), Value::i64(1), Ty::I64);
                    let r = fb.call(fact, vec![n1]);
                    let p = fb.mul(r, fb.arg(0), Ty::I64);
                    fb.store(p, out);
                },
            );
            let r = fb.load(out, Ty::I64);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        assert_eq!(run(&mut m, INLINE_THRESHOLD), 0);
        assert_eq!(run_fn(&m, "fact", &[5]), Some(120));
    }

    #[test]
    fn large_functions_respect_threshold() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let big = mb.declare("big", vec![Ty::I64], Some(Ty::I64));
        mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
            let r = fb.call(big, vec![fb.arg(0)]);
            fb.ret(Some(r));
        });
        mb.define("big", vec![Ty::I64], Some(Ty::I64), |fb| {
            let mut v = fb.arg(0);
            for _ in 0..50 {
                v = fb.add(v, Value::i64(1), Ty::I64);
            }
            fb.ret(Some(v));
        });
        let mut m = mb.finish();
        assert_eq!(run(&mut m, 20), 0, "callee above threshold stays");
        assert_eq!(run(&mut m, 100), 1, "higher threshold admits it");
    }
}
