//! # opt — the TinyIR optimisation pipeline
//!
//! Models the compiler optimisation levels the paper evaluates:
//!
//! * [`OptLevel::O0`] — no transformations; every local variable stays in a
//!   stack slot (clang `-O0`).
//! * [`OptLevel::O1`] — `mem2reg` + constant folding + local CSE +
//!   store-to-load forwarding + phi simplification + DCE, iterated to a
//!   fixpoint (a faithful miniature of clang `-O1`'s scalar pipeline).
//!
//! The `-O1` pipeline is what produces the paper's two opposing coverage
//! effects: register-allocated induction variables become unrecoverable
//! (HPCCG −35 %), while eliminated redundant memory traffic extends recovery
//! kernel scope (miniMD +7 %, Figure 8).

pub mod inline;
pub mod mem2reg;
pub mod scalar;

use tinyir::Module;

/// Optimisation level, mirroring the paper's evaluated configurations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum OptLevel {
    /// No optimisation (paper's "No-opt").
    #[default]
    O0,
    /// Scalar optimisations (paper's "Opt"). `-O2`/`-O3` vectorisation is
    /// out of scope, as in the paper's prototype.
    O1,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::O0 => f.write_str("O0"),
            OptLevel::O1 => f.write_str("O1"),
        }
    }
}

/// Statistics returned by [`optimize`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Call sites inlined.
    pub inlined_calls: usize,
    /// Allocas promoted to SSA.
    pub promoted_allocas: usize,
    /// Constant expressions folded.
    pub const_folds: usize,
    /// Instructions removed by CSE.
    pub cse_eliminated: usize,
    /// Loads forwarded from earlier stores/loads.
    pub loads_forwarded: usize,
    /// Degenerate phis simplified.
    pub phis_simplified: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
}

/// Run the pipeline for `level` over `module`, in place.
pub fn optimize(module: &mut Module, level: OptLevel) -> OptStats {
    let mut stats = OptStats::default();
    if level == OptLevel::O0 {
        return stats;
    }
    stats.inlined_calls = inline::run(module, inline::INLINE_THRESHOLD);
    stats.promoted_allocas = mem2reg::run(module);
    // Iterate the scalar passes to a fixpoint (bounded for safety).
    for _ in 0..8 {
        let mut changed = 0;
        let n = scalar::simplify_phis(module);
        stats.phis_simplified += n;
        changed += n;
        let n = scalar::const_fold(module);
        stats.const_folds += n;
        changed += n;
        let n = scalar::local_cse(module);
        stats.cse_eliminated += n;
        changed += n;
        let n = scalar::store_load_forward(module);
        stats.loads_forwarded += n;
        changed += n;
        let n = scalar::dce(module);
        stats.dead_removed += n;
        changed += n;
        if changed == 0 {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::builder::ModuleBuilder;
    use tinyir::interp::{layout_globals, Interp};
    use tinyir::mem::PagedMemory;
    use tinyir::verify::verify_module;
    use tinyir::{Ty, Value};

    fn run_fn(m: &Module, name: &str, args: &[u64]) -> Option<u64> {
        let mut mem = PagedMemory::new();
        let globals = layout_globals(m, &mut mem, 0x1000_0000);
        let mut i = Interp::new(
            m,
            &mut mem,
            &globals,
            0x7f00_0000_0000,
            0x7f00_0100_0000,
            0x6000_0000_0000,
            1_000_000_000,
        );
        i.call(m.func_by_name(name).unwrap(), args).unwrap()
    }

    fn figure8_module() -> Module {
        // int a,b,c,d; a+=b; c+=d; array[a+c]  (locals via allocas)
        let mut mb = ModuleBuilder::new("m", "m.c");
        let arr = mb.global_zeroed("array", Ty::I64, 64);
        mb.define(
            "f",
            vec![Ty::I64, Ty::I64, Ty::I64, Ty::I64],
            Some(Ty::I64),
            |fb| {
                let a = fb.alloca(Ty::I64, 1);
                let c = fb.alloca(Ty::I64, 1);
                fb.store(fb.arg(0), a);
                fb.store(fb.arg(2), c);
                let av = fb.load(a, Ty::I64);
                let s1 = fb.add(av, fb.arg(1), Ty::I64);
                fb.store(s1, a); // a += b
                let cv = fb.load(c, Ty::I64);
                let s2 = fb.add(cv, fb.arg(3), Ty::I64);
                fb.store(s2, c); // c += d
                let a2 = fb.load(a, Ty::I64);
                let c2 = fb.load(c, Ty::I64);
                let idx = fb.add(a2, c2, Ty::I64);
                let v = fb.load_elem(fb.global(arr), idx, Ty::I64);
                fb.ret(Some(v));
            },
        );
        mb.finish()
    }

    #[test]
    fn o1_pipeline_preserves_semantics_and_removes_slots() {
        let mut m = figure8_module();
        let before = run_fn(&m, "f", &[1, 2, 3, 4]);
        let stats = optimize(&mut m, OptLevel::O1);
        verify_module(&m).unwrap();
        assert_eq!(run_fn(&m, "f", &[1, 2, 3, 4]), before);
        assert_eq!(stats.promoted_allocas, 2);
        // Only the final array load remains as a memory access —
        // exactly the Figure 8 "case 2 becomes case 1" effect.
        assert_eq!(m.funcs[0].mem_access_instrs().len(), 1);
    }

    #[test]
    fn o0_is_identity() {
        let mut m = figure8_module();
        let before = m.funcs[0].live_instr_count();
        let stats = optimize(&mut m, OptLevel::O0);
        assert_eq!(stats, OptStats::default());
        assert_eq!(m.funcs[0].live_instr_count(), before);
    }

    #[test]
    fn o1_reduces_instruction_count_on_loops() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let x = mb.global_zeroed("x", Ty::F64, 128);
        mb.define("scale", vec![Ty::I64], None, |fb| {
            let factor = fb.alloca(Ty::F64, 1);
            fb.store(Value::f64(2.5), factor);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
                let fv = fb.load(factor, Ty::F64);
                let v = fb.load_elem(fb.global(x), iv, Ty::F64);
                let s = fb.fmul(v, fv, Ty::F64);
                fb.store_elem(s, fb.global(x), iv, Ty::F64);
            });
            fb.ret(None);
        });
        let mut m = mb.finish();
        let before = m.funcs[0].live_instr_count();
        optimize(&mut m, OptLevel::O1);
        verify_module(&m).unwrap();
        assert!(
            m.funcs[0].live_instr_count() < before,
            "O1 should shrink the loop body"
        );
    }
}
