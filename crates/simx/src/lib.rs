//! # simx — the SimISA simulated machine
//!
//! A vertically-integrated substitute for the paper's x86_64/Linux substrate:
//!
//! * [`isa`] — a CISC instruction set with `disp(base,index,scale)` memory
//!   operands and folded memory references;
//! * [`codegen`] — instruction selection from TinyIR with the `-O0`
//!   (stack-slot) and `-O1` (linear-scan register) disciplines;
//! * [`debug`] — simulated DWARF line tables and variable location lists;
//! * [`image`] — machine modules, shared libraries, `dladdr` and PLT;
//! * [`cpu`] — the execution engine with signal-like traps, breakpoints
//!   (for the ptrace-style injector) and Pin-style profiling;
//! * [`translate`]/[`engine`] — the direct-threaded compiled backend behind
//!   the [`ExecutionEngine`] trait (bit-identical to the interpreter's fast
//!   loop; see DESIGN.md § compiled execution backend).
//!
//! See DESIGN.md §2 for why this substitution preserves the behaviour CARE's
//! evaluation depends on.

pub mod codegen;
pub mod cpu;
pub mod debug;
pub mod disasm;
pub mod engine;
pub mod image;
pub mod isa;
pub mod translate;

pub use codegen::compile_module;
pub use disasm::{decode, disassemble_function, disassemble_module, format_inst, Decoded};
pub use cpu::{BreakSet, DestRef, Frame, Process, Profile, RunExit, Trap, TrapKind};
pub use engine::{
    advance_to_step, CompiledEngine, EngineKind, ExecutionEngine, InterpEngine, ENGINE_VERSION,
};
pub use translate::{TranslateStats, TranslationCache};
pub use debug::{DebugData, DieRequest, LocEntry, VarDie, VarPlace};
pub use image::{LoadedModule, MachineFunction, MachineModule, ModuleId, ProcessImage};
pub use isa::{MInst, MemOp, Reg, Src, FP, SP};

#[cfg(test)]
mod tests;
