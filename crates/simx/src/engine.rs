//! Pluggable execution backends behind the [`ExecutionEngine`] trait.
//!
//! Two engines run a [`Process`]:
//!
//! * [`InterpEngine`] — the reference interpreter ([`Process::run`]),
//!   unchanged.
//! * [`CompiledEngine`] — the direct-threaded backend: executes the
//!   pre-decoded/fused [`Op`] stream of a cached [`TranslatedModule`]
//!   (see `translate.rs`) instead of re-decoding `MInst`s per step.
//!
//! # Equivalence contract
//!
//! The compiled engine is **bit-identical** to the interpreter's fast loop
//! in every observable: exit value, trap kind and PC, `fuel`, `steps`,
//! `trap_count`, registers, and memory (same `PagedMemory` hot path, so
//! CoW/TLB behaviour — including the telemetry counters — is shared code).
//! The per-step check order is replicated exactly: frame? → instruction
//! fetch in bounds (wild PC traps *without* consuming fuel) → fuel (an
//! exhausted budget traps without consuming) → charge `fuel`/`steps` →
//! execute. Traps freeze `frame.idx` on the faulting instruction with its
//! pre-fault registers; fused ops freeze mid-pair on their second index,
//! which re-enters through that instruction's standalone translation.
//!
//! # Fuel at block granularity
//!
//! Per-instruction fuel checks are the dispatch overhead this backend
//! exists to remove, but the budget must stay exact (hang classification
//! and Table 4's latency buckets depend on it). The engine charges fuel per
//! straight-line *segment*: at each segment entry it compares the remaining
//! budget against the translation's precomputed steps-to-block-end
//! ([`ste`](translate)); with enough fuel the segment body runs with the
//! per-step zero-check compiled out, otherwise the same body runs in
//! checked mode — the "interpreter fallback" for the final partial block,
//! stopping on the exact instruction the interpreter would. In-function
//! branches re-check the invariant *inline* (fuel against `ste[target]`):
//! as long as it holds, whole loops run inside one unchecked dispatch loop
//! without bouncing through the segment entry, and only the transition to
//! the final partial block pays a re-entry.
//!
//! Profiling, `break_at` and `BreakSet` runs fall back to the interpreter
//! wholesale (they are prepare/cursor paths, never the campaign hot path),
//! which keeps breakpoint semantics trivially identical.

use crate::cpu::{Frame, Process, RunExit, Trap, TrapKind};
use crate::image::{LoadedModule, ModuleId, ProcessImage};
use crate::isa::Reg;
use crate::translate::{
    Op, SrcK, TranslatedFunc, TranslatedModule, TranslateStats, TranslationCache, NO_REG,
};
use std::sync::Arc;
use tinyir::interp::{eval_bin, eval_cast, eval_fcmp, eval_icmp, float_of_bits, sext_bits};
use tinyir::mem::{MemFault, Memory, PagedMemory};
use tinyir::{FuncId, Intrinsic};

/// Version of the engines' *observable record semantics*: what a
/// fault-injection campaign's [`InjectionRecord`](../faultsim) depends on
/// through execution (step accounting, trap classification, fuel
/// semantics, RNG-visible behaviour). Persistent result stores fold this
/// into their campaign keys, so bumping it invalidates every stored record
/// at once. Bump on any change that can alter a record; engine *kind* is
/// deliberately not part of it — both backends are pinned bit-identical.
pub const ENGINE_VERSION: u32 = 1;

/// Which backend a campaign (or CLI) selects.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineKind {
    /// The reference interpreter.
    #[default]
    Interp,
    /// The direct-threaded translation backend.
    Compiled,
}

impl EngineKind {
    /// Stable CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Interp => "interp",
            EngineKind::Compiled => "compiled",
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<EngineKind, String> {
        match s {
            "interp" | "interpreter" => Ok(EngineKind::Interp),
            "compiled" | "compile" => Ok(EngineKind::Compiled),
            other => Err(format!("unknown engine {other:?} (expected interp|compiled)")),
        }
    }
}

/// A way to run a process to its next completion, trap or breakpoint.
/// Object-safe so campaigns can thread one `&dyn` through their workers.
pub trait ExecutionEngine: Send + Sync {
    /// Stable engine name (telemetry and bench rows key on it).
    fn name(&self) -> &'static str;
    /// Run until completion, trap, or breakpoint; semantics of
    /// [`Process::run`].
    fn run(&self, p: &mut Process) -> RunExit;
}

/// The reference interpreter as an engine.
pub struct InterpEngine;

impl ExecutionEngine for InterpEngine {
    fn name(&self) -> &'static str {
        "interp"
    }
    fn run(&self, p: &mut Process) -> RunExit {
        p.run()
    }
}

/// The direct-threaded backend: one shared translation per loaded module,
/// resolved through the global content-keyed [`TranslationCache`].
pub struct CompiledEngine {
    /// Translations indexed by [`ModuleId`].
    trans: Vec<Arc<TranslatedModule>>,
}

impl CompiledEngine {
    /// Resolve (or build) the translations for every module of an image.
    /// Repeated calls for the same compiled app are cache hits — trellis
    /// forks and campaign suffixes share one translation per module.
    pub fn for_image(image: &ProcessImage) -> CompiledEngine {
        let cache = TranslationCache::global();
        CompiledEngine {
            trans: image.modules.iter().map(|lm| cache.get_or_translate(&lm.module)).collect(),
        }
    }

    /// Summed translation statistics across this engine's modules.
    pub fn stats(&self) -> TranslateStats {
        let mut s = TranslateStats::default();
        for t in &self.trans {
            s.merge(&t.stats);
        }
        s
    }
}

impl ExecutionEngine for CompiledEngine {
    fn name(&self) -> &'static str {
        "compiled"
    }

    fn run(&self, p: &mut Process) -> RunExit {
        if p.profile.is_some() || p.break_at.is_some() || p.multi_break.is_some() {
            // Instrumented runs (golden profiling, injector breakpoints, the
            // trellis cursor) stay on the interpreter's slow loop.
            return p.run();
        }
        run_compiled(self, p)
    }
}

/// Advance `p` to exactly `target` executed steps on `engine` and pause,
/// leaving the process indistinguishable from one that stopped there by
/// breakpoint: `steps == target`, the PC frozen on the next instruction,
/// `fuel` charged for exactly the steps executed, and `trap_count`
/// untouched (the internal out-of-fuel pause is an implementation detail,
/// not an observed trap). Because the run is uninstrumented, a compiled
/// engine replays at full translated speed.
///
/// Returns `false` — with the process state unspecified beyond its exit —
/// when the program completes, traps, or runs out of the *caller's* fuel
/// at or before `target`; none of these can happen when replaying a
/// deterministic program known to run strictly past `target` steps.
pub fn advance_to_step(engine: &dyn ExecutionEngine, p: &mut Process, target: u64) -> bool {
    if p.steps >= target {
        return p.steps == target;
    }
    let need = target - p.steps;
    let fuel_before = p.fuel;
    if fuel_before < need {
        return false;
    }
    let traps_before = p.trap_count;
    p.fuel = need;
    let paused = matches!(
        engine.run(p),
        RunExit::Trapped(Trap { kind: TrapKind::OutOfFuel, .. })
    ) && p.steps == target;
    if paused {
        p.trap_count = traps_before;
        p.fuel = fuel_before - need;
    }
    paused
}

/// Why a segment execution stopped.
enum SegEvent {
    /// Control transferred (or ran off the translation); `frame.idx` holds
    /// the new PC — re-enter through the segment entry.
    Redirect,
    /// Trap; `frame.idx` frozen on the faulting instruction.
    Trap(Trap),
    /// A `Call` op: arguments evaluated, caller's `idx` already advanced.
    Call { callee: u32, argv: Vec<u64>, dst: u8 },
    /// A `CallIntr` op: arguments evaluated, `idx` *not* advanced (the
    /// intrinsic may trap at this PC).
    Intr { which: Intrinsic, argv: Vec<u64>, dst: u8 },
    /// A `Ret` op with its (raw-bit) value.
    Ret { val: Option<u64> },
}

fn run_compiled(eng: &CompiledEngine, p: &mut Process) -> RunExit {
    let image = Arc::clone(&p.image);
    // Like the interpreter's `run_loop`: carry the counters in locals and
    // write them back on every exit, so trap states observe exact values.
    let mut fuel = p.fuel;
    let mut steps = p.steps;
    let exit = loop {
        // Resolve the (possibly new) top frame's translation.
        let (mid, fid) = match p.frames.last() {
            Some(f) => (f.module, f.func),
            None => break RunExit::Done(None),
        };
        let tf = &eng.trans[mid.0 as usize].funcs[fid.0 as usize];
        let lm = &image.modules[mid.0 as usize];
        let Process { frames, mem, .. } = &mut *p;
        let frame = frames.last_mut().expect("frame");
        // Segment loop: each iteration runs one straight-line segment,
        // choosing checked or unchecked fuel accounting by comparing the
        // budget against the segment's precomputed step count.
        let ev = loop {
            let idx = frame.idx;
            let Some(&need) = tf.ste.get(idx) else {
                // Wild PC (corrupted control flow, or a declaration): the
                // fetch fails before any fuel is consumed.
                let pc = image.addr_of(mid, fid, idx);
                break SegEvent::Trap(Trap { kind: TrapKind::Segv(pc), pc });
            };
            let ev = if fuel >= need as u64 {
                exec_segment::<false>(frame, mem, lm, tf, &image, mid, fid, &mut fuel, &mut steps)
            } else {
                exec_segment::<true>(frame, mem, lm, tf, &image, mid, fid, &mut fuel, &mut steps)
            };
            match ev {
                SegEvent::Redirect => continue,
                other => break other,
            }
        };
        match ev {
            SegEvent::Redirect => unreachable!(),
            SegEvent::Trap(t) => {
                p.trap_count += 1;
                break RunExit::Trapped(t);
            }
            SegEvent::Call { callee, argv, dst } => {
                let dst = (dst != NO_REG).then_some(Reg(dst));
                if let Err(t) = p.push_frame(mid, FuncId(callee), argv, dst) {
                    p.trap_count += 1;
                    break RunExit::Trapped(t);
                }
            }
            SegEvent::Intr { which, argv, dst } => match p.eval_intrinsic(which, &argv) {
                Ok(r) => {
                    let frame = p.frames.last_mut().expect("frame");
                    if dst != NO_REG {
                        if let Some(v) = r {
                            frame.regs[dst as usize] = v;
                        }
                    }
                    frame.idx += 1;
                }
                Err(kind) => {
                    // `frame.idx` still points at the CallIntr.
                    let pc = p.pc();
                    p.trap_count += 1;
                    break RunExit::Trapped(Trap { kind, pc });
                }
            },
            SegEvent::Ret { val } => {
                let done = p.frames.len() == 1;
                let popped = p.frames.pop().expect("frame");
                p.sp = popped.saved_sp;
                if done {
                    break RunExit::Done(val);
                }
                if let (Some(d), Some(v)) = (popped.ret_dst, val) {
                    let pl = p.frames.len() - 1;
                    p.frames[pl].regs[d.0 as usize] = v;
                }
            }
        }
    };
    p.fuel = fuel;
    p.steps = steps;
    exit
}

/// Execute pre-decoded ops from `frame.idx` until a call, return,
/// intrinsic, trap, or a branch that breaks the mode invariant. `CHECKED`
/// is a monomorphization constant: `false` when the caller proved
/// `fuel >= ste[entry]` (the per-step fuel-zero check compiles out, and
/// in-function branches keep running inline while `fuel >= ste[target]`),
/// `true` for the final partial block (every sub-step re-checks, trapping
/// `OutOfFuel` on the exact instruction the interpreter would).
#[allow(clippy::too_many_arguments)]
fn exec_segment<const CHECKED: bool>(
    frame: &mut Frame,
    mem: &mut PagedMemory,
    lm: &LoadedModule,
    tf: &TranslatedFunc,
    image: &ProcessImage,
    mid: ModuleId,
    fid: FuncId,
    fuel: &mut u64,
    steps: &mut u64,
) -> SegEvent {
    // The dispatch index lives in a local; `frame.idx` is only written on
    // the ways out (trap, call, intrinsic, control transfer, ran-off), not
    // once per op. Every trap funnels through here, so "freeze `frame.idx`
    // on the faulting instruction" holds by construction — including the
    // mid-pair freezes of fused ops, which trap at `idx + 1`.
    macro_rules! trap_at {
        ($kind:expr, $idx:expr) => {{
            let at = $idx;
            frame.idx = at;
            let pc = image.addr_of(mid, fid, at);
            return SegEvent::Trap(Trap { kind: $kind, pc });
        }};
    }
    macro_rules! memtrap {
        ($e:expr, $idx:expr) => {{
            let kind = match $e {
                MemFault::Unmapped(a) => TrapKind::Segv(a),
                MemFault::Misaligned(a) => TrapKind::Bus(a),
            };
            trap_at!(kind, $idx)
        }};
    }
    // Evaluate a pre-decoded source operand; a folded memory operand may
    // fault, freezing the instruction at `$idx`.
    macro_rules! srck {
        ($s:expr, $idx:expr) => {
            match $s {
                SrcK::Reg(r) => frame.regs[*r as usize],
                SrcK::Imm(v) => *v,
                SrcK::Mem(m, sz) => match mem.load(m.ea(&frame.regs), *sz as u32) {
                    Ok(v) => v,
                    Err(e) => memtrap!(e, $idx),
                },
                SrcK::Global(g) => lm.global_addrs[*g as usize],
            }
        };
    }
    // Charge the second sub-step of a fused pair (the first is charged at
    // the loop head). In checked mode an exhausted budget freezes on the
    // pair's second instruction (`trap_at` writes `frame.idx`).
    macro_rules! charge_second {
        ($idx:expr) => {{
            if CHECKED && *fuel == 0 {
                trap_at!(TrapKind::OutOfFuel, $idx + 1)
            }
            *fuel -= 1;
            *steps += 1;
        }};
    }
    let mut idx = frame.idx;
    // Take an in-function branch without bouncing through the caller's
    // segment loop, when the mode invariant still holds at the target:
    // unchecked mode requires `fuel >= ste[target]` (else the caller
    // re-enters in checked mode), checked mode only a valid target. A wild
    // target redirects so the caller reports it without consuming fuel.
    macro_rules! jump_to {
        ($t:expr) => {{
            let t = $t;
            match tf.ste.get(t) {
                Some(&need) if CHECKED || *fuel >= need as u64 => {
                    idx = t;
                    continue;
                }
                _ => {
                    frame.idx = t;
                    return SegEvent::Redirect;
                }
            }
        }};
    }
    loop {
        let Some(op) = tf.ops.get(idx) else {
            // Ran off the translation: the segment entry re-checks and
            // reports the wild PC without consuming fuel.
            frame.idx = idx;
            return SegEvent::Redirect;
        };
        if CHECKED && *fuel == 0 {
            trap_at!(TrapKind::OutOfFuel, idx)
        }
        *fuel -= 1;
        *steps += 1;
        match op {
            Op::MovR { dst, src } => {
                frame.regs[*dst as usize] = frame.regs[*src as usize];
            }
            Op::MovRs { dst, src, ty } => {
                frame.regs[*dst as usize] = sext_bits(frame.regs[*src as usize], *ty) as u64;
            }
            Op::MovI { dst, imm } => {
                frame.regs[*dst as usize] = *imm;
            }
            Op::MovL { dst, mem: m, size } => {
                match mem.load(m.ea(&frame.regs), *size as u32) {
                    Ok(v) => frame.regs[*dst as usize] = v,
                    Err(e) => memtrap!(e, idx),
                }
            }
            Op::MovLs { dst, mem: m, size, ty } => {
                match mem.load(m.ea(&frame.regs), *size as u32) {
                    Ok(v) => frame.regs[*dst as usize] = sext_bits(v, *ty) as u64,
                    Err(e) => memtrap!(e, idx),
                }
            }
            Op::MovG { dst, gid, sext } => {
                let mut v = lm.global_addrs[*gid as usize];
                if let Some(ty) = sext {
                    v = sext_bits(v, *ty) as u64;
                }
                frame.regs[*dst as usize] = v;
            }
            Op::St { src, mem: m, size } => {
                let v = frame.regs[*src as usize];
                if let Err(e) = mem.store(m.ea(&frame.regs), *size as u32, v) {
                    memtrap!(e, idx)
                }
            }
            Op::Lea { dst, mem: m } => {
                frame.regs[*dst as usize] = m.ea(&frame.regs);
            }
            Op::AddQ { dst, lhs, rhs } => {
                frame.regs[*dst as usize] =
                    frame.regs[*lhs as usize].wrapping_add(frame.regs[*rhs as usize]);
            }
            Op::AddQI { dst, lhs, imm } => {
                frame.regs[*dst as usize] = frame.regs[*lhs as usize].wrapping_add(*imm);
            }
            Op::SubQ { dst, lhs, rhs } => {
                frame.regs[*dst as usize] =
                    frame.regs[*lhs as usize].wrapping_sub(frame.regs[*rhs as usize]);
            }
            Op::SubQI { dst, lhs, imm } => {
                frame.regs[*dst as usize] = frame.regs[*lhs as usize].wrapping_sub(*imm);
            }
            Op::MulQ { dst, lhs, rhs } => {
                frame.regs[*dst as usize] =
                    frame.regs[*lhs as usize].wrapping_mul(frame.regs[*rhs as usize]);
            }
            Op::FAdd { dst, lhs, rhs } => {
                let v = f64::from_bits(frame.regs[*lhs as usize])
                    + f64::from_bits(frame.regs[*rhs as usize]);
                frame.regs[*dst as usize] = v.to_bits();
            }
            Op::FSub { dst, lhs, rhs } => {
                let v = f64::from_bits(frame.regs[*lhs as usize])
                    - f64::from_bits(frame.regs[*rhs as usize]);
                frame.regs[*dst as usize] = v.to_bits();
            }
            Op::FMul { dst, lhs, rhs } => {
                let v = f64::from_bits(frame.regs[*lhs as usize])
                    * f64::from_bits(frame.regs[*rhs as usize]);
                frame.regs[*dst as usize] = v.to_bits();
            }
            Op::FAddL { dst, lhs, mem: m } => {
                let r = match mem.load(m.ea(&frame.regs), 8) {
                    Ok(v) => v,
                    Err(e) => memtrap!(e, idx),
                };
                let v = f64::from_bits(frame.regs[*lhs as usize]) + f64::from_bits(r);
                frame.regs[*dst as usize] = v.to_bits();
            }
            Op::FMulL { dst, lhs, mem: m } => {
                let r = match mem.load(m.ea(&frame.regs), 8) {
                    Ok(v) => v,
                    Err(e) => memtrap!(e, idx),
                };
                let v = f64::from_bits(frame.regs[*lhs as usize]) * f64::from_bits(r);
                frame.regs[*dst as usize] = v.to_bits();
            }
            Op::Bin { op, dst, lhs, rhs, ty } => {
                let l = frame.regs[*lhs as usize];
                let r = srck!(rhs, idx);
                match eval_bin(*op, l, r, *ty) {
                    Ok(v) => frame.regs[*dst as usize] = v,
                    Err(_) => trap_at!(TrapKind::Fpe, idx),
                }
            }
            Op::Icmp { pred, dst, lhs, rhs, ty } => {
                let l = frame.regs[*lhs as usize];
                let r = srck!(rhs, idx);
                frame.regs[*dst as usize] = eval_icmp(*pred, l, r, *ty) as u64;
            }
            Op::Fcmp { pred, dst, lhs, rhs, ty } => {
                let l = frame.regs[*lhs as usize];
                let r = srck!(rhs, idx);
                frame.regs[*dst as usize] =
                    eval_fcmp(*pred, float_of_bits(l, *ty), float_of_bits(r, *ty)) as u64;
            }
            Op::Cast { op, dst, src, from, to } => {
                frame.regs[*dst as usize] = eval_cast(*op, frame.regs[*src as usize], *from, *to);
            }
            Op::Select { dst, cond, t, f } => {
                let c = frame.regs[*cond as usize] & 1;
                frame.regs[*dst as usize] = if c != 0 {
                    frame.regs[*t as usize]
                } else {
                    frame.regs[*f as usize]
                };
            }
            Op::Jmp { target } => {
                jump_to!(*target as usize)
            }
            Op::Jnz { cond, then_t, else_t } => {
                let c = frame.regs[*cond as usize] & 1;
                jump_to!((if c != 0 { *then_t } else { *else_t }) as usize)
            }
            Op::GetArg { dst, idx: a } => {
                frame.regs[*dst as usize] = frame.args.get(*a as usize).copied().unwrap_or(0);
            }
            Op::Call { callee, args, dst } => {
                let mut argv = Vec::with_capacity(args.len());
                for s in args.iter() {
                    argv.push(srck!(s, idx));
                }
                // Advance past the call before the frame push, like the
                // interpreter (the stack-overflow trap PC is the return
                // site).
                frame.idx = idx + 1;
                return SegEvent::Call { callee: *callee, argv, dst: *dst };
            }
            Op::CallIntr { which, args, dst } => {
                let mut argv = Vec::with_capacity(args.len());
                for s in args.iter() {
                    argv.push(srck!(s, idx));
                }
                // `frame.idx` stays on the CallIntr until the intrinsic
                // succeeds (it may trap at this PC).
                frame.idx = idx;
                return SegEvent::Intr { which: *which, argv, dst: *dst };
            }
            Op::Ret { src } => {
                let val = (*src != NO_REG).then(|| frame.regs[*src as usize]);
                return SegEvent::Ret { val };
            }
            Op::CmpBr { pred, cdst, lhs, rhs, ty, then_t, else_t } => {
                // Sub-step 1 (charged at the loop head): the compare. A
                // folded memory rhs faults on the compare's own index.
                let l = frame.regs[*lhs as usize];
                let r = srck!(rhs, idx);
                let c = eval_icmp(*pred, l, r, *ty);
                frame.regs[*cdst as usize] = c as u64;
                // Sub-step 2: the branch.
                charge_second!(idx);
                jump_to!((if c { *then_t } else { *else_t }) as usize)
            }
            Op::LoadBin { ldst, mem: m, size, op, bdst, rhs, ty } => {
                // Sub-step 1: the load.
                let v = match mem.load(m.ea(&frame.regs), *size as u32) {
                    Ok(v) => v,
                    Err(e) => memtrap!(e, idx),
                };
                frame.regs[*ldst as usize] = v;
                // Sub-step 2: the arithmetic (reads the just-written lhs).
                charge_second!(idx);
                let l = frame.regs[*ldst as usize];
                let r = srck!(rhs, idx + 1);
                match eval_bin(*op, l, r, *ty) {
                    Ok(res) => frame.regs[*bdst as usize] = res,
                    Err(_) => trap_at!(TrapKind::Fpe, idx + 1),
                }
                idx += 2;
                continue;
            }
            Op::LeaLoad { adst, amem, ldst, ldisp, size } => {
                // Sub-step 1: the address computation.
                frame.regs[*adst as usize] = amem.ea(&frame.regs);
                // Sub-step 2: the dependent load (base + disp, no index).
                charge_second!(idx);
                let addr = frame.regs[*adst as usize].wrapping_add(*ldisp as u64);
                match mem.load(addr, *size as u32) {
                    Ok(v) => frame.regs[*ldst as usize] = v,
                    Err(e) => memtrap!(e, idx + 1),
                }
                idx += 2;
                continue;
            }
            Op::GloLoad { gdst, gid, ldst, mem: m, size } => {
                // Sub-step 1: materialise the global base.
                frame.regs[*gdst as usize] = lm.global_addrs[*gid as usize];
                // Sub-step 2: the dependent (usually indexed) load.
                charge_second!(idx);
                match mem.load(m.ea(&frame.regs), *size as u32) {
                    Ok(v) => frame.regs[*ldst as usize] = v,
                    Err(e) => memtrap!(e, idx + 1),
                }
                idx += 2;
                continue;
            }
            Op::GloFBin { gdst, gid, mul, fdst, lhs, mem: m } => {
                // Sub-step 1: materialise the global base.
                frame.regs[*gdst as usize] = lm.global_addrs[*gid as usize];
                // Sub-step 2: the f64 arithmetic with its folded memory rhs.
                charge_second!(idx);
                let r = match mem.load(m.ea(&frame.regs), 8) {
                    Ok(v) => v,
                    Err(e) => memtrap!(e, idx + 1),
                };
                let l = f64::from_bits(frame.regs[*lhs as usize]);
                let r = f64::from_bits(r);
                let v = if *mul { l * r } else { l + r };
                frame.regs[*fdst as usize] = v.to_bits();
                idx += 2;
                continue;
            }
            Op::MovRR { d1, s1, d2, s2 } => {
                // Sub-step 1 writes `d1` before sub-step 2 reads `s2`, so
                // a rotation chain (`s2 == d1`) sees the fresh value.
                frame.regs[*d1 as usize] = frame.regs[*s1 as usize];
                charge_second!(idx);
                frame.regs[*d2 as usize] = frame.regs[*s2 as usize];
                idx += 2;
                continue;
            }
        }
        idx += 1;
    }
}
