//! Machine modules and the loaded process image.
//!
//! A [`MachineModule`] is the output of the SimISA backend for one TinyIR
//! module (the executable, or a shared library such as the simulated BLAS or
//! a recovery-kernel library). A [`ProcessImage`] is the runtime view: each
//! module loaded at a base address, with `dladdr`-style reverse lookup from
//! a PC to the owning module — the mechanism Safeguard uses to decide
//! whether to key by absolute PC (executable) or by `PC - base` (shared
//! library), exactly as in paper §4.

use crate::debug::DebugData;
use crate::isa::{MInst, INST_BYTES};
use std::collections::HashMap;
use std::sync::Arc;
use tinyir::{DebugLoc, FuncId};

/// A compiled function: instructions plus frame metadata.
#[derive(Clone, Debug)]
pub struct MachineFunction {
    /// Symbol name (matches the TinyIR function name).
    pub name: String,
    /// Instructions; instruction `i` sits at `code_offset + 4*i`.
    pub instrs: Vec<MInst>,
    /// Per-instruction source location (same indexing as `instrs`). For an
    /// instruction with a folded memory operand this is the location of the
    /// *memory access* it absorbs.
    pub locs: Vec<Option<DebugLoc>>,
    /// Frame size in bytes (stack slots live at `FP + [0, frame_size)`).
    pub frame_size: u64,
    /// Module-relative offset of the first instruction.
    pub code_offset: u64,
    /// True for unresolved external declarations (no code).
    pub is_decl: bool,
}

impl MachineFunction {
    /// Module-relative offset of instruction `idx`.
    pub fn offset_of(&self, idx: usize) -> u64 {
        self.code_offset + idx as u64 * INST_BYTES
    }
}

/// A compiled TinyIR module: functions, debug data and the source module
/// (kept for global layout and for executing recovery kernels over IR).
#[derive(Clone, Debug)]
pub struct MachineModule {
    /// Module name.
    pub name: String,
    /// Compiled functions, index-aligned with the TinyIR module's functions.
    pub funcs: Vec<MachineFunction>,
    /// Simulated DWARF (line table + variable DIEs), offsets module-relative.
    pub debug: DebugData,
    /// The TinyIR module this was compiled from.
    pub ir: tinyir::Module,
    /// Total code size in bytes.
    pub code_size: u64,
}

impl MachineModule {
    /// Find the function and instruction index at a module-relative offset.
    pub fn locate(&self, offset: u64) -> Option<(FuncId, usize)> {
        for (fi, f) in self.funcs.iter().enumerate() {
            if f.is_decl {
                continue;
            }
            let end = f.code_offset + f.instrs.len() as u64 * INST_BYTES;
            if offset >= f.code_offset && offset < end {
                let idx = ((offset - f.code_offset) / INST_BYTES) as usize;
                return Some((FuncId(fi as u32), idx));
            }
        }
        None
    }

    /// Find a defined function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }
}

/// Identifier of a loaded module within a process image.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ModuleId(pub u32);

/// A module mapped into the simulated address space.
///
/// The compiled module is behind an `Arc`: every process built from the
/// same compiled app shares one copy of the code, debug data and IR, so
/// loading a module is O(globals), not O(module size). This is what makes
/// per-injection process construction and snapshot-forking cheap.
#[derive(Clone, Debug)]
pub struct LoadedModule {
    /// The compiled module (shared, immutable).
    pub module: Arc<MachineModule>,
    /// Load base address.
    pub base: u64,
    /// Address of each TinyIR global (index = `GlobalId`).
    pub global_addrs: Vec<u64>,
    /// True if loaded as a shared library (keyed by `PC - base`), false for
    /// the main executable (keyed by absolute PC).
    pub is_shared: bool,
}

/// The process image: all loaded modules plus cross-module symbol
/// resolution.
#[derive(Clone, Debug, Default)]
pub struct ProcessImage {
    /// Loaded modules in load order; index = [`ModuleId`].
    pub modules: Vec<LoadedModule>,
    /// Resolution of `(module, func)` declarations to their defining
    /// `(module, func)` (the dynamic-linker PLT).
    pub plt: HashMap<(ModuleId, FuncId), (ModuleId, FuncId)>,
}

impl ProcessImage {
    /// Register a loaded module. Call [`ProcessImage::link`] after the last
    /// one.
    pub fn push_module(&mut self, lm: LoadedModule) -> ModuleId {
        self.modules.push(lm);
        ModuleId(self.modules.len() as u32 - 1)
    }

    /// Resolve every function declaration against the other modules'
    /// definitions (by symbol name). Unresolved symbols are left out of the
    /// PLT; calling them traps.
    pub fn link(&mut self) {
        let mut defs: HashMap<String, (ModuleId, FuncId)> = HashMap::new();
        for (mi, lm) in self.modules.iter().enumerate() {
            for (fi, f) in lm.module.funcs.iter().enumerate() {
                if !f.is_decl {
                    defs.entry(f.name.clone())
                        .or_insert((ModuleId(mi as u32), FuncId(fi as u32)));
                }
            }
        }
        for (mi, lm) in self.modules.iter().enumerate() {
            for (fi, f) in lm.module.funcs.iter().enumerate() {
                if f.is_decl {
                    if let Some(&target) = defs.get(&f.name) {
                        self.plt
                            .insert((ModuleId(mi as u32), FuncId(fi as u32)), target);
                    }
                }
            }
        }
    }

    /// Resolve a call target through the PLT.
    pub fn resolve(&self, m: ModuleId, f: FuncId) -> Option<(ModuleId, FuncId)> {
        let lm = &self.modules[m.0 as usize];
        if !lm.module.funcs[f.0 as usize].is_decl {
            return Some((m, f));
        }
        self.plt.get(&(m, f)).copied()
    }

    /// `dladdr`: which module contains this absolute PC, and what is the
    /// module-relative offset?
    pub fn dladdr(&self, pc: u64) -> Option<(ModuleId, u64)> {
        for (mi, lm) in self.modules.iter().enumerate() {
            if pc >= lm.base && pc < lm.base + lm.module.code_size {
                return Some((ModuleId(mi as u32), pc - lm.base));
            }
        }
        None
    }

    /// Locate the function + instruction index at an absolute PC.
    pub fn locate_pc(&self, pc: u64) -> Option<(ModuleId, FuncId, usize)> {
        let (mid, off) = self.dladdr(pc)?;
        let (fid, idx) = self.modules[mid.0 as usize].module.locate(off)?;
        Some((mid, fid, idx))
    }

    /// Absolute address of instruction `idx` of `(module, func)`.
    pub fn addr_of(&self, m: ModuleId, f: FuncId, idx: usize) -> u64 {
        let lm = &self.modules[m.0 as usize];
        lm.base + lm.module.funcs[f.0 as usize].offset_of(idx)
    }

    /// Access a loaded module.
    pub fn module(&self, m: ModuleId) -> &LoadedModule {
        &self.modules[m.0 as usize]
    }

    /// Find the address of a global variable by name across all modules.
    pub fn global_addr_by_name(&self, name: &str) -> Option<u64> {
        for lm in &self.modules {
            if let Some(g) = lm.module.ir.global_by_name(name) {
                return Some(lm.global_addrs[g.0 as usize]);
            }
        }
        None
    }
}

/// Conventional load base for the main executable.
pub const EXE_BASE: u64 = 0x0040_0000;
/// Conventional load base for the first shared library; subsequent libraries
/// are placed above it.
pub const LIB_BASE: u64 = 0x7f80_0000_0000;
/// Base of the global-data arena for the executable.
pub const DATA_BASE: u64 = 0x1000_0000;
/// Stack top (the stack grows downward from here).
pub const STACK_TOP: u64 = 0x7fff_f000_0000;
/// Stack size in bytes.
pub const STACK_SIZE: u64 = 32 * 1024 * 1024;
/// Heap base for `malloc`.
pub const HEAP_BASE: u64 = 0x6000_0000_0000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::MInst;

    fn dummy_module(name: &str, funcs: &[(&str, usize, bool)]) -> MachineModule {
        let mut off = 0u64;
        let fs = funcs
            .iter()
            .map(|(n, len, is_decl)| {
                let f = MachineFunction {
                    name: n.to_string(),
                    instrs: vec![MInst::Ret { src: None }; *len],
                    locs: vec![None; *len],
                    frame_size: 0,
                    code_offset: off,
                    is_decl: *is_decl,
                };
                if !is_decl {
                    off += *len as u64 * INST_BYTES + 64;
                }
                f
            })
            .collect();
        MachineModule {
            name: name.into(),
            funcs: fs,
            debug: DebugData::default(),
            ir: tinyir::Module::new(name),
            code_size: off,
        }
    }

    #[test]
    fn locate_by_offset() {
        let m = dummy_module("exe", &[("a", 3, false), ("b", 2, false)]);
        assert_eq!(m.locate(0), Some((FuncId(0), 0)));
        assert_eq!(m.locate(8), Some((FuncId(0), 2)));
        let b_off = m.funcs[1].code_offset;
        assert_eq!(m.locate(b_off + 4), Some((FuncId(1), 1)));
        assert_eq!(m.locate(9999), None);
    }

    #[test]
    fn dladdr_and_plt_resolution() {
        let exe = dummy_module("exe", &[("main", 3, false), ("ddot", 0, true)]);
        let lib = dummy_module("libblas", &[("ddot", 5, false)]);
        let mut img = ProcessImage::default();
        let e = img.push_module(LoadedModule {
            module: Arc::new(exe),
            base: EXE_BASE,
            global_addrs: vec![],
            is_shared: false,
        });
        let l = img.push_module(LoadedModule {
            module: Arc::new(lib),
            base: LIB_BASE,
            global_addrs: vec![],
            is_shared: true,
        });
        img.link();
        // dladdr distinguishes exe and lib PCs.
        assert_eq!(img.dladdr(EXE_BASE + 4), Some((e, 4)));
        assert_eq!(img.dladdr(LIB_BASE + 8), Some((l, 8)));
        assert_eq!(img.dladdr(0xdead_0000), None);
        // The exe's `ddot` declaration resolves into the library.
        assert_eq!(img.resolve(e, FuncId(1)), Some((l, FuncId(0))));
        // Defined functions resolve to themselves.
        assert_eq!(img.resolve(e, FuncId(0)), Some((e, FuncId(0))));
    }

    #[test]
    fn addr_round_trip() {
        let exe = dummy_module("exe", &[("main", 4, false)]);
        let mut img = ProcessImage::default();
        let e = img.push_module(LoadedModule {
            module: Arc::new(exe),
            base: EXE_BASE,
            global_addrs: vec![],
            is_shared: false,
        });
        let pc = img.addr_of(e, FuncId(0), 2);
        assert_eq!(img.locate_pc(pc), Some((e, FuncId(0), 2)));
    }
}
