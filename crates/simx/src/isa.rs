//! SimISA — the simulated CISC instruction set.
//!
//! SimISA is deliberately x86_64-flavoured where it matters to CARE:
//!
//! * memory operands are `disp(base, index, scale)` — the exact shape
//!   Safeguard must disassemble and patch (`mov 8(%rbx,%r8,4), %eax`);
//! * arithmetic instructions may *fold* a memory operand (CISC style), so a
//!   TinyIR `load` can disappear into its consumer during instruction
//!   selection, which is why Armor attaches the load's debug location to the
//!   folded instruction (paper §3.3);
//! * every instruction occupies 4 bytes, giving each a unique PC.
//!
//! The register file has 16 integer registers (`r14` = stack pointer,
//! `r15` = frame pointer) and 16 float registers (`x0..x15`, stored as raw
//! bit patterns).

use tinyir::{BinOp, CastOp, FCmp, FuncId, GlobalId, ICmp, Intrinsic, Ty};

/// A SimISA register. Integer registers are `0..16`, float registers are
/// `16..32` (printed as `x0..x15`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// Total number of architectural registers.
pub const NUM_REGS: usize = 32;
/// Stack pointer.
pub const SP: Reg = Reg(14);
/// Frame pointer (DWARF's `DW_OP_breg`-style base for stack locations).
pub const FP: Reg = Reg(15);
/// First float register.
pub const F0: Reg = Reg(16);

impl Reg {
    /// Integer register `n`.
    pub fn gpr(n: u8) -> Reg {
        debug_assert!(n < 16);
        Reg(n)
    }
    /// Float register `n`.
    pub fn fpr(n: u8) -> Reg {
        debug_assert!(n < 16);
        Reg(16 + n)
    }
    /// True for float registers.
    pub fn is_float(self) -> bool {
        self.0 >= 16
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_float() {
            write!(f, "%x{}", self.0 - 16)
        } else if *self == SP {
            write!(f, "%sp")
        } else if *self == FP {
            write!(f, "%fp")
        } else {
            write!(f, "%r{}", self.0)
        }
    }
}

/// An x86-style memory operand: `disp(base, index, scale)` =
/// `*(base + index * scale + disp)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemOp {
    /// Base register.
    pub base: Option<Reg>,
    /// Index register.
    pub index: Option<Reg>,
    /// Scale applied to the index (1, 2, 4 or 8).
    pub scale: u8,
    /// Constant displacement.
    pub disp: i64,
}

impl MemOp {
    /// `disp(base)` operand.
    pub fn base_disp(base: Reg, disp: i64) -> MemOp {
        MemOp { base: Some(base), index: None, scale: 1, disp }
    }

    /// `disp(base, index, scale)` operand.
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i64) -> MemOp {
        MemOp { base: Some(base), index: Some(index), scale, disp }
    }

    /// Effective address given a register-read function.
    pub fn effective(&self, read: impl Fn(Reg) -> u64) -> u64 {
        let mut addr = self.disp as u64;
        if let Some(b) = self.base {
            addr = addr.wrapping_add(read(b));
        }
        if let Some(i) = self.index {
            addr = addr.wrapping_add(read(i).wrapping_mul(self.scale as u64));
        }
        addr
    }
}

impl std::fmt::Display for MemOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.disp)?;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
        }
        if let Some(i) = self.index {
            write!(f, ",{i},{}", self.scale)?;
        }
        write!(f, ")")
    }
}

/// A source operand: register, immediate, folded memory reference, or the
/// link-time address of a global (resolved against the loaded module's
/// global table, modelling RIP-relative data addressing).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Src {
    /// Register.
    Reg(Reg),
    /// Immediate bits.
    Imm(u64),
    /// Folded memory operand (CISC); carries the access size in bytes.
    Mem(MemOp, u8),
    /// Address of a global in the current module.
    Global(GlobalId),
}

impl std::fmt::Display for Src {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(v) => write!(f, "${v}"),
            Src::Mem(m, s) => write!(f, "{m}:{s}"),
            Src::Global(g) => write!(f, "@g{}", g.0),
        }
    }
}

/// Branch target: an instruction index within the current function.
pub type Label = u32;

/// A SimISA machine instruction.
///
/// Arithmetic reuses TinyIR's [`BinOp`]/[`ICmp`]/[`FCmp`]/[`CastOp`]
/// semantics (shared with the reference interpreter via
/// `tinyir::interp::eval_*`), which is what makes differential testing of
/// the backend cheap.
#[derive(Clone, PartialEq, Debug)]
pub enum MInst {
    /// `dst <- src` (a load when `src` is memory; `sext` sign-extends
    /// sub-word loads, mirroring `movsx`).
    Mov { dst: Reg, src: Src, size: u8, sext: bool },
    /// `mem <- src` store of the low `size` bytes.
    Store { src: Reg, mem: MemOp, size: u8 },
    /// `dst <- effective_address(mem)` (x86 `lea`).
    Lea { dst: Reg, mem: MemOp },
    /// `dst <- lhs op rhs` (three-address ALU; `rhs` may be folded memory).
    Bin { op: BinOp, dst: Reg, lhs: Reg, rhs: Src, ty: Ty },
    /// `dst <- (lhs pred rhs)` as 0/1.
    Icmp { pred: ICmp, dst: Reg, lhs: Reg, rhs: Src, ty: Ty },
    /// Float compare to 0/1.
    Fcmp { pred: FCmp, dst: Reg, lhs: Reg, rhs: Src, ty: Ty },
    /// Conversion.
    Cast { op: CastOp, dst: Reg, src: Reg, from: Ty, to: Ty },
    /// `dst <- cond ? t : f` (cmov-style).
    Select { dst: Reg, cond: Reg, t: Reg, f: Reg },
    /// Unconditional jump.
    Jmp { target: Label },
    /// Conditional jump on the low bit of `cond`.
    Jnz { cond: Reg, then_t: Label, else_t: Label },
    /// Fetch caller-supplied argument `idx` into `dst` (models the incoming
    /// argument registers of the calling convention).
    GetArg { dst: Reg, idx: u8 },
    /// Call a module function; `args` are evaluated and copied into the
    /// callee's incoming argument slots, the result (if any) lands in `dst`.
    Call { callee: FuncId, args: Vec<Src>, dst: Option<Reg> },
    /// Call a built-in intrinsic.
    CallIntr { which: Intrinsic, args: Vec<Src>, dst: Option<Reg> },
    /// Return (value in `src` if the function returns one).
    Ret { src: Option<Reg> },
}

impl MInst {
    /// The register this instruction writes, if any. This is the
    /// "destination operand" of the fault-injection model for register-
    /// writing instructions; stores corrupt memory and control transfers
    /// corrupt the PC instead (see `faultsim`).
    pub fn dest_reg(&self) -> Option<Reg> {
        match self {
            MInst::Mov { dst, .. }
            | MInst::Lea { dst, .. }
            | MInst::Bin { dst, .. }
            | MInst::Icmp { dst, .. }
            | MInst::Fcmp { dst, .. }
            | MInst::Cast { dst, .. }
            | MInst::Select { dst, .. }
            | MInst::GetArg { dst, .. } => Some(*dst),
            MInst::Call { dst, .. } | MInst::CallIntr { dst, .. } => *dst,
            MInst::Store { .. } | MInst::Jmp { .. } | MInst::Jnz { .. } | MInst::Ret { .. } => {
                None
            }
        }
    }

    /// The memory operand this instruction dereferences, if any — what
    /// Safeguard's disassembly step recovers ("which operand is referring to
    /// a memory address").
    pub fn mem_operand(&self) -> Option<&MemOp> {
        match self {
            MInst::Mov { src: Src::Mem(m, _), .. } => Some(m),
            MInst::Bin { rhs: Src::Mem(m, _), .. } => Some(m),
            MInst::Icmp { rhs: Src::Mem(m, _), .. } => Some(m),
            MInst::Fcmp { rhs: Src::Mem(m, _), .. } => Some(m),
            MInst::Store { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// Mutable access to the memory operand (Safeguard's register patch).
    pub fn mem_operand_mut(&mut self) -> Option<&mut MemOp> {
        match self {
            MInst::Mov { src: Src::Mem(m, _), .. } => Some(m),
            MInst::Bin { rhs: Src::Mem(m, _), .. } => Some(m),
            MInst::Icmp { rhs: Src::Mem(m, _), .. } => Some(m),
            MInst::Fcmp { rhs: Src::Mem(m, _), .. } => Some(m),
            MInst::Store { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// True for control-transfer instructions (their "destination" is the
    /// program counter).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            MInst::Jmp { .. } | MInst::Jnz { .. } | MInst::Call { .. } | MInst::Ret { .. }
        )
    }

    /// Static mnemonic of this instruction's variant — the key the telemetry
    /// instruction-mix histogram buckets by. Derived post-hoc from the golden
    /// run's execution profile, so classifying a workload's mix costs the
    /// simulation loop nothing.
    pub fn kind_name(&self) -> &'static str {
        match self {
            MInst::Mov { .. } => "mov",
            MInst::Store { .. } => "store",
            MInst::Lea { .. } => "lea",
            MInst::Bin { .. } => "bin",
            MInst::Icmp { .. } => "icmp",
            MInst::Fcmp { .. } => "fcmp",
            MInst::Cast { .. } => "cast",
            MInst::Select { .. } => "select",
            MInst::Jmp { .. } => "jmp",
            MInst::Jnz { .. } => "jnz",
            MInst::GetArg { .. } => "getarg",
            MInst::Call { .. } => "call",
            MInst::CallIntr { .. } => "callintr",
            MInst::Ret { .. } => "ret",
        }
    }
}

/// Bytes per encoded instruction (fixed-width encoding).
pub const INST_BYTES: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_address_matches_x86_semantics() {
        let m = MemOp::base_index(Reg::gpr(1), Reg::gpr(2), 8, 16);
        let read = |r: Reg| match r.0 {
            1 => 0x1000u64,
            2 => 3,
            _ => 0,
        };
        assert_eq!(m.effective(read), 0x1000 + 3 * 8 + 16);
    }

    #[test]
    fn effective_address_wraps() {
        let m = MemOp::base_disp(Reg::gpr(1), -8);
        assert_eq!(m.effective(|_| 4), 4u64.wrapping_sub(8));
    }

    #[test]
    fn dest_and_mem_operand_classification() {
        let load = MInst::Mov {
            dst: Reg::gpr(3),
            src: Src::Mem(MemOp::base_disp(FP, -8), 8),
            size: 8,
            sext: false,
        };
        assert_eq!(load.dest_reg(), Some(Reg::gpr(3)));
        assert!(load.mem_operand().is_some());
        let store = MInst::Store { src: Reg::gpr(3), mem: MemOp::base_disp(FP, -8), size: 8 };
        assert_eq!(store.dest_reg(), None);
        assert!(store.mem_operand().is_some());
        let jmp = MInst::Jmp { target: 7 };
        assert!(jmp.is_control());
        assert!(jmp.mem_operand().is_none());
    }

    #[test]
    fn register_display() {
        assert_eq!(Reg::gpr(3).to_string(), "%r3");
        assert_eq!(SP.to_string(), "%sp");
        assert_eq!(FP.to_string(), "%fp");
        assert_eq!(Reg::fpr(2).to_string(), "%x2");
        assert!(Reg::fpr(0).is_float());
        assert!(!Reg::gpr(0).is_float());
    }
}
