//! The SimISA execution engine: a simulated process with frames, registers,
//! paged memory, traps, breakpoints and per-instruction profiling.
//!
//! Traps freeze the machine state exactly like a POSIX signal: the program
//! counter still points at the faulting instruction and every register holds
//! its pre-fault value, so a handler (Safeguard) can inspect the state,
//! patch a register and resume — re-executing the faulting instruction —
//! precisely the `ucontext_t` dance of the paper's runtime.

use crate::image::{
    LoadedModule, MachineFunction, MachineModule, ModuleId, ProcessImage, DATA_BASE, EXE_BASE,
    HEAP_BASE, LIB_BASE, STACK_SIZE, STACK_TOP,
};
use crate::isa::{MInst, MemOp, Reg, Src, FP, NUM_REGS, SP};
use std::collections::HashMap;
use std::sync::Arc;
use tinyir::interp::{eval_bin, eval_cast, eval_fcmp, eval_icmp, float_of_bits, sext_bits};
use tinyir::mem::{MemFault, Memory, PagedMemory, PAGE_SIZE};
use tinyir::{FuncId, Intrinsic, Ty};

/// Why the machine stopped.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TrapKind {
    /// Invalid memory reference (`SIGSEGV`) at the given address.
    Segv(u64),
    /// Misaligned access (`SIGBUS`) at the given address.
    Bus(u64),
    /// Integer division error (`SIGFPE`).
    Fpe,
    /// `abort()` / failed assertion (`SIGABRT`).
    Abort,
    /// Instruction budget exhausted (classified as a hang).
    OutOfFuel,
}

/// A trap: the signal-like kind plus the faulting PC.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Trap {
    /// What happened.
    pub kind: TrapKind,
    /// Absolute PC of the faulting instruction.
    pub pc: u64,
}

/// Result of [`Process::run`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum RunExit {
    /// The start function returned (with its raw-bit result).
    Done(Option<u64>),
    /// A trap occurred; machine state is frozen at the faulting instruction.
    Trapped(Trap),
    /// The breakpoint count was exhausted right after executing the target
    /// instruction.
    BreakHit,
}

/// What the last executed instruction wrote — the fault-injection
/// "destination operand" (paper §2.1.1).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum DestRef {
    /// A register of the current frame.
    Reg(Reg),
    /// A memory cell (address + size) — destinations of stores.
    Mem(u64, u8),
    /// The program counter — destinations of control transfers.
    Pc,
}

/// One call frame: private register file (the calling convention saves and
/// restores all registers across calls) plus incoming arguments.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Module of the executing function.
    pub module: ModuleId,
    /// Function id within the module.
    pub func: FuncId,
    /// Index of the next instruction to execute.
    pub idx: usize,
    /// Register file (raw bits; float registers are `16..32`).
    pub regs: [u64; NUM_REGS],
    /// Incoming arguments.
    pub args: Vec<u64>,
    /// Frame base (FP value).
    pub fp: u64,
    /// Caller register that receives the return value.
    pub ret_dst: Option<Reg>,
    /// Stack pointer to restore on return.
    pub saved_sp: u64,
}

/// Per-static-instruction execution counts, indexed `[module][func][inst]` —
/// the Pin-style profile the campaign's `(I, n)` sampling is built on.
pub type Profile = Vec<Vec<Vec<u64>>>;

/// A multi-breakpoint set: for each static instruction, the pending
/// execution ordinals at which the machine should stop (right *after* that
/// execution, exactly like [`Process::break_at`]).
///
/// This is the trellis cursor's mechanism: a campaign registers every
/// sampled `(module, func, inst, nth)` injection point up front and then
/// advances one process through the program, snapshot-forking at each hit.
/// Execution ordinals are counted from the moment the set is armed, so a
/// process that carries a `BreakSet` from `start()` counts exactly like a
/// sequence of independent `break_at` runs over the same deterministic
/// program.
#[derive(Clone, Debug, Default)]
pub struct BreakSet {
    /// Pending ordinals per instruction, keyed `(module, func, inst)`.
    pending: HashMap<(ModuleId, FuncId, usize), PendingNths>,
    /// Total pending ordinals across all instructions.
    remaining: usize,
    /// The point whose ordinal fired on the last `BreakHit`, consumed by
    /// [`BreakSet::take_fired`].
    fired: Option<(ModuleId, FuncId, usize, u64)>,
}

#[derive(Clone, Debug)]
struct PendingNths {
    /// Executions of this instruction observed since the set was armed.
    seen: u64,
    /// Pending stop ordinals, sorted descending (`last()` fires next).
    nths: Vec<u64>,
}

impl BreakSet {
    /// An empty set (never fires).
    pub fn new() -> BreakSet {
        BreakSet::default()
    }

    /// Register a stop after the `nth` execution of `(module, func, inst)`.
    /// Duplicate registrations are deduplicated: returns `false` (and fires
    /// only once) when this exact point is already pending.
    pub fn add(&mut self, module: ModuleId, func: FuncId, inst: usize, nth: u64) -> bool {
        let p = self
            .pending
            .entry((module, func, inst))
            .or_insert(PendingNths { seen: 0, nths: Vec::new() });
        match p.nths.binary_search_by(|x| nth.cmp(x)) {
            Ok(_) => false,
            Err(i) => {
                p.nths.insert(i, nth);
                self.remaining += 1;
                true
            }
        }
    }

    /// True when every registered ordinal has fired.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Ordinals still pending.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The point that caused the last `BreakHit` (cleared on read).
    pub fn take_fired(&mut self) -> Option<(ModuleId, FuncId, usize, u64)> {
        self.fired.take()
    }

    /// Note one execution of `(module, func, inst)`; true when a pending
    /// ordinal fires. Entries with no ordinals left are dropped, so fully
    /// serviced instructions stop paying the map probe's bookkeeping.
    fn note(&mut self, module: ModuleId, func: FuncId, inst: usize) -> bool {
        let Some(p) = self.pending.get_mut(&(module, func, inst)) else {
            return false;
        };
        p.seen += 1;
        if p.nths.last() == Some(&p.seen) {
            p.nths.pop();
            let nth = p.seen;
            if p.nths.is_empty() {
                self.pending.remove(&(module, func, inst));
            }
            self.remaining -= 1;
            self.fired = Some((module, func, inst, nth));
            true
        } else {
            false
        }
    }
}

/// A simulated process: image + memory + frames.
///
/// `Clone` is a *snapshot fork*: the image is `Arc`-shared, memory pages are
/// copy-on-write, and only the frames (registers + small metadata) are
/// deep-copied — so forking a paused process at an injection point is cheap
/// regardless of workload size.
#[derive(Clone)]
pub struct Process {
    /// Loaded modules and symbol resolution (shared, immutable after
    /// construction).
    pub image: Arc<ProcessImage>,
    /// The paged address space.
    pub mem: PagedMemory,
    /// Call stack (last = current frame).
    pub frames: Vec<Frame>,
    /// Current stack pointer (grows downward).
    pub sp: u64,
    /// Heap bump pointer.
    pub heap_ptr: u64,
    /// Remaining instruction budget.
    pub fuel: u64,
    /// Dynamic instructions executed.
    pub steps: u64,
    /// Optional execution-count profile.
    pub profile: Option<Profile>,
    /// Breakpoint: stop right *after* the `n`-th execution of the
    /// instruction at `(module, func, idx)`.
    pub break_at: Option<(ModuleId, FuncId, usize, u64)>,
    /// Multi-breakpoint set (the trellis cursor): stop after each pending
    /// execution ordinal; [`BreakSet::take_fired`] identifies which one hit.
    pub multi_break: Option<BreakSet>,
    /// Number of traps delivered so far (recovery attempts observe this).
    pub trap_count: u64,
}

impl Process {
    /// Build a process from an executable and a set of shared libraries.
    /// Maps and initialises each module's globals and the stack.
    ///
    /// The modules are shared, not copied: building a process from an
    /// already-compiled app is O(globals), so campaigns can construct one
    /// per injection without re-cloning code, debug data or IR.
    pub fn new(exe: impl Into<Arc<MachineModule>>, libs: Vec<Arc<MachineModule>>) -> Process {
        let mut mem = PagedMemory::new();
        let mut image = ProcessImage::default();
        let mut data_base = DATA_BASE;
        let mut code_base = EXE_BASE;
        for (i, module) in std::iter::once(exe.into()).chain(libs).enumerate() {
            let global_addrs =
                tinyir::interp::layout_globals(&module.ir, &mut mem, data_base);
            data_base = global_addrs
                .last()
                .map(|&a| a + 0x0800_0000)
                .unwrap_or(data_base + 0x0800_0000);
            image.push_module(LoadedModule {
                base: code_base,
                module,
                global_addrs,
                is_shared: i > 0,
            });
            code_base = if i == 0 { LIB_BASE } else { code_base + 0x0100_0000 };
        }
        image.link();
        // Map the stack eagerly (its pages never fault; corrupted in-stack
        // addresses corrupt data instead, like a real contiguous stack).
        // With copy-on-write pages this maps 32 MiB of zero-page aliases
        // without allocating.
        mem.map_region(STACK_TOP - STACK_SIZE, STACK_SIZE);
        Process {
            image: Arc::new(image),
            mem,
            frames: Vec::new(),
            sp: STACK_TOP,
            heap_ptr: HEAP_BASE,
            fuel: u64::MAX,
            steps: 0,
            profile: None,
            break_at: None,
            multi_break: None,
            trap_count: 0,
        }
    }

    /// Enable profiling (zeroed counts for every static instruction).
    pub fn enable_profile(&mut self) {
        self.profile = Some(
            self.image
                .modules
                .iter()
                .map(|lm| {
                    lm.module
                        .funcs
                        .iter()
                        .map(|f| vec![0u64; f.instrs.len()])
                        .collect()
                })
                .collect(),
        );
    }

    /// Push the initial frame for `func_name` in the executable module.
    pub fn start(&mut self, func_name: &str, args: &[u64]) {
        let fid = self.image.modules[0]
            .module
            .func_by_name(func_name)
            .unwrap_or_else(|| panic!("no function {func_name}"));
        self.push_frame(ModuleId(0), fid, args.to_vec(), None)
            .expect("initial frame");
    }

    pub(crate) fn push_frame(
        &mut self,
        module: ModuleId,
        func: FuncId,
        args: Vec<u64>,
        ret_dst: Option<Reg>,
    ) -> Result<(), Trap> {
        let (module, func) = self.image.resolve(module, func).ok_or(Trap {
            kind: TrapKind::Segv(0), // unresolved PLT entry: jump to nowhere
            pc: 0,
        })?;
        let mf = &self.image.modules[module.0 as usize].module.funcs[func.0 as usize];
        let frame_size = (mf.frame_size + 15) & !15;
        let saved_sp = self.sp;
        let new_sp = self.sp.checked_sub(frame_size + 64).ok_or(Trap {
            kind: TrapKind::Segv(0),
            pc: 0,
        })?;
        if new_sp < STACK_TOP - STACK_SIZE {
            // Stack overflow hits the guard page.
            return Err(Trap { kind: TrapKind::Segv(new_sp), pc: self.pc() });
        }
        self.sp = new_sp;
        let mut regs = [0u64; NUM_REGS];
        regs[FP.0 as usize] = new_sp;
        regs[SP.0 as usize] = new_sp;
        self.frames.push(Frame {
            module,
            func,
            idx: 0,
            regs,
            args,
            fp: new_sp,
            ret_dst,
            saved_sp,
        });
        Ok(())
    }

    /// Absolute PC of the instruction about to execute (or just trapped).
    pub fn pc(&self) -> u64 {
        match self.frames.last() {
            Some(f) => self.image.addr_of(f.module, f.func, f.idx),
            None => 0,
        }
    }

    /// Current frame (panics if the process has not started).
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("no frame")
    }

    /// Mutable current frame.
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("no frame")
    }

    /// Read a register of the current frame.
    pub fn read_reg(&self, r: Reg) -> u64 {
        self.frame().regs[r.0 as usize]
    }

    /// Write a register of the current frame.
    pub fn write_reg(&mut self, r: Reg, v: u64) {
        self.frame_mut().regs[r.0 as usize] = v;
    }

    /// The instruction the PC points at.
    pub fn current_inst(&self) -> Option<&MInst> {
        let f = self.frames.last()?;
        self.image.modules[f.module.0 as usize].module.funcs[f.func.0 as usize]
            .instrs
            .get(f.idx)
    }

    /// The destination operand of the instruction at the current PC,
    /// resolved against current register values (used by the injector right
    /// after a breakpoint, when `idx` has already advanced past the target —
    /// pass the instruction explicitly in that case).
    pub fn dest_of(&self, inst: &MInst, frame: &Frame) -> DestRef {
        if inst.is_control() {
            return DestRef::Pc;
        }
        if let MInst::Store { mem, size, .. } = inst {
            let addr = mem.effective(|r| frame.regs[r.0 as usize]);
            return DestRef::Mem(addr, *size);
        }
        match inst.dest_reg() {
            Some(r) => DestRef::Reg(r),
            None => DestRef::Pc,
        }
    }

    /// Evaluate a source operand against one frame. A free-standing helper
    /// (rather than `&mut self`) so the step loop can keep its `&mut Frame`
    /// borrow while lending out `&mut self.mem` — disjoint field borrows.
    #[inline(always)]
    fn eval_src(
        frame: &Frame,
        mem: &mut PagedMemory,
        image: &ProcessImage,
        src: Src,
    ) -> Result<u64, MemFault> {
        match src {
            Src::Reg(r) => Ok(frame.regs[r.0 as usize]),
            Src::Imm(v) => Ok(v),
            Src::Mem(m, size) => {
                let addr = m.effective(|r| frame.regs[r.0 as usize]);
                mem.load(addr, size as u32)
            }
            Src::Global(g) => {
                Ok(image.modules[frame.module.0 as usize].global_addrs[g.0 as usize])
            }
        }
    }

    /// Run until completion, trap, or breakpoint.
    ///
    /// Dispatches to one of two monomorphized loops. The **fast loop**
    /// (`HOOKS = false`) is the post-injection common case — `profile` and
    /// `break_at` both `None` for the bulk of every campaign run — and
    /// compiles with the per-step profile branch and breakpoint match
    /// removed entirely. The **slow loop** (`HOOKS = true`) keeps today's
    /// exact semantics whenever either feature is armed. Both produce
    /// bit-identical `steps`/`fuel` accounting and trap states (the
    /// fast-path precision tests in `tests.rs` hold them side by side).
    pub fn run(&mut self) -> RunExit {
        if self.profile.is_some() || self.break_at.is_some() || self.multi_break.is_some() {
            self.run_loop::<true>()
        } else {
            self.run_loop::<false>()
        }
    }

    /// The hot loop holds its own handle on the (immutable) image so each
    /// step can borrow the current instruction in place instead of cloning
    /// it, and caches the executing function across steps so straight-line
    /// code pays no module/function lookups. `fuel` and `steps` are carried
    /// in locals across the whole block of steps (no per-step memory
    /// round-trip through `self`) and written back on every exit, so the
    /// externally visible accounting is exact — a trap freezes with the
    /// counters exactly as the per-step version would leave them, which the
    /// hang-latency buckets of Table 4 rely on.
    fn run_loop<const HOOKS: bool>(&mut self) -> RunExit {
        let image = Arc::clone(&self.image);
        let mut cursor: FrameCursor<'_> = None;
        let mut fuel = self.fuel;
        let mut steps = self.steps;
        let exit = loop {
            match self.step_in::<HOOKS>(&image, &mut cursor, &mut fuel, &mut steps) {
                StepOut::Continue => {}
                StepOut::Done(v) => break RunExit::Done(v),
                StepOut::Trap(t) => {
                    self.trap_count += 1;
                    break RunExit::Trapped(t);
                }
                StepOut::Break => break RunExit::BreakHit,
            }
        };
        self.fuel = fuel;
        self.steps = steps;
        exit
    }

    #[inline(always)]
    fn step_in<'i, const HOOKS: bool>(
        &mut self,
        image: &'i ProcessImage,
        cursor: &mut FrameCursor<'i>,
        fuel: &mut u64,
        steps: &mut u64,
    ) -> StepOut {
        // One mutable borrow of the top frame for the whole step: register
        // reads/writes go through it directly instead of re-indexing
        // `self.frames` (and re-proving the bounds) per operand. Arms that
        // need `&mut self` as a whole (call/intrinsic/ret) end the borrow
        // and return early.
        let fi = self.frames.len().wrapping_sub(1);
        let Some(frame) = self.frames.last_mut() else {
            return StepOut::Done(None);
        };
        let (mid, fid, idx) = (frame.module, frame.func, frame.idx);
        // Function lookup is cached across steps; it changes only on
        // call/return (and a recursive call re-resolves to the same entry).
        let mf = match cursor {
            Some((cm, cf, mf)) if *cm == mid && *cf == fid => *mf,
            _ => {
                let mf = &image.modules[mid.0 as usize].module.funcs[fid.0 as usize];
                *cursor = Some((mid, fid, mf));
                mf
            }
        };
        // The PC is only needed on (rare) trap exits; avoid the address
        // arithmetic on the hot path.
        let pc = || image.addr_of(mid, fid, idx);
        if idx >= mf.instrs.len() {
            // Wild PC (corrupted control flow): invalid instruction fetch.
            let pc = pc();
            return StepOut::Trap(Trap { kind: TrapKind::Segv(pc), pc });
        }
        if *fuel == 0 {
            let pc = pc();
            return StepOut::Trap(Trap { kind: TrapKind::OutOfFuel, pc });
        }
        *fuel -= 1;
        *steps += 1;
        // `HOOKS` is a monomorphization constant: in the fast loop the
        // profile branch and the breakpoint match below compile away.
        if HOOKS {
            if let Some(p) = &mut self.profile {
                p[mid.0 as usize][fid.0 as usize][idx] += 1;
            }
        }
        let break_hit = if HOOKS {
            let single = match &mut self.break_at {
                Some((bm, bf, bi, n)) if *bm == mid && *bf == fid && *bi == idx => {
                    if *n <= 1 {
                        self.break_at = None;
                        true
                    } else {
                        *n -= 1;
                        false
                    }
                }
                _ => false,
            };
            // Non-short-circuiting: the pending-occurrence counters must
            // observe *every* execution even on a `break_at` hit, so the
            // two mechanisms stay consistent if armed together.
            let multi = match &mut self.multi_break {
                Some(bs) => bs.note(mid, fid, idx),
                None => false,
            };
            single | multi
        } else {
            false
        };

        let inst = &mf.instrs[idx];
        let trap = |k: TrapKind| StepOut::Trap(Trap { kind: k, pc: pc() });
        let memtrap = |e: MemFault| {
            StepOut::Trap(Trap {
                kind: match e {
                    MemFault::Unmapped(a) => TrapKind::Segv(a),
                    MemFault::Misaligned(a) => TrapKind::Bus(a),
                },
                pc: pc(),
            })
        };
        let step_out = |hit: bool| if hit { StepOut::Break } else { StepOut::Continue };

        match inst {
            MInst::Mov { dst, src, size, sext } => {
                let mut v = match Self::eval_src(frame, &mut self.mem, image, *src) {
                    Ok(v) => v,
                    Err(e) => return memtrap(e),
                };
                if *sext && *size < 8 {
                    let ty = match size {
                        1 => Ty::I8,
                        2 => Ty::I16,
                        _ => Ty::I32,
                    };
                    v = sext_bits(v, ty) as u64;
                }
                frame.regs[dst.0 as usize] = v;
            }
            MInst::Store { src, mem: memop, size } => {
                let v = frame.regs[src.0 as usize];
                let addr = memop.effective(|r| frame.regs[r.0 as usize]);
                if let Err(e) = self.mem.store(addr, *size as u32, v) {
                    return memtrap(e);
                }
            }
            MInst::Lea { dst, mem: memop } => {
                let addr = memop.effective(|r| frame.regs[r.0 as usize]);
                frame.regs[dst.0 as usize] = addr;
            }
            MInst::Bin { op, dst, lhs, rhs, ty } => {
                let l = frame.regs[lhs.0 as usize];
                let r = match Self::eval_src(frame, &mut self.mem, image, *rhs) {
                    Ok(v) => v,
                    Err(e) => return memtrap(e),
                };
                match eval_bin(*op, l, r, *ty) {
                    Ok(v) => frame.regs[dst.0 as usize] = v,
                    Err(_) => return trap(TrapKind::Fpe),
                }
            }
            MInst::Icmp { pred, dst, lhs, rhs, ty } => {
                let l = frame.regs[lhs.0 as usize];
                let r = match Self::eval_src(frame, &mut self.mem, image, *rhs) {
                    Ok(v) => v,
                    Err(e) => return memtrap(e),
                };
                frame.regs[dst.0 as usize] = eval_icmp(*pred, l, r, *ty) as u64;
            }
            MInst::Fcmp { pred, dst, lhs, rhs, ty } => {
                let l = frame.regs[lhs.0 as usize];
                let r = match Self::eval_src(frame, &mut self.mem, image, *rhs) {
                    Ok(v) => v,
                    Err(e) => return memtrap(e),
                };
                frame.regs[dst.0 as usize] =
                    eval_fcmp(*pred, float_of_bits(l, *ty), float_of_bits(r, *ty)) as u64;
            }
            MInst::Cast { op, dst, src, from, to } => {
                let v = frame.regs[src.0 as usize];
                frame.regs[dst.0 as usize] = eval_cast(*op, v, *from, *to);
            }
            MInst::Select { dst, cond, t, f } => {
                let c = frame.regs[cond.0 as usize] & 1;
                let v = if c != 0 {
                    frame.regs[t.0 as usize]
                } else {
                    frame.regs[f.0 as usize]
                };
                frame.regs[dst.0 as usize] = v;
            }
            MInst::Jmp { target } => {
                frame.idx = *target as usize;
                return step_out(break_hit);
            }
            MInst::Jnz { cond, then_t, else_t } => {
                let c = frame.regs[cond.0 as usize] & 1;
                frame.idx = *(if c != 0 { then_t } else { else_t }) as usize;
                return step_out(break_hit);
            }
            MInst::GetArg { dst, idx: a } => {
                let v = frame.args.get(*a as usize).copied().unwrap_or(0);
                frame.regs[dst.0 as usize] = v;
            }
            MInst::Call { callee, args, dst } => {
                let mut argv = Vec::with_capacity(args.len());
                for s in args {
                    match Self::eval_src(frame, &mut self.mem, image, *s) {
                        Ok(v) => argv.push(v),
                        Err(e) => return memtrap(e),
                    }
                }
                // Advance the caller past the call before pushing the frame
                // (ends the frame borrow — push_frame needs all of self).
                frame.idx += 1;
                if let Err(t) = self.push_frame(mid, *callee, argv, *dst) {
                    return StepOut::Trap(t);
                }
                return step_out(break_hit);
            }
            MInst::CallIntr { which, args, dst } => {
                let mut argv = Vec::with_capacity(args.len());
                for s in args {
                    match Self::eval_src(frame, &mut self.mem, image, *s) {
                        Ok(v) => argv.push(v),
                        Err(e) => return memtrap(e),
                    }
                }
                match self.eval_intrinsic(*which, &argv) {
                    Ok(r) => {
                        // `eval_intrinsic` needed `&mut self`; re-borrow.
                        let frame = &mut self.frames[fi];
                        if let (Some(d), Some(v)) = (*dst, r) {
                            frame.regs[d.0 as usize] = v;
                        }
                        frame.idx += 1;
                        return step_out(break_hit);
                    }
                    Err(k) => return trap(k),
                }
            }
            MInst::Ret { src } => {
                let val = src.map(|r| frame.regs[r.0 as usize]);
                let done = self.frames.len() == 1;
                let popped = self.frames.pop().expect("frame");
                self.sp = popped.saved_sp;
                if done {
                    return if break_hit { StepOut::Break } else { StepOut::Done(val) };
                }
                if let (Some(d), Some(v)) = (popped.ret_dst, val) {
                    let pl = self.frames.len() - 1;
                    self.frames[pl].regs[d.0 as usize] = v;
                }
                return step_out(break_hit);
            }
        }
        frame.idx += 1;
        step_out(break_hit)
    }

    pub(crate) fn eval_intrinsic(
        &mut self,
        which: Intrinsic,
        args: &[u64],
    ) -> Result<Option<u64>, TrapKind> {
        let f = |n: usize| f64::from_bits(args[n]);
        Ok(match which {
            Intrinsic::Sqrt => Some(f(0).sqrt().to_bits()),
            Intrinsic::Fabs => Some(f(0).abs().to_bits()),
            Intrinsic::Sin => Some(f(0).sin().to_bits()),
            Intrinsic::Cos => Some(f(0).cos().to_bits()),
            Intrinsic::Exp => Some(f(0).exp().to_bits()),
            Intrinsic::Floor => Some(f(0).floor().to_bits()),
            Intrinsic::Pow => Some(f(0).powf(f(1)).to_bits()),
            Intrinsic::FMin => Some(f(0).min(f(1)).to_bits()),
            Intrinsic::FMax => Some(f(0).max(f(1)).to_bits()),
            Intrinsic::IMin => Some(((args[0] as i64).min(args[1] as i64)) as u64),
            Intrinsic::IMax => Some(((args[0] as i64).max(args[1] as i64)) as u64),
            Intrinsic::Assert => {
                if args[0] & 1 == 0 {
                    return Err(TrapKind::Abort);
                }
                None
            }
            Intrinsic::Abort => return Err(TrapKind::Abort),
            Intrinsic::Malloc => {
                let size = args[0].max(1);
                let addr = (self.heap_ptr + 15) & !15;
                self.mem.map_region(addr, size);
                self.heap_ptr = addr + size + PAGE_SIZE;
                Some(addr)
            }
            Intrinsic::Free => None,
        })
    }

    /// Read the bits of a global variable by name (test/verification aid).
    pub fn read_global(&mut self, name: &str, elem: u64, ty: Ty) -> Option<u64> {
        let addr = self.image.global_addr_by_name(name)?;
        self.mem.load(addr + elem * ty.size() as u64, ty.size()).ok()
    }

    /// Snapshot the raw bytes of a named global (SDC comparison).
    pub fn snapshot_global(&self, name: &str, len: u64) -> Option<Vec<u8>> {
        let addr = self.image.global_addr_by_name(name)?;
        let mut buf = vec![0u8; len as usize];
        self.mem.read_bytes(addr, &mut buf).ok()?;
        Some(buf)
    }
}

enum StepOut {
    Continue,
    Done(Option<u64>),
    Trap(Trap),
    Break,
}

/// Cached `(module, func, compiled function)` of the executing frame,
/// invalidated when the top frame changes identity.
type FrameCursor<'i> = Option<(ModuleId, FuncId, &'i MachineFunction)>;

/// Effective-address helper exposed for Safeguard's disassembly step.
pub fn effective_addr(mem: &MemOp, frame: &Frame) -> u64 {
    mem.effective(|r| frame.regs[r.0 as usize])
}
