//! Simulated DWARF: line tables and variable location lists.
//!
//! CARE's runtime half depends on exactly two pieces of debug data
//! (paper §3.3–§3.4):
//!
//! * the **line table**, mapping a PC to the `(file, line, col)` tuple that
//!   keys the recovery table, and
//! * per-variable **location lists** (`DW_AT_location`), mapping a PC range
//!   to "in register r" (`DW_OP_reg*`) or "at frame offset o"
//!   (`DW_OP_breg* + off`), which Safeguard uses to fetch uncontaminated
//!   kernel parameters out of the stopped process.
//!
//! Both are emitted by the SimISA backend and consumed by `safeguard`.

use crate::isa::Reg;
use std::collections::HashMap;
use tinyir::DebugLoc;

/// Where a variable lives over some PC range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarPlace {
    /// In a register (`DW_OP_reg<r>`).
    Reg(Reg),
    /// At `FP + offset` on the stack (`DW_OP_breg<FP> <offset>`).
    FrameOffset(i64),
}

/// One `DW_AT_location` list entry: the variable is at `place` while the PC
/// is in `[lo, hi)`. Addresses are module-relative offsets (the same
/// convention the paper uses for shared libraries: `PC - base`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LocEntry {
    /// Inclusive start offset.
    pub lo: u64,
    /// Exclusive end offset.
    pub hi: u64,
    /// Register or frame slot.
    pub place: VarPlace,
}

/// A debug information entry for one variable (simplified DIE).
#[derive(Clone, Debug)]
pub struct VarDie {
    /// `DW_AT_name` — unique per recovery-kernel parameter.
    pub name: String,
    /// `DW_AT_location` list.
    pub locs: Vec<LocEntry>,
}

impl VarDie {
    /// Resolve the variable's place at a given module-relative PC offset.
    pub fn place_at(&self, offset: u64) -> Option<VarPlace> {
        self.locs
            .iter()
            .find(|e| e.lo <= offset && offset < e.hi)
            .map(|e| e.place)
    }
}

/// A request, produced by Armor, for the backend to emit a [`VarDie`]
/// describing where `value` of `func` lives ("Armor will create a variable
/// description for it by simply assigning a unique name").
#[derive(Clone, Debug)]
pub struct DieRequest {
    /// Function containing the value.
    pub func: tinyir::FuncId,
    /// The IR value to describe.
    pub value: tinyir::Value,
    /// Unique `DW_AT_name` to emit.
    pub name: String,
}

/// The debug data of one machine module: line table + variable DIEs.
#[derive(Clone, Debug, Default)]
pub struct DebugData {
    /// Sorted `(module_offset, loc)` pairs, one per machine instruction that
    /// has a source location.
    pub line_table: Vec<(u64, DebugLoc)>,
    /// Variable DIEs indexed by name.
    pub vars: HashMap<String, VarDie>,
}

impl DebugData {
    /// Look up the source location for a module-relative PC offset
    /// (exact-match: SimISA instructions are fixed width).
    pub fn loc_for_offset(&self, offset: u64) -> Option<DebugLoc> {
        match self.line_table.binary_search_by_key(&offset, |e| e.0) {
            Ok(i) => Some(self.line_table[i].1),
            Err(_) => None,
        }
    }

    /// Find the place of variable `name` at `offset`.
    pub fn var_place(&self, name: &str, offset: u64) -> Option<VarPlace> {
        self.vars.get(name)?.place_at(offset)
    }

    /// Insert a line-table row (rows must be appended in address order; the
    /// backend emits them that way).
    pub fn push_line(&mut self, offset: u64, loc: DebugLoc) {
        debug_assert!(self.line_table.last().map(|e| e.0 < offset).unwrap_or(true));
        self.line_table.push((offset, loc));
    }

    /// Approximate encoded size in bytes (used by the memory-overhead
    /// accounting that reproduces the paper's fixed 27 MB figure).
    pub fn encoded_size(&self) -> u64 {
        let lines = self.line_table.len() as u64 * 16;
        let vars: u64 = self
            .vars
            .values()
            .map(|v| v.name.len() as u64 + 8 + v.locs.len() as u64 * 24)
            .sum();
        lines + vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::FileId;

    #[test]
    fn line_lookup_is_exact_match() {
        let mut d = DebugData::default();
        let l1 = DebugLoc::new(FileId(0), 10, 1);
        let l2 = DebugLoc::new(FileId(0), 11, 1);
        d.push_line(0, l1);
        d.push_line(8, l2);
        assert_eq!(d.loc_for_offset(0), Some(l1));
        assert_eq!(d.loc_for_offset(8), Some(l2));
        assert_eq!(d.loc_for_offset(4), None);
    }

    #[test]
    fn location_list_ranges() {
        // Mirrors the paper's Table 7: a variable in a register for one PC
        // range and on the stack for the next.
        let die = VarDie {
            name: "zion3".into(),
            locs: vec![
                LocEntry { lo: 0x22cd4, hi: 0x22d3c, place: VarPlace::Reg(Reg(11)) },
                LocEntry { lo: 0x22d3c, hi: 0x22fe4, place: VarPlace::FrameOffset(4) },
            ],
        };
        assert_eq!(die.place_at(0x22cd4), Some(VarPlace::Reg(Reg(11))));
        assert_eq!(die.place_at(0x22d40), Some(VarPlace::FrameOffset(4)));
        assert_eq!(die.place_at(0x22fe4), None, "end is exclusive");
        assert_eq!(die.place_at(0x1), None);
    }

    #[test]
    fn var_place_via_debug_data() {
        let mut d = DebugData::default();
        d.vars.insert(
            "p0".into(),
            VarDie {
                name: "p0".into(),
                locs: vec![LocEntry { lo: 0, hi: 100, place: VarPlace::FrameOffset(16) }],
            },
        );
        assert_eq!(d.var_place("p0", 50), Some(VarPlace::FrameOffset(16)));
        assert_eq!(d.var_place("p0", 100), None);
        assert_eq!(d.var_place("nope", 50), None);
    }
}
