//! SimISA disassembler — the capstone/udis86 analogue of the paper's stack.
//!
//! Safeguard "will disassemble the instruction to determine which operand is
//! referring to a memory address" (paper §1/§3.4). This module renders
//! machine instructions in an AT&T-flavoured syntax and exposes the operand
//! classification the runtime needs, plus whole-function/module listings for
//! debugging and for the `repro`/example binaries.

use crate::image::{MachineFunction, MachineModule};
use crate::isa::{MInst, MemOp, Src};

/// A decoded view of one instruction: mnemonic, rendered operands, and the
/// classification Safeguard cares about.
#[derive(Clone, Debug, PartialEq)]
pub struct Decoded {
    /// Mnemonic (`mov`, `movm`, `add.f64`, `jnz`, ...).
    pub mnemonic: String,
    /// Operands in AT&T order (source first).
    pub operands: Vec<String>,
    /// The memory operand, if the instruction dereferences one.
    pub mem: Option<MemOp>,
    /// True for control transfers.
    pub is_control: bool,
}

/// Decode a single instruction.
pub fn decode(inst: &MInst) -> Decoded {
    let (mnemonic, operands): (String, Vec<String>) = match inst {
        MInst::Mov { dst, src, size, sext } => {
            let m = match (src, sext) {
                (Src::Mem(..), true) => format!("movsx{}", suffix(*size)),
                (Src::Mem(..), false) => format!("mov{}", suffix(*size)),
                _ => "mov".to_string(),
            };
            (m, vec![src_str(src), dst.to_string()])
        }
        MInst::Store { src, mem, size } => (
            format!("mov{}", suffix(*size)),
            vec![src.to_string(), mem.to_string()],
        ),
        MInst::Lea { dst, mem } => ("lea".into(), vec![mem.to_string(), dst.to_string()]),
        MInst::Bin { op, dst, lhs, rhs, ty } => (
            format!("{}.{}", op.mnemonic(), ty),
            vec![lhs.to_string(), src_str(rhs), dst.to_string()],
        ),
        MInst::Icmp { pred, dst, lhs, rhs, ty } => (
            format!("icmp.{}.{}", pred.mnemonic(), ty),
            vec![lhs.to_string(), src_str(rhs), dst.to_string()],
        ),
        MInst::Fcmp { pred, dst, lhs, rhs, ty } => (
            format!("fcmp.{}.{}", pred.mnemonic(), ty),
            vec![lhs.to_string(), src_str(rhs), dst.to_string()],
        ),
        MInst::Cast { op, dst, src, from, to } => (
            format!("{}.{}.{}", op.mnemonic(), from, to),
            vec![src.to_string(), dst.to_string()],
        ),
        MInst::Select { dst, cond, t, f } => (
            "cmov".into(),
            vec![cond.to_string(), t.to_string(), f.to_string(), dst.to_string()],
        ),
        MInst::Jmp { target } => ("jmp".into(), vec![format!(".L{target}")]),
        MInst::Jnz { cond, then_t, else_t } => (
            "jnz".into(),
            vec![cond.to_string(), format!(".L{then_t}"), format!(".L{else_t}")],
        ),
        MInst::GetArg { dst, idx } => ("getarg".into(), vec![format!("#{idx}"), dst.to_string()]),
        MInst::Call { callee, args, dst } => {
            let mut ops: Vec<String> = vec![format!("@f{}", callee.0)];
            ops.extend(args.iter().map(src_str));
            if let Some(d) = dst {
                ops.push(format!("-> {d}"));
            }
            ("call".into(), ops)
        }
        MInst::CallIntr { which, args, dst } => {
            let mut ops: Vec<String> = vec![format!("${}", which.name())];
            ops.extend(args.iter().map(src_str));
            if let Some(d) = dst {
                ops.push(format!("-> {d}"));
            }
            ("call".into(), ops)
        }
        MInst::Ret { src } => (
            "ret".into(),
            src.iter().map(|r| r.to_string()).collect(),
        ),
    };
    Decoded {
        mnemonic,
        operands,
        mem: inst.mem_operand().copied(),
        is_control: inst.is_control(),
    }
}

fn suffix(size: u8) -> &'static str {
    match size {
        1 => "b",
        2 => "w",
        4 => "l",
        _ => "q",
    }
}

fn src_str(s: &Src) -> String {
    s.to_string()
}

/// Render one instruction as a single line.
pub fn format_inst(inst: &MInst) -> String {
    let d = decode(inst);
    if d.operands.is_empty() {
        d.mnemonic
    } else {
        format!("{:<14} {}", d.mnemonic, d.operands.join(", "))
    }
}

/// Produce an objdump-style listing of a function: offsets, encodings
/// elided, source locations annotated from the line table when available.
pub fn disassemble_function(f: &MachineFunction, module: Option<&MachineModule>) -> String {
    let mut out = format!("<{}>:  ; frame {} bytes\n", f.name, f.frame_size);
    for (i, inst) in f.instrs.iter().enumerate() {
        let off = f.offset_of(i);
        let loc = module
            .and_then(|m| m.debug.loc_for_offset(off))
            .map(|l| {
                module
                    .map(|m| {
                        format!(
                            "  ; {}:{}:{}",
                            m.ir.file_name(l.file),
                            l.line,
                            l.col
                        )
                    })
                    .unwrap_or_default()
            })
            .unwrap_or_default();
        out.push_str(&format!("  {off:#08x}:  {}{loc}\n", format_inst(inst)));
    }
    out
}

/// Disassemble every defined function in a module.
pub fn disassemble_module(m: &MachineModule) -> String {
    let mut out = format!("module <{}>  ({} bytes of code)\n\n", m.name, m.code_size);
    for f in &m.funcs {
        if !f.is_decl {
            out.push_str(&disassemble_function(f, Some(m)));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{MemOp, Reg, FP};
    use tinyir::builder::ModuleBuilder;
    use tinyir::{BinOp, Ty, Value};

    #[test]
    fn decodes_memory_operands_like_capstone() {
        // The paper's example shape: mov 8(%rbx,%r8,4), %eax.
        let inst = MInst::Mov {
            dst: Reg::gpr(3),
            src: Src::Mem(MemOp::base_index(Reg::gpr(4), Reg::gpr(8), 4, 8), 4),
            size: 4,
            sext: false,
        };
        let d = decode(&inst);
        assert_eq!(d.mnemonic, "movl");
        assert!(d.operands[0].contains("(%r4,%r8,4)"), "{:?}", d.operands);
        assert_eq!(d.operands[1], "%r3");
        let mem = d.mem.unwrap();
        assert_eq!(mem.index, Some(Reg::gpr(8)));
        assert_eq!(mem.scale, 4);
        assert_eq!(mem.disp, 8);
        assert!(!d.is_control);
    }

    #[test]
    fn classifies_stores_and_branches() {
        let st = MInst::Store { src: Reg::gpr(2), mem: MemOp::base_disp(FP, -16), size: 8 };
        let d = decode(&st);
        assert_eq!(d.mnemonic, "movq");
        assert!(d.mem.is_some());
        let j = MInst::Jnz { cond: Reg::gpr(0), then_t: 4, else_t: 9 };
        let d = decode(&j);
        assert!(d.is_control);
        assert!(d.mem.is_none());
        assert_eq!(d.operands, vec!["%r0", ".L4", ".L9"]);
    }

    #[test]
    fn folded_alu_operands_render_cisc_style() {
        let add = MInst::Bin {
            op: BinOp::FAdd,
            dst: Reg::fpr(3),
            lhs: Reg::fpr(3),
            rhs: Src::Mem(MemOp::base_index(Reg::gpr(5), Reg::gpr(6), 8, 0), 8),
            ty: Ty::F64,
        };
        let line = format_inst(&add);
        assert!(line.starts_with("fadd.f64"), "{line}");
        assert!(line.contains("(%r5,%r6,8)"), "{line}");
        assert!(decode(&add).mem.is_some(), "folded operand is a memory ref");
    }

    #[test]
    fn function_listing_annotates_source_locations() {
        let mut mb = ModuleBuilder::new("demo", "demo.c");
        let g = mb.global_zeroed("arr", Ty::F64, 16);
        mb.define("touch", vec![Ty::I64], Some(Ty::F64), |fb| {
            let v = fb.load_elem(fb.global(g), fb.arg(0), Ty::F64);
            let w = fb.fmul(v, Value::f64(2.0), Ty::F64);
            fb.ret(Some(w));
        });
        let m = mb.finish();
        let mm = crate::compile_module(&m, true, &[]);
        let listing = disassemble_module(&mm);
        assert!(listing.contains("<touch>"), "{listing}");
        assert!(listing.contains("demo.c:"), "source annotations:\n{listing}");
        assert!(listing.contains("ret"), "{listing}");
        // Every line with an offset parses back as hex.
        for line in listing.lines().filter(|l| l.trim_start().starts_with("0x")) {
            let off = line.trim_start().split(':').next().unwrap();
            assert!(u64::from_str_radix(off.trim_start_matches("0x"), 16).is_ok());
        }
    }
}
