//! Differential and behavioural tests for the SimISA backend and engine.

use crate::*;
use tinyir::builder::ModuleBuilder;
use tinyir::interp::{layout_globals, Interp};
use tinyir::mem::PagedMemory;
use tinyir::{ICmp, Intrinsic, Module, Ty, Value};

/// Run `func` both on the reference interpreter and on the compiled
/// SimISA machine (at the given regalloc setting) and require identical
/// results.
fn differential(m: &Module, func: &str, args: &[u64], regalloc: bool) -> Option<u64> {
    // Interpreter.
    let mut imem = PagedMemory::new();
    let globals = layout_globals(m, &mut imem, 0x1000_0000);
    let mut interp = Interp::new(
        m,
        &mut imem,
        &globals,
        0x7f00_0000_0000,
        0x7f00_0100_0000,
        0x6000_0000_0000,
        1_000_000_000,
    );
    let iret = interp
        .call(m.func_by_name(func).unwrap(), args)
        .expect("interp ok");

    // Machine.
    let mm = compile_module(m, regalloc, &[]);
    let mut p = Process::new(mm, vec![]);
    p.start(func, args);
    match p.run() {
        RunExit::Done(v) => {
            assert_eq!(v, iret, "machine result != interpreter result");
            v
        }
        other => panic!("machine did not finish: {other:?}"),
    }
}

fn diff_both(m: &Module, func: &str, args: &[u64]) -> Option<u64> {
    let a = differential(m, func, args, false);
    let b = differential(m, func, args, true);
    assert_eq!(a, b);
    a
}

#[test]
fn straightline_arith() {
    let mut mb = ModuleBuilder::new("m", "m.c");
    mb.define("poly", vec![Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
        let a2 = fb.mul(fb.arg(0), fb.arg(0), Ty::I64);
        let ab = fb.mul(fb.arg(0), fb.arg(1), Ty::I64);
        let s = fb.add(a2, ab, Ty::I64);
        let t = fb.sub(s, Value::i64(7), Ty::I64);
        fb.ret(Some(t));
    });
    let m = mb.finish();
    assert_eq!(diff_both(&m, "poly", &[5, 3]), Some(25 + 15 - 7));
}

#[test]
fn loops_and_arrays() {
    let mut mb = ModuleBuilder::new("m", "m.c");
    let g = mb.global_zeroed("data", Ty::F64, 64);
    mb.define("fill_sum", vec![Ty::I64], Some(Ty::F64), |fb| {
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
            let x = fb.cast(tinyir::CastOp::SiToFp, iv, Ty::F64);
            let x2 = fb.fmul(x, x, Ty::F64);
            fb.store_elem(x2, fb.global(g), iv, Ty::F64);
        });
        let acc = fb.alloca(Ty::F64, 1);
        fb.store(Value::f64(0.0), acc);
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
            let v = fb.load_elem(fb.global(g), iv, Ty::F64);
            let a = fb.load(acc, Ty::F64);
            let s = fb.fadd(a, v, Ty::F64);
            fb.store(s, acc);
        });
        let r = fb.load(acc, Ty::F64);
        fb.ret(Some(r));
    });
    let m = mb.finish();
    let expected: f64 = (0..10).map(|i| (i * i) as f64).sum();
    let bits = diff_both(&m, "fill_sum", &[10]).unwrap();
    assert_eq!(f64::from_bits(bits), expected);
}

#[test]
fn optimized_module_matches_machine() {
    // Run the O1 IR pipeline, then require interp == machine again.
    let mut mb = ModuleBuilder::new("m", "m.c");
    let g = mb.global_zeroed("out", Ty::I64, 32);
    mb.define("tri", vec![Ty::I64], Some(Ty::I64), |fb| {
        let acc = fb.alloca(Ty::I64, 1);
        fb.store(Value::i64(0), acc);
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
            let a = fb.load(acc, Ty::I64);
            let s = fb.add(a, iv, Ty::I64);
            fb.store(s, acc);
            fb.store_elem(s, fb.global(g), iv, Ty::I64);
        });
        let r = fb.load(acc, Ty::I64);
        fb.ret(Some(r));
    });
    let mut m = mb.finish();
    opt::optimize(&mut m, opt::OptLevel::O1);
    tinyir::verify::verify_module(&m).unwrap();
    assert_eq!(diff_both(&m, "tri", &[10]), Some(45));
}

#[test]
fn calls_and_recursion() {
    let mut mb = ModuleBuilder::new("m", "m.c");
    let fib = mb.declare("fib", vec![Ty::I64], Some(Ty::I64));
    mb.define("fib", vec![Ty::I64], Some(Ty::I64), |fb| {
        let base = fb.icmp(ICmp::Sle, fb.arg(0), Value::i64(1));
        let out = fb.alloca(Ty::I64, 1);
        fb.if_then_else(
            base,
            |fb| fb.store(fb.arg(0), out),
            |fb| {
                let n1 = fb.sub(fb.arg(0), Value::i64(1), Ty::I64);
                let n2 = fb.sub(fb.arg(0), Value::i64(2), Ty::I64);
                let f1 = fb.call(fib, vec![n1]);
                let f2 = fb.call(fib, vec![n2]);
                let s = fb.add(f1, f2, Ty::I64);
                fb.store(s, out);
            },
        );
        let r = fb.load(out, Ty::I64);
        fb.ret(Some(r));
    });
    let m = mb.finish();
    assert_eq!(diff_both(&m, "fib", &[12]), Some(144));
}

#[test]
fn intrinsics_match() {
    let mut mb = ModuleBuilder::new("m", "m.c");
    mb.define("norm", vec![Ty::F64, Ty::F64], Some(Ty::F64), |fb| {
        let a2 = fb.fmul(fb.arg(0), fb.arg(0), Ty::F64);
        let b2 = fb.fmul(fb.arg(1), fb.arg(1), Ty::F64);
        let s = fb.fadd(a2, b2, Ty::F64);
        let r = fb.sqrt(s);
        fb.ret(Some(r));
    });
    let m = mb.finish();
    let bits = diff_both(&m, "norm", &[3.0f64.to_bits(), 4.0f64.to_bits()]).unwrap();
    assert_eq!(f64::from_bits(bits), 5.0);
}

#[test]
fn out_of_bounds_traps_with_fault_address() {
    let mut mb = ModuleBuilder::new("m", "m.c");
    let g = mb.global_zeroed("arr", Ty::F64, 16);
    mb.define("peek", vec![Ty::I64], Some(Ty::F64), |fb| {
        let v = fb.load_elem(fb.global(g), fb.arg(0), Ty::F64);
        fb.ret(Some(v));
    });
    let m = mb.finish();
    for regalloc in [false, true] {
        let mm = compile_module(&m, regalloc, &[]);
        let mut p = Process::new(mm, vec![]);
        p.start("peek", &[1 << 30]);
        match p.run() {
            RunExit::Trapped(t) => {
                assert!(matches!(t.kind, TrapKind::Segv(_)), "{t:?}");
                // The faulting PC must map back to an instruction with a
                // memory operand.
                let (mid, fid, idx) = p.image.locate_pc(t.pc).unwrap();
                let inst =
                    &p.image.modules[mid.0 as usize].module.funcs[fid.0 as usize].instrs[idx];
                assert!(inst.mem_operand().is_some());
            }
            other => panic!("expected trap, got {other:?}"),
        }
    }
}

#[test]
fn o1_uses_base_index_memory_operands() {
    // The array store in a loop must lower to a disp(base,index,scale)
    // operand under regalloc — the shape Safeguard patches.
    let mut mb = ModuleBuilder::new("m", "m.c");
    let g = mb.global_zeroed("arr", Ty::F64, 64);
    mb.define("fill", vec![Ty::I64], None, |fb| {
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
            fb.store_elem(Value::f64(1.0), fb.global(g), iv, Ty::F64);
        });
        fb.ret(None);
    });
    let mut m = mb.finish();
    opt::optimize(&mut m, opt::OptLevel::O1);
    let mm = compile_module(&m, true, &[]);
    let has_indexed = mm.funcs.iter().flat_map(|f| &f.instrs).any(|i| {
        i.mem_operand()
            .map(|mo| mo.index.is_some() && mo.scale == 8)
            .unwrap_or(false)
    });
    assert!(has_indexed, "expected an indexed memory operand");
}

#[test]
fn line_table_keys_memory_accesses() {
    let mut mb = ModuleBuilder::new("m", "m.c");
    let g = mb.global_zeroed("arr", Ty::F64, 64);
    mb.define("touch", vec![Ty::I64], Some(Ty::F64), |fb| {
        let v = fb.load_elem(fb.global(g), fb.arg(0), Ty::F64);
        fb.ret(Some(v));
    });
    let m = mb.finish();
    let load_loc = m.funcs[0]
        .instrs
        .iter()
        .find(|i| matches!(i.kind, tinyir::InstrKind::Load { .. }))
        .unwrap()
        .loc
        .unwrap();
    for regalloc in [false, true] {
        let mm = compile_module(&m, regalloc, &[]);
        // Find the machine instruction with the array memory operand and
        // check the line table maps its offset to the load's location.
        let f = &mm.funcs[0];
        let (idx, _) = f
            .instrs
            .iter()
            .enumerate()
            .rfind(|(_, i)| {
                matches!(i, MInst::Mov { src: Src::Mem(mo, _), .. } if mo.base != Some(FP))
            })
            .unwrap();
        let off = f.offset_of(idx);
        assert_eq!(mm.debug.loc_for_offset(off), Some(load_loc));
    }
}

#[test]
fn breakpoint_stops_after_nth_execution() {
    let mut mb = ModuleBuilder::new("m", "m.c");
    let g = mb.global_zeroed("arr", Ty::I64, 64);
    mb.define("count", vec![Ty::I64], None, |fb| {
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
            fb.store_elem(iv, fb.global(g), iv, Ty::I64);
        });
        fb.ret(None);
    });
    let m = mb.finish();
    let mm = compile_module(&m, false, &[]);
    // Find the store instruction in the machine code.
    let fid = mm.func_by_name("count").unwrap();
    let store_idx = mm.funcs[fid.0 as usize]
        .instrs
        .iter()
        .position(|i| matches!(i, MInst::Store { mem, .. } if mem.base != Some(FP)))
        .unwrap();
    let mut p = Process::new(mm, vec![]);
    p.start("count", &[10]);
    p.break_at = Some((ModuleId(0), fid, store_idx, 4));
    assert_eq!(p.run(), RunExit::BreakHit);
    // 4 executions done: arr[3] was just written.
    assert_eq!(p.read_global("arr", 3, Ty::I64), Some(3));
    assert_eq!(p.read_global("arr", 4, Ty::I64), Some(0));
    // Resuming finishes the run.
    assert_eq!(p.run(), RunExit::Done(None));
    assert_eq!(p.read_global("arr", 9, Ty::I64), Some(9));
}

#[test]
fn shared_library_call_via_plt() {
    // App declares `scale2`; the library defines it.
    let mut app_b = ModuleBuilder::new("app", "app.c");
    let ext = app_b.declare("scale2", vec![Ty::F64], Some(Ty::F64));
    app_b.define("main", vec![Ty::F64], Some(Ty::F64), |fb| {
        let r = fb.call(ext, vec![fb.arg(0)]);
        fb.ret(Some(r));
    });
    let app = app_b.finish();

    let mut lib_b = ModuleBuilder::new("libscale", "scale.c");
    lib_b.define("scale2", vec![Ty::F64], Some(Ty::F64), |fb| {
        let r = fb.fmul(fb.arg(0), Value::f64(2.0), Ty::F64);
        fb.ret(Some(r));
    });
    let lib = lib_b.finish();

    let mm_app = compile_module(&app, true, &[]);
    let mm_lib = compile_module(&lib, true, &[]);
    let mut p = Process::new(mm_app, vec![mm_lib.into()]);
    p.start("main", &[21.0f64.to_bits()]);
    match p.run() {
        RunExit::Done(Some(bits)) => assert_eq!(f64::from_bits(bits), 42.0),
        other => panic!("{other:?}"),
    }
}

#[test]
fn profile_counts_dynamic_executions() {
    let mut mb = ModuleBuilder::new("m", "m.c");
    mb.define("spin", vec![Ty::I64], None, |fb| {
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
            let _ = fb.mul(iv, iv, Ty::I64);
        });
        fb.ret(None);
    });
    let m = mb.finish();
    let mm = compile_module(&m, false, &[]);
    let mut p = Process::new(mm, vec![]);
    p.enable_profile();
    p.start("spin", &[7]);
    assert!(matches!(p.run(), RunExit::Done(None)));
    let prof = p.profile.as_ref().unwrap();
    // Some instruction in the loop body executed exactly 7 times.
    assert!(prof[0][0].contains(&7));
    assert!(p.steps > 0);
}

#[test]
fn assert_intrinsic_aborts_machine() {
    let mut mb = ModuleBuilder::new("m", "m.c");
    mb.define("guard", vec![Ty::I64], None, |fb| {
        let ok = fb.icmp(ICmp::Slt, fb.arg(0), Value::i64(8));
        fb.assert_cond(ok);
        fb.ret(None);
    });
    let m = mb.finish();
    let mm = compile_module(&m, false, &[]);
    let mut p = Process::new(mm.clone(), vec![]);
    p.start("guard", &[3]);
    assert!(matches!(p.run(), RunExit::Done(None)));
    let mut p = Process::new(mm, vec![]);
    p.start("guard", &[9]);
    match p.run() {
        RunExit::Trapped(t) => assert_eq!(t.kind, TrapKind::Abort),
        other => panic!("{other:?}"),
    }
}

#[test]
fn malloc_heap_round_trip() {
    let mut mb = ModuleBuilder::new("m", "m.c");
    mb.define("heap", vec![], Some(Ty::I64), |fb| {
        let p = fb.intrinsic(Intrinsic::Malloc, vec![Value::i64(128)]);
        fb.store_elem(Value::i64(31), p, Value::i64(7), Ty::I64);
        let v = fb.load_elem(p, Value::i64(7), Ty::I64);
        fb.ret(Some(v));
    });
    let m = mb.finish();
    assert_eq!(diff_both(&m, "heap", &[]), Some(31));
}

#[test]
fn fuel_exhaustion_is_a_hang_trap() {
    let mut mb = ModuleBuilder::new("m", "m.c");
    mb.define("forever", vec![], None, |fb| {
        let bb = fb.new_block("spin");
        fb.br(bb);
        fb.switch_to(bb);
        fb.br(bb);
    });
    let m = mb.finish();
    let mm = compile_module(&m, false, &[]);
    let mut p = Process::new(mm, vec![]);
    p.start("forever", &[]);
    p.fuel = 10_000;
    match p.run() {
        RunExit::Trapped(t) => assert_eq!(t.kind, TrapKind::OutOfFuel),
        other => panic!("{other:?}"),
    }
}

#[test]
fn phi_swap_cycles_sequentialize_correctly() {
    // A loop that swaps two values every iteration: after mem2reg this is
    // two phis feeding each other — the parallel-copy cycle the codegen
    // must break through a scratch register.
    let mut mb = ModuleBuilder::new("m", "m.c");
    mb.define("swapper", vec![Ty::I64, Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
        let xa = fb.alloca(Ty::I64, 1);
        let ya = fb.alloca(Ty::I64, 1);
        fb.store(fb.arg(0), xa);
        fb.store(fb.arg(1), ya);
        fb.for_loop(Value::i64(0), fb.arg(2), |fb, _iv| {
            let x = fb.load(xa, Ty::I64);
            let y = fb.load(ya, Ty::I64);
            fb.store(y, xa); // x' = y
            fb.store(x, ya); // y' = x
        });
        let x = fb.load(xa, Ty::I64);
        let y = fb.load(ya, Ty::I64);
        let two_x = fb.mul(x, Value::i64(2), Ty::I64);
        let r = fb.add(two_x, y, Ty::I64);
        fb.ret(Some(r));
    });
    let mut m = mb.finish();
    opt::optimize(&mut m, opt::OptLevel::O1);
    // Odd trip count: swapped once net. 2*b + a with (a,b,n)=(5,9,3).
    assert_eq!(diff_both(&m, "swapper", &[5, 9, 3]), Some(2 * 9 + 5));
    // Even trip count: identity. 2*a + b.
    assert_eq!(diff_both(&m, "swapper", &[5, 9, 4]), Some(2 * 5 + 9));
}

#[test]
fn three_way_phi_rotation_cycles() {
    // Rotate three values through a loop: a->b->c->a. Forces a 3-cycle in
    // the phi parallel copy.
    let mut mb = ModuleBuilder::new("m", "m.c");
    mb.define(
        "rotator",
        vec![Ty::I64, Ty::I64, Ty::I64, Ty::I64],
        Some(Ty::I64),
        |fb| {
            let aa = fb.alloca(Ty::I64, 1);
            let ba = fb.alloca(Ty::I64, 1);
            let ca = fb.alloca(Ty::I64, 1);
            fb.store(fb.arg(0), aa);
            fb.store(fb.arg(1), ba);
            fb.store(fb.arg(2), ca);
            fb.for_loop(Value::i64(0), fb.arg(3), |fb, _iv| {
                let a = fb.load(aa, Ty::I64);
                let b = fb.load(ba, Ty::I64);
                let c = fb.load(ca, Ty::I64);
                fb.store(c, aa);
                fb.store(a, ba);
                fb.store(b, ca);
            });
            let a = fb.load(aa, Ty::I64);
            let b = fb.load(ba, Ty::I64);
            let c = fb.load(ca, Ty::I64);
            let a4 = fb.mul(a, Value::i64(4), Ty::I64);
            let b2 = fb.mul(b, Value::i64(2), Ty::I64);
            let s = fb.add(a4, b2, Ty::I64);
            let r = fb.add(s, c, Ty::I64);
            fb.ret(Some(r));
        },
    );
    let mut m = mb.finish();
    opt::optimize(&mut m, opt::OptLevel::O1);
    // One rotation: (a,b,c) = (c0,a0,b0). With (1,2,3): (3,1,2) -> 4*3+2*1+2 = 16.
    assert_eq!(diff_both(&m, "rotator", &[1, 2, 3, 1]), Some(16));
    // Three rotations: identity -> 4*1+2*2+3 = 11.
    assert_eq!(diff_both(&m, "rotator", &[1, 2, 3, 3]), Some(11));
}

#[test]
fn deep_call_chains_respect_stack_limits() {
    // Deep recursion must hit the stack guard as a SIGSEGV, not corrupt
    // anything.
    let mut mb = ModuleBuilder::new("m", "m.c");
    let deep = mb.declare("deep", vec![Ty::I64], Some(Ty::I64));
    mb.define("deep", vec![Ty::I64], Some(Ty::I64), |fb| {
        let big = fb.alloca(Ty::I64, 512); // 4 KiB frame
        fb.store_elem(fb.arg(0), big, Value::i64(0), Ty::I64);
        let done = fb.icmp(ICmp::Sle, fb.arg(0), Value::i64(0));
        let out = fb.alloca(Ty::I64, 1);
        fb.if_then_else(
            done,
            |fb| fb.store(Value::i64(0), out),
            |fb| {
                let n1 = fb.sub(fb.arg(0), Value::i64(1), Ty::I64);
                let r = fb.call(deep, vec![n1]);
                fb.store(r, out);
            },
        );
        let r = fb.load(out, Ty::I64);
        fb.ret(Some(r));
    });
    let m = mb.finish();
    let mm = compile_module(&m, false, &[]);
    // Shallow recursion completes.
    let mut p = Process::new(mm.clone(), vec![]);
    p.start("deep", &[100]);
    assert!(matches!(p.run(), RunExit::Done(Some(0))));
    // Unbounded recursion overflows the 32 MiB stack -> Segv.
    let mut p = Process::new(mm, vec![]);
    p.start("deep", &[1_000_000]);
    match p.run() {
        RunExit::Trapped(t) => assert!(matches!(t.kind, TrapKind::Segv(_)), "{t:?}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn sub_word_types_round_trip_through_memory() {
    // i8/i16/i32 array traffic with sign-sensitive arithmetic.
    let mut mb = ModuleBuilder::new("m", "m.c");
    let g8 = mb.global_zeroed("a8", Ty::I8, 16);
    let g16 = mb.global_zeroed("a16", Ty::I16, 16);
    let g32 = mb.global_zeroed("a32", Ty::I32, 16);
    mb.define("subword", vec![Ty::I64], Some(Ty::I64), |fb| {
        // Store -n in each width, reload, sign-extend, sum.
        let neg = fb.sub(Value::i64(0), fb.arg(0), Ty::I64);
        let v8 = fb.cast(tinyir::CastOp::Trunc, neg, Ty::I8);
        let v16 = fb.cast(tinyir::CastOp::Trunc, neg, Ty::I16);
        let v32 = fb.cast(tinyir::CastOp::Trunc, neg, Ty::I32);
        fb.store_elem(v8, fb.global(g8), Value::i64(3), Ty::I8);
        fb.store_elem(v16, fb.global(g16), Value::i64(3), Ty::I16);
        fb.store_elem(v32, fb.global(g32), Value::i64(3), Ty::I32);
        let r8 = fb.load_elem(fb.global(g8), Value::i64(3), Ty::I8);
        let r16 = fb.load_elem(fb.global(g16), Value::i64(3), Ty::I16);
        let r32 = fb.load_elem(fb.global(g32), Value::i64(3), Ty::I32);
        let s8 = fb.sext(r8, Ty::I64);
        let s16 = fb.sext(r16, Ty::I64);
        let s32 = fb.sext(r32, Ty::I64);
        let t = fb.add(s8, s16, Ty::I64);
        let u = fb.add(t, s32, Ty::I64);
        fb.ret(Some(u));
    });
    let m = mb.finish();
    // -7 in each width sign-extends back to -7: total -21.
    assert_eq!(diff_both(&m, "subword", &[7]), Some((-21i64) as u64));
    // -200 truncated to i8 is +56 (two's complement wrap); i16/i32 keep
    // -200: total 56 - 200 - 200 = -344.
    assert_eq!(
        diff_both(&m, "subword", &[200]),
        Some((56i64 - 200 - 200) as u64)
    );
}

// ---------------------------------------------------------------------------
// Fast-loop trap precision: `run()` dispatches to a monomorphized fast loop
// when neither `profile` nor `break_at` is armed. These tests hold the fast
// and slow loops side by side on the same trapping program and require the
// frozen machine states to be bit-identical — PC on the faulting
// instruction, pre-fault registers, and exact `steps`/`fuel` accounting
// (Table 4's latency buckets and hang detection depend on the counters).
// ---------------------------------------------------------------------------

/// A module whose `main(n, k)` loops `n` times accumulating into a global,
/// then triggers the requested fault. `k` parametrises the faulting access.
fn trapping_module(fault: &str) -> Module {
    let mut mb = ModuleBuilder::new("trapper", "trapper.c");
    let acc = mb.global_zeroed("acc", Ty::I64, 8);
    mb.define("main", vec![Ty::I64, Ty::I64], Some(Ty::I64), |fb| {
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
            let a = fb.load_elem(fb.global(acc), Value::i64(0), Ty::I64);
            let s = fb.add(a, iv, Ty::I64);
            fb.store_elem(s, fb.global(acc), Value::i64(0), Ty::I64);
        });
        let v = match fault {
            // Index far past the mapped global: unmapped page (SIGSEGV).
            "segv" => fb.load_elem(fb.global(acc), fb.arg(1), Ty::I64),
            // Byte-offset the base pointer: misaligned i64 load (SIGBUS).
            "bus" => {
                let p = fb.gep(fb.global(acc), fb.arg(1), 1);
                fb.load(p, Ty::I64)
            }
            // Divide by the zero in arg(1) (SIGFPE).
            "fpe" => fb.sdiv(fb.arg(0), fb.arg(1), Ty::I64),
            // No fault: run to completion (used by the fuel test).
            _ => fb.load_elem(fb.global(acc), Value::i64(0), Ty::I64),
        };
        fb.ret(Some(v));
    });
    mb.finish()
}

/// Run `main(args)` twice — fast loop (no hooks) and slow loop (profiling
/// armed) — with the given fuel, and require bit-identical frozen states.
fn assert_fast_slow_equal(m: &Module, args: &[u64], fuel: u64) -> RunExit {
    let mm = std::sync::Arc::new(compile_module(m, true, &[]));
    let mut fast = Process::new(std::sync::Arc::clone(&mm), vec![]);
    fast.start("main", args);
    fast.fuel = fuel;
    let fast_exit = fast.run();

    let mut slow = Process::new(mm, vec![]);
    slow.start("main", args);
    slow.fuel = fuel;
    slow.enable_profile(); // forces the hook-checking loop
    let slow_exit = slow.run();

    assert_eq!(fast_exit, slow_exit, "exit status diverged");
    assert_eq!(fast.steps, slow.steps, "dynamic instruction count diverged");
    assert_eq!(fast.fuel, slow.fuel, "remaining fuel diverged");
    assert_eq!(fast.pc(), slow.pc(), "frozen PC diverged");
    assert_eq!(fast.sp, slow.sp, "stack pointer diverged");
    assert_eq!(fast.trap_count, slow.trap_count, "trap count diverged");
    assert_eq!(fast.frames.len(), slow.frames.len(), "frame depth diverged");
    for (ff, sf) in fast.frames.iter().zip(&slow.frames) {
        assert_eq!(ff.regs, sf.regs, "register file diverged");
        assert_eq!((ff.module, ff.func, ff.idx), (sf.module, sf.func, sf.idx));
    }
    if let RunExit::Trapped(t) = fast_exit {
        // The PC must be frozen *on* the faulting instruction.
        assert_eq!(t.pc, fast.pc(), "trap PC is not the frozen PC");
    }
    fast_exit
}

#[test]
fn fast_loop_segv_state_matches_slow_loop() {
    let m = trapping_module("segv");
    let exit = assert_fast_slow_equal(&m, &[25, 1 << 30], u64::MAX);
    match exit {
        RunExit::Trapped(t) => assert!(matches!(t.kind, TrapKind::Segv(_))),
        other => panic!("expected SIGSEGV, got {other:?}"),
    }
}

#[test]
fn fast_loop_bus_state_matches_slow_loop() {
    let m = trapping_module("bus");
    let exit = assert_fast_slow_equal(&m, &[25, 3], u64::MAX);
    match exit {
        RunExit::Trapped(t) => assert!(matches!(t.kind, TrapKind::Bus(_))),
        other => panic!("expected SIGBUS, got {other:?}"),
    }
}

#[test]
fn fast_loop_fpe_state_matches_slow_loop() {
    let m = trapping_module("fpe");
    let exit = assert_fast_slow_equal(&m, &[25, 0], u64::MAX);
    match exit {
        RunExit::Trapped(t) => assert_eq!(t.kind, TrapKind::Fpe),
        other => panic!("expected SIGFPE, got {other:?}"),
    }
}

#[test]
fn fast_loop_out_of_fuel_matches_slow_loop_at_every_budget() {
    // Sweep fuel budgets across the whole run so the OutOfFuel trap lands
    // on many different instructions (loop body, backedge, ret path); the
    // fast loop's block accounting must stop at exactly the same step.
    let m = trapping_module("none");
    let full = match assert_fast_slow_equal(&m, &[10, 0], u64::MAX) {
        RunExit::Done(_) => {
            let mm = std::sync::Arc::new(compile_module(&m, true, &[]));
            let mut p = Process::new(mm, vec![]);
            p.start("main", &[10, 0]);
            p.run();
            p.steps
        }
        other => panic!("expected completion, got {other:?}"),
    };
    for fuel in (0..full).step_by(7).chain([full - 1]) {
        let exit = assert_fast_slow_equal(&m, &[10, 0], fuel);
        match exit {
            RunExit::Trapped(t) => assert_eq!(t.kind, TrapKind::OutOfFuel),
            other => panic!("fuel {fuel}: expected OutOfFuel, got {other:?}"),
        }
    }
    // At exactly `full` fuel the run completes with zero fuel left.
    match assert_fast_slow_equal(&m, &[10, 0], full) {
        RunExit::Done(_) => {}
        other => panic!("expected completion at exact fuel, got {other:?}"),
    }
}

#[test]
fn fast_loop_resumes_after_breakpoint_with_identical_accounting() {
    // A run that hits a breakpoint (slow loop), then resumes — the resumed
    // portion takes the fast loop since `break_at` was consumed. Its final
    // state must match an uninterrupted profiled (slow) run.
    let m = trapping_module("none");
    let mm = std::sync::Arc::new(compile_module(&m, true, &[]));
    let fid = mm.func_by_name("main").unwrap();

    let mut straight = Process::new(std::sync::Arc::clone(&mm), vec![]);
    straight.start("main", &[10, 0]);
    straight.enable_profile();
    let straight_exit = straight.run();

    // Break on an instruction the profile says runs at least five times
    // (i.e. one inside the loop body).
    let counts = &straight.profile.as_ref().unwrap()[0][fid.0 as usize];
    let bidx = counts.iter().position(|&c| c >= 5).expect("loop instruction");

    let mut broken = Process::new(mm, vec![]);
    broken.start("main", &[10, 0]);
    broken.break_at = Some((ModuleId(0), fid, bidx, 4));
    assert_eq!(broken.run(), RunExit::BreakHit);
    assert!(broken.break_at.is_none());
    let resumed_exit = broken.run(); // fast loop from here on

    assert_eq!(resumed_exit, straight_exit);
    assert_eq!(broken.steps, straight.steps);
    assert_eq!(broken.pc(), straight.pc());
}

// ---------------------------------------------------------------------------
// BreakSet: the trellis cursor's multi-breakpoint mechanism. Its contract is
// equivalence with a *sequence* of single `break_at` runs over the same
// deterministic program: same stop states, same accounting, and snapshots
// forked at a stop inherit the remaining fuel budget.
// ---------------------------------------------------------------------------

/// A loop-heavy module plus the hottest profiled instruction of `main`
/// (one executed at least `min_count` times).
fn hot_instruction(
    args: &[u64],
    min_count: u64,
) -> (std::sync::Arc<MachineModule>, tinyir::FuncId, usize, u64) {
    use tinyir::builder::ModuleBuilder;
    let mut mb = ModuleBuilder::new("m", "m.c");
    let g = mb.global_zeroed("out", Ty::I64, 64);
    mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
        let acc = fb.alloca(Ty::I64, 1);
        fb.store(Value::i64(0), acc);
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
            let a = fb.load(acc, Ty::I64);
            let s = fb.add(a, iv, Ty::I64);
            fb.store(s, acc);
            let slot = fb.srem(iv, Value::i64(64), Ty::I64);
            fb.store_elem(s, fb.global(g), slot, Ty::I64);
        });
        let r = fb.load(acc, Ty::I64);
        fb.ret(Some(r));
    });
    let m = mb.finish();
    let mm = std::sync::Arc::new(compile_module(&m, true, &[]));
    let mut p = Process::new(std::sync::Arc::clone(&mm), vec![]);
    p.enable_profile();
    p.start("main", args);
    assert!(matches!(p.run(), RunExit::Done(_)));
    let fid = mm.func_by_name("main").unwrap();
    let counts = &p.profile.as_ref().unwrap()[0][fid.0 as usize];
    let (idx, &count) = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= min_count)
        .max_by_key(|&(_, &c)| c)
        .expect("hot instruction");
    (mm, fid, idx, count)
}

#[test]
fn break_set_stops_match_sequential_single_breakpoints() {
    let (mm, fid, idx, count) = hot_instruction(&[12], 8);
    let nths = [2u64, 5, count.min(8)];

    // Reference: three independent `break_at` legs (ordinals relative to
    // the previous stop, since `break_at` counts from arming).
    let mut reference = Vec::new();
    let mut rp = Process::new(std::sync::Arc::clone(&mm), vec![]);
    rp.start("main", &[12]);
    rp.fuel = 100_000;
    let mut prev = 0;
    for &n in &nths {
        rp.break_at = Some((ModuleId(0), fid, idx, n - prev));
        assert_eq!(rp.run(), RunExit::BreakHit);
        reference.push((rp.steps, rp.fuel, rp.pc(), rp.frame().regs, rp.frame().idx));
        prev = n;
    }

    // Cursor: all three ordinals registered up front, out of order.
    let mut bs = BreakSet::new();
    for &n in &[nths[1], nths[0], nths[2]] {
        assert!(bs.add(ModuleId(0), fid, idx, n));
    }
    assert!(!bs.add(ModuleId(0), fid, idx, nths[0]), "duplicates must dedup");
    assert_eq!(bs.remaining(), 3);
    let mut cp = Process::new(mm, vec![]);
    cp.start("main", &[12]);
    cp.fuel = 100_000;
    cp.multi_break = Some(bs);
    for (k, &n) in nths.iter().enumerate() {
        assert_eq!(cp.run(), RunExit::BreakHit);
        let fired = cp.multi_break.as_mut().unwrap().take_fired().expect("fired point");
        assert_eq!(fired, (ModuleId(0), fid, idx, n));
        let (steps, fuel, pc, regs, fidx) = reference[k];
        assert_eq!(cp.steps, steps, "stop {k}: steps diverged");
        assert_eq!(cp.fuel, fuel, "stop {k}: fuel diverged");
        assert_eq!(cp.pc(), pc, "stop {k}: pc diverged");
        assert_eq!(cp.frame().regs, regs, "stop {k}: registers diverged");
        assert_eq!(cp.frame().idx, fidx, "stop {k}: frame index diverged");
    }
    assert!(cp.multi_break.as_ref().unwrap().is_empty());
    assert!(matches!(cp.run(), RunExit::Done(_)));
}

#[test]
fn break_set_snapshot_inherits_remaining_fuel_budget() {
    // The hang bound is a property of the whole run: a suffix forked at a
    // late stop must burn only the *remaining* budget, never a fresh full
    // one (which would let late injection points overshoot the bound ~2x).
    let (mm, fid, idx, count) = hot_instruction(&[40], 30);
    let mut cursor = Process::new(mm, vec![]);
    cursor.start("main", &[40]);
    let budget = 10_000u64;
    cursor.fuel = budget;
    let mut bs = BreakSet::new();
    bs.add(ModuleId(0), fid, idx, count - 2); // a late ordinal
    cursor.multi_break = Some(bs);
    assert_eq!(cursor.run(), RunExit::BreakHit);
    assert!(cursor.steps > 0);

    let mut snap = cursor.clone();
    snap.multi_break = None;
    assert_eq!(
        snap.fuel,
        budget - snap.steps,
        "the fork must inherit the remaining budget"
    );
    // Starve the suffix: whatever it does, it cannot execute past the
    // campaign-wide bound.
    match snap.run() {
        RunExit::Done(_) => assert!(snap.steps <= budget),
        RunExit::Trapped(t) => {
            assert_eq!(t.kind, TrapKind::OutOfFuel);
            assert_eq!(snap.steps, budget, "suffix overshot the hang bound");
        }
        other => panic!("unexpected exit: {other:?}"),
    }
}

#[test]
fn break_set_across_distinct_instructions_fires_in_execution_order() {
    let (mm, fid, idx, _) = hot_instruction(&[12], 8);
    // Second target: the function's entry instruction (executes once).
    let mut bs = BreakSet::new();
    bs.add(ModuleId(0), fid, 0, 1);
    bs.add(ModuleId(0), fid, idx, 3);
    let mut p = Process::new(mm, vec![]);
    p.start("main", &[12]);
    p.multi_break = Some(bs);
    assert_eq!(p.run(), RunExit::BreakHit);
    assert_eq!(
        p.multi_break.as_mut().unwrap().take_fired(),
        Some((ModuleId(0), fid, 0, 1)),
        "entry instruction fires first"
    );
    assert_eq!(p.run(), RunExit::BreakHit);
    assert_eq!(
        p.multi_break.as_mut().unwrap().take_fired(),
        Some((ModuleId(0), fid, idx, 3))
    );
    assert!(p.multi_break.as_ref().unwrap().is_empty());
    assert!(matches!(p.run(), RunExit::Done(_)));
}

// ---------------------------------------------------------------------------
// Compiled execution engine: the direct-threaded backend must be
// bit-identical to the interpreter fast loop — exits, traps, fuel, steps,
// trap counts, registers, frames and memory — at every fuel budget.
// ---------------------------------------------------------------------------

use crate::engine::{CompiledEngine, EngineKind, ExecutionEngine, InterpEngine};
use crate::translate::TranslationCache;
use std::sync::Arc;

/// A module exercising every engine-relevant shape: fused compare+branch
/// loops, float arithmetic with folded memory operands, intrinsics, calls,
/// an argument-controlled modulus (`srem` can raise SIGFPE) and an
/// argument-controlled array index (can run out of bounds).
fn engine_fixture() -> Arc<MachineModule> {
    let mut mb = ModuleBuilder::new("engine_fixture", "m.c");
    let g = mb.global_zeroed("arr", Ty::F64, 64);
    let out = mb.global_zeroed("out", Ty::I64, 8);
    let sq = mb.declare("sq", vec![Ty::I64], Some(Ty::I64));
    mb.define("sq", vec![Ty::I64], Some(Ty::I64), |fb| {
        let v = fb.mul(fb.arg(0), fb.arg(0), Ty::I64);
        fb.ret(Some(v));
    });
    mb.define("main", vec![Ty::I64, Ty::I64, Ty::I64], Some(Ty::F64), |fb| {
        let acc = fb.alloca(Ty::F64, 1);
        fb.store(Value::f64(0.0), acc);
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
            let x = fb.cast(tinyir::CastOp::SiToFp, iv, Ty::F64);
            let r = fb.sqrt(x);
            // arg(1) is the modulus: 0 traps SIGFPE mid-loop.
            let slot = fb.srem(iv, fb.arg(1), Ty::I64);
            fb.store_elem(r, fb.global(g), slot, Ty::F64);
            let v = fb.load_elem(fb.global(g), slot, Ty::F64);
            let a = fb.load(acc, Ty::F64);
            let s = fb.fadd(a, v, Ty::F64);
            fb.store(s, acc);
        });
        let q = fb.call(sq, vec![fb.arg(0)]);
        fb.store_elem(q, fb.global(out), Value::i64(0), Ty::I64);
        // arg(2) is a raw array index: huge values fault the load.
        let w = fb.load_elem(fb.global(g), fb.arg(2), Ty::F64);
        let a = fb.load(acc, Ty::F64);
        let s = fb.fadd(a, w, Ty::F64);
        fb.ret(Some(s));
    });
    let mut m = mb.finish();
    opt::optimize(&mut m, opt::OptLevel::O1);
    Arc::new(compile_module(&m, true, &[]))
}

/// Everything observable about a frame stack.
#[allow(clippy::type_complexity)]
fn frame_states(p: &Process) -> Vec<(u32, u32, usize, [u64; isa::NUM_REGS], u64, u64)> {
    p.frames
        .iter()
        .map(|f| (f.module.0, f.func.0, f.idx, f.regs, f.fp, f.saved_sp))
        .collect()
}

/// Run the fixture's `main` under both engines from identical start states
/// and require identical machine states afterwards. Returns the shared exit.
fn engine_parity(mm: &Arc<MachineModule>, args: &[u64], fuel: u64) -> RunExit {
    let mut pi = Process::new(Arc::clone(mm), vec![]);
    pi.start("main", args);
    pi.fuel = fuel;
    let mut pc = pi.clone();
    let ei = InterpEngine.run(&mut pi);
    let engine = CompiledEngine::for_image(&pc.image);
    let ec = engine.run(&mut pc);
    assert_eq!(ei, ec, "exit diverged (args {args:?}, fuel {fuel})");
    assert_eq!(pi.steps, pc.steps, "steps diverged (args {args:?}, fuel {fuel})");
    assert_eq!(pi.fuel, pc.fuel, "fuel diverged (args {args:?}, fuel {fuel})");
    assert_eq!(pi.trap_count, pc.trap_count, "trap_count diverged");
    assert_eq!(pi.sp, pc.sp, "sp diverged");
    assert_eq!(frame_states(&pi), frame_states(&pc), "frames diverged (fuel {fuel})");
    assert_eq!(
        pi.snapshot_global("arr", 512),
        pc.snapshot_global("arr", 512),
        "memory diverged (args {args:?}, fuel {fuel})"
    );
    ei
}

#[test]
fn compiled_engine_matches_interpreter_end_to_end() {
    let mm = engine_fixture();
    assert!(matches!(engine_parity(&mm, &[40, 64, 0], u64::MAX), RunExit::Done(Some(_))));
}

#[test]
fn compiled_engine_trap_parity() {
    let mm = engine_fixture();
    // SIGSEGV: a wild store index freezes mid-loop with pre-fault state.
    match engine_parity(&mm, &[8, 64, 1 << 40], u64::MAX) {
        RunExit::Trapped(t) => assert!(matches!(t.kind, TrapKind::Segv(_)), "{t:?}"),
        other => panic!("expected segv, got {other:?}"),
    }
    // SIGFPE: remainder by zero.
    match engine_parity(&mm, &[8, 0, 0], u64::MAX) {
        RunExit::Trapped(t) => assert_eq!(t.kind, TrapKind::Fpe),
        other => panic!("expected fpe, got {other:?}"),
    }
}

#[test]
fn compiled_engine_fuel_parity_at_every_budget() {
    // Exhaustive sweep over every possible fuel budget, including the
    // mid-fused-pair stops: each must freeze on the exact instruction, with
    // the exact registers, the interpreter freezes on.
    let mm = engine_fixture();
    let mut full = Process::new(Arc::clone(&mm), vec![]);
    full.start("main", &[12, 64, 0]);
    assert!(matches!(full.run(), RunExit::Done(_)));
    let total = full.steps;
    for budget in 0..=total + 1 {
        let exit = engine_parity(&mm, &[12, 64, 0], budget);
        if budget <= total.saturating_sub(1) {
            assert!(
                matches!(exit, RunExit::Trapped(Trap { kind: TrapKind::OutOfFuel, .. })),
                "budget {budget} of {total} should out-of-fuel, got {exit:?}"
            );
        } else {
            assert!(matches!(exit, RunExit::Done(_)));
        }
    }
}

#[test]
fn translation_fuses_and_caches() {
    let mm = engine_fixture();
    let p = {
        let mut p = Process::new(Arc::clone(&mm), vec![]);
        p.start("main", &[4, 64, 0]);
        p
    };
    let cache = TranslationCache::global();
    let h0 = cache.hits();
    let e1 = CompiledEngine::for_image(&p.image);
    // A second engine for the same image must reuse the translation.
    let _e2 = CompiledEngine::for_image(&p.image);
    assert!(cache.hits() > h0, "second for_image did not hit the cache");
    assert!(!cache.is_empty());
    let stats = e1.stats();
    assert!(stats.ops > 0);
    assert!(stats.blocks > 0, "no basic blocks discovered");
    assert!(stats.fused_cmp_br > 0, "loop compare+branch did not fuse: {stats:?}");
    assert_eq!(
        stats.fused_total(),
        stats.fused_cmp_br
            + stats.fused_load_bin
            + stats.fused_lea_load
            + stats.fused_glo_load
            + stats.fused_mov_mov
    );
}

#[test]
fn compiled_engine_falls_back_on_armed_breakpoints() {
    // `break_at`, `multi_break` and profiling are prepare/cursor paths: the
    // compiled engine must behave exactly like `Process::run` there.
    let (mm, fid, idx, _) = hot_instruction(&[12], 8);
    let mut pi = Process::new(Arc::clone(&mm), vec![]);
    pi.start("main", &[12]);
    pi.break_at = Some((ModuleId(0), fid, idx, 3));
    let mut pc = pi.clone();
    assert_eq!(pi.run(), RunExit::BreakHit);
    let engine = CompiledEngine::for_image(&pc.image);
    assert_eq!(engine.run(&mut pc), RunExit::BreakHit);
    assert_eq!(pi.steps, pc.steps);
    assert_eq!(pi.pc(), pc.pc());
    assert_eq!(frame_states(&pi), frame_states(&pc));
    // Disarmed, both engines continue identically to completion.
    let ei = InterpEngine.run(&mut pi);
    let ec = engine.run(&mut pc);
    assert_eq!(ei, ec);
    assert_eq!(pi.steps, pc.steps);
}

#[test]
fn engine_kind_parses_stable_names() {
    assert_eq!("interp".parse::<EngineKind>().unwrap(), EngineKind::Interp);
    assert_eq!("compiled".parse::<EngineKind>().unwrap(), EngineKind::Compiled);
    assert!("jit".parse::<EngineKind>().is_err());
    assert_eq!(EngineKind::default(), EngineKind::Interp);
    assert_eq!(EngineKind::Compiled.name(), "compiled");
    assert_eq!(InterpEngine.name(), "interp");
}

#[test]
fn advance_to_step_is_indistinguishable_from_a_continuous_run() {
    // Replaying to a mid-run step and continuing must reproduce the
    // continuous run's exact state — steps, fuel, trap_count, frames and
    // memory — on both engines; that is the contract the sharded trellis
    // cursors rest on.
    let mm = engine_fixture();
    let mut full = Process::new(Arc::clone(&mm), vec![]);
    full.start("main", &[12, 64, 0]);
    full.fuel = 1 << 20;
    let full_exit = full.run();
    assert!(matches!(full_exit, RunExit::Done(_)));
    let total = full.steps;
    let interp: &dyn ExecutionEngine = &InterpEngine;
    let base = {
        let mut p = Process::new(Arc::clone(&mm), vec![]);
        p.start("main", &[12, 64, 0]);
        p.fuel = 1 << 20;
        p
    };
    let compiled = CompiledEngine::for_image(&base.image);
    for engine in [interp, &compiled as &dyn ExecutionEngine] {
        for target in [0, 1, total / 3, total / 2, total - 1] {
            let mut p = base.clone();
            assert!(advance_to_step(engine, &mut p, target), "pause at {target} failed");
            assert_eq!(p.steps, target);
            assert_eq!(p.fuel, (1 << 20) - target, "fuel must charge exactly the replay");
            assert_eq!(p.trap_count, 0, "the internal pause must not count as a trap");
            let exit = engine.run(&mut p);
            assert_eq!(exit, full_exit, "{} diverged after pause at {target}", engine.name());
            assert_eq!(p.steps, total);
            assert_eq!(p.fuel, full.fuel);
            assert_eq!(frame_states(&p), frame_states(&full));
            assert_eq!(p.snapshot_global("arr", 512), full.snapshot_global("arr", 512));
        }
    }
    // A pause is only possible strictly inside the run: at `total` the
    // program completes as the replay fuel runs out, and past-the-end
    // targets can never be reached.
    let mut p = base.clone();
    assert!(!advance_to_step(interp, &mut p, total));
    let mut p = base.clone();
    assert!(matches!(p.run(), RunExit::Done(_)));
    assert!(!advance_to_step(interp, &mut p, total + 10));
    let mut p = base.clone();
    p.fuel = 5;
    assert!(!advance_to_step(interp, &mut p, total / 2));
}
